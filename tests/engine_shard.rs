//! The sharded-engine determinism contract: a replay with `shards >= 2`
//! must equal the serial replay **byte for byte** — every deterministic
//! `RunResult` field identical — across all seven update methods, with
//! non-empty fault *and* maintenance plans armed. This extends the
//! parallel==serial `run_grid` precedent (`tests/fault_timeline.rs`,
//! `tests/maintenance.rs`) from across-cell to inside-one-replay
//! parallelism.

use std::fmt::Write as _;

use ecfs::prelude::*;

fn replay(method: MethodKind, clients: u64, ops: usize) -> ReplayConfig {
    let code = CodeParams::new(6, 3).unwrap();
    let mut cluster = ClusterConfig::ssd_testbed(code, method);
    cluster.clients = clients;
    let mut r = ReplayConfig::new(cluster, TraceFamily::AliCloud);
    r.ops_per_client = ops;
    r.volume_bytes = 32 << 20;
    r
}

fn armed_plans(r: &mut ReplayConfig) {
    r.faults = FaultPlan::new()
        .fail_node(5 * simdes::units::MILLIS, 2)
        .with_repair_bandwidth(200 << 20);
    r.maintenance = MaintenancePlan::new()
        .with_scrub(ScrubConfig {
            bytes_per_sec: 8 << 30,
        })
        .with_lse(LseConfig {
            per_device: 4,
            span_bytes: 8 << 20,
            ..LseConfig::default()
        })
        .with_rebalance(RebalanceConfig::default());
}

/// Canonical rendering of every *deterministic* `RunResult` field.
/// Exhaustive destructuring: adding a field to `RunResult` fails this
/// test's compile until the field is classified here. Only `wall_ms`,
/// `events_per_sec`, and `setup_ms` (wall-clock measurements) are
/// excluded.
fn canon(r: &RunResult) -> String {
    let RunResult {
        method,
        completed_updates,
        completed_reads,
        completed_writes,
        duration_s,
        update_iops,
        latency_mean_us,
        latency_p99_us,
        disk,
        net_gib,
        net_cross_rack_gib,
        net_msgs,
        erases,
        series,
        log_memory_bytes,
        data_residency,
        delta_residency,
        parity_residency,
        stalls,
        cache_read_hits,
        cache_lookups,
        cache_hits,
        cache_hit_ratio,
        staged_bytes,
        coalesced_bytes,
        stage_flushes,
        drain_s,
        oracle_violations,
        degraded_reads,
        degraded_bytes_decoded,
        failed_ops,
        inline_rebuilds,
        repaired_blocks,
        repaired_bytes,
        data_loss_blocks,
        net_repair_gib,
        mttr_s,
        degraded_p99_us,
        steady_p99_us,
        read_p99_us,
        degraded_read_p99_us,
        steady_read_p99_us,
        offered_ops,
        offered_ops_per_s,
        goodput_ops_per_s,
        queue_delay_mean_us,
        queue_delay_p99_us,
        peak_queue_depth,
        saturated,
        active_clients_peak,
        client_state_bytes,
        workload_state_bytes,
        disk_fill_max,
        disk_fill_min,
        wear_max_bytes,
        wear_spread,
        copysets_used,
        scrub_gib,
        lse_injected,
        lse_found,
        lse_repaired,
        maint_migrated_gib,
        defrag_gib,
        wear_spread_before,
        maint_busy_p99_us,
        maint_idle_p99_us,
        stage_breakdown,
        trace_dropped_spans,
        sim_events,
        wall_ms: _,
        events_per_sec: _,
        setup_ms: _,
    } = r;
    let mut s = String::new();
    let _ = write!(
        s,
        "{method} u={completed_updates} r={completed_reads} w={completed_writes} \
         dur={duration_s:?} iops={update_iops:?} lat=({latency_mean_us:?},{latency_p99_us:?}) \
         disk={disk:?} net=({net_gib:?},{net_cross_rack_gib:?},{net_msgs}) erases={erases} \
         series={series:?} logmem={log_memory_bytes} \
         res=({data_residency:?},{delta_residency:?},{parity_residency:?}) \
         stalls={stalls} cache={cache_read_hits} \
         nodecache=({cache_lookups},{cache_hits},{cache_hit_ratio:?},{staged_bytes},\
         {coalesced_bytes},{stage_flushes}) drain={drain_s:?} viol={oracle_violations} \
         degr=({degraded_reads},{degraded_bytes_decoded},{failed_ops}) \
         repair=({inline_rebuilds},{repaired_blocks},{repaired_bytes},{data_loss_blocks},{net_repair_gib:?}) \
         mttr={mttr_s:?} p99s=({degraded_p99_us:?},{steady_p99_us:?},{read_p99_us:?},\
         {degraded_read_p99_us:?},{steady_read_p99_us:?}) \
         open=({offered_ops},{offered_ops_per_s:?},{goodput_ops_per_s:?},{queue_delay_mean_us:?},\
         {queue_delay_p99_us:?},{peak_queue_depth},{saturated}) \
         scale=({active_clients_peak},{client_state_bytes},{workload_state_bytes}) \
         fleet=({disk_fill_max:?},{disk_fill_min:?},{wear_max_bytes},{wear_spread:?},{copysets_used}) \
         maint=({scrub_gib:?},{lse_injected},{lse_found},{lse_repaired},{maint_migrated_gib:?},\
         {defrag_gib:?},{wear_spread_before:?},{maint_busy_p99_us:?},{maint_idle_p99_us:?}) \
         trace=({stage_breakdown:?},{trace_dropped_spans}) \
         events={sim_events}"
    );
    s
}

fn assert_sharded_matches_serial(mut rcfg: ReplayConfig, shards: usize) {
    rcfg.shards = 1;
    rcfg.validate().expect("serial config validates");
    let serial = run_trace(&rcfg);
    rcfg.shards = shards;
    rcfg.validate().expect("sharded config validates");
    let sharded = run_trace(&rcfg);
    assert_eq!(
        canon(&serial),
        canon(&sharded),
        "{}: sharded({shards}) diverged from serial",
        serial.method
    );
    assert!(
        sharded.events_per_sec > 0.0,
        "engine-speed instrumentation missing"
    );
}

/// The headline: all seven methods, faults + maintenance armed, 2 shards.
#[test]
fn sharded_equals_serial_all_methods_with_plans_armed() {
    for method in MethodKind::ALL {
        let mut rcfg = replay(method, 3, 100);
        armed_plans(&mut rcfg);
        assert_sharded_matches_serial(rcfg, 2);
    }
}

/// Wider fan-out: 4 shards partitions the oracle across two sinks.
#[test]
fn sharded_equals_serial_at_four_shards() {
    for method in [MethodKind::Fo, MethodKind::Tsue] {
        let mut rcfg = replay(method, 3, 100);
        armed_plans(&mut rcfg);
        assert_sharded_matches_serial(rcfg, 4);
    }
}

/// Defrag reads the oracle mid-run, which forces the oracle to stay on
/// the core shard (`oracle_local`): the colocated path must be just as
/// byte-exact.
#[test]
fn sharded_equals_serial_with_defrag_colocation() {
    let mut rcfg = replay(MethodKind::Tsue, 3, 100);
    armed_plans(&mut rcfg);
    rcfg.maintenance = rcfg
        .maintenance
        .clone()
        .with_defrag(DefragConfig::default());
    assert_sharded_matches_serial(rcfg, 4);
}

/// The open-loop path (the load_sweep cell shape): arrival events, the
/// admission window, and saturation accounting all survive sharding.
#[test]
fn sharded_equals_serial_open_loop() {
    let mut rcfg = replay(MethodKind::Tsue, 6, 100);
    rcfg.workload = Workload::Open(OpenLoopSpec::poisson(64_000.0).with_window(4));
    rcfg.faults = FaultPlan::new().fail_node(5 * simdes::units::MILLIS, 2);
    assert_sharded_matches_serial(rcfg, 4);
}

/// A cache + staging decorator over TSUE: the new node-local layers
/// (BTreeMap staging buffers, deterministic page caches, age-timer
/// flushes) must survive sharding byte for byte like everything else.
#[test]
fn sharded_equals_serial_with_cache_and_staging() {
    let code = CodeParams::new(6, 3).unwrap();
    let cluster = ClusterConfig::builder()
        .code(code)
        .method_name("stage(64KiB,2ms)+lru(1MiB)+TSUE")
        .clients(3)
        .build()
        .unwrap();
    let mut rcfg = ReplayConfig::new(cluster, TraceFamily::AliCloud);
    rcfg.ops_per_client = 100;
    rcfg.volume_bytes = 32 << 20;
    assert_sharded_matches_serial(rcfg, 2);
}

/// `shards = 1` is the serial loop itself — the degenerate case is free.
#[test]
fn one_shard_is_serial() {
    let mut rcfg = replay(MethodKind::Pl, 3, 80);
    rcfg.shards = 1;
    let a = run_trace(&rcfg);
    let b = run_trace(&rcfg);
    assert_eq!(canon(&a), canon(&b));
}
