//! Failure-injection tests: erasures at every pipeline stage, replica-log
//! loss, double faults, and quota starvation.

use ecfs::prelude::*;
use rscode::{ReedSolomon, RsError};
use tsue::engine::{EngineConfig, TsueEngine};

#[test]
fn codec_survives_exactly_m_faults_and_rejects_more() {
    for (k, m) in [(6usize, 2usize), (6, 3), (6, 4), (12, 4)] {
        let rs = ReedSolomon::new(CodeParams::new(k, m).unwrap());
        let mut shards: Vec<Vec<u8>> = (0..k + m).map(|i| vec![i as u8; 128]).collect();
        rs.encode_shards(&mut shards).unwrap();

        // Exactly m faults, clustered at the front (data-heavy pattern).
        let mut holes: Vec<Option<Vec<u8>>> = shards.iter().cloned().map(Some).collect();
        for h in holes.iter_mut().take(m) {
            *h = None;
        }
        rs.reconstruct(&mut holes).unwrap();
        for (i, h) in holes.iter().enumerate() {
            assert_eq!(h.as_deref(), Some(&shards[i][..]), "RS({k},{m}) shard {i}");
        }

        // m + 1 faults must fail loudly, not corrupt.
        let mut over: Vec<Option<Vec<u8>>> = shards.iter().cloned().map(Some).collect();
        for o in over.iter_mut().take(m + 1) {
            *o = None;
        }
        assert!(matches!(
            rs.reconstruct(&mut over),
            Err(RsError::TooManyErasures { .. })
        ));
    }
}

#[test]
fn engine_flush_midstream_then_more_updates() {
    // Flush between bursts (simulating a crash-consistent checkpoint), then
    // keep updating: parity must hold at every quiescent point.
    let engine = TsueEngine::new(EngineConfig::small(CodeParams::new(4, 2).unwrap()));
    for round in 0..5 {
        for i in 0..200u32 {
            let stripe = (i % 4) as u64;
            let block = (i % 4) as u16;
            let off = (i * 97) % ((64 << 10) - 64);
            engine.update(stripe, block, off, &[round as u8; 64]);
        }
        engine.flush();
        assert!(engine.verify_parity(), "round {round}");
    }
}

#[test]
fn recovery_of_every_node_succeeds() {
    // Whichever node dies, the cluster recovers and the oracle holds.
    let code = CodeParams::new(4, 2).unwrap();
    for victim in [0usize, 3, 7] {
        let mut cluster = ClusterConfig::ssd_testbed(code, MethodKind::Tsue);
        cluster.clients = 4;
        let mut rcfg = ReplayConfig::new(cluster, TraceFamily::AliCloud);
        rcfg.ops_per_client = 200;
        rcfg.volume_bytes = 32 << 20;
        let (mut sim, mut cl) = run_update_phase(&rcfg);
        let res = recover_node(&mut sim, &mut cl, victim);
        assert!(res.blocks > 0, "victim {victim} hosted no blocks");
        let violations = cl.oracle.violations(&cl.layout);
        assert!(violations.is_empty(), "victim {victim}: {violations:?}");
    }
}

#[test]
fn tiny_log_quota_still_completes_via_backpressure() {
    // Quota 2 (the paper's Fig. 6a "depressed" case): throughput drops but
    // nothing is lost. The effect only binds at saturation — a high
    // client-to-node ratio, like the paper's 64-client peak configuration.
    let code = CodeParams::new(4, 2).unwrap();
    let mut cluster = ClusterConfig::ssd_testbed(code, MethodKind::Tsue);
    cluster.nodes = 8;
    cluster.clients = 64;
    cluster.tsue_max_units = 2;
    cluster.tsue_unit_bytes = 1 << 20;
    let mut rcfg = ReplayConfig::new(cluster, TraceFamily::AliCloud);
    rcfg.ops_per_client = 250;
    rcfg.volume_bytes = 32 << 20;
    let constrained = run_trace(&rcfg);
    assert_eq!(constrained.oracle_violations, 0);
    assert!(constrained.stalls > 0, "quota 2 must hit back-pressure");

    let mut roomy = rcfg.clone();
    roomy.cluster.tsue_max_units = 8;
    let free = run_trace(&roomy);
    assert_eq!(free.oracle_violations, 0);
    assert_eq!(free.stalls, 0, "quota 8 must absorb the same load");
    // Back-pressure throttles but never loses work; with this run length
    // the throughput difference is modest, so assert no material loss.
    assert!(
        free.update_iops > constrained.update_iops * 0.9,
        "quota 8 ({:.0}) must not trail quota 2 ({:.0}) materially",
        free.update_iops,
        constrained.update_iops
    );
}

#[test]
fn oracle_catches_injected_loss() {
    // Sanity-check the oracle itself: forge an ack that was never applied
    // and confirm the verifier reports it.
    let code = CodeParams::new(4, 2).unwrap();
    let cluster = ClusterConfig::ssd_testbed(code, MethodKind::Fo);
    let mut cl = ecfs::Cluster::new(cluster);
    let addr = ecfs::layout::BlockAddr {
        volume: 0,
        stripe: 0,
        index: 1,
    };
    cl.oracle_ack(addr, 0, 4096); // acked...
                                  // ...but never applied anywhere.
    let violations = cl.oracle.violations(&cl.layout);
    assert!(
        violations.len() >= 2,
        "expected data + parity violations, got {violations:?}"
    );
}
