//! Open-loop workload-engine integration tests: determinism under the
//! parallel grid, the offered-vs-acked sanity contract against the closed
//! loop, a pinned golden, and real-arrival replay of an imported trace.

use ecfs::prelude::*;

fn closed_replay(method: MethodKind, clients: u64, ops: usize) -> ReplayConfig {
    let code = CodeParams::new(6, 3).unwrap();
    let mut cluster = ClusterConfig::ssd_testbed(code, method);
    cluster.clients = clients;
    let mut r = ReplayConfig::new(cluster, TraceFamily::AliCloud);
    r.ops_per_client = ops;
    r.volume_bytes = 32 << 20;
    r
}

fn open_replay(method: MethodKind, clients: u64, ops: usize, rate: f64) -> ReplayConfig {
    let mut r = closed_replay(method, clients, ops);
    r.workload = Workload::Open(OpenLoopSpec::poisson(rate).with_window(4));
    r
}

#[test]
fn open_loop_validates() {
    let mut r = open_replay(MethodKind::Tsue, 4, 100, 10_000.0);
    r.validate().unwrap();
    r.workload = Workload::Open(OpenLoopSpec::poisson(0.0));
    assert!(r.validate().is_err(), "zero rate must be rejected");
    r.workload = Workload::Open(OpenLoopSpec::poisson(1_000.0).with_window(0));
    assert!(r.validate().is_err(), "zero window must be rejected");
    r.workload = Workload::Timed {
        stream: TimedStream::default(),
        window: 4,
    };
    assert!(r.validate().is_err(), "empty stream must be rejected");
}

#[test]
fn open_loop_parallel_grid_matches_serial() {
    // The open-loop engine must stay a pure function of its config: the
    // parallel grid fan-out returns field-for-field the serial results.
    let mut configs = Vec::new();
    for method in [MethodKind::Fo, MethodKind::Pl, MethodKind::Tsue] {
        configs.push(open_replay(method, 3, 120, 24_000.0));
    }
    let parallel = tsue_bench::run_grid(&configs);
    for (rcfg, p) in configs.iter().zip(&parallel) {
        let s = run_trace(rcfg);
        assert_eq!(p.method, s.method);
        assert_eq!(p.completed_updates, s.completed_updates);
        assert_eq!(p.completed_reads, s.completed_reads);
        assert_eq!(p.offered_ops, s.offered_ops);
        assert_eq!(p.net_msgs, s.net_msgs);
        assert_eq!(p.disk.rw_ops(), s.disk.rw_ops());
        assert_eq!(p.peak_queue_depth, s.peak_queue_depth);
        assert_eq!(p.saturated, s.saturated);
        assert!((p.goodput_ops_per_s - s.goodput_ops_per_s).abs() < 1e-9);
        assert!((p.queue_delay_p99_us - s.queue_delay_p99_us).abs() < 1e-9);
    }
}

#[test]
fn unsaturated_open_loop_tracks_offered_rate() {
    // Closed loop measures the self-throttled capacity; an open loop
    // offered well below it must ride the schedule: goodput ≈ offered,
    // no saturation, near-empty admission queues.
    let closed = run_trace(&closed_replay(MethodKind::Tsue, 4, 250));
    let capacity = closed.goodput_ops_per_s;
    assert!(capacity > 0.0);
    assert_eq!(closed.offered_ops, 0, "closed loop offers no schedule");
    assert!(!closed.saturated);

    let low = run_trace(&open_replay(MethodKind::Tsue, 4, 250, capacity * 0.4));
    assert_eq!(low.oracle_violations, 0);
    assert!(!low.saturated, "40% of capacity must not saturate");
    assert!(
        (low.goodput_ops_per_s - low.offered_ops_per_s).abs() / low.offered_ops_per_s < 0.10,
        "goodput {:.0}/s must track offered {:.0}/s",
        low.goodput_ops_per_s,
        low.offered_ops_per_s
    );
    // Every offered op was acked.
    assert_eq!(
        low.offered_ops,
        low.completed_updates + low.completed_reads + low.completed_writes
    );
}

#[test]
fn overdriven_open_loop_saturates_and_caps_at_capacity() {
    // Offered far above capacity: the saturation flag trips, goodput
    // decouples from the schedule, and the queue-delay signature appears.
    let closed = run_trace(&closed_replay(MethodKind::Fo, 4, 250));
    let capacity = closed.goodput_ops_per_s;

    let hot = run_trace(&open_replay(MethodKind::Fo, 4, 250, capacity * 8.0));
    assert_eq!(hot.oracle_violations, 0);
    assert!(hot.saturated, "8x capacity must saturate");
    assert!(
        hot.goodput_ops_per_s < hot.offered_ops_per_s * 0.9,
        "goodput {:.0}/s suspiciously close to offered {:.0}/s",
        hot.goodput_ops_per_s,
        hot.offered_ops_per_s
    );
    assert!(hot.peak_queue_depth > 10, "collapse must back up admission");
    assert!(hot.queue_delay_p99_us > hot.queue_delay_mean_us);
    // Saturated goodput stays in the ballpark of sustainable capacity
    // (open-loop window 4 > closed-loop window 1, so it may exceed it,
    // but not by an order of magnitude).
    assert!(
        hot.goodput_ops_per_s < capacity * 10.0 && hot.goodput_ops_per_s > capacity * 0.5,
        "saturated goodput {:.0}/s vs closed-loop capacity {capacity:.0}/s",
        hot.goodput_ops_per_s
    );
    // Every op still completes eventually — open loop loses nothing.
    assert_eq!(
        hot.offered_ops,
        hot.completed_updates + hot.completed_reads + hot.completed_writes
    );
}

/// Pinned golden for the open-loop engine, captured when the engine
/// landed. Any drift means the arrival schedule, the admission queue, or
/// the dispatch order changed — all of which are meant to be deterministic
/// functions of the config.
#[test]
fn open_loop_golden() {
    let r = run_trace(&open_replay(MethodKind::Tsue, 4, 250, 30_000.0));
    assert_eq!(r.offered_ops, 1000);
    // The op mix differs slightly from the closed-loop golden (768/157/75):
    // arrivals are drawn per client, so clients consume different depths of
    // their content streams — by design, not drift.
    assert_eq!(r.completed_updates, 763);
    assert_eq!(r.completed_reads, 160);
    assert_eq!(r.completed_writes, 77);
    assert_eq!(r.net_msgs, 3_469);
    assert_eq!(r.disk.rw_ops(), 3_703);
    assert_eq!(r.oracle_violations, 0);
    let duration_ns = (r.duration_s * 1e9).round() as u64;
    assert_eq!(duration_ns, 35_068_172, "open-loop timing drifted");
}

/// The sparse O(active) runtime must be byte-for-byte the dense runtime it
/// replaced at the old population sizes — pinned via an exhaustive
/// `RunResult` destructure (mirroring `tests/engine_shard.rs::canon`): a
/// new field breaks this compile until it is classified, and any drift in
/// the scale fields means the sparse bookkeeping changed.
#[test]
fn sparse_runtime_matches_dense_golden_exhaustively() {
    let RunResult {
        method,
        completed_updates,
        completed_reads,
        completed_writes,
        duration_s,
        update_iops,
        latency_mean_us,
        latency_p99_us,
        disk,
        net_gib,
        net_cross_rack_gib,
        net_msgs,
        erases,
        series,
        log_memory_bytes,
        data_residency: _,
        delta_residency: _,
        parity_residency: _,
        stalls,
        cache_read_hits: _,
        drain_s,
        oracle_violations,
        degraded_reads,
        degraded_bytes_decoded,
        failed_ops,
        inline_rebuilds,
        repaired_blocks,
        repaired_bytes,
        data_loss_blocks,
        net_repair_gib,
        mttr_s,
        degraded_p99_us,
        steady_p99_us,
        read_p99_us,
        degraded_read_p99_us: _,
        steady_read_p99_us: _,
        offered_ops,
        offered_ops_per_s,
        goodput_ops_per_s,
        queue_delay_mean_us,
        queue_delay_p99_us,
        peak_queue_depth,
        saturated,
        active_clients_peak,
        client_state_bytes,
        workload_state_bytes,
        disk_fill_max,
        disk_fill_min,
        wear_max_bytes,
        wear_spread,
        copysets_used,
        scrub_gib,
        lse_injected,
        lse_found,
        lse_repaired,
        maint_migrated_gib,
        defrag_gib,
        wear_spread_before,
        maint_busy_p99_us,
        maint_idle_p99_us,
        stage_breakdown,
        trace_dropped_spans,
        cache_lookups,
        cache_hits,
        cache_hit_ratio,
        staged_bytes,
        coalesced_bytes,
        stage_flushes,
        sim_events,
        wall_ms: _,
        events_per_sec: _,
        setup_ms: _,
    } = run_trace(&open_replay(MethodKind::Tsue, 4, 250, 30_000.0));

    // The open_loop_golden pins (same run, re-asserted here so this test
    // stands alone).
    assert_eq!(method, "TSUE");
    assert_eq!(offered_ops, 1000);
    assert_eq!(completed_updates, 763);
    assert_eq!(completed_reads, 160);
    assert_eq!(completed_writes, 77);
    assert_eq!(net_msgs, 3_469);
    assert_eq!(disk.rw_ops(), 3_703);
    assert_eq!(oracle_violations, 0);
    assert_eq!((duration_s * 1e9).round() as u64, 35_068_172);

    // The sparse-runtime scale fields, pinned when the O(active) engine
    // landed: all four clients go active at this rate, the runtime state
    // is a few hundred bytes, and the lazy source holds four generators.
    assert_eq!(active_clients_peak, 4);
    assert_eq!(client_state_bytes, 592);
    assert_eq!(workload_state_bytes, 2_276);
    assert_eq!(peak_queue_depth, 10);
    assert!(!saturated);

    // Everything else: sane, deterministic, fault/maintenance-free values.
    assert!(update_iops > 0.0 && goodput_ops_per_s > 0.0);
    assert!(latency_mean_us > 0.0 && latency_p99_us >= latency_mean_us);
    assert!(offered_ops_per_s > 0.0);
    assert!(queue_delay_mean_us >= 0.0 && queue_delay_p99_us >= 0.0);
    assert!(net_gib > 0.0 && net_cross_rack_gib >= 0.0);
    assert!(erases > 0 || log_memory_bytes > 0 || stalls == 0);
    assert!(!series.is_empty());
    assert!(drain_s >= 0.0);
    assert_eq!(
        (
            degraded_reads,
            degraded_bytes_decoded,
            failed_ops,
            inline_rebuilds,
            repaired_blocks,
            repaired_bytes,
            data_loss_blocks,
        ),
        (0, 0, 0, 0, 0, 0, 0)
    );
    assert_eq!(net_repair_gib, 0.0);
    assert_eq!(mttr_s, 0.0);
    assert_eq!(degraded_p99_us, 0.0);
    assert!(steady_p99_us > 0.0 && read_p99_us > 0.0);
    assert!(disk_fill_max >= disk_fill_min && disk_fill_min >= 0.0);
    assert!(wear_max_bytes > 0 && wear_spread >= 1.0);
    assert!(copysets_used > 0);
    assert_eq!((scrub_gib, maint_migrated_gib, defrag_gib), (0.0, 0.0, 0.0));
    assert_eq!((lse_injected, lse_found, lse_repaired), (0, 0, 0));
    assert_eq!(wear_spread_before, 0.0);
    assert_eq!((maint_busy_p99_us, maint_idle_p99_us), (0.0, 0.0));
    // Tracing is off by default: no rollup rows, no drops.
    assert!(stage_breakdown.is_empty());
    assert_eq!(trace_dropped_spans, 0);
    // No cache/staging decorator armed: the ledger stays zero.
    assert_eq!((cache_lookups, cache_hits), (0, 0));
    assert_eq!(cache_hit_ratio, 0.0);
    assert_eq!((staged_bytes, coalesced_bytes, stage_flushes), (0, 0, 0));
    assert!(sim_events > 0);
}

/// A million-client population at a fixed offered-op budget must cost
/// O(active), not O(population): same active peak, same runtime bytes,
/// and a consistent replay — the tentpole contract, asserted at test
/// scale (the scale_sweep bench carries the full 1k → 1M trajectory).
#[test]
fn million_client_population_stays_o_active() {
    let build = |pop: u64| {
        let mut r = closed_replay(MethodKind::Tsue, pop, 250);
        r.total_ops = Some(1_000);
        r.workload = Workload::Open(
            OpenLoopSpec::poisson(30_000.0)
                .with_window(4)
                .with_client_skew(ClientSkew::Zipf { theta: 0.9 }),
        );
        r.validate().unwrap();
        r
    };
    let small = run_trace(&build(1_000));
    let huge = run_trace(&build(1_000_000));

    for r in [&small, &huge] {
        assert_eq!(r.oracle_violations, 0);
        assert_eq!(r.offered_ops, 1_000, "total_ops decouples from clients");
        assert_eq!(
            r.offered_ops,
            r.completed_updates + r.completed_reads + r.completed_writes
        );
    }
    // Active set tracks the window math (rate × service time), not the id
    // space: a thousand times more clients, the same handful active.
    assert!(
        huge.active_clients_peak < 64,
        "active peak {} at 1M clients should be tens, not thousands",
        huge.active_clients_peak
    );
    assert!(
        huge.client_state_bytes <= small.client_state_bytes * 2,
        "client state {}B at 1M vs {}B at 1k — sparse runtime leaked",
        huge.client_state_bytes,
        small.client_state_bytes
    );
    // The lazy source only materialises touched generators: far below the
    // ~200 B/op an eagerly materialised million-client schedule would pin.
    assert!(
        huge.workload_state_bytes < 16 << 20,
        "workload source holds {}B — lazy arrivals are not lazy",
        huge.workload_state_bytes
    );
}

#[test]
fn timed_stream_replays_imported_arrivals() {
    // An imported Alibaba excerpt replays through the open-loop engine on
    // its real (scaled) arrival schedule: every op is acked, and the
    // cluster observes exactly the stream's op mix.
    let csv = "\
64,W,0,16384,1000\n\
64,W,16384,16384,1400\n\
64,R,0,4096,1650\n\
64,W,0,8192,2100\n\
64,R,16384,8192,2600\n\
64,W,32768,4096,3000\n";
    let records = traces::io::read_ali_csv(csv.as_bytes()).unwrap();
    let ops = traces::io::ali_to_ops(&records);
    let updates = ops
        .iter()
        .filter(|o| o.kind == traces::OpKind::Update)
        .count();
    assert_eq!(updates, 1, "fixture has one overwrite");

    let mut rcfg = closed_replay(MethodKind::Tsue, 2, 1);
    // Stretch the 2 ms excerpt to 40 ms — the knob that replays a
    // recorded trace slower or faster than real time.
    let stream = TimedStream::round_robin(2, ops)
        .fit_to_volume(rcfg.volume_bytes)
        .scale_rate(0.05);
    rcfg.workload = Workload::Timed { stream, window: 2 };
    rcfg.validate().unwrap();
    let r = run_trace(&rcfg);
    assert_eq!(r.offered_ops, 6);
    assert_eq!(r.completed_reads, 2);
    assert_eq!(r.completed_updates + r.completed_writes, 4);
    assert_eq!(r.oracle_violations, 0);
    assert!(!r.saturated, "six paced ops cannot saturate a testbed");
}

#[test]
fn bursty_and_skewed_specs_replay_consistently() {
    // The composable corners: on/off bursts, diurnal curves, Zipf-hot
    // clients, hot-range offsets — each must produce a consistent replay.
    let specs = [
        OpenLoopSpec::poisson(20_000.0).with_rate(RateCurve::OnOff {
            on_ops_per_s: 60_000.0,
            off_ops_per_s: 2_000.0,
            period_ns: 20 * simdes::units::MILLIS,
            duty: 0.3,
        }),
        OpenLoopSpec::periodic(20_000.0).with_rate(RateCurve::Diurnal {
            peak_ops_per_s: 40_000.0,
            trough_ops_per_s: 4_000.0,
            period_ns: 50 * simdes::units::MILLIS,
        }),
        OpenLoopSpec::poisson(20_000.0)
            .with_client_skew(ClientSkew::Zipf { theta: 0.9 })
            .with_offset_skew(OffsetSkew::HotRange {
                hot_fraction: 0.05,
                access_fraction: 0.95,
            }),
        OpenLoopSpec::poisson(20_000.0)
            .with_client_skew(ClientSkew::HotSpot {
                hot_fraction: 0.25,
                hot_share: 0.9,
            })
            .with_offset_skew(OffsetSkew::Uniform),
    ];
    for spec in specs {
        let mut r = closed_replay(MethodKind::Tsue, 4, 150);
        r.workload = Workload::Open(spec);
        r.validate().unwrap();
        let res = run_trace(&r);
        assert_eq!(res.oracle_violations, 0);
        assert_eq!(res.offered_ops, 600);
        assert_eq!(
            res.offered_ops,
            res.completed_updates + res.completed_reads + res.completed_writes
        );
    }
}
