//! The node-local cache & write-staging layer ([`ecfs::cache`]) end to
//! end: cache-off replays are byte-identical to the pre-decorator engine,
//! armed layers keep the consistency oracle clean, coalescing actually
//! absorbs overlapping updates, and the decorator composes over all seven
//! built-in methods through the method-spec grammar.

use std::fmt::Write as _;

use ecfs::prelude::*;

fn replay_cfg(cluster: ClusterConfig, ops: usize) -> ReplayConfig {
    let mut r = ReplayConfig::new(cluster, TraceFamily::AliCloud);
    r.ops_per_client = ops;
    r.volume_bytes = 32 << 20;
    r
}

fn builder(code: CodeParams) -> ClusterConfigBuilder {
    ClusterConfig::builder().code(code).clients(4)
}

/// Canonical rendering of the fields a cache layer could plausibly
/// disturb: op counts, timing, device and network totals, and the new
/// cache/staging counters. Byte-compared across configurations.
fn canon(r: &RunResult) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "u={} r={} w={} dur={:?} iops={:?} lat=({:?},{:?}) disk={:?} \
         net=({:?},{}) logmem={} stalls={} legacycache={} \
         cache=({},{},{:?}) staged=({},{},{}) drain={:?} viol={} events={}",
        r.completed_updates,
        r.completed_reads,
        r.completed_writes,
        r.duration_s,
        r.update_iops,
        r.latency_mean_us,
        r.latency_p99_us,
        r.disk,
        r.net_gib,
        r.net_msgs,
        r.log_memory_bytes,
        r.stalls,
        r.cache_read_hits,
        r.cache_lookups,
        r.cache_hits,
        r.cache_hit_ratio,
        r.staged_bytes,
        r.coalesced_bytes,
        r.stage_flushes,
        r.drain_s,
        r.oracle_violations,
        r.sim_events,
    );
    s
}

/// Cache-off golden: a spec-built bare method replays byte-identically to
/// the `MethodKind`-built driver, and every new counter stays zero — the
/// decorator API redesign cannot perturb undecorated runs.
#[test]
fn cache_off_is_byte_identical_to_plain_replay() {
    let code = CodeParams::new(6, 3).unwrap();
    for kind in MethodKind::ALL {
        let plain = builder(code).method(kind).build().unwrap();
        let spec = builder(code).method_name(kind.name()).build().unwrap();
        let a = run_trace(&replay_cfg(plain, 150));
        let b = run_trace(&replay_cfg(spec, 150));
        assert_eq!(canon(&a), canon(&b), "{}: spec-built diverged", kind.name());
        assert_eq!(a.cache_lookups, 0, "{}", kind.name());
        assert_eq!(a.cache_hits, 0, "{}", kind.name());
        assert_eq!(a.cache_hit_ratio, 0.0, "{}", kind.name());
        assert_eq!(a.staged_bytes, 0, "{}", kind.name());
        assert_eq!(a.coalesced_bytes, 0, "{}", kind.name());
        assert_eq!(a.stage_flushes, 0, "{}", kind.name());
    }
}

/// Armed layers replay deterministically: two runs of the same decorated
/// config are byte-identical (BTreeMap staging order, deterministic
/// replacement policies, no clocks anywhere).
#[test]
fn decorated_replay_is_deterministic() {
    let code = CodeParams::new(6, 3).unwrap();
    for spec in ["lru(1MiB)+FO", "stage(64KiB,2ms)+plru(1MiB)+TSUE"] {
        let mk = || builder(code).method_name(spec).build().unwrap();
        let a = run_trace(&replay_cfg(mk(), 150));
        let b = run_trace(&replay_cfg(mk(), 150));
        assert_eq!(canon(&a), canon(&b), "{spec}: nondeterministic replay");
    }
}

/// The read cache serves hits: under a skewed update/read mix the armed
/// cache sees lookups and hits, the hit ratio is consistent with the
/// counters, and the oracle stays clean.
#[test]
fn read_cache_serves_hits() {
    let code = CodeParams::new(6, 3).unwrap();
    for policy in CachePolicy::ALL {
        let cluster = builder(code)
            .method(MethodKind::Fo)
            .cache(CacheConfig::new(policy, 64 << 20))
            .build()
            .unwrap();
        let res = run_trace(&replay_cfg(cluster, 300));
        assert_eq!(res.oracle_violations, 0, "{policy}");
        assert!(res.cache_lookups > 0, "{policy}: no lookups recorded");
        assert!(res.cache_hits > 0, "{policy}: cache never hit");
        assert!(
            (res.cache_hit_ratio - res.cache_hits as f64 / res.cache_lookups as f64).abs() < 1e-12,
            "{policy}: hit ratio inconsistent with counters"
        );
        assert!(res.cache_hit_ratio <= 1.0, "{policy}");
    }
}

/// Write staging absorbs overlapping updates: staged and coalesced bytes
/// accumulate, flushes happen on the sim timeline, and — the §2.3.2-style
/// consistency requirement — every acked-but-staged range still reaches
/// data and all m parity blocks by end of run.
#[test]
fn staging_coalesces_and_stays_consistent() {
    let code = CodeParams::new(6, 3).unwrap();
    let cluster = builder(code)
        .method(MethodKind::Pl)
        .staging(StagingConfig::new(256 << 10, 2_000_000))
        .build()
        .unwrap();
    // A small volume concentrates updates, forcing range overlap.
    let mut rcfg = replay_cfg(cluster, 400);
    rcfg.volume_bytes = 8 << 20;
    let res = run_trace(&rcfg);
    assert_eq!(res.oracle_violations, 0);
    assert!(res.completed_updates > 0);
    assert!(res.staged_bytes > 0, "nothing was staged");
    assert!(res.stage_flushes > 0, "staging never flushed");
    assert!(
        res.coalesced_bytes > 0,
        "overlapping updates were not coalesced"
    );
    assert!(res.coalesced_bytes < res.staged_bytes);
}

/// The decorator composes over every built-in driver via the spec
/// grammar, unchanged: consistent oracle, live counters, and a method
/// name that round-trips through `MethodSpec::parse`.
#[test]
fn composes_over_all_seven_builtins() {
    let code = CodeParams::new(6, 3).unwrap();
    for kind in MethodKind::ALL {
        let spec = format!("stage(64KiB,1ms)+lru(1MiB)+{}", kind.name());
        let cluster = builder(code).method_name(&spec).build().unwrap();
        assert_eq!(cluster.method.name(), spec);
        let parsed = MethodSpec::parse(cluster.method.name()).unwrap();
        assert_eq!(parsed.to_string(), spec, "{spec}: name must round-trip");
        let mut rcfg = replay_cfg(cluster, 120);
        rcfg.volume_bytes = 8 << 20;
        let res = run_trace(&rcfg);
        assert_eq!(res.oracle_violations, 0, "{spec}");
        assert!(res.completed_updates > 0, "{spec}");
        assert!(res.staged_bytes > 0, "{spec}: staging bypassed");
        assert_eq!(res.method, spec);
    }
}

/// The unified `Replay::run` entry point: same result as the legacy free
/// functions, plus the trace when tracing is armed.
#[test]
fn replay_run_unifies_trace_and_result() {
    let code = CodeParams::new(6, 3).unwrap();
    let mk = || {
        let cluster = builder(code).method_name("lru(1MiB)+TSUE").build().unwrap();
        replay_cfg(cluster, 120)
    };
    let out = Replay::run(&mk());
    let legacy = run_trace(&mk());
    assert_eq!(canon(&out.result), canon(&legacy));
    assert!(out.trace.is_none());

    let mut traced_cfg = mk();
    traced_cfg.trace = TraceConfig::on();
    let traced = Replay::run(&traced_cfg);
    assert!(traced.trace.is_some(), "armed tracing must retain a trace");
    assert_eq!(
        canon(&traced.result),
        canon(&legacy),
        "tracing changed what was simulated"
    );
}

/// Reads covered by a staged-but-unflushed range are served from the
/// staging buffer — acked data is never invisible to readers.
#[test]
fn staged_ranges_serve_reads() {
    let code = CodeParams::new(6, 3).unwrap();
    // Huge size threshold + long age: most staged data is still buffered
    // when reads arrive.
    let cluster = builder(code)
        .method(MethodKind::Fo)
        .staging(StagingConfig::new(1 << 30, 1_000_000_000))
        .build()
        .unwrap();
    let mut rcfg = replay_cfg(cluster, 300);
    rcfg.volume_bytes = 8 << 20;
    let res = run_trace(&rcfg);
    assert_eq!(res.oracle_violations, 0);
    assert!(res.cache_lookups > 0);
    assert!(res.cache_hits > 0, "staged ranges did not serve reads");
    // Everything flushes at drain regardless of thresholds.
    assert!(res.stage_flushes > 0);
}
