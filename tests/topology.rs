//! Topology-layer integration tests: flat-fabric determinism goldens,
//! per-tier traffic accounting, and rack-failure recovery drills.

use ecfs::prelude::*;

fn replay(method: MethodKind, clients: u64, ops: usize) -> ReplayConfig {
    let code = CodeParams::new(6, 3).unwrap();
    let mut cluster = ClusterConfig::ssd_testbed(code, method);
    cluster.clients = clients;
    let mut r = ReplayConfig::new(cluster, TraceFamily::AliCloud);
    r.ops_per_client = ops;
    r.volume_bytes = 32 << 20;
    r
}

fn racked_replay(
    method: MethodKind,
    placement: PlacementKind,
    racks: usize,
    oversub: f64,
) -> ReplayConfig {
    let mut r = replay(method, 8, 200);
    r.cluster.racks = racks;
    r.cluster.oversubscription = oversub;
    r.cluster.placement = placement.policy();
    r
}

/// Pre-refactor golden numbers for the default (one-rack, flat-rotate)
/// configuration, captured on the seed tree before the topology refactor.
/// The flat fabric and the `FlatRotate` policy must reproduce them
/// byte-for-byte: any drift here means the refactor changed the default
/// model, not just extended it.
#[test]
fn flat_topology_reproduces_pre_refactor_goldens() {
    struct Golden {
        method: MethodKind,
        net_bytes: u64,
        net_msgs: u64,
        rw_ops: u64,
        overwrites: u64,
        duration_ns: u64,
    }
    let goldens = [
        Golden {
            method: MethodKind::Fo,
            net_bytes: 146_201_664,
            net_msgs: 4_414,
            rw_ops: 6_497,
            overwrites: 2_328,
            duration_ns: 160_883_082,
        },
        Golden {
            method: MethodKind::Pl,
            net_bytes: 146_201_664,
            net_msgs: 4_414,
            rw_ops: 11_135,
            overwrites: 2_304,
            duration_ns: 137_889_961,
        },
        Golden {
            method: MethodKind::Tsue,
            net_bytes: 132_512_832,
            net_msgs: 3_466,
            rw_ops: 3_688,
            overwrites: 136,
            duration_ns: 93_118_876,
        },
    ];
    for g in goldens {
        let r = run_trace(&replay(g.method, 4, 250));
        let name = g.method.name();
        assert_eq!(r.completed_updates, 768, "{name}");
        assert_eq!(r.completed_reads, 157, "{name}");
        assert_eq!(r.completed_writes, 75, "{name}");
        let net_bytes = (r.net_gib * (1u64 << 30) as f64).round() as u64;
        assert_eq!(net_bytes, g.net_bytes, "{name}: net bytes drifted");
        assert_eq!(r.net_msgs, g.net_msgs, "{name}: message count drifted");
        assert_eq!(r.disk.rw_ops(), g.rw_ops, "{name}: disk ops drifted");
        assert_eq!(
            r.disk.overwrites.ops, g.overwrites,
            "{name}: overwrite accounting drifted"
        );
        let duration_ns = (r.duration_s * 1e9).round() as u64;
        assert_eq!(duration_ns, g.duration_ns, "{name}: timing drifted");
        assert_eq!(r.net_cross_rack_gib, 0.0, "{name}: flat crossed the spine");
        assert_eq!(r.oracle_violations, 0, "{name}");
    }
}

#[test]
fn per_tier_traffic_partitions_the_total() {
    // On a racked fabric the two tiers must partition the totals exactly,
    // and both tiers must actually carry traffic.
    let rcfg = racked_replay(MethodKind::Tsue, PlacementKind::RackAware, 4, 4.0);
    let (_, cl) = run_update_phase(&rcfg);
    let t = cl.net.traffic();
    assert_eq!(t.intra_rack_bytes() + t.cross_rack_bytes(), t.total_bytes());
    assert_eq!(
        t.intra_rack_messages() + t.cross_rack_messages(),
        t.total_messages()
    );
    assert!(t.cross_rack_bytes() > 0, "4 racks must cross the spine");
    assert!(t.intra_rack_bytes() > 0, "some traffic must stay in-rack");

    // One rack: everything is intra-rack by definition.
    let flat = run_trace(&replay(MethodKind::Pl, 4, 150));
    assert_eq!(flat.net_cross_rack_gib, 0.0);
    assert!(flat.net_gib > 0.0);
}

#[test]
fn oversubscription_slows_cross_rack_replay() {
    // The same racked workload under a starved spine must take longer in
    // simulated time (identical op mix, shared uplinks serialise).
    let fat = run_trace(&racked_replay(
        MethodKind::Fo,
        PlacementKind::RackAware,
        4,
        1.0,
    ));
    let thin = run_trace(&racked_replay(
        MethodKind::Fo,
        PlacementKind::RackAware,
        4,
        16.0,
    ));
    assert_eq!(fat.completed_updates, thin.completed_updates);
    assert!(
        thin.duration_s > fat.duration_s,
        "16:1 spine ({:.4}s) must be slower than full bisection ({:.4}s)",
        thin.duration_s,
        fat.duration_s
    );
    assert_eq!(thin.oracle_violations, 0);
}

#[test]
fn rack_failure_recovers_under_rack_aware_placement() {
    // RS(6,3) over 16 nodes in 4 racks: rack-aware placement leaves at
    // most 3 = m blocks of any stripe per rack, so a whole-rack failure is
    // reconstructible from the surviving racks.
    for method in [MethodKind::Tsue, MethodKind::Fo] {
        let rcfg = racked_replay(method, PlacementKind::RackAware, 4, 2.0);
        let (mut sim, mut cl) = run_update_phase(&rcfg);
        let res = recover_rack(&mut sim, &mut cl, 1).expect("rack failure must be recoverable");
        assert!(res.blocks > 0, "{method:?}: rack 1 hosted no blocks");
        assert!(res.bandwidth_mib_s > 0.0, "{method:?}");
        assert!(
            res.cross_rack_gib > 0.0,
            "{method:?}: a rack rebuild must stream across the spine"
        );
        let violations = cl.oracle.violations(&cl.layout);
        assert!(violations.is_empty(), "{method:?}: {violations:?}");
        // The whole rack failed, not just one node's worth of blocks: the
        // drill must have rebuilt blocks from every node of rack 1.
        for &n in cl.layout.racks().members(1) {
            assert!(cl.nodes[n].failed, "{method:?}: node {n} not failed");
        }
        assert_eq!(
            res.rebuilt_bytes,
            res.blocks as u64 * rcfg.cluster.block_bytes
        );
    }
}

#[test]
fn rack_failure_under_flat_rotate_loses_data() {
    // The topology-blind default packs consecutive ring nodes into the
    // same contiguous rack, so some stripe loses more than m blocks when a
    // whole rack dies — recover_rack must refuse with the offending block
    // rather than fabricate data.
    let mut any_loss = false;
    for rack in 0..4 {
        // A fresh cluster per drill: recovery state accumulates, and a
        // second drill on a half-dead cluster would fail under any policy.
        let rcfg = racked_replay(MethodKind::Fo, PlacementKind::FlatRotate, 4, 2.0);
        let (mut sim, mut cl) = run_update_phase(&rcfg);
        if let Err(e) = recover_rack(&mut sim, &mut cl, rack) {
            assert!(e.survivors < e.needed);
            assert!(e.to_string().contains("data loss"));
            any_loss = true;
            break;
        }
    }
    assert!(
        any_loss,
        "flat-rotate placement must lose data on some rack failure"
    );
}

#[test]
fn single_node_recovery_still_works_on_racked_clusters() {
    let rcfg = racked_replay(MethodKind::Pl, PlacementKind::RackLocal, 4, 4.0);
    let (mut sim, mut cl) = run_update_phase(&rcfg);
    let res = recover_node(&mut sim, &mut cl, 5);
    assert!(res.blocks > 0);
    let violations = cl.oracle.violations(&cl.layout);
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn sequential_drills_compose() {
    // Drills must compose: blocks rebuilt by drill 1 are re-homed in the
    // layout, so drill 2 counts them as survivors at their new location
    // and never books reads against the dead node.
    let rcfg = racked_replay(MethodKind::Fo, PlacementKind::RackAware, 4, 2.0);
    let (mut sim, mut cl) = run_update_phase(&rcfg);
    let first = recover_node(&mut sim, &mut cl, 4);
    assert!(first.blocks > 0);
    // RS(6,3) tolerates 3 erasures; node 4's blocks now live elsewhere, so
    // failing two more nodes of the same rack stays reconstructible.
    let second =
        recover_scope(&mut sim, &mut cl, &[5, 6]).expect("relocated blocks count as survivors");
    assert!(second.blocks > 0);
    // Every block drill 2 rebuilt was re-homed onto a live node.
    for victim in [5usize, 6] {
        for (addr, _) in cl.layout.blocks_on(victim) {
            // Only first-touch allocations from survivor probing may remain
            // homed here; anything with written data was relocated, which
            // the oracle check below would otherwise catch as a loss.
            assert!(
                !cl.oracle.acked.contains_key(&addr),
                "written block {addr:?} still homed on dead node {victim}"
            );
        }
    }
    let violations = cl.oracle.violations(&cl.layout);
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn rack_local_cuts_tsue_spine_traffic_vs_rack_aware() {
    // The acceptance shape of the topology refactor, at test scale: TSUE's
    // parity→parity pipeline stays in-rack under rack-local placement.
    let aware = run_trace(&racked_replay(
        MethodKind::Tsue,
        PlacementKind::RackAware,
        4,
        4.0,
    ));
    let local = run_trace(&racked_replay(
        MethodKind::Tsue,
        PlacementKind::RackLocal,
        4,
        4.0,
    ));
    assert_eq!(aware.oracle_violations, 0);
    assert_eq!(local.oracle_violations, 0);
    assert!(
        local.net_cross_rack_gib < aware.net_cross_rack_gib,
        "rack-local ({:.4} GiB) must cross the spine less than rack-aware ({:.4} GiB)",
        local.net_cross_rack_gib,
        aware.net_cross_rack_gib
    );
}
