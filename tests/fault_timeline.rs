//! Fault-timeline integration tests: mid-replay failure injection,
//! degraded reads, the repair scheduler competing with foreground
//! traffic, and the determinism and composition guarantees around them.

use ecfs::prelude::*;

fn replay(method: MethodKind, clients: u64, ops: usize) -> ReplayConfig {
    let code = CodeParams::new(6, 3).unwrap();
    let mut cluster = ClusterConfig::ssd_testbed(code, method);
    cluster.clients = clients;
    let mut r = ReplayConfig::new(cluster, TraceFamily::AliCloud);
    r.ops_per_client = ops;
    r.volume_bytes = 32 << 20;
    r
}

fn racked_replay(method: MethodKind, clients: u64, ops: usize) -> ReplayConfig {
    let mut r = replay(method, clients, ops);
    r.cluster.racks = 4;
    r.cluster.oversubscription = 2.0;
    r.cluster.placement = PlacementKind::RackAware.policy();
    r
}

/// A fault ~40 ms into the run: well inside the replay window at this
/// scale (the baseline runs take >90 ms of simulated time), and late
/// enough that the victim hosts placed blocks.
const FAULT_AT: u64 = 40 * simdes::units::MILLIS;

#[test]
fn node_failure_mid_replay_repairs_and_stays_consistent() {
    for method in [MethodKind::Tsue, MethodKind::Fo, MethodKind::Pl] {
        let baseline = run_trace(&replay(method, 4, 250));

        let mut rcfg = replay(method, 4, 250);
        rcfg.faults = FaultPlan::new().fail_node(FAULT_AT, 3);
        rcfg.validate().expect("faulted config validates");
        let r = run_trace(&rcfg);
        let name = method.name();

        assert_eq!(r.oracle_violations, 0, "{name}");
        // RS(6,3) tolerates a single node failure: no op may fail, and
        // every op completes exactly as in the fault-free run.
        assert_eq!(r.failed_ops, 0, "{name}");
        assert_eq!(r.data_loss_blocks, 0, "{name}");
        assert_eq!(r.completed_updates, baseline.completed_updates, "{name}");
        assert_eq!(r.completed_reads, baseline.completed_reads, "{name}");
        assert_eq!(r.completed_writes, baseline.completed_writes, "{name}");
        // The node hosted blocks, so repair did real work on the shared
        // fabric, and the degraded window is measurable.
        assert!(
            r.repaired_blocks + r.inline_rebuilds > 0,
            "{name}: nothing rebuilt"
        );
        assert!(r.net_repair_gib > 0.0, "{name}: repair traffic missing");
        assert!(r.mttr_s > 0.0, "{name}: MTTR not measured");
        assert_eq!(
            r.repaired_bytes,
            r.repaired_blocks * rcfg.cluster.block_bytes,
            "{name}"
        );
        // The rebuild interference must show up: the faulted run cannot be
        // faster than the baseline.
        assert!(
            r.duration_s >= baseline.duration_s,
            "{name}: faulted run ({:.4}s) faster than baseline ({:.4}s)",
            r.duration_s,
            baseline.duration_s
        );
    }
}

#[test]
fn rack_failure_mid_replay_serves_degraded_reads() {
    // A whole rack (4 of 16 nodes) dies mid-replay under rack-aware
    // placement: reads reaching lost blocks before their rebuild must be
    // served by survivor decode, charged as k transfers on the fabric.
    let mut rcfg = racked_replay(MethodKind::Tsue, 8, 250);
    rcfg.faults = FaultPlan::new()
        .fail_rack(FAULT_AT, 1)
        .with_recovery_delay(20 * simdes::units::MILLIS);
    let r = run_trace(&rcfg);
    assert_eq!(r.oracle_violations, 0);
    assert_eq!(r.failed_ops, 0, "rack-aware keeps every stripe readable");
    assert_eq!(r.data_loss_blocks, 0);
    assert!(
        r.degraded_reads > 0,
        "a rack failure with delayed repair must hit the degraded read path"
    );
    assert!(r.degraded_bytes_decoded > 0);
    assert!(r.repaired_blocks > 0);
    assert!(r.net_repair_gib > 0.0);
    assert!(r.mttr_s > 0.02, "MTTR includes the detection delay");
    assert!(
        r.degraded_p99_us > 0.0,
        "updates completed inside the degraded window"
    );
    assert!(r.steady_p99_us > 0.0);
}

#[test]
fn parallel_faulted_grid_matches_serial() {
    // Fault injection must preserve the parallel-replay guarantee: a grid
    // with non-empty fault plans fans out across threads and produces
    // results identical to serial runs, field for field.
    let mut configs = Vec::new();
    for method in [MethodKind::Fo, MethodKind::Pl, MethodKind::Tsue] {
        let mut r = replay(method, 3, 120);
        r.faults = FaultPlan::new()
            .fail_node(5 * simdes::units::MILLIS, 2)
            .with_repair_bandwidth(200 << 20);
        configs.push(r);
    }
    let mut rack = racked_replay(MethodKind::Tsue, 4, 120);
    rack.faults = FaultPlan::new().fail_rack(5 * simdes::units::MILLIS, 2);
    configs.push(rack);

    let parallel = tsue_bench::run_grid(&configs);
    assert_eq!(parallel.len(), configs.len());
    for (rcfg, p) in configs.iter().zip(&parallel) {
        let s = run_trace(rcfg);
        assert_eq!(p.method, s.method);
        assert_eq!(p.completed_updates, s.completed_updates);
        assert_eq!(p.completed_reads, s.completed_reads);
        assert_eq!(p.net_msgs, s.net_msgs);
        assert_eq!(p.disk.rw_ops(), s.disk.rw_ops());
        assert_eq!(p.degraded_reads, s.degraded_reads);
        assert_eq!(p.degraded_bytes_decoded, s.degraded_bytes_decoded);
        assert_eq!(p.repaired_blocks, s.repaired_blocks);
        assert_eq!(p.inline_rebuilds, s.inline_rebuilds);
        assert_eq!(p.failed_ops, s.failed_ops);
        assert!((p.mttr_s - s.mttr_s).abs() < 1e-12, "{}", p.method);
        assert!((p.net_repair_gib - s.net_repair_gib).abs() < 1e-12);
        assert!((p.degraded_p99_us - s.degraded_p99_us).abs() < 1e-9);
        assert!((p.update_iops - s.update_iops).abs() < 1e-9);
    }
}

/// Golden for one small faulted scenario, pinned so fault-path drift is
/// caught the same way the flat-topology goldens catch baseline drift.
#[test]
fn faulted_scenario_golden() {
    let mut rcfg = replay(MethodKind::Tsue, 4, 250);
    rcfg.faults = FaultPlan::new().fail_node(FAULT_AT, 3);
    let r = run_trace(&rcfg);
    assert_eq!(r.completed_updates, 768);
    assert_eq!(r.completed_reads, 157);
    assert_eq!(r.completed_writes, 75);
    assert_eq!(r.failed_ops, 0);
    assert_eq!(r.oracle_violations, 0);
    // Pinned on first implementation: the acceptance values for this
    // exact scenario (TSUE, 4 clients x 250 ops, node 3 fails at 40 ms).
    // Any drift means the fault timeline's model changed, not just grew.
    assert_eq!(r.repaired_blocks, 1, "pump rebuilds drifted");
    assert_eq!(r.inline_rebuilds, 1, "inline rebuilds drifted");
    assert_eq!(r.degraded_reads, 0, "degraded-read count drifted");
    let repair_bytes = (r.net_repair_gib * (1u64 << 30) as f64).round() as u64;
    assert_eq!(repair_bytes, 41_943_040, "repair traffic drifted");
    let mttr_ns = (r.mttr_s * 1e9).round() as u64;
    assert_eq!(mttr_ns, 21_775_598, "MTTR drifted");
    // Re-pinned when TSUE's §2.3.2 replay scan moved onto the replica
    // holders' disks: the booked scan shifts recycle completions, which
    // regroups a handful of delta forwards.
    assert_eq!(r.net_msgs, 4_751, "message count drifted");
}

#[test]
fn rebuild_target_death_retargets_onto_live_node() {
    // Overlapping faults: a second node dies while the first fault's
    // rebuilds are still in flight, so some rebuild's *destination* can
    // itself be a corpse by the time the rebuild completes. The pump
    // must re-queue such blocks for a fresh target instead of declaring
    // a dead-node write a repair. RS(6,3) tolerates both failures, so
    // nothing may be lost and nothing acked may remain on a dead node.
    let mut hit_race = false;
    for gap_us in [200u64, 500, 1_000, 2_000, 4_000] {
        for second in [4usize, 5, 9] {
            let mut rcfg = replay(MethodKind::Fo, 4, 250);
            rcfg.faults = FaultPlan::new()
                .fail_node(FAULT_AT, 3)
                .fail_node(FAULT_AT + gap_us * simdes::units::MICROS, second);
            let (_, cl) = run_update_phase(&rcfg);
            hit_race |= cl.faults.retargeted_rebuilds > 0;
            for f in &cl.faults.injected {
                assert!(
                    f.repair_done.is_some(),
                    "repair of {:?} never completed",
                    f.victims
                );
            }
            for victim in [3, second] {
                for (addr, _) in cl.layout.blocks_on(victim) {
                    assert!(
                        !cl.oracle.acked.contains_key(&addr),
                        "acked block {addr:?} left homed on dead node {victim}"
                    );
                }
            }
            assert_eq!(cl.faults.data_loss_blocks, 0);
            let violations = cl.oracle.violations(&cl.layout);
            assert!(violations.is_empty(), "{violations:?}");
        }
    }
    assert!(
        hit_race,
        "no overlap in the sweep ever killed an in-flight rebuild's target — \
         the regression is not being exercised"
    );
}

#[test]
fn mid_replay_failure_composes_with_post_replay_drills() {
    // Regression: a node failed mid-replay and rebuilt must compose with
    // Layout::relocate re-homing — post-replay recover_scope drills on
    // *other* nodes still succeed, and nothing written remains homed on
    // the dead node.
    let mut rcfg = racked_replay(MethodKind::Fo, 8, 200);
    rcfg.faults = FaultPlan::new().fail_node(FAULT_AT, 4);
    let (mut sim, mut cl) = run_update_phase(&rcfg);
    assert!(cl.nodes[4].failed, "injection must have fired");
    assert!(
        cl.faults.injected[0].repair_done.is_some(),
        "repair must have completed by end of replay"
    );
    // Everything the clients acked is readable from live homes.
    for (addr, _) in cl.layout.blocks_on(4) {
        assert!(
            !cl.oracle.acked.contains_key(&addr),
            "written block {addr:?} still homed on the dead node"
        );
    }
    // A subsequent scope drill on two different nodes composes: relocated
    // blocks count as survivors at their new homes.
    let res = recover_scope(&mut sim, &mut cl, &[5, 6]).expect("drill after mid-replay failure");
    assert!(res.blocks > 0);
    let violations = cl.oracle.violations(&cl.layout);
    assert!(violations.is_empty(), "{violations:?}");
    // The rebuilt blocks from the mid-replay failure are placeable and
    // readable: locate returns live homes for every block of node 4's
    // former population.
    for f in &cl.faults.injected {
        assert_eq!(f.victims, vec![4]);
    }
}

#[test]
fn repair_throttle_stretches_mttr() {
    let base = {
        let mut r = replay(MethodKind::Fo, 4, 200);
        r.faults = FaultPlan::new().fail_node(FAULT_AT, 2);
        run_trace(&r)
    };
    let throttled = {
        let mut r = replay(MethodKind::Fo, 4, 200);
        r.faults = FaultPlan::new()
            .fail_node(FAULT_AT, 2)
            .with_repair_bandwidth(20 << 20); // 20 MiB/s
        run_trace(&r)
    };
    // Every lost block is rebuilt exactly once (by the pump or inline);
    // the throttle only shifts the pump/inline split and the timing.
    assert_eq!(
        base.repaired_blocks + base.inline_rebuilds,
        throttled.repaired_blocks + throttled.inline_rebuilds
    );
    assert!(base.repaired_blocks + base.inline_rebuilds > 0);
    assert!(
        throttled.mttr_s > base.mttr_s * 1.5,
        "a 20 MiB/s throttle must stretch MTTR: {:.4}s vs {:.4}s",
        throttled.mttr_s,
        base.mttr_s
    );
}

#[test]
fn deferred_logs_slow_mid_replay_repair() {
    // The §2.3.2 argument on the live timeline: PL's deferred parity logs
    // must be replayed before reconstruction can start, so its MTTR under
    // an identical fault exceeds TSUE's real-time-recycled MTTR.
    // Fault late in the run (~80 ms), when PL's deferred parity logs have
    // grown while TSUE's real-time recycling kept its backlog bounded.
    let mttr_of = |method: MethodKind| {
        let mut r = replay(method, 4, 250);
        r.faults = FaultPlan::new().fail_node(80 * simdes::units::MILLIS, 3);
        run_trace(&r).mttr_s
    };
    let tsue = mttr_of(MethodKind::Tsue);
    let pl = mttr_of(MethodKind::Pl);
    assert!(
        pl > tsue,
        "PL's log replay must delay repair: PL {pl:.4}s vs TSUE {tsue:.4}s"
    );
}

#[test]
fn flat_rotate_rack_failure_reports_data_loss() {
    // Topology-blind placement can lose more than m blocks of a stripe to
    // one rack: mid-replay the timeline must report data loss and failed
    // ops rather than fabricate data — and the replay still terminates.
    let mut any_loss = false;
    for rack in 0..4 {
        let mut rcfg = racked_replay(MethodKind::Fo, 4, 150);
        rcfg.cluster.placement = PlacementKind::FlatRotate.policy();
        rcfg.faults = FaultPlan::new().fail_rack(FAULT_AT, rack);
        let r = run_trace(&rcfg);
        if r.data_loss_blocks > 0 || r.failed_ops > 0 {
            any_loss = true;
            break;
        }
    }
    assert!(
        any_loss,
        "flat-rotate placement must lose data on some rack failure"
    );
}
