//! Maintenance-subsystem integration tests: the empty-plan byte-for-byte
//! guarantee, scrub/LSE detection and repair, wear-leveling rebalance,
//! tier demotion, idle-valley defrag, and parallel-grid determinism with
//! non-empty plans — mirroring the fault-plan precedent in
//! `tests/fault_timeline.rs`.

use ecfs::prelude::*;

fn replay(method: MethodKind, clients: u64, ops: usize) -> ReplayConfig {
    let code = CodeParams::new(6, 3).unwrap();
    let mut cluster = ClusterConfig::ssd_testbed(code, method);
    cluster.clients = clients;
    let mut r = ReplayConfig::new(cluster, TraceFamily::AliCloud);
    r.ops_per_client = ops;
    r.volume_bytes = 32 << 20;
    r
}

fn tiered_replay(method: MethodKind, clients: u64, ops: usize) -> ReplayConfig {
    let mut r = replay(method, clients, ops);
    r.cluster.fleet = DiskFleet::tiered(8, 8);
    r
}

/// A scrub fast enough to sweep every placed block several times within
/// the default 80 ms maintenance horizon at this scale.
fn fast_scrub() -> ScrubConfig {
    ScrubConfig {
        bytes_per_sec: 8 << 30,
    }
}

/// LSE sites concentrated in the first 8 MiB of each device — under the
/// blocks the layout places first, so a scrub sweep must reach them.
fn dense_lse() -> LseConfig {
    LseConfig {
        per_device: 4,
        span_bytes: 8 << 20,
        ..LseConfig::default()
    }
}

/// The empty plan must be byte-for-byte the maintenance-free replay: the
/// exact pre-maintenance goldens from `tests/topology.rs` must reproduce
/// with `MaintenancePlan::default()` explicitly attached, and every
/// maintenance counter must stay zero. Any drift here means an "empty"
/// plan armed something.
#[test]
fn empty_plan_reproduces_maintenance_free_golden() {
    let mut rcfg = replay(MethodKind::Tsue, 4, 250);
    rcfg.maintenance = MaintenancePlan::default();
    assert!(rcfg.maintenance.is_empty());
    rcfg.validate().expect("empty plan validates");

    let r = run_trace(&rcfg);
    assert_eq!(r.completed_updates, 768);
    assert_eq!(r.completed_reads, 157);
    assert_eq!(r.completed_writes, 75);
    let net_bytes = (r.net_gib * (1u64 << 30) as f64).round() as u64;
    assert_eq!(net_bytes, 132_512_832, "net bytes drifted");
    assert_eq!(r.net_msgs, 3_466, "message count drifted");
    assert_eq!(r.disk.rw_ops(), 3_688, "disk ops drifted");
    let duration_ns = (r.duration_s * 1e9).round() as u64;
    assert_eq!(duration_ns, 93_118_876, "timing drifted");
    assert_eq!(r.oracle_violations, 0);

    // No policy armed: every maintenance counter is exactly zero.
    assert_eq!(r.scrub_gib, 0.0);
    assert_eq!(r.lse_injected, 0);
    assert_eq!(r.lse_found, 0);
    assert_eq!(r.lse_repaired, 0);
    assert_eq!(r.maint_migrated_gib, 0.0);
    assert_eq!(r.defrag_gib, 0.0);
    assert_eq!(r.wear_spread_before, 0.0);
    assert_eq!(r.maint_busy_p99_us, 0.0);
    assert_eq!(r.maint_idle_p99_us, 0.0);
}

/// Scrubbing must find latent sector errors before anything else does and
/// repair them through the stripe: injected sites under placed blocks are
/// detected by the sweep and rebuilt from the surviving chunks.
#[test]
fn scrub_finds_and_repairs_injected_lses() {
    for method in [MethodKind::Tsue, MethodKind::Fo] {
        let mut rcfg = replay(method, 4, 250);
        rcfg.maintenance = MaintenancePlan::new()
            .with_scrub(fast_scrub())
            .with_lse(dense_lse());
        rcfg.validate().expect("scrub plan validates");
        let r = run_trace(&rcfg);
        let name = method.name();

        assert_eq!(r.oracle_violations, 0, "{name}");
        assert_eq!(r.failed_ops, 0, "{name}");
        // 16 devices x 4 sites each.
        assert_eq!(r.lse_injected, 64, "{name}");
        assert!(r.scrub_gib > 0.0, "{name}: scrub did no reading");
        assert!(r.lse_found >= 1, "{name}: scrub found no injected LSE");
        assert!(r.lse_repaired >= 1, "{name}: no found LSE was repaired");
        assert!(
            r.lse_repaired <= r.lse_found,
            "{name}: repaired more than found"
        );
        // Maintenance windows were recorded and the foreground split has
        // a finite busy-side p99.
        assert!(r.maint_busy_p99_us >= 0.0, "{name}");
    }
}

/// The wear-leveling rebalancer must narrow the fleet's wear spread
/// relative to the same run without maintenance, and its migrations must
/// be real (counted) work.
#[test]
fn rebalancer_narrows_wear_spread() {
    let baseline = run_trace(&replay(MethodKind::Tsue, 4, 250));
    assert!(baseline.wear_spread > 1.0, "workload wear is already even");

    let mut rcfg = replay(MethodKind::Tsue, 4, 250);
    // Horizon past the post-run drain: the final log drain adds skewed
    // wear after the clients stop, and the leveler must outlive it to be
    // judged on the final wear census.
    rcfg.maintenance = MaintenancePlan::new()
        .with_rebalance(RebalanceConfig::default())
        .with_horizon(200 * simdes::units::MILLIS);
    rcfg.validate().expect("rebalance plan validates");
    let r = run_trace(&rcfg);

    assert_eq!(r.oracle_violations, 0);
    assert!(r.maint_migrated_gib > 0.0, "rebalancer moved nothing");
    assert!(
        r.wear_spread_before > 1.0,
        "before-sample missing: {}",
        r.wear_spread_before
    );
    assert!(
        r.wear_spread < baseline.wear_spread,
        "rebalance did not narrow wear spread: {} vs baseline {}",
        r.wear_spread,
        baseline.wear_spread
    );
}

/// On a mixed flash/HDD fleet the demotion policy moves parity blocks off
/// the flash tier; appends stay pinned to flash replicas.
#[test]
fn demotion_moves_parity_off_flash_on_tiered_fleet() {
    let mut rcfg = tiered_replay(MethodKind::Tsue, 4, 250);
    rcfg.maintenance = MaintenancePlan::new().with_demote(DemoteConfig::default());
    rcfg.validate().expect("demote plan validates");
    let r = run_trace(&rcfg);

    assert_eq!(r.oracle_violations, 0);
    assert_eq!(r.failed_ops, 0);
    assert!(
        r.maint_migrated_gib > 0.0,
        "demotion moved no parity off flash"
    );

    // Demotion on a flash-only fleet is a configuration error, caught at
    // validation time rather than silently doing nothing.
    let mut flat = replay(MethodKind::Tsue, 4, 250);
    flat.maintenance = MaintenancePlan::new().with_demote(DemoteConfig::default());
    assert!(flat.validate().is_err(), "demote on flash-only fleet");
}

/// Defrag only runs in idle valleys: a short run with a maintenance
/// horizon past the last completion gives it an idle tail to work in,
/// and it rewrites fragmented stripes there.
#[test]
fn defrag_works_the_idle_tail() {
    let mut rcfg = replay(MethodKind::Tsue, 4, 100);
    rcfg.maintenance = MaintenancePlan::new()
        .with_defrag(DefragConfig::default())
        .with_horizon(100 * simdes::units::MILLIS);
    rcfg.validate().expect("defrag plan validates");
    let r = run_trace(&rcfg);

    assert_eq!(r.oracle_violations, 0);
    assert!(
        r.defrag_gib > 0.0,
        "defrag never fired in the idle tail (defrag_gib = {})",
        r.defrag_gib
    );
}

/// Maintenance must preserve the parallel-replay guarantee: a grid with
/// non-empty maintenance plans fans out across threads and produces
/// results identical to serial runs, field for field — including every
/// maintenance counter.
#[test]
fn parallel_maintained_grid_matches_serial() {
    let mut configs = Vec::new();
    for method in [MethodKind::Fo, MethodKind::Pl, MethodKind::Tsue] {
        let mut r = replay(method, 3, 120);
        r.maintenance = MaintenancePlan::new()
            .with_scrub(fast_scrub())
            .with_lse(dense_lse())
            .with_rebalance(RebalanceConfig::default());
        configs.push(r);
    }
    let mut full = tiered_replay(MethodKind::Tsue, 4, 120);
    full.maintenance = MaintenancePlan::full().with_lse(dense_lse());
    configs.push(full);
    for rcfg in &configs {
        rcfg.validate().expect("grid config validates");
    }

    let parallel = tsue_bench::run_grid(&configs);
    assert_eq!(parallel.len(), configs.len());
    for (rcfg, p) in configs.iter().zip(&parallel) {
        let s = run_trace(rcfg);
        assert_eq!(p.method, s.method);
        assert_eq!(p.completed_updates, s.completed_updates);
        assert_eq!(p.completed_reads, s.completed_reads);
        assert_eq!(p.net_msgs, s.net_msgs);
        assert_eq!(p.disk.rw_ops(), s.disk.rw_ops());
        assert_eq!(p.lse_injected, s.lse_injected);
        assert_eq!(p.lse_found, s.lse_found);
        assert_eq!(p.lse_repaired, s.lse_repaired);
        assert_eq!(p.failed_ops, s.failed_ops);
        assert!((p.scrub_gib - s.scrub_gib).abs() < 1e-12, "{}", p.method);
        assert!((p.maint_migrated_gib - s.maint_migrated_gib).abs() < 1e-12);
        assert!((p.defrag_gib - s.defrag_gib).abs() < 1e-12);
        assert!((p.wear_spread - s.wear_spread).abs() < 1e-12);
        assert!((p.wear_spread_before - s.wear_spread_before).abs() < 1e-12);
        assert!((p.maint_busy_p99_us - s.maint_busy_p99_us).abs() < 1e-9);
        assert!((p.maint_idle_p99_us - s.maint_idle_p99_us).abs() < 1e-9);
        assert!((p.update_iops - s.update_iops).abs() < 1e-9);
    }
}

/// Maintenance composes with the fault timeline: scrub + LSEs + a
/// mid-replay node failure on the same timeline stays consistent and
/// still repairs both the lost blocks and the latent errors.
#[test]
fn maintenance_composes_with_fault_timeline() {
    let mut rcfg = replay(MethodKind::Tsue, 4, 250);
    rcfg.faults = FaultPlan::new().fail_node(40 * simdes::units::MILLIS, 3);
    rcfg.maintenance = MaintenancePlan::new()
        .with_scrub(fast_scrub())
        .with_lse(dense_lse());
    rcfg.validate().expect("composed config validates");
    let r = run_trace(&rcfg);

    assert_eq!(r.oracle_violations, 0);
    assert_eq!(r.failed_ops, 0);
    assert_eq!(r.data_loss_blocks, 0);
    assert!(r.repaired_blocks + r.inline_rebuilds > 0, "nothing rebuilt");
    assert!(r.scrub_gib > 0.0, "scrub starved by repair");
    assert!(r.lse_found >= 1, "scrub found nothing under faults");
}
