//! The tracing contract, pinned end to end:
//!
//! 1. **Off is free, on is invisible** — the default `TraceConfig` arms
//!    nothing and a traced run reproduces every deterministic legacy
//!    `RunResult` field of the untraced run byte for byte: tracing changes
//!    what is *recorded*, never what is *simulated*.
//! 2. **Sharded == serial** — with fault *and* maintenance plans armed,
//!    the 4-shard trace serialises to the identical binary log as the
//!    serial trace (extending `tests/engine_shard.rs` to the span stream).
//! 3. **Exact attribution** — for every method and every traced op, the
//!    sum of the op's stage spans equals the client-observed latency
//!    within 1 ns (the spans partition `[issued_at, ack]` by
//!    construction, and the latency is derived independently on the
//!    metrics path).

use ecfs::prelude::*;
use ecfs::telemetry::{binary, chrome};

fn replay(method: MethodKind, clients: u64, ops: usize) -> ReplayConfig {
    let code = CodeParams::new(6, 3).unwrap();
    let mut cluster = ClusterConfig::ssd_testbed(code, method);
    cluster.clients = clients;
    let mut r = ReplayConfig::new(cluster, TraceFamily::AliCloud);
    r.ops_per_client = ops;
    r.volume_bytes = 32 << 20;
    r
}

fn armed_plans(r: &mut ReplayConfig) {
    r.faults = FaultPlan::new()
        .fail_node(5 * simdes::units::MILLIS, 2)
        .with_repair_bandwidth(200 << 20);
    r.maintenance = MaintenancePlan::new()
        .with_scrub(ScrubConfig {
            bytes_per_sec: 8 << 30,
        })
        .with_lse(LseConfig {
            per_device: 4,
            span_bytes: 8 << 20,
            ..LseConfig::default()
        })
        .with_rebalance(RebalanceConfig::default());
}

/// Canonical rendering of every deterministic non-trace `RunResult` field:
/// the full Debug output with the trace harvest and the wall-clock
/// measurements forced to fixed values. Exhaustive by construction — a new
/// field shows up here automatically.
fn legacy_canon(r: &RunResult) -> String {
    let mut r = r.clone();
    r.stage_breakdown = Vec::new();
    r.trace_dropped_spans = 0;
    r.wall_ms = 0.0;
    r.events_per_sec = 0.0;
    r.setup_ms = 0.0;
    format!("{r:?}")
}

#[test]
fn tracing_changes_no_legacy_field() {
    let mut off = replay(MethodKind::Tsue, 3, 100);
    armed_plans(&mut off);
    let mut on = off.clone();
    on.trace = TraceConfig::on();
    on.validate().expect("traced config validates");

    let r_off = Replay::run(&off).result;
    let RunOutcome {
        result: r_on,
        trace,
    } = Replay::run(&on);

    assert_eq!(
        legacy_canon(&r_off),
        legacy_canon(&r_on),
        "tracing perturbed the simulation"
    );
    assert!(r_off.stage_breakdown.is_empty(), "off-run recorded rollup");
    assert!(!r_on.stage_breakdown.is_empty(), "on-run rollup missing");
    assert_eq!(r_on.trace_dropped_spans, 0);
    let trace = trace.expect("enabled run returns a trace");
    assert!(!trace.spans.is_empty());
    assert!(!trace.util.is_empty(), "utilization lanes missing");
}

#[test]
fn sharded_trace_is_bit_identical_to_serial() {
    let mut rcfg = replay(MethodKind::Tsue, 3, 100);
    armed_plans(&mut rcfg);
    rcfg.trace = TraceConfig::on();

    rcfg.shards = 1;
    rcfg.validate().expect("serial config validates");
    let serial = Replay::run(&rcfg);
    rcfg.shards = 4;
    rcfg.validate().expect("sharded config validates");
    let sharded = Replay::run(&rcfg);
    let (serial_result, serial_trace) = (serial.result, serial.trace);
    let (sharded_result, sharded_trace) = (sharded.result, sharded.trace);

    let serial_trace = serial_trace.expect("serial trace");
    let sharded_trace = sharded_trace.expect("sharded trace");
    assert_eq!(
        binary::to_bytes(&serial_trace),
        binary::to_bytes(&sharded_trace),
        "sharded(4) trace diverged from serial"
    );
    assert_eq!(
        serial_result.stage_breakdown,
        sharded_result.stage_breakdown
    );
    assert_eq!(
        serial_result.trace_dropped_spans,
        sharded_result.trace_dropped_spans
    );
}

#[test]
fn stage_spans_partition_client_latency_for_every_method() {
    for method in MethodKind::ALL {
        let mut rcfg = replay(method, 3, 100);
        rcfg.trace = TraceConfig::on();
        let RunOutcome { result, trace } = Replay::run(&rcfg);
        let trace = trace.expect("trace");
        assert_eq!(result.trace_dropped_spans, 0, "{method:?}: dropped spans");
        assert!(
            trace.ops.len() as u64 >= result.completed_updates,
            "{method:?}: ops missing from the trace"
        );
        for op in &trace.ops {
            let sum = trace
                .op_span_sum(op.op)
                .expect("every retained op has spans");
            let latency = op.latency;
            assert!(
                sum.abs_diff(latency) <= 1,
                "{method:?} op {}: span sum {sum} ns != latency {latency} ns",
                op.op
            );
        }
    }
}

#[test]
fn binary_log_round_trips_and_chrome_export_parses() {
    let mut rcfg = replay(MethodKind::Fo, 2, 60);
    rcfg.trace = TraceConfig::on();
    let trace = Replay::run(&rcfg).trace.expect("trace");

    let bytes = binary::to_bytes(&trace);
    let back = binary::from_bytes(&bytes).expect("binary trace parses");
    assert_eq!(back, trace);

    let json = chrome::to_json(&trace);
    let doc = tsue_bench::report::parse(&json).expect("chrome JSON parses");
    let events = doc
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .expect("traceEvents array");
    assert!(!events.is_empty());
    // Complete events carry non-negative ts/dur, monotone per lane in
    // file order (the exporter sorts by (pid, tid, ts)).
    let mut last: std::collections::HashMap<(u64, u64), f64> = std::collections::HashMap::new();
    for ev in events {
        if ev.get("ph").and_then(|p| p.as_str()) != Some("X") {
            continue;
        }
        let pid = ev.get("pid").and_then(|v| v.as_f64()).unwrap() as u64;
        let tid = ev.get("tid").and_then(|v| v.as_f64()).unwrap() as u64;
        let ts = ev.get("ts").and_then(|v| v.as_f64()).unwrap();
        let dur = ev.get("dur").and_then(|v| v.as_f64()).unwrap();
        assert!(ts >= 0.0 && dur >= 0.0);
        let prev = last.insert((pid, tid), ts);
        assert!(
            prev.is_none_or(|p| p <= ts),
            "lane ({pid},{tid}) not monotone"
        );
    }
}

#[test]
fn sampling_and_filters_are_validated_and_bound_retention() {
    // Invalid knobs are rejected at validate() time.
    for bad in [
        TraceConfig {
            sample_every: 0,
            ..TraceConfig::on()
        },
        TraceConfig {
            capacity: 0,
            ..TraceConfig::on()
        },
        TraceConfig {
            stage_mask: 0,
            ..TraceConfig::on()
        },
        TraceConfig {
            op_filter: Some((10, 10)),
            ..TraceConfig::on()
        },
        TraceConfig {
            util_bucket_ns: 0,
            ..TraceConfig::on()
        },
    ] {
        let mut rcfg = replay(MethodKind::Fo, 2, 60);
        rcfg.trace = bad;
        assert!(rcfg.validate().is_err(), "accepted invalid {bad:?}");
    }

    // Sampling bounds retention but never the rollup.
    let mut all = replay(MethodKind::Fo, 2, 60);
    all.trace = TraceConfig::on();
    let out_all = Replay::run(&all);
    let (r_all, t_all) = (out_all.result, out_all.trace);
    let mut sampled = replay(MethodKind::Fo, 2, 60);
    sampled.trace = TraceConfig::on().with_sampling(10);
    let out_sampled = Replay::run(&sampled);
    let (r_sampled, t_sampled) = (out_sampled.result, out_sampled.trace);
    assert_eq!(r_all.stage_breakdown, r_sampled.stage_breakdown);
    let (t_all, t_sampled) = (t_all.unwrap(), t_sampled.unwrap());
    assert!(t_sampled.ops.len() < t_all.ops.len());
    assert_eq!(r_sampled.trace_dropped_spans, 0, "sampling is not a drop");

    // A tiny capacity drops honestly instead of silently.
    let mut tiny = replay(MethodKind::Fo, 2, 60);
    tiny.trace = TraceConfig::on().with_capacity(8);
    let out_tiny = Replay::run(&tiny);
    let (r_tiny, t_tiny) = (out_tiny.result, out_tiny.trace);
    assert!(r_tiny.trace_dropped_spans > 0);
    assert_eq!(t_tiny.unwrap().spans.len(), 8);
    assert_eq!(r_tiny.stage_breakdown, r_all.stage_breakdown);
}
