//! Cross-crate integration tests: trace generation → cluster replay →
//! consistency oracle → recovery, plus engine/codec cross-checks.

use ecfs::prelude::*;
use rscode::{ReedSolomon, Stripe};
use traces::workload::MsrVolume;
use tsue::engine::{EngineConfig, TsueEngine};

fn replay(method: MethodKind, family: TraceFamily, clients: u64) -> ReplayConfig {
    let code = CodeParams::new(6, 3).unwrap();
    let mut cluster = ClusterConfig::ssd_testbed(code, method);
    cluster.clients = clients;
    let mut r = ReplayConfig::new(cluster, family);
    r.ops_per_client = 300;
    r.volume_bytes = 64 << 20;
    r
}

#[test]
fn trace_to_cluster_to_oracle_all_families() {
    for family in [
        TraceFamily::AliCloud,
        TraceFamily::TenCloud,
        TraceFamily::Msr(MsrVolume::Src10),
    ] {
        let res = run_trace(&replay(MethodKind::Tsue, family, 6));
        assert_eq!(res.oracle_violations, 0, "{family:?}");
        assert!(res.completed_updates > 0, "{family:?}");
    }
}

#[test]
fn recovery_after_live_updates_is_complete() {
    for method in [MethodKind::Tsue, MethodKind::Pl, MethodKind::Fo] {
        let rcfg = replay(method, TraceFamily::AliCloud, 6);
        let (mut sim, mut cl) = run_update_phase(&rcfg);
        let res = recover_node(&mut sim, &mut cl, 2);
        assert!(res.blocks > 0, "{method:?}: no blocks to recover");
        assert!(res.bandwidth_mib_s > 0.0, "{method:?}");
        // After the pre-recovery drain, nothing acked may be missing.
        let violations = cl.oracle.violations(&cl.layout);
        assert!(violations.is_empty(), "{method:?}: {violations:?}");
    }
}

#[test]
fn tsue_recovery_drains_less_than_pl() {
    let pl = {
        let (mut sim, mut cl) = run_update_phase(&replay(MethodKind::Pl, TraceFamily::AliCloud, 6));
        recover_node(&mut sim, &mut cl, 2)
    };
    let tsue = {
        let (mut sim, mut cl) =
            run_update_phase(&replay(MethodKind::Tsue, TraceFamily::AliCloud, 6));
        recover_node(&mut sim, &mut cl, 2)
    };
    assert!(
        tsue.drain_s < pl.drain_s,
        "TSUE drain {:.3}s must be below PL's {:.3}s (real-time recycling)",
        tsue.drain_s,
        pl.drain_s
    );
}

#[test]
fn engine_and_stripe_agree_on_update_semantics() {
    // The concurrent engine and the reference Stripe must produce identical
    // parity for identical update sequences.
    let code = CodeParams::new(3, 2).unwrap();
    let block_len = 8192u32;
    let engine = TsueEngine::new(EngineConfig {
        code,
        block_len,
        stripes: 1,
        unit_bytes: 8192,
        max_units: 4,
        pools_per_layer: 1,
        recycler_threads: 1,
    });
    let rs = ReedSolomon::new(code);
    let mut stripe = Stripe::zeroed(rs, block_len as usize);

    let updates: [(u16, u32, &[u8]); 4] = [
        (0, 0, b"abcdef"),
        (1, 4000, &[0xaa; 100]),
        (0, 3, b"XYZ"),
        (2, 8000, &[1, 2, 3]),
    ];
    for (block, off, data) in updates {
        engine.update(0, block, off, data);
        stripe.update(block as usize, off as usize, data);
    }
    engine.flush();
    assert!(engine.verify_parity());
    for i in 0..5 {
        assert_eq!(
            engine.raw_block(0, i),
            stripe.block(i),
            "block {i} diverged between engine and reference stripe"
        );
    }
}

#[test]
fn hdd_cluster_inverts_fo_ranking() {
    // On HDDs FO must be the worst method (paper Fig. 8a: TSUE up to 16x FO),
    // while on SSDs FO is mid-pack.
    let code = CodeParams::new(6, 3).unwrap();
    let run = |method| {
        let mut cluster = ClusterConfig::hdd_testbed(code, method);
        cluster.clients = 6;
        let mut rcfg = ReplayConfig::new(cluster, TraceFamily::Msr(MsrVolume::Src10));
        rcfg.ops_per_client = 120;
        rcfg.volume_bytes = 64 << 20;
        run_trace(&rcfg)
    };
    let fo = run(MethodKind::Fo);
    let pl = run(MethodKind::Pl);
    let tsue = run(MethodKind::Tsue);
    assert_eq!(fo.oracle_violations, 0);
    assert!(
        pl.update_iops > fo.update_iops,
        "PL ({:.0}) must beat FO ({:.0}) on HDDs",
        pl.update_iops,
        fo.update_iops
    );
    assert!(
        tsue.update_iops > 3.0 * fo.update_iops,
        "TSUE ({:.0}) must be >3x FO ({:.0}) on HDDs",
        tsue.update_iops,
        fo.update_iops
    );
}

#[test]
fn fig7_ladder_is_monotonic_enough() {
    // Each cumulative optimisation should help or be neutral; O3 (log pool)
    // must be a clear jump, O4 (multi-pool) may be small (the paper calls
    // it minimal).
    let mut last = 0.0f64;
    let mut o3_gain = 0.0f64;
    let mut prev = 0.0f64;
    for (label, feats) in ecfs::TsueFeatures::ladder() {
        // The ladder's effects bind at saturation (high client:node ratio).
        let mut rcfg = replay(MethodKind::Tsue, TraceFamily::AliCloud, 48);
        rcfg.cluster.tsue = feats;
        rcfg.cluster.tsue_unit_bytes = 2 << 20; // small units: recycling active
        rcfg.ops_per_client = 400;
        rcfg.volume_bytes = 96 << 20;
        let res = run_trace(&rcfg);
        assert_eq!(res.oracle_violations, 0, "{label}");
        if label == "O3" {
            o3_gain = res.update_iops / prev.max(1.0);
        }
        prev = res.update_iops;
        last = last.max(res.update_iops);
    }
    assert!(
        o3_gain > 1.2,
        "log pool (O3) must be a clear jump: {o3_gain:.2}x"
    );
    assert!(last > 0.0);
}

#[test]
fn trace_csv_roundtrips_through_replay_pipeline() {
    // Generated traces survive CSV export/import unchanged.
    let mut gen = traces::WorkloadGen::new(traces::WorkloadParams::ten_cloud(32 << 20), 7);
    let ops = gen.take_ops(500);
    let mut buf = Vec::new();
    traces::io::write_csv(&mut buf, &ops).unwrap();
    let back = traces::io::read_csv(&buf[..]).unwrap();
    assert_eq!(ops, back);
}
