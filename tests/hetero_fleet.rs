//! Heterogeneous-fleet integration tests: capacity-weighted placement
//! measurably shifts load off a small disk (pinned), tiered fleets build
//! mixed device populations whose recovery runs at the *target* disk's
//! rate, and the fleet-resource metrics surface through `RunResult`.

use ecfs::prelude::*;
use ecfs::recovery::recover_node;

/// A 16-node all-flash fleet whose node 0 carries a quarter-size drive.
fn skewed_fleet() -> DiskFleet {
    DiskFleet::explicit(
        (0..16)
            .map(|n| {
                if n == 0 {
                    DiskProfile::ssd().with_capacity_mult(0.25)
                } else {
                    DiskProfile::ssd()
                }
            })
            .collect(),
    )
}

fn skewed_replay(placement: PlacementKind) -> ReplayConfig {
    let code = CodeParams::new(6, 3).unwrap();
    let mut cluster = ClusterConfig::ssd_testbed(code, MethodKind::Tsue);
    cluster.clients = 6;
    cluster.fleet = skewed_fleet();
    cluster.placement = placement.policy();
    // 1 MiB blocks over a 48 MiB volume: enough stripes for stable
    // placement statistics in a short run.
    cluster.block_bytes = 1 << 20;
    let mut r = ReplayConfig::new(cluster, TraceFamily::AliCloud);
    r.ops_per_client = 200;
    r.volume_bytes = 48 << 20;
    r
}

/// The pinned placement-shift test: on a fleet whose node 0 has a quarter
/// of everyone's capacity, `FlatRotate` keeps filling node 0 like any
/// other node (it is capacity-blind), while `CapacityWeighted` shifts
/// stripes away from it.
#[test]
fn capacity_weighted_shifts_placement_off_the_small_disk() {
    let (_, flat) = run_update_phase(&skewed_replay(PlacementKind::FlatRotate));
    let (_, capw) = run_update_phase(&skewed_replay(PlacementKind::CapacityWeighted));

    let allocated = |cl: &Cluster| -> (u64, f64) {
        let on_small = cl.layout.allocated(0);
        let rest_mean = (1..16).map(|n| cl.layout.allocated(n)).sum::<u64>() as f64 / 15.0;
        (on_small, rest_mean)
    };
    let (flat_small, flat_rest) = allocated(&flat);
    let (capw_small, capw_rest) = allocated(&capw);

    // FlatRotate does not shift: the small disk carries its even share
    // (within 2x of the big-disk mean — hash-rotation noise only).
    assert!(
        (flat_small as f64) > flat_rest / 2.0 && (flat_small as f64) < flat_rest * 2.0,
        "flat-rotate should be capacity-blind: node 0 holds {flat_small} B vs mean {flat_rest:.0} B"
    );
    // CapacityWeighted shifts: the small disk holds less than half of what
    // flat rotation put there, and less than half the big-disk mean.
    assert!(
        capw_small * 2 < flat_small,
        "capacity weighting must shift bytes off the small disk: {capw_small} vs {flat_small}"
    );
    assert!(
        (capw_small as f64) < capw_rest / 2.0,
        "small disk must hold under half the big-disk mean: {capw_small} vs {capw_rest:.0}"
    );

    // Pinned golden: placement (and the workload feeding it) is fully
    // deterministic, so the flat allocation on the small disk is exact.
    assert_eq!(
        flat_small, PINNED_FLAT_SMALL_BYTES,
        "flat-rotate allocation on node 0 drifted"
    );
    // The *fill fraction* story the policy exists for: flat overfills the
    // quarter-size disk ~4x relative to the fleet, capacity weighting
    // brings the worst disk back near the mean.
    let cap0 = flat.nodes[0].disk.capacity() as f64;
    let cap_rest = flat.nodes[1].disk.capacity() as f64;
    let flat_fill_ratio = (flat_small as f64 / cap0) / (flat_rest / cap_rest);
    let capw_fill_ratio = (capw_small as f64 / cap0) / (capw_rest / cap_rest);
    assert!(
        flat_fill_ratio > 2.0,
        "flat must overfill the small disk: ratio {flat_fill_ratio:.2}"
    );
    assert!(
        capw_fill_ratio < CapacityWeighted::FILL_SPREAD_BOUND,
        "capacity weighting must keep the small disk near the fleet fill: \
         ratio {capw_fill_ratio:.2}"
    );
}

/// Golden: bytes `FlatRotate` allocates on the quarter-size node 0 in the
/// skewed-fleet replay above (10 one-MiB blocks) — placement and workload
/// are deterministic, so any drift means the default placement or the
/// workload generator changed.
const PINNED_FLAT_SMALL_BYTES: u64 = 10 << 20;

/// On a tiered fleet the cluster builds mixed devices, and recovery
/// bandwidth reflects the *target* disks: an all-flash rebuild beats one
/// whose survivors and targets include spindles.
#[test]
fn recovery_runs_at_target_disk_rates() {
    let drill = |fleet: DiskFleet| {
        let code = CodeParams::new(6, 3).unwrap();
        let mut cluster = ClusterConfig::ssd_testbed(code, MethodKind::Tsue);
        cluster.clients = 4;
        cluster.fleet = fleet;
        let mut r = ReplayConfig::new(cluster, TraceFamily::AliCloud);
        r.ops_per_client = 120;
        r.volume_bytes = 32 << 20;
        let (mut sim, mut cl) = run_update_phase(&r);
        recover_node(&mut sim, &mut cl, 3).bandwidth_mib_s
    };
    let ssd = drill(DiskFleet::uniform_ssd());
    let hdd = drill(DiskFleet::uniform_hdd());
    let tiered = drill(DiskFleet::tiered(8, 8));
    assert!(
        ssd > 2.0 * hdd,
        "all-flash recovery ({ssd:.0} MiB/s) must beat all-HDD ({hdd:.0} MiB/s)"
    );
    assert!(
        tiered < ssd,
        "mixed-fleet recovery ({tiered:.0} MiB/s) must trail all-flash ({ssd:.0} MiB/s): \
         some survivors/targets are spindles"
    );
}

/// The fleet-resource metrics surface through `RunResult` on every run.
#[test]
fn run_result_reports_fill_wear_and_copysets() {
    let r = run_trace(&skewed_replay(PlacementKind::FlatRotate));
    assert_eq!(r.oracle_violations, 0);
    assert!(r.disk_fill_max >= r.disk_fill_min && r.disk_fill_min > 0.0);
    assert!(r.disk_fill_max < 1.0, "nothing overflows in a short run");
    assert!(r.wear_max_bytes > 0, "updates must wear the devices");
    assert!(r.wear_spread >= 1.0, "max wear cannot undercut the mean");
    assert_eq!(
        r.disk.wear_bytes, r.wear_max_bytes,
        "merged stats carry the fleet wear high-water"
    );
    assert!(r.copysets_used > 0);

    // A copyset policy bounds the co-location sets end to end.
    let budget = 5;
    let copy = run_trace(&skewed_replay(PlacementKind::Copyset(budget)));
    assert_eq!(copy.oracle_violations, 0);
    assert!(
        copy.copysets_used <= budget,
        "{} sets exceed the budget {budget}",
        copy.copysets_used
    );
}

/// A mid-replay fault on a tiered fleet stays consistent and recovers —
/// the degraded paths and repair pump work against mixed devices.
#[test]
fn tiered_fleet_survives_mid_replay_fault() {
    let code = CodeParams::new(6, 3).unwrap();
    let mut cluster = ClusterConfig::ssd_testbed(code, MethodKind::Tsue);
    cluster.clients = 4;
    cluster.fleet = DiskFleet::tiered(8, 8);
    cluster.tsue_unit_bytes = 1 << 20;
    let mut r = ReplayConfig::new(cluster, TraceFamily::AliCloud);
    r.ops_per_client = 120;
    r.volume_bytes = 32 << 20;
    // Fail one flash node and one spinning node mid-replay.
    r.faults = FaultPlan::new()
        .fail_node(20 * simdes::units::MILLIS, 2)
        .fail_node(30 * simdes::units::MILLIS, 12);
    let res = run_trace(&r);
    assert_eq!(res.oracle_violations, 0);
    assert_eq!(res.data_loss_blocks, 0);
    assert!(res.repaired_blocks + res.inline_rebuilds > 0);
    assert!(res.mttr_s > 0.0 && res.mttr_s.is_finite());
}
