//! The FIFO log pool (§3.2): a queue of fixed-size units supporting
//! concurrent append and recycle, bounded memory, dynamic sizing, and
//! read-cache retention.

use std::collections::VecDeque;
use std::hash::Hash;

use crate::index::MergeMode;
use crate::payload::Payload;
use crate::unit::{LogUnit, UnitState};

/// Pool sizing and behaviour.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Bytes per log unit (the paper uses 16 MiB).
    pub unit_bytes: u64,
    /// Units kept allocated even when idle.
    pub min_units: usize,
    /// Hard quota on units (the paper's memory-limit knob; Fig. 6b sweeps
    /// this from 2 to 20).
    pub max_units: usize,
    /// Merge semantics of the layer this pool serves.
    pub mode: MergeMode,
}

impl PoolConfig {
    /// The paper's default: 16 MiB units, 2–4 units.
    pub fn paper_default(mode: MergeMode) -> PoolConfig {
        PoolConfig {
            unit_bytes: 16 << 20,
            min_units: 2,
            max_units: 4,
            mode,
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.unit_bytes == 0 {
            return Err("unit_bytes must be positive".into());
        }
        if self.min_units == 0 || self.max_units < self.min_units {
            return Err(format!(
                "bad unit bounds: min {} max {}",
                self.min_units, self.max_units
            ));
        }
        if self.max_units < 2 {
            return Err("need at least 2 units (one active, one recycling)".into());
        }
        Ok(())
    }
}

/// A unit handed to a recycler: identity, pre-merge footprint (for the
/// locality-ablation accounting), residency timestamps, and the merged
/// contents.
#[derive(Debug, Clone)]
pub struct TakenUnit<K, P> {
    /// Unit id within its pool.
    pub id: u64,
    /// Raw records appended (pre-merge).
    pub records: u64,
    /// Raw bytes appended (pre-merge).
    pub bytes: u64,
    /// Time of the first append.
    pub first_append_at: Option<u64>,
    /// Time the unit was sealed.
    pub sealed_at: Option<u64>,
    /// Merged contents: per key, offset-sorted ranges.
    pub contents: Vec<(K, Vec<(u32, P)>)>,
}

/// Result of an append attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppendOutcome {
    /// Record accepted into the active unit.
    Appended,
    /// Record accepted; the previously active unit sealed (its id returned)
    /// and is now RECYCLABLE.
    AppendedAndSealed(u64),
    /// Pool is at quota with nothing reusable: the caller must wait for a
    /// recycle to finish and retry (back-pressure; this is what throttles
    /// TSUE when `max_units` is too small — paper Fig. 6a/6b).
    Stalled,
}

/// Cumulative pool statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct PoolStats {
    /// Records appended.
    pub appends: u64,
    /// Bytes appended.
    pub bytes: u64,
    /// Units sealed.
    pub seals: u64,
    /// Appends rejected with [`AppendOutcome::Stalled`].
    pub stalls: u64,
    /// Emergency beyond-quota allocations by [`LogPool::append_overflow`].
    pub overflows: u64,
    /// Units fully recycled.
    pub units_recycled: u64,
    /// Read-cache lookups that found at least one byte.
    pub cache_hits: u64,
    /// Read-cache lookups that found nothing.
    pub cache_misses: u64,
}

/// A FIFO pool of log units for one (device, layer, pool-index) triple.
#[derive(Debug, Clone)]
pub struct LogPool<K, P> {
    cfg: PoolConfig,
    units: Vec<LogUnit<K, P>>,
    /// FIFO of unit slots in age order (oldest first); the active unit is
    /// the last element.
    order: VecDeque<usize>,
    /// Slot of the unit accepting appends; `None` after a forced seal
    /// exhausted the quota (the next append re-claims or stalls).
    active: Option<usize>,
    next_id: u64,
    stats: PoolStats,
}

impl<K: Hash + Eq + Ord + Clone, P: Payload> LogPool<K, P> {
    /// Builds a pool with `min_units` pre-allocated.
    ///
    /// # Panics
    /// Panics on invalid configuration.
    pub fn new(cfg: PoolConfig) -> LogPool<K, P> {
        cfg.validate().expect("invalid pool config");
        let mut pool = LogPool {
            units: Vec::with_capacity(cfg.max_units),
            order: VecDeque::with_capacity(cfg.max_units),
            active: None,
            next_id: 0,
            stats: PoolStats::default(),
            cfg,
        };
        for _ in 0..pool.cfg.min_units {
            pool.alloc_unit();
        }
        pool.active = Some(*pool.order.front().expect("min_units >= 1"));
        pool
    }

    fn alloc_unit(&mut self) -> usize {
        let id = self.next_id;
        self.next_id += 1;
        let slot = self.units.len();
        self.units
            .push(LogUnit::new(id, self.cfg.unit_bytes, self.cfg.mode));
        self.order.push_back(slot);
        slot
    }

    /// The pool configuration.
    pub fn config(&self) -> &PoolConfig {
        &self.cfg
    }

    /// Statistics so far.
    pub fn stats(&self) -> &PoolStats {
        &self.stats
    }

    /// Number of allocated units.
    pub fn unit_count(&self) -> usize {
        self.units.len()
    }

    /// Memory footprint: allocated units times unit size (the quota-based
    /// accounting of §5.3.2).
    pub fn memory_bytes(&self) -> u64 {
        self.units.len() as u64 * self.cfg.unit_bytes
    }

    /// Units currently in the given state.
    pub fn count_state(&self, state: UnitState) -> usize {
        self.units.iter().filter(|u| u.state() == state).count()
    }

    /// Bytes sitting in the active (unsealed) unit.
    pub fn active_bytes(&self) -> u64 {
        self.active.map_or(0, |a| self.units[a].used())
    }

    /// Whether an append of `len` bytes would currently succeed.
    pub fn can_append(&self, len: u32) -> bool {
        self.active.is_some_and(|a| self.units[a].fits(len))
            || self.find_reusable().is_some()
            || self.units.len() < self.cfg.max_units
    }

    fn find_reusable(&self) -> Option<usize> {
        // Idle pre-allocated EMPTY units first (fresh pool), then the
        // oldest RECYCLED unit (FIFO reuse keeps the cache fresh).
        self.order
            .iter()
            .copied()
            .find(|&i| Some(i) != self.active && self.units[i].state() == UnitState::Empty)
            .or_else(|| {
                self.order
                    .iter()
                    .copied()
                    .find(|&i| self.units[i].state() == UnitState::Recycled)
            })
    }

    /// Appends a record, rotating/allocating units as needed.
    ///
    /// # Panics
    /// Panics if a single record exceeds the unit capacity.
    pub fn append(&mut self, key: K, off: u32, payload: P, now: u64) -> AppendOutcome {
        let len = payload.len();
        assert!(
            (len as u64) <= self.cfg.unit_bytes,
            "record larger than a log unit"
        );
        if let Some(a) = self.active {
            if self.units[a].fits(len) {
                self.units[a].append(key, off, payload, now);
                self.stats.appends += 1;
                self.stats.bytes += len as u64;
                return AppendOutcome::Appended;
            }
        }
        // No active unit, or it is full: rotate.
        match self.claim_replacement() {
            Some(slot) => {
                let sealed_id = self.active.map(|a| {
                    let id = self.units[a].id();
                    self.units[a].seal(now);
                    self.stats.seals += 1;
                    id
                });
                self.active = Some(slot);
                self.units[slot].append(key, off, payload, now);
                self.stats.appends += 1;
                self.stats.bytes += len as u64;
                match sealed_id {
                    Some(id) => AppendOutcome::AppendedAndSealed(id),
                    None => AppendOutcome::Appended,
                }
            }
            None => {
                self.stats.stalls += 1;
                AppendOutcome::Stalled
            }
        }
    }

    /// Like [`Self::append`], but never stalls: when the quota is exhausted
    /// it allocates an emergency unit beyond `max_units` and counts an
    /// overflow. Intended for *internal* pipeline appends whose caller
    /// cannot park (client-facing appends should use [`Self::append`] and
    /// honour back-pressure). The emergency unit is released again by
    /// [`Self::shrink_idle`] once recycled.
    pub fn append_overflow(&mut self, key: K, off: u32, payload: P, now: u64) -> AppendOutcome {
        match self.append(key.clone(), off, payload.clone(), now) {
            AppendOutcome::Stalled => {
                self.stats.overflows += 1;
                let slot = self.alloc_unit();
                let sealed = self.active.map(|a| {
                    let id = self.units[a].id();
                    self.units[a].seal(now);
                    self.stats.seals += 1;
                    id
                });
                self.active = Some(slot);
                let len = payload.len();
                self.units[slot].append(key, off, payload, now);
                self.stats.appends += 1;
                self.stats.bytes += len as u64;
                match sealed {
                    Some(id) => AppendOutcome::AppendedAndSealed(id),
                    None => AppendOutcome::Appended,
                }
            }
            other => other,
        }
    }

    /// Claims a replacement active unit: an idle EMPTY spare, a RECYCLED
    /// unit (cleared for reuse), or a fresh allocation under quota. The
    /// claimed unit moves to the FIFO tail.
    fn claim_replacement(&mut self) -> Option<usize> {
        if let Some(slot) = self.find_reusable() {
            let pos = self
                .order
                .iter()
                .position(|&i| i == slot)
                .expect("slot in order");
            self.order.remove(pos);
            self.order.push_back(slot);
            if self.units[slot].state() == UnitState::Recycled {
                self.units[slot].reuse();
            }
            Some(slot)
        } else if self.units.len() < self.cfg.max_units {
            Some(self.alloc_unit())
        } else {
            None
        }
    }

    /// Force-seals the active unit (e.g. timed flush or end-of-run drain)
    /// if it holds data. Returns the sealed unit's id.
    ///
    /// Unlike the rotation inside [`Self::append`], sealing here does not
    /// require a replacement: the pool may be left without an active unit,
    /// and the next append claims or allocates one (or stalls at quota).
    pub fn seal_active(&mut self, now: u64) -> Option<u64> {
        let a = self.active?;
        if self.units[a].used() == 0 {
            return None;
        }
        let id = self.units[a].id();
        self.units[a].seal(now);
        self.stats.seals += 1;
        self.active = self.claim_replacement();
        Some(id)
    }

    /// Takes the oldest RECYCLABLE unit for recycling. The unit transitions
    /// to RECYCLING.
    pub fn take_recyclable(&mut self) -> Option<TakenUnit<K, P>> {
        let slot = self
            .order
            .iter()
            .copied()
            .find(|&i| self.units[i].state() == UnitState::Recyclable)?;
        let contents = self.units[slot].start_recycle();
        let u = &self.units[slot];
        Some(TakenUnit {
            id: u.id(),
            records: u.records(),
            bytes: u.used(),
            first_append_at: u.first_append_at,
            sealed_at: u.sealed_at,
            contents,
        })
    }

    /// Like [`Self::take_recyclable`], but refuses while another unit of
    /// this pool is still RECYCLING.
    ///
    /// Newest-wins layers (the DataLog) need per-block recycle ordering;
    /// since a block's records always hash to one pool, serialising recycles
    /// *within* a pool is exactly the paper's "log records for the same
    /// block are assigned to the same recycle thread" rule, while distinct
    /// pools still recycle in parallel.
    pub fn take_recyclable_exclusive(&mut self) -> Option<TakenUnit<K, P>> {
        if self.count_state(UnitState::Recycling) > 0 {
            return None;
        }
        self.take_recyclable()
    }

    /// Marks a RECYCLING unit as done (RECYCLED). Returns residency info
    /// `(first_append_at, sealed_at)` for Table 2 accounting.
    ///
    /// # Panics
    /// Panics if no RECYCLING unit has this id.
    pub fn finish_recycle(&mut self, unit_id: u64) -> (Option<u64>, Option<u64>) {
        let unit = self
            .units
            .iter_mut()
            .find(|u| u.id() == unit_id && u.state() == UnitState::Recycling)
            .expect("no such recycling unit");
        unit.finish_recycle();
        self.stats.units_recycled += 1;
        (unit.first_append_at, unit.sealed_at)
    }

    /// Read-cache lookup across all units in **overlay order**: pieces from
    /// older units come first, so a reader reconstructs the newest view by
    /// applying the returned pieces in order (later pieces overwrite earlier
    /// ones where they overlap).
    pub fn lookup(&mut self, key: &K, off: u32, len: u32) -> Vec<(u32, P)> {
        let mut out: Vec<(u32, P)> = Vec::new();
        for &slot in self.order.iter() {
            out.extend(self.units[slot].lookup(key, off, len));
        }
        if out.is_empty() {
            self.stats.cache_misses += 1;
        } else {
            self.stats.cache_hits += 1;
        }
        out
    }

    /// Releases idle RECYCLED units above `min_units` (the shrink half of
    /// §3.2.2's elasticity).
    pub fn shrink_idle(&mut self) {
        while self.units.len() > self.cfg.min_units {
            // Find the oldest recycled unit that is not active.
            let Some(pos) = self.order.iter().position(|&i| {
                self.units[i].state() == UnitState::Recycled && Some(i) != self.active
            }) else {
                break;
            };
            let slot = self.order[pos];
            self.order.remove(pos);
            // Swap-remove from the unit vector; fix up indices in `order`.
            let last = self.units.len() - 1;
            self.units.swap_remove(slot);
            if slot != last {
                for idx in self.order.iter_mut() {
                    if *idx == last {
                        *idx = slot;
                    }
                }
                if self.active == Some(last) {
                    self.active = Some(slot);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::Ghost;

    fn cfg(max_units: usize) -> PoolConfig {
        PoolConfig {
            unit_bytes: 1000,
            min_units: 2,
            max_units,
            mode: MergeMode::Overwrite,
        }
    }

    fn pool(max_units: usize) -> LogPool<u64, Ghost> {
        LogPool::new(cfg(max_units))
    }

    #[test]
    fn appends_fill_and_seal_units() {
        let mut p = pool(4);
        for i in 0..9 {
            let out = p.append(1, i * 100, Ghost(100), i as u64);
            assert_eq!(out, AppendOutcome::Appended, "i = {i}");
        }
        // The 10th record fits exactly; the 11th seals.
        assert_eq!(p.append(1, 900, Ghost(100), 9), AppendOutcome::Appended);
        match p.append(1, 1000, Ghost(100), 10) {
            AppendOutcome::AppendedAndSealed(id) => assert_eq!(id, 0),
            other => panic!("expected seal, got {other:?}"),
        }
        assert_eq!(p.count_state(UnitState::Recyclable), 1);
        assert_eq!(p.stats().appends, 11);
    }

    #[test]
    fn quota_exhaustion_stalls() {
        let mut p = pool(2);
        // Fill both units without recycling anything.
        for i in 0..20 {
            let _ = p.append(1, i * 100, Ghost(100), 0);
        }
        assert_eq!(p.append(1, 5000, Ghost(100), 0), AppendOutcome::Stalled);
        assert!(p.stats().stalls >= 1);
        assert!(!p.can_append(100));
    }

    #[test]
    fn recycle_unblocks_stalled_pool() {
        let mut p = pool(2);
        for i in 0..20 {
            let _ = p.append(1, i * 100, Ghost(100), 0);
        }
        assert_eq!(p.append(1, 9000, Ghost(100), 0), AppendOutcome::Stalled);

        let taken = p.take_recyclable().expect("a sealed unit exists");
        assert!(!taken.contents.is_empty());
        let id = taken.id;
        p.finish_recycle(id);
        assert!(p.can_append(100));
        assert!(matches!(
            p.append(1, 9000, Ghost(100), 1),
            AppendOutcome::AppendedAndSealed(_)
        ));
        assert_eq!(p.stats().units_recycled, 1);
    }

    #[test]
    fn pool_grows_to_quota_then_reuses() {
        let mut p = pool(3);
        assert_eq!(p.unit_count(), 2);
        for i in 0..25 {
            let out = p.append(1, i * 100, Ghost(100), 0);
            if out == AppendOutcome::Stalled {
                let id = p.take_recyclable().unwrap().id;
                p.finish_recycle(id);
                let retry = p.append(1, i * 100, Ghost(100), 0);
                assert_ne!(retry, AppendOutcome::Stalled);
            }
        }
        assert_eq!(p.unit_count(), 3, "grew to quota and stopped");
        assert_eq!(p.memory_bytes(), 3000);
    }

    #[test]
    fn take_recyclable_is_fifo_oldest_first() {
        let mut p = pool(4);
        for i in 0..35 {
            let _ = p.append(1, i * 100, Ghost(100), 0);
        }
        // Units 0, 1, 2 sealed by now (active is 3).
        let id1 = p.take_recyclable().unwrap().id;
        let id2 = p.take_recyclable().unwrap().id;
        assert!(id1 < id2, "oldest unit recycles first");
    }

    #[test]
    fn lookup_returns_overlay_order_oldest_first() {
        let mut p = pool(4);
        // Fill unit 0 with version A of range [0, 100).
        for i in 0..10 {
            let _ = p.append(7, i * 100, Ghost(100), 0);
        }
        // This rolls to unit 1 and writes a fresh record for [0, 100).
        let _ = p.append(7, 0, Ghost(100), 1);
        let hits = p.lookup(&7, 0, 100);
        // Two pieces: unit 0's (older) first, unit 1's (newer) last, so an
        // overlay reader ends with the newest bytes.
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0], (0, Ghost(100)));
        assert_eq!(hits[1], (0, Ghost(100)));
        assert_eq!(p.stats().cache_hits, 1);
        let miss = p.lookup(&99, 0, 10);
        assert!(miss.is_empty());
        assert_eq!(p.stats().cache_misses, 1);
    }

    #[test]
    fn recycled_units_serve_reads_until_reused() {
        let mut p = pool(2);
        for i in 0..20 {
            let _ = p.append(3, i * 100, Ghost(100), 0);
        }
        let id = p.take_recyclable().unwrap().id;
        p.finish_recycle(id);
        // The recycled unit still answers reads for its old contents.
        assert!(!p.lookup(&3, 0, 100).is_empty());
        // Reuse it via new appends; its old contents vanish.
        for i in 0..20 {
            let _ = p.append(4, i * 100, Ghost(100), 1);
            if let Some(taken) = p.take_recyclable() {
                p.finish_recycle(taken.id);
            }
        }
        let hits = p.lookup(&3, 0, 100);
        assert!(
            hits.is_empty(),
            "old key evicted after unit reuse: {hits:?}"
        );
    }

    #[test]
    fn seal_active_flushes_partial_unit() {
        let mut p = pool(4);
        assert_eq!(p.seal_active(0), None, "empty active unit: nothing to seal");
        let _ = p.append(1, 0, Ghost(50), 0);
        let id = p.seal_active(5).expect("sealed");
        assert_eq!(id, 0);
        assert_eq!(p.count_state(UnitState::Recyclable), 1);
        let taken = p.take_recyclable().unwrap();
        assert_eq!(taken.id, id);
        assert_eq!(taken.contents[0].1, vec![(0, Ghost(50))]);
        assert_eq!(taken.records, 1);
        assert_eq!(taken.bytes, 50);
    }

    #[test]
    fn shrink_idle_releases_units() {
        let mut p = pool(6);
        for i in 0..55 {
            let _ = p.append(1, i * 100, Ghost(100), 0);
        }
        while let Some(taken) = p.take_recyclable() {
            p.finish_recycle(taken.id);
        }
        assert_eq!(p.unit_count(), 6);
        p.shrink_idle();
        assert_eq!(p.unit_count(), 2, "shrank to min_units");
        // Pool still functional after shrink.
        for i in 0..30 {
            let out = p.append(2, i * 100, Ghost(100), 1);
            if out == AppendOutcome::Stalled {
                let id = p.take_recyclable().unwrap().id;
                p.finish_recycle(id);
                let _ = p.append(2, i * 100, Ghost(100), 1);
            }
        }
        assert!(p.stats().appends >= 80);
    }

    #[test]
    fn residency_times_flow_through() {
        let mut p = pool(2);
        for i in 0..11 {
            let _ = p.append(1, i * 100, Ghost(100), 100 + i as u64);
        }
        let taken = p.take_recyclable().unwrap();
        let (first, sealed) = p.finish_recycle(taken.id);
        assert_eq!(first, Some(100));
        assert_eq!(sealed, Some(110));
    }

    #[test]
    #[should_panic(expected = "record larger than a log unit")]
    fn oversized_record_panics() {
        let mut p = pool(2);
        let _ = p.append(1, 0, Ghost(2000), 0);
    }

    #[test]
    fn config_validation() {
        assert!(cfg(4).validate().is_ok());
        assert!(PoolConfig {
            unit_bytes: 0,
            ..cfg(4)
        }
        .validate()
        .is_err());
        assert!(PoolConfig {
            min_units: 3,
            max_units: 2,
            ..cfg(4)
        }
        .validate()
        .is_err());
        assert!(PoolConfig {
            min_units: 1,
            max_units: 1,
            ..cfg(4)
        }
        .validate()
        .is_err());
        assert!(PoolConfig::paper_default(MergeMode::Xor).validate().is_ok());
    }
}
