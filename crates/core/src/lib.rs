//! TSUE core: the two-stage erasure-code update engine.
//!
//! This crate implements the paper's contribution proper (§3):
//!
//! * a **two-level index** — block hash map on top, offset-sorted
//!   non-overlapping ranges below, with a bitmap accelerator — that merges
//!   duplicate and adjacent update records ([`index`]);
//! * fixed-size **log units** with the EMPTY → RECYCLABLE → RECYCLING →
//!   RECYCLED lifecycle ([`mod@unit`]);
//! * a FIFO **log pool** of those units that supports concurrent append and
//!   recycle, grows/shrinks between a minimum and a quota, and retains
//!   recycled units as a read cache ([`pool`]);
//! * the **three-layer log schema** — DataLog, DeltaLog, ParityLog — with
//!   the per-layer recycle grouping (per block; per stripe for the Eq. 5
//!   cross-block merge; per parity block) ([`layers`]);
//! * a real **multi-threaded engine** wiring the three layers over an
//!   in-memory stripe with a Reed-Solomon codec: front-end appends return
//!   as soon as the data log holds the update, back-end recycler threads
//!   drain the pipeline in real time ([`engine`]).
//!
//! Log payloads are generic: [`payload::Data`] carries real bytes (used by
//! the engine and byte-exact tests), while [`payload::Ghost`] carries only
//! lengths, letting the cluster simulator run the same merge logic over
//! millions of records without materialising data.
//!
//! # Example: the two-level index merging an update burst
//!
//! ```
//! use tsue::index::{MergeMode, TwoLevelIndex};
//! use tsue::payload::Ghost;
//!
//! let mut idx: TwoLevelIndex<u64, Ghost> = TwoLevelIndex::new(MergeMode::Overwrite);
//! // Three updates: two duplicates and one adjacent.
//! idx.insert(7, 0, Ghost(4096));
//! idx.insert(7, 0, Ghost(4096));      // duplicate: overwritten in place
//! idx.insert(7, 4096, Ghost(4096));   // adjacent: concatenated
//! let drained = idx.remove_block(&7).unwrap();
//! assert_eq!(drained.len(), 1);       // 3 records -> 1 range
//! assert_eq!(drained[0], (0, Ghost(8192)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod index;
pub mod layers;
pub mod payload;
pub mod pool;
pub mod unit;

pub use index::{MergeMode, TwoLevelIndex};
pub use payload::{Data, Ghost, Payload};
pub use pool::{AppendOutcome, LogPool, PoolConfig};
pub use unit::{LogUnit, UnitState};
