//! Fixed-size log units and their recycle lifecycle (§3.2.1).

use std::hash::Hash;

use crate::index::{MergeMode, TwoLevelIndex};
use crate::payload::Payload;

/// Lifecycle state of a log unit.
///
/// ```text
/// EMPTY --fill--> RECYCLABLE --attach--> RECYCLING --done--> RECYCLED --reuse--> EMPTY
/// ```
///
/// A RECYCLED unit keeps its index alive as a read cache until it is reused
/// as the active unit (§3.3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnitState {
    /// Accepting appends (at most one unit per pool is active).
    Empty,
    /// Full; waiting for a recycle thread.
    Recyclable,
    /// Being recycled right now.
    Recycling,
    /// Recycled; contents retained as read cache until reuse.
    Recycled,
}

/// A fixed-size log unit: an append region plus its own two-level index.
///
/// Units own independent indexes precisely so that multiple units can be
/// recycled concurrently without sharing locks (§3.2.2: "reduces lock
/// protection domains by assigning independent index for each log unit").
#[derive(Debug, Clone)]
pub struct LogUnit<K, P> {
    id: u64,
    state: UnitState,
    capacity: u64,
    used: u64,
    records: u64,
    index: TwoLevelIndex<K, P>,
    /// Timestamp of the first append since (re)activation; used for
    /// residency accounting (paper Table 2).
    pub first_append_at: Option<u64>,
    /// Timestamp when the unit was sealed (marked RECYCLABLE).
    pub sealed_at: Option<u64>,
}

impl<K: Hash + Eq + Ord + Clone, P: Payload> LogUnit<K, P> {
    /// New empty unit.
    pub fn new(id: u64, capacity: u64, mode: MergeMode) -> LogUnit<K, P> {
        assert!(capacity > 0, "unit capacity must be positive");
        LogUnit {
            id,
            state: UnitState::Empty,
            capacity,
            used: 0,
            records: 0,
            index: TwoLevelIndex::new(mode),
            first_append_at: None,
            sealed_at: None,
        }
    }

    /// Unit identifier (unique within its pool).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Current lifecycle state.
    pub fn state(&self) -> UnitState {
        self.state
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Appended bytes (pre-merge: the raw log volume).
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Appended record count (pre-merge).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The unit's index (merged view of its contents).
    pub fn index(&self) -> &TwoLevelIndex<K, P> {
        &self.index
    }

    /// Whether a record of `len` bytes fits.
    pub fn fits(&self, len: u32) -> bool {
        self.used + len as u64 <= self.capacity
    }

    /// Appends one record.
    ///
    /// # Panics
    /// Panics if the unit is not EMPTY (active) or the record does not fit —
    /// the pool enforces both before calling.
    pub fn append(&mut self, key: K, off: u32, payload: P, now: u64) {
        assert_eq!(self.state, UnitState::Empty, "append to non-active unit");
        let len = payload.len();
        assert!(self.fits(len), "append overflows unit");
        if self.first_append_at.is_none() {
            self.first_append_at = Some(now);
        }
        self.used += len as u64;
        self.records += 1;
        self.index.insert(key, off, payload);
    }

    /// Seals the unit: EMPTY → RECYCLABLE.
    ///
    /// # Panics
    /// Panics if not EMPTY.
    pub fn seal(&mut self, now: u64) {
        assert_eq!(self.state, UnitState::Empty, "seal of non-active unit");
        self.state = UnitState::Recyclable;
        self.sealed_at = Some(now);
    }

    /// Attaches the unit to a recycler: RECYCLABLE → RECYCLING. Returns the
    /// merged contents, leaving the index intact for read-cache lookups.
    ///
    /// # Panics
    /// Panics if not RECYCLABLE.
    pub fn start_recycle(&mut self) -> Vec<(K, Vec<(u32, P)>)> {
        assert_eq!(self.state, UnitState::Recyclable, "unit not recyclable");
        self.state = UnitState::Recycling;
        // Sorted block order keeps recycle processing deterministic across
        // processes (the backing index iterates in hash order) and mirrors
        // the engine-side `group_data_jobs` dispatch rule.
        let mut keys: Vec<K> = self.index.block_keys().cloned().collect();
        keys.sort_unstable();
        keys.into_iter()
            .map(|k| {
                let ranges = self.index.lookup(&k, 0, u32::MAX);
                (k, ranges)
            })
            .collect()
    }

    /// Completes recycling: RECYCLING → RECYCLED. The index stays queryable
    /// as a read cache.
    ///
    /// # Panics
    /// Panics if not RECYCLING.
    pub fn finish_recycle(&mut self) {
        assert_eq!(self.state, UnitState::Recycling, "unit not recycling");
        self.state = UnitState::Recycled;
    }

    /// Reuses a RECYCLED unit as the new active unit: clears contents,
    /// RECYCLED → EMPTY.
    ///
    /// # Panics
    /// Panics if not RECYCLED.
    pub fn reuse(&mut self) {
        assert_eq!(self.state, UnitState::Recycled, "unit not recycled");
        self.index.clear();
        self.used = 0;
        self.records = 0;
        self.first_append_at = None;
        self.sealed_at = None;
        self.state = UnitState::Empty;
    }

    /// Read-cache lookup (valid in any state holding data).
    pub fn lookup(&self, key: &K, off: u32, len: u32) -> Vec<(u32, P)> {
        self.index.lookup(key, off, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::Ghost;

    fn unit() -> LogUnit<u64, Ghost> {
        LogUnit::new(1, 1000, MergeMode::Overwrite)
    }

    #[test]
    fn lifecycle_happy_path() {
        let mut u = unit();
        assert_eq!(u.state(), UnitState::Empty);
        u.append(7, 0, Ghost(100), 5);
        u.append(7, 100, Ghost(100), 6);
        assert_eq!(u.used(), 200);
        assert_eq!(u.records(), 2);
        assert_eq!(u.first_append_at, Some(5));

        u.seal(10);
        assert_eq!(u.state(), UnitState::Recyclable);
        assert_eq!(u.sealed_at, Some(10));

        let contents = u.start_recycle();
        assert_eq!(u.state(), UnitState::Recycling);
        assert_eq!(contents.len(), 1);
        assert_eq!(contents[0].1, vec![(0, Ghost(200))]); // merged

        u.finish_recycle();
        assert_eq!(u.state(), UnitState::Recycled);
        // Read cache still works.
        assert_eq!(u.lookup(&7, 50, 10), vec![(50, Ghost(10))]);

        u.reuse();
        assert_eq!(u.state(), UnitState::Empty);
        assert_eq!(u.used(), 0);
        assert!(u.lookup(&7, 50, 10).is_empty());
    }

    #[test]
    fn fits_respects_capacity() {
        let mut u = unit();
        assert!(u.fits(1000));
        assert!(!u.fits(1001));
        u.append(1, 0, Ghost(900), 0);
        assert!(u.fits(100));
        assert!(!u.fits(101));
    }

    #[test]
    #[should_panic(expected = "append overflows unit")]
    fn overflow_append_panics() {
        let mut u = unit();
        u.append(1, 0, Ghost(2000), 0);
    }

    #[test]
    #[should_panic(expected = "append to non-active unit")]
    fn append_after_seal_panics() {
        let mut u = unit();
        u.append(1, 0, Ghost(10), 0);
        u.seal(1);
        u.append(1, 10, Ghost(10), 2);
    }

    #[test]
    #[should_panic(expected = "unit not recyclable")]
    fn recycle_of_active_unit_panics() {
        let mut u = unit();
        u.start_recycle();
    }

    #[test]
    #[should_panic(expected = "unit not recycled")]
    fn reuse_of_unrecycled_panics() {
        let mut u = unit();
        u.append(1, 0, Ghost(10), 0);
        u.seal(1);
        u.reuse();
    }
}
