//! The three-layer log schema (§3.1.2): layer keys, multi-pool sets, and
//! per-layer recycle grouping.
//!
//! * **DataLog** — keyed by global data-block id; holds update *data*
//!   (newest-wins merge). Recycled per block.
//! * **DeltaLog** — keyed by (stripe, data-block index); holds data
//!   *deltas* (XOR merge, Eq. 3). Recycled per stripe so that same-offset
//!   deltas from different blocks combine into one parity delta (Eq. 5).
//! * **ParityLog** — keyed by (stripe, parity index); holds parity
//!   *deltas* (XOR merge). Recycled per parity block.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use crate::payload::Payload;
use crate::pool::{AppendOutcome, LogPool, PoolConfig, PoolStats, TakenUnit};

/// Global data-block identifier (the hash input the paper derives from
/// inode, stripe and block numbers).
pub type BlockId = u64;

/// DeltaLog key: one data block within one stripe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StripeBlock {
    /// Stripe identifier.
    pub stripe: u64,
    /// Data block index within the stripe (`0..k`).
    pub block_idx: u16,
}

/// ParityLog key: one parity block within one stripe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ParityKey {
    /// Stripe identifier.
    pub stripe: u64,
    /// Parity block index within the stripe (`0..m`).
    pub parity_idx: u16,
}

/// A set of 1–N pools for one log layer on one device, selected by key hash
/// (§4.1: "four log pools are configured for each log structure").
#[derive(Debug, Clone)]
pub struct LogPoolSet<K, P> {
    pools: Vec<LogPool<K, P>>,
}

impl<K: Hash + Eq + Ord + Clone, P: Payload> LogPoolSet<K, P> {
    /// Builds `n_pools` pools with identical configuration.
    ///
    /// # Panics
    /// Panics if `n_pools == 0` or the config is invalid.
    pub fn new(n_pools: usize, cfg: PoolConfig) -> LogPoolSet<K, P> {
        assert!(n_pools > 0, "need at least one pool");
        LogPoolSet {
            pools: (0..n_pools).map(|_| LogPool::new(cfg.clone())).collect(),
        }
    }

    /// Number of pools.
    pub fn pool_count(&self) -> usize {
        self.pools.len()
    }

    /// The pool index a key routes to.
    pub fn pool_for(&self, key: &K) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() % self.pools.len() as u64) as usize
    }

    /// Appends a record to the key's pool.
    pub fn append(&mut self, key: K, off: u32, payload: P, now: u64) -> (usize, AppendOutcome) {
        let idx = self.pool_for(&key);
        let out = self.pools[idx].append(key, off, payload, now);
        (idx, out)
    }

    /// Non-stalling append (see [`LogPool::append_overflow`]).
    pub fn append_overflow(
        &mut self,
        key: K,
        off: u32,
        payload: P,
        now: u64,
    ) -> (usize, AppendOutcome) {
        let idx = self.pool_for(&key);
        let out = self.pools[idx].append_overflow(key, off, payload, now);
        (idx, out)
    }

    /// Direct access to a pool.
    pub fn pool(&self, idx: usize) -> &LogPool<K, P> {
        &self.pools[idx]
    }

    /// Direct mutable access to a pool.
    pub fn pool_mut(&mut self, idx: usize) -> &mut LogPool<K, P> {
        &mut self.pools[idx]
    }

    /// Takes a recyclable unit from any pool (scanning over pools),
    /// returning `(pool_idx, taken_unit)`.
    pub fn take_recyclable_any(&mut self) -> Option<(usize, TakenUnit<K, P>)> {
        for (i, pool) in self.pools.iter_mut().enumerate() {
            if let Some(taken) = pool.take_recyclable() {
                return Some((i, taken));
            }
        }
        None
    }

    /// Ordered variant of [`Self::take_recyclable_any`]: only takes from
    /// pools with no unit currently RECYCLING (newest-wins layers).
    pub fn take_recyclable_ordered(&mut self) -> Option<(usize, TakenUnit<K, P>)> {
        for (i, pool) in self.pools.iter_mut().enumerate() {
            if let Some(taken) = pool.take_recyclable_exclusive() {
                return Some((i, taken));
            }
        }
        None
    }

    /// Force-seals every non-empty active unit (end-of-run drain).
    pub fn seal_all_active(&mut self, now: u64) -> usize {
        self.pools
            .iter_mut()
            .filter_map(|p| p.seal_active(now))
            .count()
    }

    /// Read-cache lookup in the key's pool.
    pub fn lookup(&mut self, key: &K, off: u32, len: u32) -> Vec<(u32, P)> {
        let idx = self.pool_for(key);
        self.pools[idx].lookup(key, off, len)
    }

    /// Total memory footprint across pools.
    pub fn memory_bytes(&self) -> u64 {
        self.pools.iter().map(|p| p.memory_bytes()).sum()
    }

    /// Bytes sitting in active (unsealed) units across pools.
    pub fn active_bytes(&self) -> u64 {
        self.pools.iter().map(|p| p.active_bytes()).sum()
    }

    /// Aggregated statistics across pools.
    pub fn stats(&self) -> PoolStats {
        let mut agg = PoolStats::default();
        for p in &self.pools {
            let s = p.stats();
            agg.appends += s.appends;
            agg.bytes += s.bytes;
            agg.seals += s.seals;
            agg.stalls += s.stalls;
            agg.overflows += s.overflows;
            agg.units_recycled += s.units_recycled;
            agg.cache_hits += s.cache_hits;
            agg.cache_misses += s.cache_misses;
        }
        agg
    }

    /// Whether every pool is drained: nothing RECYCLABLE or RECYCLING.
    /// Unsealed active data is not covered — call [`Self::seal_all_active`]
    /// first when draining at end of run.
    pub fn is_fully_drained(&self) -> bool {
        self.pools.iter().all(|p| {
            p.count_state(crate::unit::UnitState::Recyclable) == 0
                && p.count_state(crate::unit::UnitState::Recycling) == 0
        })
    }

    /// Shrinks idle pools (releases RECYCLED units above the minimum).
    pub fn shrink_idle(&mut self) {
        for p in &mut self.pools {
            p.shrink_idle();
        }
    }
}

/// DataLog recycle job: the merged ranges to fold into one data block.
#[derive(Debug, Clone, PartialEq)]
pub struct DataRecycleJob<P> {
    /// The data block being recycled into.
    pub block: BlockId,
    /// Merged, offset-sorted ranges of newest data.
    pub ranges: Vec<(u32, P)>,
}

/// Groups a drained DataLog unit into per-block jobs, sorted by block so
/// that records for one block always land on one recycle thread (§3.2.1).
pub fn group_data_jobs<P: Payload>(
    contents: Vec<(BlockId, Vec<(u32, P)>)>,
) -> Vec<DataRecycleJob<P>> {
    let mut jobs: Vec<DataRecycleJob<P>> = contents
        .into_iter()
        .map(|(block, ranges)| DataRecycleJob { block, ranges })
        .collect();
    jobs.sort_by_key(|j| j.block);
    jobs
}

/// DeltaLog recycle job: all merged deltas of one stripe, ready for the
/// Eq. 5 cross-block combination.
#[derive(Debug, Clone, PartialEq)]
pub struct StripeDeltaJob<P> {
    /// The stripe.
    pub stripe: u64,
    /// `(data block idx, offset, delta)` sorted by (block, offset).
    pub deltas: Vec<(u16, u32, P)>,
}

/// Groups a drained DeltaLog unit by stripe.
pub fn group_delta_jobs<P: Payload>(
    contents: Vec<(StripeBlock, Vec<(u32, P)>)>,
) -> Vec<StripeDeltaJob<P>> {
    let mut by_stripe: HashMap<u64, Vec<(u16, u32, P)>> = HashMap::new();
    for (key, ranges) in contents {
        let entry = by_stripe.entry(key.stripe).or_default();
        for (off, p) in ranges {
            entry.push((key.block_idx, off, p));
        }
    }
    let mut jobs: Vec<StripeDeltaJob<P>> = by_stripe
        .into_iter()
        .map(|(stripe, mut deltas)| {
            deltas.sort_by_key(|&(b, o, _)| (b, o));
            StripeDeltaJob { stripe, deltas }
        })
        .collect();
    jobs.sort_by_key(|j| j.stripe);
    jobs
}

/// ParityLog recycle job: merged parity-delta ranges for one parity block.
#[derive(Debug, Clone, PartialEq)]
pub struct ParityRecycleJob<P> {
    /// The parity block.
    pub parity: ParityKey,
    /// Merged, offset-sorted parity-delta ranges.
    pub ranges: Vec<(u32, P)>,
}

/// Groups a drained ParityLog unit into per-parity-block jobs.
pub fn group_parity_jobs<P: Payload>(
    contents: Vec<(ParityKey, Vec<(u32, P)>)>,
) -> Vec<ParityRecycleJob<P>> {
    let mut jobs: Vec<ParityRecycleJob<P>> = contents
        .into_iter()
        .map(|(parity, ranges)| ParityRecycleJob { parity, ranges })
        .collect();
    jobs.sort_by_key(|j| j.parity);
    jobs
}

/// Interval union of a stripe job's deltas: the distinct `(offset, len)`
/// ranges that need one parity delta each per parity block (Eq. 5 — deltas
/// at the same offset across blocks collapse into a single parity delta).
pub fn union_ranges<P: Payload>(deltas: &[(u16, u32, P)]) -> Vec<(u32, u32)> {
    let mut spans: Vec<(u32, u32)> = deltas
        .iter()
        .map(|&(_, off, ref p)| (off, p.len()))
        .collect();
    spans.sort_unstable();
    let mut out: Vec<(u32, u32)> = Vec::new();
    for (off, len) in spans {
        match out.last_mut() {
            Some((lo, ll)) if *lo + *ll >= off => {
                let end = (off + len).max(*lo + *ll);
                *ll = end - *lo;
            }
            _ => out.push((off, len)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::MergeMode;
    use crate::payload::Ghost;

    #[test]
    fn pool_set_routes_consistently() {
        let set: LogPoolSet<BlockId, Ghost> =
            LogPoolSet::new(4, PoolConfig::paper_default(MergeMode::Overwrite));
        for key in 0..100u64 {
            assert_eq!(set.pool_for(&key), set.pool_for(&key));
            assert!(set.pool_for(&key) < 4);
        }
    }

    #[test]
    fn pool_set_spreads_keys() {
        let set: LogPoolSet<BlockId, Ghost> =
            LogPoolSet::new(4, PoolConfig::paper_default(MergeMode::Overwrite));
        let mut used = [false; 4];
        for key in 0..64u64 {
            used[set.pool_for(&key)] = true;
        }
        assert!(used.iter().all(|&u| u), "64 keys must touch all 4 pools");
    }

    #[test]
    fn append_and_recycle_through_set() {
        let mut set: LogPoolSet<BlockId, Ghost> = LogPoolSet::new(
            2,
            PoolConfig {
                unit_bytes: 500,
                min_units: 2,
                max_units: 4,
                mode: MergeMode::Overwrite,
            },
        );
        for i in 0..40u64 {
            let (_, out) = set.append(i % 8, (i as u32) * 100, Ghost(100), i);
            assert_ne!(out, AppendOutcome::Stalled);
        }
        let sealed = set.seal_all_active(100);
        assert!(sealed > 0);
        let mut recycled = 0;
        while let Some((pool, taken)) = set.take_recyclable_any() {
            assert!(!taken.contents.is_empty());
            set.pool_mut(pool).finish_recycle(taken.id);
            recycled += 1;
        }
        assert!(recycled > 0);
        assert_eq!(set.stats().appends, 40);
    }

    #[test]
    fn data_jobs_sorted_by_block() {
        let jobs = group_data_jobs(vec![(9u64, vec![(0, Ghost(10))]), (3, vec![(5, Ghost(5))])]);
        assert_eq!(jobs[0].block, 3);
        assert_eq!(jobs[1].block, 9);
    }

    #[test]
    fn delta_jobs_group_by_stripe() {
        let contents = vec![
            (
                StripeBlock {
                    stripe: 1,
                    block_idx: 2,
                },
                vec![(100, Ghost(10))],
            ),
            (
                StripeBlock {
                    stripe: 1,
                    block_idx: 0,
                },
                vec![(100, Ghost(10)), (500, Ghost(20))],
            ),
            (
                StripeBlock {
                    stripe: 2,
                    block_idx: 1,
                },
                vec![(0, Ghost(4))],
            ),
        ];
        let jobs = group_delta_jobs(contents);
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].stripe, 1);
        assert_eq!(
            jobs[0].deltas,
            vec![
                (0, 100, Ghost(10)),
                (0, 500, Ghost(20)),
                (2, 100, Ghost(10)),
            ]
        );
        assert_eq!(jobs[1].stripe, 2);
    }

    #[test]
    fn union_ranges_collapses_same_offset_across_blocks() {
        // Two blocks updated at the same stripe offset: Eq. 5 says one
        // parity delta covers both.
        let deltas = vec![
            (0u16, 100u32, Ghost(50)),
            (3u16, 100u32, Ghost(50)),
            (5u16, 100u32, Ghost(50)),
        ];
        assert_eq!(union_ranges(&deltas), vec![(100, 50)]);
    }

    #[test]
    fn union_ranges_merges_overlap_and_keeps_gaps() {
        let deltas = vec![
            (0u16, 0u32, Ghost(10)),
            (1u16, 5u32, Ghost(10)),  // overlaps
            (2u16, 15u32, Ghost(5)),  // touches
            (3u16, 100u32, Ghost(1)), // distinct
        ];
        assert_eq!(union_ranges(&deltas), vec![(0, 20), (100, 1)]);
    }

    #[test]
    fn parity_jobs_sorted() {
        let jobs = group_parity_jobs(vec![
            (
                ParityKey {
                    stripe: 2,
                    parity_idx: 1,
                },
                vec![(0, Ghost(4))],
            ),
            (
                ParityKey {
                    stripe: 1,
                    parity_idx: 0,
                },
                vec![(8, Ghost(4))],
            ),
        ]);
        assert_eq!(jobs[0].parity.stripe, 1);
        assert_eq!(jobs[1].parity.stripe, 2);
    }
}
