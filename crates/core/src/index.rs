//! The two-level index (§3.3.1): block hash map on top, offset-sorted
//! non-overlapping ranges below, with a bitmap accelerator per block.
//!
//! All spatio-temporal merging happens at insert time, so a log unit's index
//! always holds the *minimal* set of ranges needed to recycle it:
//!
//! * **same-position** records collapse — newest-wins for data
//!   ([`MergeMode::Overwrite`]), XOR-fold for deltas ([`MergeMode::Xor`],
//!   Eq. 3 of the paper);
//! * **adjacent** records concatenate into one larger range, turning many
//!   small random I/Os into few large ones;
//! * a per-block bitmap gives O(1) "definitely not present" answers so read
//!   lookups skip blocks that never saw an update.

use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

use crate::payload::Payload;

/// Bitmap chunk granularity (bytes per presence bit).
const SUB_GRAIN: u32 = 4096;

/// How same-position content resolves when records collide.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeMode {
    /// Newest record wins (DataLog semantics: Eq. 4 — only the latest value
    /// of an address matters).
    Overwrite,
    /// Records XOR together (DeltaLog/ParityLog semantics: Eq. 3 — deltas
    /// for one address fold into their net effect).
    Xor,
}

/// Per-block second level: offset-sorted, non-overlapping, non-adjacent
/// ranges plus the presence bitmap.
#[derive(Debug, Clone)]
pub struct BlockIndex<P> {
    entries: BTreeMap<u32, P>,
    bitmap: Vec<u64>,
    live_bytes: u64,
}

impl<P: Payload> Default for BlockIndex<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P: Payload> BlockIndex<P> {
    /// Empty block index.
    pub fn new() -> BlockIndex<P> {
        BlockIndex {
            entries: BTreeMap::new(),
            bitmap: Vec::new(),
            live_bytes: 0,
        }
    }

    /// Number of live (merged) ranges.
    pub fn range_count(&self) -> usize {
        self.entries.len()
    }

    /// Bytes held across live ranges.
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    fn mark_bitmap(&mut self, start: u32, end: u32) {
        let first = (start / SUB_GRAIN) as usize;
        let last = ((end - 1) / SUB_GRAIN) as usize;
        if last / 64 >= self.bitmap.len() {
            self.bitmap.resize(last / 64 + 1, 0);
        }
        for chunk in first..=last {
            self.bitmap[chunk / 64] |= 1 << (chunk % 64);
        }
    }

    /// Definite-miss test: `true` means no byte of `[off, off+len)` can be
    /// present (the fast path that spares the tree walk).
    pub fn definitely_absent(&self, off: u32, len: u32) -> bool {
        if len == 0 {
            return true;
        }
        let first = (off / SUB_GRAIN) as usize;
        let last = ((off + len - 1) / SUB_GRAIN) as usize;
        for chunk in first..=last {
            if let Some(word) = self.bitmap.get(chunk / 64) {
                if word >> (chunk % 64) & 1 == 1 {
                    return false;
                }
            }
        }
        true
    }

    /// Inserts a record at `off`, merging with everything it overlaps or
    /// touches.
    ///
    /// # Panics
    /// Panics on empty payloads or offset overflow.
    pub fn insert(&mut self, off: u32, payload: P, mode: MergeMode) {
        let len = payload.len();
        assert!(len > 0, "empty payload");
        let end = off.checked_add(len).expect("offset overflow");

        // Gather every entry overlapping or exactly touching [off, end].
        // Entries are non-overlapping and non-adjacent, so at most one can
        // start before `off` and still reach it.
        let mut collected: Vec<(u32, P)> = Vec::new();
        if let Some((&s, e)) = self.entries.range(..off).next_back() {
            if s + e.len() >= off {
                collected.push((s, self.entries.remove(&s).unwrap()));
            }
        }
        let overlapping: Vec<u32> = self.entries.range(off..=end).map(|(&s, _)| s).collect();
        for s in overlapping {
            let e = self.entries.remove(&s).unwrap();
            collected.push((s, e));
        }

        let removed_bytes: u64 = collected.iter().map(|(_, e)| e.len() as u64).sum();
        let merged = Self::sweep_merge(off, payload, &collected, mode);
        let (span_start, merged_payload) = merged;
        let added_bytes = merged_payload.len() as u64;
        let span_end = span_start + merged_payload.len();
        self.entries.insert(span_start, merged_payload);
        self.live_bytes = self.live_bytes - removed_bytes + added_bytes;
        self.mark_bitmap(span_start, span_end);
    }

    /// Segment sweep producing the single merged range covering the new
    /// record and everything it collided with.
    fn sweep_merge(off: u32, new: P, old: &[(u32, P)], mode: MergeMode) -> (u32, P) {
        let end = off + new.len();
        if old.is_empty() {
            return (off, new);
        }
        let span_start = off.min(old[0].0);
        let span_end = end.max(old.last().map(|(s, e)| s + e.len()).unwrap());

        // Boundary points: span edges, new edges, old edges.
        let mut points: Vec<u32> = Vec::with_capacity(old.len() * 2 + 4);
        points.push(span_start);
        points.push(span_end);
        points.push(off.clamp(span_start, span_end));
        points.push(end.clamp(span_start, span_end));
        for &(s, ref e) in old {
            points.push(s);
            points.push(s + e.len());
        }
        points.sort_unstable();
        points.dedup();

        let mut result: Option<P> = None;
        for w in points.windows(2) {
            let (a, b) = (w[0], w[1]);
            if a == b {
                continue;
            }
            let in_new = a >= off && b <= end;
            // Old entries are sorted and disjoint: binary-search the one
            // containing `a`, if any.
            let old_piece = old
                .iter()
                .find(|(s, e)| *s <= a && a < s + e.len())
                .map(|(s, e)| e.slice(a - s, b - s));
            let piece = match (old_piece, in_new) {
                (Some(op), true) => match mode {
                    MergeMode::Overwrite => new.slice(a - off, b - off),
                    MergeMode::Xor => {
                        let mut x = op;
                        x.xor_with(&new.slice(a - off, b - off));
                        x
                    }
                },
                (Some(op), false) => op,
                (None, true) => new.slice(a - off, b - off),
                (None, false) => {
                    debug_assert!(false, "uncovered segment [{a}, {b})");
                    continue;
                }
            };
            result = Some(match result {
                None => piece,
                Some(acc) => acc.concat(piece),
            });
        }
        (span_start, result.expect("at least one segment"))
    }

    /// Pieces of `[off, off+len)` that are present, clipped to the query,
    /// as `(piece_offset, payload)` sorted by offset.
    pub fn lookup(&self, off: u32, len: u32) -> Vec<(u32, P)> {
        if len == 0 || self.definitely_absent(off, len) {
            return Vec::new();
        }
        let end = off + len;
        let mut out = Vec::new();
        if let Some((&s, e)) = self.entries.range(..off).next_back() {
            let e_end = s + e.len();
            if e_end > off {
                out.push((off, e.slice(off - s, e_end.min(end) - s)));
            }
        }
        for (&s, e) in self.entries.range(off..end) {
            let e_end = s + e.len();
            out.push((s, e.slice(0, e_end.min(end) - s)));
        }
        out
    }

    /// Whether `[off, off+len)` is fully covered by live ranges.
    pub fn covers(&self, off: u32, len: u32) -> bool {
        let mut cursor = off;
        let end = off + len;
        for (s, p) in self.lookup(off, len) {
            if s > cursor {
                return false;
            }
            cursor = cursor.max(s + p.len());
            if cursor >= end {
                return true;
            }
        }
        cursor >= end
    }

    /// Consumes the index, yielding sorted `(offset, payload)` ranges.
    pub fn into_sorted_ranges(self) -> Vec<(u32, P)> {
        self.entries.into_iter().collect()
    }

    /// Iterates live ranges in offset order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &P)> {
        self.entries.iter().map(|(&o, p)| (o, p))
    }
}

/// Cumulative merge statistics for one index.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Records inserted.
    pub records_in: u64,
    /// Bytes inserted.
    pub bytes_in: u64,
}

/// The two-level index: block hash map over [`BlockIndex`]es.
#[derive(Debug, Clone)]
pub struct TwoLevelIndex<K, P> {
    blocks: HashMap<K, BlockIndex<P>>,
    mode: MergeMode,
    stats: IndexStats,
}

impl<K: Hash + Eq + Clone, P: Payload> TwoLevelIndex<K, P> {
    /// Empty index with the given merge mode.
    pub fn new(mode: MergeMode) -> TwoLevelIndex<K, P> {
        TwoLevelIndex {
            blocks: HashMap::new(),
            mode,
            stats: IndexStats::default(),
        }
    }

    /// The merge mode in force.
    pub fn mode(&self) -> MergeMode {
        self.mode
    }

    /// Inserts one record.
    pub fn insert(&mut self, key: K, off: u32, payload: P) {
        self.stats.records_in += 1;
        self.stats.bytes_in += payload.len() as u64;
        match self.blocks.entry(key) {
            Entry::Occupied(mut e) => e.get_mut().insert(off, payload, self.mode),
            Entry::Vacant(v) => {
                v.insert(BlockIndex::new()).insert(off, payload, self.mode);
            }
        }
    }

    /// Looks up present pieces of a range under `key`.
    pub fn lookup(&self, key: &K, off: u32, len: u32) -> Vec<(u32, P)> {
        self.blocks
            .get(key)
            .map(|b| b.lookup(off, len))
            .unwrap_or_default()
    }

    /// Whether a range is fully covered.
    pub fn covers(&self, key: &K, off: u32, len: u32) -> bool {
        self.blocks
            .get(key)
            .map(|b| b.covers(off, len))
            .unwrap_or(false)
    }

    /// Fast definite-miss test.
    pub fn definitely_absent(&self, key: &K, off: u32, len: u32) -> bool {
        self.blocks
            .get(key)
            .map(|b| b.definitely_absent(off, len))
            .unwrap_or(true)
    }

    /// Removes one block's ranges (sorted) from the index.
    pub fn remove_block(&mut self, key: &K) -> Option<Vec<(u32, P)>> {
        self.blocks.remove(key).map(|b| b.into_sorted_ranges())
    }

    /// Drains the whole index as `(key, sorted ranges)` pairs.
    pub fn drain_all(&mut self) -> Vec<(K, Vec<(u32, P)>)> {
        self.blocks
            .drain()
            .map(|(k, b)| (k, b.into_sorted_ranges()))
            .collect()
    }

    /// Keys with live ranges.
    pub fn block_keys(&self) -> impl Iterator<Item = &K> {
        self.blocks.keys()
    }

    /// Number of blocks with live ranges.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Live (merged) ranges across all blocks.
    pub fn range_count(&self) -> usize {
        self.blocks.values().map(|b| b.range_count()).sum()
    }

    /// Live bytes across all blocks.
    pub fn live_bytes(&self) -> u64 {
        self.blocks.values().map(|b| b.live_bytes()).sum()
    }

    /// Insert-side statistics.
    pub fn stats(&self) -> IndexStats {
        self.stats
    }

    /// Records-in over ranges-out: how much the index shrank the workload
    /// (≥ 1; higher is better for recycle efficiency).
    pub fn merge_ratio(&self) -> f64 {
        let live = self.range_count().max(1) as f64;
        self.stats.records_in as f64 / live
    }

    /// Clears everything (unit reuse), keeping allocation capacity.
    pub fn clear(&mut self) {
        self.blocks.clear();
        self.stats = IndexStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::{Data, Ghost};

    #[test]
    fn duplicate_records_merge_to_one() {
        let mut b: BlockIndex<Ghost> = BlockIndex::new();
        for _ in 0..10 {
            b.insert(100, Ghost(50), MergeMode::Overwrite);
        }
        assert_eq!(b.range_count(), 1);
        assert_eq!(b.live_bytes(), 50);
    }

    #[test]
    fn adjacent_records_concatenate() {
        let mut b: BlockIndex<Ghost> = BlockIndex::new();
        b.insert(0, Ghost(10), MergeMode::Overwrite);
        b.insert(10, Ghost(10), MergeMode::Overwrite);
        b.insert(20, Ghost(10), MergeMode::Overwrite);
        assert_eq!(b.range_count(), 1);
        assert_eq!(b.into_sorted_ranges(), vec![(0, Ghost(30))]);
    }

    #[test]
    fn disjoint_records_stay_separate() {
        let mut b: BlockIndex<Ghost> = BlockIndex::new();
        b.insert(0, Ghost(10), MergeMode::Overwrite);
        b.insert(100, Ghost(10), MergeMode::Overwrite);
        assert_eq!(b.range_count(), 2);
    }

    #[test]
    fn overwrite_newest_wins_bytes() {
        let mut b: BlockIndex<Data> = BlockIndex::new();
        b.insert(0, Data::copy_from(&[1, 1, 1, 1]), MergeMode::Overwrite);
        b.insert(1, Data::copy_from(&[2, 2]), MergeMode::Overwrite);
        let ranges = b.into_sorted_ranges();
        assert_eq!(ranges.len(), 1);
        assert_eq!(ranges[0].0, 0);
        assert_eq!(ranges[0].1.as_slice(), &[1, 2, 2, 1]);
    }

    #[test]
    fn xor_mode_folds_overlap() {
        let mut b: BlockIndex<Data> = BlockIndex::new();
        b.insert(0, Data::copy_from(&[0xf0, 0xf0]), MergeMode::Xor);
        b.insert(1, Data::copy_from(&[0x0f, 0x0f]), MergeMode::Xor);
        let ranges = b.into_sorted_ranges();
        assert_eq!(ranges.len(), 1);
        assert_eq!(ranges[0].1.as_slice(), &[0xf0, 0xff, 0x0f]);
    }

    #[test]
    fn bridge_merge_spans_gap() {
        // [0,4) and [8,12) bridged by [2,10): one range [0,12).
        let mut b: BlockIndex<Ghost> = BlockIndex::new();
        b.insert(0, Ghost(4), MergeMode::Overwrite);
        b.insert(8, Ghost(4), MergeMode::Overwrite);
        b.insert(2, Ghost(8), MergeMode::Overwrite);
        assert_eq!(b.into_sorted_ranges(), vec![(0, Ghost(12))]);
    }

    #[test]
    fn lookup_clips_to_query() {
        let mut b: BlockIndex<Data> = BlockIndex::new();
        b.insert(
            10,
            Data::copy_from(&[1, 2, 3, 4, 5, 6]),
            MergeMode::Overwrite,
        );
        let hits = b.lookup(12, 2);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, 12);
        assert_eq!(hits[0].1.as_slice(), &[3, 4]);
    }

    #[test]
    fn covers_detects_gaps() {
        let mut b: BlockIndex<Ghost> = BlockIndex::new();
        b.insert(0, Ghost(10), MergeMode::Overwrite);
        b.insert(20, Ghost(10), MergeMode::Overwrite);
        assert!(b.covers(0, 10));
        assert!(b.covers(22, 5));
        assert!(!b.covers(5, 10));
        assert!(!b.covers(0, 30));
    }

    #[test]
    fn bitmap_definite_absent() {
        let mut b: BlockIndex<Ghost> = BlockIndex::new();
        b.insert(0, Ghost(100), MergeMode::Overwrite);
        assert!(!b.definitely_absent(0, 10));
        assert!(!b.definitely_absent(200, 10)); // same 4 KiB chunk: maybe
        assert!(b.definitely_absent(1 << 20, 10)); // far away: definitely not
    }

    #[test]
    fn two_level_insert_lookup_remove() {
        let mut idx: TwoLevelIndex<u64, Ghost> = TwoLevelIndex::new(MergeMode::Overwrite);
        idx.insert(1, 0, Ghost(10));
        idx.insert(2, 0, Ghost(20));
        idx.insert(1, 10, Ghost(10));
        assert_eq!(idx.block_count(), 2);
        assert_eq!(idx.range_count(), 2);
        assert_eq!(idx.live_bytes(), 40);
        assert_eq!(idx.lookup(&1, 0, 100), vec![(0, Ghost(20))]);
        assert!(idx.covers(&1, 5, 10));
        assert!(!idx.covers(&3, 0, 1));
        assert_eq!(idx.remove_block(&1), Some(vec![(0, Ghost(20))]));
        assert_eq!(idx.remove_block(&1), None);
        assert_eq!(idx.block_count(), 1);
    }

    #[test]
    fn merge_ratio_reflects_consolidation() {
        let mut idx: TwoLevelIndex<u64, Ghost> = TwoLevelIndex::new(MergeMode::Overwrite);
        for _ in 0..100 {
            idx.insert(1, 0, Ghost(4096));
        }
        assert_eq!(idx.stats().records_in, 100);
        assert_eq!(idx.range_count(), 1);
        assert!((idx.merge_ratio() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn clear_resets() {
        let mut idx: TwoLevelIndex<u64, Ghost> = TwoLevelIndex::new(MergeMode::Xor);
        idx.insert(1, 0, Ghost(10));
        idx.clear();
        assert_eq!(idx.block_count(), 0);
        assert_eq!(idx.stats(), IndexStats::default());
    }

    #[test]
    fn drain_all_returns_everything_sorted() {
        let mut idx: TwoLevelIndex<u64, Ghost> = TwoLevelIndex::new(MergeMode::Overwrite);
        idx.insert(5, 40, Ghost(8));
        idx.insert(5, 0, Ghost(8));
        idx.insert(9, 16, Ghost(8));
        let mut all = idx.drain_all();
        all.sort_by_key(|(k, _)| *k);
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].1, vec![(0, Ghost(8)), (40, Ghost(8))]);
        assert_eq!(idx.block_count(), 0);
    }

    #[test]
    fn many_interleaved_inserts_maintain_invariants() {
        // Non-overlap + non-adjacency invariant after arbitrary churn.
        let mut b: BlockIndex<Ghost> = BlockIndex::new();
        let mut x = 12345u64;
        for _ in 0..5000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let off = ((x >> 20) % 100_000) as u32;
            let len = ((x >> 8) % 512 + 1) as u32;
            b.insert(off, Ghost(len), MergeMode::Overwrite);
        }
        let ranges = b.into_sorted_ranges();
        for w in ranges.windows(2) {
            let (s1, ref p1) = w[0];
            let (s2, _) = w[1];
            assert!(s1 + p1.len() < s2, "ranges overlap or touch: {w:?}");
        }
    }
}
