//! Log-record payloads: real bytes for the engine, ghost lengths for the
//! cluster simulator.

use bytes::{Bytes, BytesMut};

/// What a log record carries.
///
/// The index only needs four structural operations to merge records; both a
/// real byte buffer and a length-only stand-in satisfy them, so the whole
/// log machinery is generic and the simulator never pays for data it does
/// not need.
pub trait Payload: Clone + std::fmt::Debug {
    /// Length in bytes.
    fn len(&self) -> u32;

    /// Whether the payload is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sub-range `[from, to)`.
    ///
    /// # Panics
    /// Panics if `from > to` or `to > len`.
    fn slice(&self, from: u32, to: u32) -> Self;

    /// Concatenation `self ++ other` (adjacent-range merge).
    fn concat(self, other: Self) -> Self;

    /// XORs `other` into `self` (same-position delta merge, Eq. 3).
    ///
    /// # Panics
    /// Panics if lengths differ.
    fn xor_with(&mut self, other: &Self);
}

/// A real byte payload backed by [`Bytes`] (O(1) slicing, cheap clones).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Data(pub Bytes);

impl Data {
    /// Copies a slice into a payload.
    pub fn copy_from(bytes: &[u8]) -> Data {
        Data(Bytes::copy_from_slice(bytes))
    }

    /// A zero-filled payload of `len` bytes.
    pub fn zeroed(len: u32) -> Data {
        Data(Bytes::from(vec![0u8; len as usize]))
    }

    /// Borrow of the bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }
}

impl Payload for Data {
    fn len(&self) -> u32 {
        self.0.len() as u32
    }

    fn slice(&self, from: u32, to: u32) -> Self {
        Data(self.0.slice(from as usize..to as usize))
    }

    fn concat(self, other: Self) -> Self {
        if self.0.is_empty() {
            return other;
        }
        if other.0.is_empty() {
            return self;
        }
        let mut buf = BytesMut::with_capacity(self.0.len() + other.0.len());
        buf.extend_from_slice(&self.0);
        buf.extend_from_slice(&other.0);
        Data(buf.freeze())
    }

    fn xor_with(&mut self, other: &Self) {
        assert_eq!(self.0.len(), other.0.len(), "xor_with: length mismatch");
        let mut buf = BytesMut::from(&self.0[..]);
        for (b, o) in buf.iter_mut().zip(other.0.iter()) {
            *b ^= o;
        }
        self.0 = buf.freeze();
    }
}

/// A length-only payload: the simulator's stand-in for real data.
///
/// All structural operations are O(1); XOR merging is a no-op on content
/// (the *length* bookkeeping is what the simulator measures).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ghost(pub u32);

impl Payload for Ghost {
    fn len(&self) -> u32 {
        self.0
    }

    fn slice(&self, from: u32, to: u32) -> Self {
        assert!(from <= to && to <= self.0, "slice out of range");
        Ghost(to - from)
    }

    fn concat(self, other: Self) -> Self {
        Ghost(self.0 + other.0)
    }

    fn xor_with(&mut self, other: &Self) {
        assert_eq!(self.0, other.0, "xor_with: length mismatch");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_roundtrip() {
        let d = Data::copy_from(&[1, 2, 3, 4, 5]);
        assert_eq!(d.len(), 5);
        assert!(!d.is_empty());
        assert_eq!(d.slice(1, 4).as_slice(), &[2, 3, 4]);
        let e = d.clone().concat(Data::copy_from(&[9]));
        assert_eq!(e.as_slice(), &[1, 2, 3, 4, 5, 9]);
    }

    #[test]
    fn data_xor() {
        let mut a = Data::copy_from(&[0xff, 0x00, 0xaa]);
        a.xor_with(&Data::copy_from(&[0x0f, 0xf0, 0xaa]));
        assert_eq!(a.as_slice(), &[0xf0, 0xf0, 0x00]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn data_xor_length_mismatch_panics() {
        let mut a = Data::copy_from(&[1]);
        a.xor_with(&Data::copy_from(&[1, 2]));
    }

    #[test]
    fn ghost_mirrors_data_structure() {
        let g = Ghost(100);
        assert_eq!(g.slice(10, 30), Ghost(20));
        assert_eq!(g.concat(Ghost(28)), Ghost(128));
        let mut h = Ghost(4);
        h.xor_with(&Ghost(4));
        assert_eq!(h, Ghost(4));
    }

    #[test]
    #[should_panic(expected = "slice out of range")]
    fn ghost_slice_bounds() {
        let _ = Ghost(10).slice(5, 20);
    }

    #[test]
    fn zeroed_and_empty() {
        assert_eq!(Data::zeroed(3).as_slice(), &[0, 0, 0]);
        assert!(Data::copy_from(&[]).is_empty());
        assert!(Ghost(0).is_empty());
    }
}
