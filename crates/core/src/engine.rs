//! A real, multi-threaded, single-node TSUE engine over in-memory stripes.
//!
//! This is the byte-exact realisation of the paper's two-stage pipeline:
//!
//! * **front end** — [`TsueEngine::update`] appends the new bytes to the
//!   DataLog and returns (the paper's "ack after data-log append");
//! * **back end** — recycler threads drain DataLog units into data blocks
//!   (computing deltas under the block lock), forward deltas to the
//!   DeltaLog, combine them per stripe into parity deltas (Eq. 5), forward
//!   those to the ParityLog, and finally XOR them into parity blocks.
//!
//! The engine exists to *prove the scheme correct under concurrency*: after
//! [`TsueEngine::flush`], every stripe's parity equals a fresh re-encode of
//! its data blocks, no matter how many writer and recycler threads raced.
//! The cluster simulator reuses the same pool/index types with ghost
//! payloads for performance modelling; this engine runs them with real
//! bytes and real `parking_lot`/`crossbeam` concurrency.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex, RwLock};
use rscode::{CodeParams, ReedSolomon};

use crate::index::MergeMode;
use crate::layers::{
    group_data_jobs, group_delta_jobs, group_parity_jobs, BlockId, LogPoolSet, ParityKey,
    StripeBlock,
};
use crate::payload::{Data, Payload};
use crate::pool::{AppendOutcome, PoolConfig};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// RS(k, m) shape.
    pub code: CodeParams,
    /// Bytes per block.
    pub block_len: u32,
    /// Number of stripes managed.
    pub stripes: u64,
    /// Log-unit size for all three layers (small values exercise sealing).
    pub unit_bytes: u64,
    /// Unit quota per pool.
    pub max_units: usize,
    /// Pools per layer.
    pub pools_per_layer: usize,
    /// Background recycler threads.
    pub recycler_threads: usize,
}

/// A rejected engine configuration, with the reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineConfigError(pub String);

impl std::fmt::Display for EngineConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid engine configuration: {}", self.0)
    }
}

impl std::error::Error for EngineConfigError {}

impl EngineConfig {
    /// A small configuration suitable for tests and examples.
    pub fn small(code: CodeParams) -> EngineConfig {
        EngineConfig {
            code,
            block_len: 64 << 10,
            stripes: 4,
            unit_bytes: 64 << 10,
            max_units: 4,
            pools_per_layer: 2,
            recycler_threads: 2,
        }
    }

    /// A builder starting from [`Self::small`]'s defaults.
    ///
    /// ```
    /// use rscode::CodeParams;
    /// use tsue::engine::EngineConfig;
    ///
    /// let cfg = EngineConfig::builder(CodeParams::new(4, 2).unwrap())
    ///     .stripes(8)
    ///     .recycler_threads(3)
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(cfg.recycler_threads, 3);
    ///
    /// // A pipeline with no recyclers would never drain:
    /// assert!(EngineConfig::builder(CodeParams::new(4, 2).unwrap())
    ///     .recycler_threads(0)
    ///     .build()
    ///     .is_err());
    /// ```
    pub fn builder(code: CodeParams) -> EngineConfigBuilder {
        EngineConfigBuilder {
            inner: EngineConfig::small(code),
        }
    }

    /// Validates cross-field invariants.
    pub fn validate(&self) -> Result<(), EngineConfigError> {
        if self.recycler_threads == 0 {
            return Err(EngineConfigError(
                "recycler_threads must be at least 1 (the back end would never drain)".into(),
            ));
        }
        if self.pools_per_layer == 0 {
            return Err(EngineConfigError(
                "pools_per_layer must be at least 1".into(),
            ));
        }
        if self.max_units < 2 {
            return Err(EngineConfigError(
                "max_units must be at least 2 (one appending, one recycling)".into(),
            ));
        }
        if self.stripes == 0 {
            return Err(EngineConfigError("stripes must be at least 1".into()));
        }
        if self.block_len == 0 {
            return Err(EngineConfigError("block_len must be positive".into()));
        }
        if self.unit_bytes < 1024 {
            return Err(EngineConfigError(format!(
                "unit_bytes = {} is below the 1 KiB slice floor — appends larger than a \
                 unit can never be logged",
                self.unit_bytes
            )));
        }
        Ok(())
    }
}

/// Builder for [`EngineConfig`] (see [`EngineConfig::builder`]).
#[derive(Debug, Clone)]
pub struct EngineConfigBuilder {
    inner: EngineConfig,
}

impl EngineConfigBuilder {
    /// Bytes per block.
    pub fn block_len(mut self, len: u32) -> Self {
        self.inner.block_len = len;
        self
    }

    /// Number of stripes managed.
    pub fn stripes(mut self, stripes: u64) -> Self {
        self.inner.stripes = stripes;
        self
    }

    /// Log-unit size for all three layers.
    pub fn unit_bytes(mut self, bytes: u64) -> Self {
        self.inner.unit_bytes = bytes;
        self
    }

    /// Unit quota per pool.
    pub fn max_units(mut self, units: usize) -> Self {
        self.inner.max_units = units;
        self
    }

    /// Pools per layer.
    pub fn pools_per_layer(mut self, pools: usize) -> Self {
        self.inner.pools_per_layer = pools;
        self
    }

    /// Background recycler threads.
    pub fn recycler_threads(mut self, threads: usize) -> Self {
        self.inner.recycler_threads = threads;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<EngineConfig, EngineConfigError> {
        self.inner.validate()?;
        Ok(self.inner)
    }
}

struct Shared {
    cfg: EngineConfig,
    rs: ReedSolomon,
    /// All blocks: stripe-major, `k` data then `m` parity per stripe.
    blocks: Vec<RwLock<Vec<u8>>>,
    data_log: Mutex<LogPoolSet<BlockId, Data>>,
    delta_log: Mutex<LogPoolSet<StripeBlock, Data>>,
    parity_log: Mutex<LogPoolSet<ParityKey, Data>>,
    /// Signalled whenever a unit is sealed or recycled (wakes recyclers and
    /// stalled appenders).
    work_cv: Condvar,
    work_mx: Mutex<()>,
    /// Units currently being recycled across all layers.
    in_flight: AtomicU64,
    shutdown: AtomicBool,
    /// Updates acknowledged (appended to the data log).
    acked: AtomicU64,
    /// Updates fully folded into data blocks.
    applied_ranges: AtomicU64,
}

impl Shared {
    fn block_slot(&self, stripe: u64, idx: usize) -> usize {
        let per = self.cfg.code.total();
        stripe as usize * per + idx
    }

    fn data_block_id(&self, stripe: u64, block_idx: u16) -> BlockId {
        stripe * self.cfg.code.k() as u64 + block_idx as u64
    }

    fn id_to_stripe_block(&self, id: BlockId) -> (u64, u16) {
        let k = self.cfg.code.k() as u64;
        (id / k, (id % k) as u16)
    }

    /// Processes one recyclable unit from any layer; returns false if there
    /// was nothing to do. Terminal layers first so stalled upper layers
    /// drain fastest.
    fn recycle_once(&self) -> bool {
        if self.recycle_parity_once() {
            return true;
        }
        if self.recycle_delta_once() {
            return true;
        }
        self.recycle_data_once()
    }

    /// DataLog recycle: fold newest data into blocks, forward deltas.
    fn recycle_data_once(&self) -> bool {
        let taken = {
            let mut log = self.data_log.lock();
            // Ordered take: per-pool serialisation keeps newest-wins safe.
            log.take_recyclable_ordered()
        };
        let Some((pool_idx, taken)) = taken else {
            return false;
        };
        let unit_id = taken.id;
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        for job in group_data_jobs(taken.contents) {
            let (stripe, block_idx) = self.id_to_stripe_block(job.block);
            let slot = self.block_slot(stripe, block_idx as usize);
            // Compute deltas and apply new data under the block lock.
            let mut deltas: Vec<(u32, Data)> = Vec::with_capacity(job.ranges.len());
            {
                let mut block = self.blocks[slot].write();
                for (off, data) in &job.ranges {
                    let bytes = data.as_slice();
                    let start = *off as usize;
                    let old = &block[start..start + bytes.len()];
                    let delta: Vec<u8> = old.iter().zip(bytes).map(|(o, n)| o ^ n).collect();
                    deltas.push((*off, Data::copy_from(&delta)));
                    block[start..start + bytes.len()].copy_from_slice(bytes);
                    self.applied_ranges.fetch_add(1, Ordering::Relaxed);
                }
            }
            // Forward each delta to the DeltaLog (Eq. 2's ΔD).
            let key = StripeBlock { stripe, block_idx };
            for (off, delta) in deltas {
                self.append_with_backpressure(Layer::Delta, move |sh| {
                    let mut log = sh.delta_log.lock();
                    log.append(key, off, delta.clone(), 0).1
                });
            }
        }
        self.data_log
            .lock()
            .pool_mut(pool_idx)
            .finish_recycle(unit_id);
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
        self.work_cv.notify_all();
        true
    }

    /// DeltaLog recycle: combine per stripe (Eq. 5), forward parity deltas.
    fn recycle_delta_once(&self) -> bool {
        let taken = {
            let mut log = self.delta_log.lock();
            log.take_recyclable_any()
        };
        let Some((pool_idx, taken)) = taken else {
            return false;
        };
        let unit_id = taken.id;
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        let m = self.cfg.code.m();
        for job in group_delta_jobs(taken.contents) {
            // For each parity block: one combined delta per union range.
            for p in 0..m as u16 {
                for (off, len) in crate::layers::union_ranges(&job.deltas) {
                    let mut acc = vec![0u8; len as usize];
                    for (block_idx, doff, delta) in &job.deltas {
                        let dlen = delta.len();
                        // Overlap of [doff, doff+dlen) with [off, off+len).
                        let lo = (*doff).max(off);
                        let hi = (doff + dlen).min(off + len);
                        if lo >= hi {
                            continue;
                        }
                        let coeff = self.rs.coefficient(p as usize, *block_idx as usize);
                        let piece = delta.slice(lo - doff, hi - doff);
                        gf256::slice::mul_acc(
                            &mut acc[(lo - off) as usize..(hi - off) as usize],
                            piece.as_slice(),
                            coeff.value(),
                        );
                    }
                    let key = ParityKey {
                        stripe: job.stripe,
                        parity_idx: p,
                    };
                    let payload = Data::copy_from(&acc);
                    self.append_with_backpressure(Layer::Parity, move |sh| {
                        let mut log = sh.parity_log.lock();
                        log.append(key, off, payload.clone(), 0).1
                    });
                }
            }
        }
        self.delta_log
            .lock()
            .pool_mut(pool_idx)
            .finish_recycle(unit_id);
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
        self.work_cv.notify_all();
        true
    }

    /// ParityLog recycle: XOR parity deltas into parity blocks (terminal).
    fn recycle_parity_once(&self) -> bool {
        let taken = {
            let mut log = self.parity_log.lock();
            log.take_recyclable_any()
        };
        let Some((pool_idx, taken)) = taken else {
            return false;
        };
        let unit_id = taken.id;
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        for job in group_parity_jobs(taken.contents) {
            let slot = self.block_slot(
                job.parity.stripe,
                self.cfg.code.k() + job.parity.parity_idx as usize,
            );
            let mut block = self.blocks[slot].write();
            for (off, delta) in &job.ranges {
                let start = *off as usize;
                gf256::slice::xor(
                    &mut block[start..start + delta.len() as usize],
                    delta.as_slice(),
                );
            }
        }
        self.parity_log
            .lock()
            .pool_mut(pool_idx)
            .finish_recycle(unit_id);
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
        self.work_cv.notify_all();
        true
    }

    /// Appends via `try_append`, handling [`AppendOutcome::Stalled`] by
    /// inline-recycling downstream layers (guaranteed progress: the parity
    /// layer is terminal).
    fn append_with_backpressure<F>(&self, layer: Layer, try_append: F)
    where
        F: Fn(&Shared) -> AppendOutcome,
    {
        loop {
            match try_append(self) {
                AppendOutcome::Appended | AppendOutcome::AppendedAndSealed(_) => {
                    self.work_cv.notify_all();
                    return;
                }
                AppendOutcome::Stalled => {
                    // Free space in this layer by recycling it (and, for the
                    // delta layer, its downstream parity layer) inline.
                    let progressed = match layer {
                        Layer::Delta => self.recycle_delta_once() || self.recycle_parity_once(),
                        Layer::Parity => self.recycle_parity_once(),
                    };
                    if !progressed {
                        // Another thread holds the unit: wait for it.
                        let mut guard = self.work_mx.lock();
                        self.work_cv
                            .wait_for(&mut guard, std::time::Duration::from_millis(1));
                    }
                }
            }
        }
    }
}

/// Internal marker for downstream layers (data-layer appends come from the
/// public API and handle back-pressure separately).
#[derive(Clone, Copy)]
enum Layer {
    Delta,
    Parity,
}

/// The public engine handle. Dropping it stops the recycler threads.
pub struct TsueEngine {
    shared: Arc<Shared>,
    recyclers: Vec<JoinHandle<()>>,
}

impl TsueEngine {
    /// Builds the engine and starts its recycler threads. All blocks start
    /// zeroed (a valid codeword: parity of zeros is zeros).
    ///
    /// # Panics
    /// Panics on an invalid configuration (see [`EngineConfig::validate`];
    /// use [`EngineConfig::builder`] for a non-panicking path).
    pub fn new(cfg: EngineConfig) -> TsueEngine {
        cfg.validate().expect("invalid engine config");
        let rs = ReedSolomon::new(cfg.code);
        let total_blocks = cfg.stripes as usize * cfg.code.total();
        let pool_cfg = |mode| PoolConfig {
            unit_bytes: cfg.unit_bytes,
            min_units: 2,
            max_units: cfg.max_units,
            mode,
        };
        let shared = Arc::new(Shared {
            rs,
            blocks: (0..total_blocks)
                .map(|_| RwLock::new(vec![0u8; cfg.block_len as usize]))
                .collect(),
            data_log: Mutex::new(LogPoolSet::new(
                cfg.pools_per_layer,
                pool_cfg(MergeMode::Overwrite),
            )),
            delta_log: Mutex::new(LogPoolSet::new(
                cfg.pools_per_layer,
                pool_cfg(MergeMode::Xor),
            )),
            parity_log: Mutex::new(LogPoolSet::new(
                cfg.pools_per_layer,
                pool_cfg(MergeMode::Xor),
            )),
            work_cv: Condvar::new(),
            work_mx: Mutex::new(()),
            in_flight: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            acked: AtomicU64::new(0),
            applied_ranges: AtomicU64::new(0),
            cfg,
        });
        let recyclers = (0..shared.cfg.recycler_threads)
            .map(|_| {
                let sh = Arc::clone(&shared);
                std::thread::spawn(move || {
                    while !sh.shutdown.load(Ordering::SeqCst) {
                        if !sh.recycle_once() {
                            let mut guard = sh.work_mx.lock();
                            sh.work_cv
                                .wait_for(&mut guard, std::time::Duration::from_millis(1));
                        }
                    }
                })
            })
            .collect();
        TsueEngine { shared, recyclers }
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.shared.cfg
    }

    /// Front-end update: appends `bytes` at `offset` of data block
    /// `(stripe, block_idx)` to the DataLog and returns once logged — the
    /// two-stage ack point. Blocks (briefly) under log back-pressure.
    ///
    /// # Panics
    /// Panics on out-of-range stripe/block/offset.
    pub fn update(&self, stripe: u64, block_idx: u16, offset: u32, bytes: &[u8]) {
        let cfg = &self.shared.cfg;
        assert!(stripe < cfg.stripes, "stripe out of range");
        assert!((block_idx as usize) < cfg.code.k(), "not a data block");
        assert!(
            offset as usize + bytes.len() <= cfg.block_len as usize,
            "update beyond block"
        );
        assert!(!bytes.is_empty(), "empty update");
        let id = self.shared.data_block_id(stripe, block_idx);
        let payload = Data::copy_from(bytes);
        loop {
            let outcome = {
                let mut log = self.shared.data_log.lock();
                log.append(id, offset, payload.clone(), 0).1
            };
            match outcome {
                AppendOutcome::Appended | AppendOutcome::AppendedAndSealed(_) => {
                    self.shared.acked.fetch_add(1, Ordering::Relaxed);
                    self.shared.work_cv.notify_all();
                    return;
                }
                AppendOutcome::Stalled => {
                    // Help out rather than spin.
                    if !self.shared.recycle_once() {
                        let mut guard = self.shared.work_mx.lock();
                        self.shared
                            .work_cv
                            .wait_for(&mut guard, std::time::Duration::from_millis(1));
                    }
                }
            }
        }
    }

    /// Reads `len` bytes at `offset` of a data block through the log cache:
    /// log pieces overlay the block content, newest last (§3.3.3's
    /// read-your-writes guarantee).
    pub fn read(&self, stripe: u64, block_idx: u16, offset: u32, len: u32) -> Vec<u8> {
        let cfg = &self.shared.cfg;
        assert!(stripe < cfg.stripes, "stripe out of range");
        assert!((block_idx as usize) < cfg.code.k(), "not a data block");
        assert!(offset + len <= cfg.block_len, "read beyond block");
        let slot = self.shared.block_slot(stripe, block_idx as usize);
        let mut out = {
            let block = self.shared.blocks[slot].read();
            block[offset as usize..(offset + len) as usize].to_vec()
        };
        let id = self.shared.data_block_id(stripe, block_idx);
        let pieces = {
            let mut log = self.shared.data_log.lock();
            log.lookup(&id, offset, len)
        };
        for (o, p) in pieces {
            let rel = (o - offset) as usize;
            out[rel..rel + p.len() as usize].copy_from_slice(p.as_slice());
        }
        out
    }

    /// Drains every layer: seals active units and recycles until all three
    /// logs are empty and no unit is in flight. Afterwards all acknowledged
    /// updates are folded into data *and* parity blocks.
    ///
    /// Callers must quiesce their own writers first: updates racing with
    /// `flush` are durable but may not be folded when it returns.
    pub fn flush(&self) {
        loop {
            {
                self.shared.data_log.lock().seal_all_active(0);
                self.shared.delta_log.lock().seal_all_active(0);
                self.shared.parity_log.lock().seal_all_active(0);
            }
            // Help recycle inline.
            while self.shared.recycle_once() {}
            let quiet = {
                let data = self.shared.data_log.lock();
                let delta = self.shared.delta_log.lock();
                let parity = self.shared.parity_log.lock();
                data.is_fully_drained()
                    && delta.is_fully_drained()
                    && parity.is_fully_drained()
                    && data.active_bytes() == 0
                    && delta.active_bytes() == 0
                    && parity.active_bytes() == 0
            };
            if quiet && self.shared.in_flight.load(Ordering::SeqCst) == 0 {
                return;
            }
            std::thread::yield_now();
        }
    }

    /// Verifies that every stripe's parity equals a fresh re-encode of its
    /// data blocks. Call after [`Self::flush`].
    pub fn verify_parity(&self) -> bool {
        let cfg = &self.shared.cfg;
        let (k, m) = (cfg.code.k(), cfg.code.m());
        for stripe in 0..cfg.stripes {
            let data: Vec<Vec<u8>> = (0..k)
                .map(|j| {
                    self.shared.blocks[self.shared.block_slot(stripe, j)]
                        .read()
                        .clone()
                })
                .collect();
            let data_refs: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
            let mut expect: Vec<Vec<u8>> = vec![vec![0u8; cfg.block_len as usize]; m];
            let mut expect_refs: Vec<&mut [u8]> =
                expect.iter_mut().map(|v| v.as_mut_slice()).collect();
            self.shared
                .rs
                .encode(&data_refs, &mut expect_refs)
                .expect("encode");
            for (p, exp) in expect.iter().enumerate() {
                let actual = self.shared.blocks[self.shared.block_slot(stripe, k + p)].read();
                if *actual != *exp {
                    return false;
                }
            }
        }
        true
    }

    /// Number of acknowledged updates.
    pub fn acked_updates(&self) -> u64 {
        self.shared.acked.load(Ordering::Relaxed)
    }

    /// Number of merged ranges applied to data blocks so far.
    pub fn applied_ranges(&self) -> u64 {
        self.shared.applied_ranges.load(Ordering::Relaxed)
    }

    /// A raw copy of a block (data or parity) for test oracles.
    pub fn raw_block(&self, stripe: u64, idx: usize) -> Vec<u8> {
        self.shared.blocks[self.shared.block_slot(stripe, idx)]
            .read()
            .clone()
    }
}

impl Drop for TsueEngine {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.work_cv.notify_all();
        for h in self.recyclers.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> TsueEngine {
        TsueEngine::new(EngineConfig {
            code: CodeParams::new(4, 2).unwrap(),
            block_len: 16 << 10,
            stripes: 3,
            unit_bytes: 8 << 10,
            max_units: 4,
            pools_per_layer: 2,
            recycler_threads: 2,
        })
    }

    #[test]
    fn single_update_reaches_parity() {
        let e = engine();
        e.update(0, 1, 100, &[0xab; 64]);
        e.flush();
        assert!(e.verify_parity());
        assert_eq!(e.read(0, 1, 100, 64), vec![0xab; 64]);
        assert_eq!(e.acked_updates(), 1);
    }

    #[test]
    fn read_your_writes_before_recycle() {
        let e = engine();
        e.update(1, 0, 0, &[7; 32]);
        // No flush: the data may still be only in the log.
        assert_eq!(e.read(1, 0, 0, 32), vec![7; 32]);
        // Unwritten parts read as zero.
        assert_eq!(e.read(1, 0, 32, 8), vec![0; 8]);
    }

    #[test]
    fn overlapping_updates_newest_wins() {
        let e = engine();
        e.update(0, 0, 0, &[1; 100]);
        e.update(0, 0, 50, &[2; 100]);
        e.update(0, 0, 75, &[3; 10]);
        e.flush();
        let got = e.read(0, 0, 0, 150);
        assert_eq!(&got[..50], &[1; 50][..]);
        assert_eq!(&got[50..75], &[2; 25][..]);
        assert_eq!(&got[75..85], &[3; 10][..]);
        assert_eq!(&got[85..150], &[2; 65][..]);
        assert!(e.verify_parity());
    }

    #[test]
    fn heavy_single_thread_churn_stays_consistent() {
        let e = engine();
        let mut x = 99u64;
        for i in 0..3000u32 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let stripe = (x >> 10) % 3;
            let block = ((x >> 20) % 4) as u16;
            let off = ((x >> 30) % ((16 << 10) - 512)) as u32;
            let len = 1 + ((x >> 40) % 511) as usize;
            let byte = (i % 251) as u8;
            e.update(stripe, block, off, &vec![byte; len]);
        }
        e.flush();
        assert!(e.verify_parity());
        assert_eq!(e.acked_updates(), 3000);
    }

    #[test]
    fn concurrent_writers_stay_consistent() {
        let e = Arc::new(engine());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let e = Arc::clone(&e);
                std::thread::spawn(move || {
                    let mut x = 7 + t as u64;
                    for _ in 0..800 {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(t as u64);
                        let stripe = (x >> 9) % 3;
                        // Each thread owns one block per stripe: no
                        // cross-thread write races on the same range.
                        let block = t as u16;
                        let off = ((x >> 33) % ((16 << 10) - 256)) as u32;
                        let len = 1 + ((x >> 45) % 255) as usize;
                        e.update(stripe, block, off, &vec![(x % 256) as u8; len]);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        e.flush();
        assert!(e.verify_parity());
        assert_eq!(e.acked_updates(), 3200);
    }

    #[test]
    fn flush_is_idempotent() {
        let e = engine();
        e.update(0, 0, 0, &[5; 10]);
        e.flush();
        e.flush();
        assert!(e.verify_parity());
    }

    #[test]
    #[should_panic(expected = "not a data block")]
    fn updating_parity_block_panics() {
        let e = engine();
        e.update(0, 4, 0, &[1]);
    }
}
