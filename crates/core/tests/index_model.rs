//! Model-based property tests: the two-level index against a naive
//! byte-array oracle, and the full engine against a re-encode oracle.

use proptest::prelude::*;
use rscode::{CodeParams, ReedSolomon};
use tsue::engine::{EngineConfig, TsueEngine};
use tsue::index::{BlockIndex, MergeMode};
use tsue::payload::{Data, Payload};

const SPACE: usize = 4096;

/// Byte-level oracle for Overwrite mode: `None` = absent, `Some(b)` = byte.
fn overwrite_oracle(writes: &[(u32, Vec<u8>)]) -> Vec<Option<u8>> {
    let mut model = vec![None; SPACE];
    for (off, data) in writes {
        for (i, &b) in data.iter().enumerate() {
            model[*off as usize + i] = Some(b);
        }
    }
    model
}

/// Byte-level oracle for Xor mode.
fn xor_oracle(writes: &[(u32, Vec<u8>)]) -> Vec<Option<u8>> {
    let mut model = vec![None; SPACE];
    for (off, data) in writes {
        for (i, &b) in data.iter().enumerate() {
            let slot = &mut model[*off as usize + i];
            *slot = Some(slot.unwrap_or(0) ^ b);
        }
    }
    model
}

/// Flattens drained index ranges back to the byte model.
fn ranges_to_model(ranges: &[(u32, Data)]) -> Vec<Option<u8>> {
    let mut model = vec![None; SPACE];
    for (off, p) in ranges {
        for (i, &b) in p.as_slice().iter().enumerate() {
            assert!(
                model[*off as usize + i].is_none(),
                "drained ranges overlap at {}",
                *off as usize + i
            );
            model[*off as usize + i] = Some(b);
        }
    }
    model
}

fn writes_strategy() -> impl Strategy<Value = Vec<(u32, Vec<u8>)>> {
    proptest::collection::vec(
        (0u32..3800, proptest::collection::vec(any::<u8>(), 1..200)),
        1..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn overwrite_index_matches_byte_oracle(writes in writes_strategy()) {
        let mut idx: BlockIndex<Data> = BlockIndex::new();
        for (off, data) in &writes {
            idx.insert(*off, Data::copy_from(data), MergeMode::Overwrite);
        }
        let ranges = idx.into_sorted_ranges();
        prop_assert_eq!(ranges_to_model(&ranges), overwrite_oracle(&writes));
        // Non-adjacency invariant: consecutive ranges have a gap.
        for w in ranges.windows(2) {
            prop_assert!(w[0].0 + w[0].1.len() < w[1].0);
        }
    }

    #[test]
    fn xor_index_matches_byte_oracle(writes in writes_strategy()) {
        let mut idx: BlockIndex<Data> = BlockIndex::new();
        for (off, data) in &writes {
            idx.insert(*off, Data::copy_from(data), MergeMode::Xor);
        }
        let ranges = idx.into_sorted_ranges();
        prop_assert_eq!(ranges_to_model(&ranges), xor_oracle(&writes));
    }

    #[test]
    fn lookup_agrees_with_oracle(
        writes in writes_strategy(),
        q_off in 0u32..4000,
        q_len in 1u32..96,
    ) {
        let q_len = q_len.min(SPACE as u32 - q_off);
        let mut idx: BlockIndex<Data> = BlockIndex::new();
        for (off, data) in &writes {
            idx.insert(*off, Data::copy_from(data), MergeMode::Overwrite);
        }
        let oracle = overwrite_oracle(&writes);
        let hits = idx.lookup(q_off, q_len);
        // Every returned byte must match the oracle, and every present
        // oracle byte in range must be returned.
        let mut covered = vec![false; q_len as usize];
        for (o, p) in &hits {
            for (i, &b) in p.as_slice().iter().enumerate() {
                let abs = *o as usize + i;
                prop_assert_eq!(oracle[abs], Some(b), "byte {} mismatches", abs);
                covered[abs - q_off as usize] = true;
            }
        }
        for (i, &cov) in covered.iter().enumerate().take(q_len as usize) {
            let abs = q_off as usize + i;
            prop_assert_eq!(
                cov,
                oracle[abs].is_some(),
                "coverage mismatch at {}",
                abs
            );
        }
        // The bitmap fast path must never contradict the oracle.
        if idx.definitely_absent(q_off, q_len) {
            for i in 0..q_len as usize {
                prop_assert!(oracle[q_off as usize + i].is_none());
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn engine_parity_matches_reencode_after_random_updates(
        updates in proptest::collection::vec(
            (0u64..2, 0u16..3, 0u32..4000, proptest::collection::vec(any::<u8>(), 1..96)),
            1..120
        ),
    ) {
        let engine = TsueEngine::new(EngineConfig {
            code: CodeParams::new(3, 2).unwrap(),
            block_len: 4096,
            stripes: 2,
            unit_bytes: 4096,
            max_units: 4,
            pools_per_layer: 2,
            recycler_threads: 1,
        });
        // Shadow model of data blocks.
        let mut shadow = vec![vec![0u8; 4096]; 2 * 3];
        for (stripe, block, off, bytes) in &updates {
            let off = (*off).min(4096 - bytes.len() as u32);
            engine.update(*stripe, *block, off, bytes);
            let sb = &mut shadow[*stripe as usize * 3 + *block as usize];
            sb[off as usize..off as usize + bytes.len()].copy_from_slice(bytes);
        }
        engine.flush();
        prop_assert!(engine.verify_parity());
        // Data blocks must equal the shadow model.
        for s in 0..2u64 {
            for b in 0..3usize {
                prop_assert_eq!(
                    engine.raw_block(s, b),
                    shadow[s as usize * 3 + b].clone(),
                    "stripe {} block {}", s, b
                );
            }
        }
        // Parity must equal a fresh re-encode of the shadow model.
        let rs = ReedSolomon::new(CodeParams::new(3, 2).unwrap());
        for s in 0..2u64 {
            let data: Vec<&[u8]> =
                (0..3).map(|b| shadow[s as usize * 3 + b].as_slice()).collect();
            let mut parity = vec![vec![0u8; 4096]; 2];
            let mut refs: Vec<&mut [u8]> =
                parity.iter_mut().map(|v| v.as_mut_slice()).collect();
            rs.encode(&data, &mut refs).unwrap();
            for (p, par) in parity.iter().enumerate() {
                prop_assert_eq!(
                    engine.raw_block(s, 3 + p),
                    par.clone(),
                    "stripe {} parity {}", s, p
                );
            }
        }
    }
}
