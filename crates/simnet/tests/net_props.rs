//! Property tests: network causality and traffic conservation.

use proptest::prelude::*;
use simnet::{NetConfig, Network};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Deliveries never precede their sends, traffic is conserved, and
    /// local sends are free/uncounted.
    #[test]
    fn causality_and_conservation(
        sends in proptest::collection::vec(
            (0u64..1_000_000, 0usize..6, 0usize..6, 1u64..1_000_000),
            1..200
        )
    ) {
        let mut net = Network::new(NetConfig::ethernet_25g(6));
        let mut expected_bytes = 0u64;
        let mut expected_msgs = 0u64;
        for &(now, src, dst, bytes) in &sends {
            let t = net.send(now, src, dst, bytes);
            if src == dst {
                prop_assert_eq!(t, now, "local send must be free");
            } else {
                prop_assert!(
                    t >= now + net.wire_time(bytes),
                    "delivery before wire time elapsed"
                );
                expected_bytes += bytes;
                expected_msgs += 1;
            }
        }
        prop_assert_eq!(net.traffic().total_bytes(), expected_bytes);
        prop_assert_eq!(net.traffic().total_messages(), expected_msgs);
    }

    /// A link's cumulative egress busy time never exceeds what its
    /// bandwidth could physically carry by the latest delivery.
    #[test]
    fn egress_never_exceeds_physical_bandwidth(
        sends in proptest::collection::vec((0u64..100_000, 1u64..100_000), 1..100)
    ) {
        let mut net = Network::new(NetConfig::ethernet_25g(2));
        let mut last = 0u64;
        for &(now, bytes) in &sends {
            last = last.max(net.send(now, 0, 1, bytes));
        }
        let busy = net.egress_busy(0);
        prop_assert!(busy <= last, "egress busier ({busy}) than elapsed ({last})");
    }
}
