//! Cluster network model: a hierarchical, topology-aware fabric with
//! cut-through message timing and per-tier traffic accounting.
//!
//! Stands in for the paper's 25 Gb/s Ethernet (SSD testbed) and 40 Gb/s
//! InfiniBand (HDD testbed) fabrics. Each endpoint owns an egress and an
//! ingress [`simdes::Resource`]; endpoints are grouped into racks by a
//! [`Topology`], and each rack owns an uplink/downlink resource pair toward
//! the spine whose bandwidth is the rack's aggregate endpoint bandwidth
//! divided by a configurable oversubscription ratio.
//!
//! An intra-rack message serialises on the sender's egress and flows
//! cut-through into the receiver's ingress — exactly the paper's
//! single-switch fabric. A cross-rack message additionally reserves the
//! source rack's uplink and the destination rack's downlink, so an
//! oversubscribed spine becomes a real shared bottleneck. The
//! [`TrafficMatrix`] accounts bytes and messages per endpoint pair *and*
//! per tier (intra-rack vs cross-rack), so rack-locality effects — Table 1
//! traffic, recovery costs — fall out of the same replay.
//!
//! The default [`Topology::flat`] (one rack) takes the identical code path
//! and books the identical reservations as the pre-topology fabric, so
//! single-switch results are bit-for-bit unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use simdes::{Resource, SimTime};

/// Endpoint → rack assignment plus the spine oversubscription ratio.
///
/// Racks are numbered `0..racks()`; every rack must contain at least one
/// endpoint. An oversubscription ratio of `r` means a rack's uplink carries
/// `members × bandwidth / r` bytes per second — `1.0` is a full-bisection
/// fabric, larger values starve the spine.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    rack_of: Vec<usize>,
    racks: usize,
    oversubscription: f64,
}

impl Topology {
    /// Everything in one rack — the paper's single-switch testbeds. No
    /// message crosses the spine, so the fabric behaves exactly like a flat
    /// switch.
    pub fn flat(endpoints: usize) -> Topology {
        Topology {
            rack_of: vec![0; endpoints],
            racks: 1,
            oversubscription: 1.0,
        }
    }

    /// A racked topology from an explicit endpoint → rack assignment.
    ///
    /// # Panics
    /// Panics if the assignment is empty, a rack id below the maximum is
    /// unused, or `oversubscription` is not a finite ratio `>= 1.0`.
    pub fn racked(rack_of: Vec<usize>, oversubscription: f64) -> Topology {
        assert!(!rack_of.is_empty(), "topology needs endpoints");
        assert!(
            oversubscription.is_finite() && oversubscription >= 1.0,
            "oversubscription must be a finite ratio >= 1.0"
        );
        let racks = rack_of.iter().max().copied().unwrap_or(0) + 1;
        let mut seen = vec![false; racks];
        for &r in &rack_of {
            seen[r] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "every rack id below the maximum must host an endpoint"
        );
        Topology {
            rack_of,
            racks,
            oversubscription,
        }
    }

    /// Number of endpoints.
    pub fn endpoints(&self) -> usize {
        self.rack_of.len()
    }

    /// Number of racks.
    pub fn racks(&self) -> usize {
        self.racks
    }

    /// Whether this is a single-rack (flat) fabric.
    pub fn is_flat(&self) -> bool {
        self.racks == 1
    }

    /// The rack hosting endpoint `ep`.
    pub fn rack_of(&self, ep: usize) -> usize {
        self.rack_of[ep]
    }

    /// Endpoints in rack `rack`.
    pub fn members(&self, rack: usize) -> usize {
        self.rack_of.iter().filter(|&&r| r == rack).count()
    }

    /// Whether a `src → dst` message crosses the spine.
    pub fn crosses_spine(&self, src: usize, dst: usize) -> bool {
        self.rack_of[src] != self.rack_of[dst]
    }

    /// The configured oversubscription ratio.
    pub fn oversubscription(&self) -> f64 {
        self.oversubscription
    }
}

/// Network configuration.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Number of endpoints (OSDs + clients + MDS).
    pub endpoints: usize,
    /// Per-direction link bandwidth in bytes per second.
    pub bandwidth: u64,
    /// Fixed per-message overhead (NIC + stack + propagation).
    pub rpc_overhead: SimTime,
    /// Rack structure; must cover exactly `endpoints` endpoints.
    pub topology: Topology,
}

impl NetConfig {
    /// 25 Gb/s Ethernet with a 30 µs RPC overhead (the paper's SSD testbed).
    pub fn ethernet_25g(endpoints: usize) -> NetConfig {
        NetConfig {
            endpoints,
            bandwidth: 25_000_000_000 / 8,
            rpc_overhead: 30 * simdes::units::MICROS,
            topology: Topology::flat(endpoints),
        }
    }

    /// 40 Gb/s InfiniBand with a 5 µs overhead (the paper's HDD testbed).
    pub fn infiniband_40g(endpoints: usize) -> NetConfig {
        NetConfig {
            endpoints,
            bandwidth: 40_000_000_000 / 8,
            rpc_overhead: 5 * simdes::units::MICROS,
            topology: Topology::flat(endpoints),
        }
    }

    /// Replaces the topology (builder-style).
    pub fn with_topology(mut self, topology: Topology) -> NetConfig {
        self.topology = topology;
        self
    }
}

/// The class of a bulk transfer: foreground (client-visible work) or
/// repair (rebuild streams competing with it). Classes share the exact
/// same link/rack/spine resources — the class only tags the *accounting*,
/// so a replay can report how much of the fabric the rebuild consumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FlowClass {
    /// Client-visible traffic (the default for [`Network::send`]).
    #[default]
    Foreground,
    /// Background rebuild/repair streams.
    Repair,
}

/// Accumulated traffic between endpoint pairs, tiered by rack locality
/// and split by [`FlowClass`].
#[derive(Debug, Clone)]
pub struct TrafficMatrix {
    n: usize,
    bytes: Vec<u64>,
    messages: Vec<u64>,
    /// `[intra-rack, cross-rack]` byte totals.
    tier_bytes: [u64; 2],
    /// `[intra-rack, cross-rack]` message totals.
    tier_messages: [u64; 2],
    /// `[foreground, repair]` byte totals.
    class_bytes: [u64; 2],
    /// `[foreground, repair]` message totals.
    class_messages: [u64; 2],
}

impl TrafficMatrix {
    fn new(n: usize) -> TrafficMatrix {
        TrafficMatrix {
            n,
            bytes: vec![0; n * n],
            messages: vec![0; n * n],
            tier_bytes: [0; 2],
            tier_messages: [0; 2],
            class_bytes: [0; 2],
            class_messages: [0; 2],
        }
    }

    /// Bytes sent from `src` to `dst`.
    pub fn bytes(&self, src: usize, dst: usize) -> u64 {
        self.bytes[src * self.n + dst]
    }

    /// Messages sent from `src` to `dst`.
    pub fn messages(&self, src: usize, dst: usize) -> u64 {
        self.messages[src * self.n + dst]
    }

    /// Total bytes over the fabric.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Total messages over the fabric.
    pub fn total_messages(&self) -> u64 {
        self.messages.iter().sum()
    }

    /// Bytes that stayed within one rack.
    pub fn intra_rack_bytes(&self) -> u64 {
        self.tier_bytes[0]
    }

    /// Bytes that crossed the spine.
    pub fn cross_rack_bytes(&self) -> u64 {
        self.tier_bytes[1]
    }

    /// Messages that stayed within one rack.
    pub fn intra_rack_messages(&self) -> u64 {
        self.tier_messages[0]
    }

    /// Messages that crossed the spine.
    pub fn cross_rack_messages(&self) -> u64 {
        self.tier_messages[1]
    }

    /// Total bytes in GiB.
    pub fn total_gib(&self) -> f64 {
        self.total_bytes() as f64 / (1u64 << 30) as f64
    }

    /// Spine-crossing bytes in GiB.
    pub fn cross_rack_gib(&self) -> f64 {
        self.cross_rack_bytes() as f64 / (1u64 << 30) as f64
    }

    /// Bytes carried for foreground (client-visible) flows.
    pub fn foreground_bytes(&self) -> u64 {
        self.class_bytes[0]
    }

    /// Bytes carried for repair (rebuild) flows.
    pub fn repair_bytes(&self) -> u64 {
        self.class_bytes[1]
    }

    /// Messages carried for foreground flows.
    pub fn foreground_messages(&self) -> u64 {
        self.class_messages[0]
    }

    /// Messages carried for repair flows.
    pub fn repair_messages(&self) -> u64 {
        self.class_messages[1]
    }

    /// Repair bytes in GiB.
    pub fn repair_gib(&self) -> f64 {
        self.repair_bytes() as f64 / (1u64 << 30) as f64
    }

    fn record(&mut self, src: usize, dst: usize, bytes: u64, cross: bool, class: FlowClass) {
        self.bytes[src * self.n + dst] += bytes;
        self.messages[src * self.n + dst] += 1;
        let tier = cross as usize;
        self.tier_bytes[tier] += bytes;
        self.tier_messages[tier] += 1;
        let cls = (class == FlowClass::Repair) as usize;
        self.class_bytes[cls] += bytes;
        self.class_messages[cls] += 1;
    }
}

/// The fabric connecting all endpoints: per-endpoint full-duplex links
/// behind top-of-rack switches, joined by a (possibly oversubscribed)
/// spine.
#[derive(Debug, Clone)]
pub struct Network {
    cfg: NetConfig,
    egress: Vec<Resource>,
    ingress: Vec<Resource>,
    /// Per-rack uplink toward the spine (unused in a flat topology).
    uplink: Vec<Resource>,
    /// Per-rack downlink from the spine.
    downlink: Vec<Resource>,
    /// Per-rack uplink bandwidth, bytes per second.
    rack_bw: Vec<u64>,
    traffic: TrafficMatrix,
}

impl Network {
    /// Builds the fabric.
    ///
    /// # Panics
    /// Panics if `endpoints == 0`, `bandwidth == 0`, or the topology does
    /// not cover exactly `endpoints` endpoints.
    pub fn new(cfg: NetConfig) -> Network {
        assert!(cfg.endpoints > 0, "network needs endpoints");
        assert!(cfg.bandwidth > 0, "network needs bandwidth");
        assert_eq!(
            cfg.topology.endpoints(),
            cfg.endpoints,
            "topology must cover every endpoint"
        );
        let racks = cfg.topology.racks();
        let rack_bw = (0..racks)
            .map(|r| {
                let agg = cfg.topology.members(r) as f64 * cfg.bandwidth as f64;
                ((agg / cfg.topology.oversubscription()) as u64).max(1)
            })
            .collect();
        Network {
            egress: (0..cfg.endpoints).map(|_| Resource::new(1)).collect(),
            ingress: (0..cfg.endpoints).map(|_| Resource::new(1)).collect(),
            uplink: (0..racks).map(|_| Resource::new(1)).collect(),
            downlink: (0..racks).map(|_| Resource::new(1)).collect(),
            rack_bw,
            traffic: TrafficMatrix::new(cfg.endpoints),
            cfg,
        }
    }

    /// Configuration in force.
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    /// The rack structure.
    pub fn topology(&self) -> &Topology {
        &self.cfg.topology
    }

    /// The traffic matrix accumulated so far.
    pub fn traffic(&self) -> &TrafficMatrix {
        &self.traffic
    }

    /// Pure serialisation time of `bytes` on one endpoint link.
    pub fn wire_time(&self, bytes: u64) -> SimTime {
        bytes * simdes::units::SECS / self.cfg.bandwidth
    }

    /// Serialisation time of `bytes` on `rack`'s spine uplink/downlink.
    pub fn rack_wire_time(&self, rack: usize, bytes: u64) -> SimTime {
        bytes * simdes::units::SECS / self.rack_bw[rack]
    }

    /// Sends `bytes` from `src` to `dst` starting at `now`; returns the
    /// delivery time at `dst`.
    ///
    /// Local sends (`src == dst`) are free and uncounted: they model
    /// intra-process hand-offs, which the paper's traffic numbers exclude.
    /// Cross-rack sends additionally reserve the source rack's uplink and
    /// the destination rack's downlink, cut-through: each hop's busy window
    /// starts when the first byte leaves the previous hop.
    ///
    /// # Panics
    /// Panics on out-of-range endpoints.
    pub fn send(&mut self, now: SimTime, src: usize, dst: usize, bytes: u64) -> SimTime {
        self.send_classed(now, src, dst, bytes, FlowClass::Foreground)
    }

    /// [`Self::send`] with an explicit [`FlowClass`]. Repair flows reserve
    /// the *same* egress/uplink/downlink/ingress resources as foreground
    /// traffic — background rebuilds genuinely compete for the fabric —
    /// and differ only in which accounting bucket they land in.
    ///
    /// # Panics
    /// Panics on out-of-range endpoints.
    pub fn send_classed(
        &mut self,
        now: SimTime,
        src: usize,
        dst: usize,
        bytes: u64,
        class: FlowClass,
    ) -> SimTime {
        assert!(
            src < self.cfg.endpoints && dst < self.cfg.endpoints,
            "endpoint out of range"
        );
        if src == dst {
            return now;
        }
        let cross = self.cfg.topology.crosses_spine(src, dst);
        self.traffic.record(src, dst, bytes, cross, class);
        let dur = self.wire_time(bytes);
        let tx_end = self.egress[src].reserve(now, dur);
        let (spine_end, spine_dur) = if cross {
            let up_dur = self.rack_wire_time(self.cfg.topology.rack_of(src), bytes);
            let up_end = self.uplink[self.cfg.topology.rack_of(src)]
                .reserve(tx_end.saturating_sub(dur), up_dur);
            let down_dur = self.rack_wire_time(self.cfg.topology.rack_of(dst), bytes);
            let down_end = self.downlink[self.cfg.topology.rack_of(dst)]
                .reserve(up_end.saturating_sub(up_dur), down_dur);
            (down_end, down_dur)
        } else {
            (tx_end, dur)
        };
        // Cut-through into the receiver: its link is busy for the full
        // serialisation time, overlapping the tail of the previous hop —
        // but delivery can never precede the last byte clearing the spine
        // (a starved downlink, slower than the endpoint link, is the
        // bottleneck even with an idle receiver).
        let rx_end = self.ingress[dst].reserve(spine_end.saturating_sub(spine_dur), dur);
        rx_end.max(spine_end) + self.cfg.rpc_overhead
    }

    /// Delivery time for a zero-payload control message (pure RPC).
    ///
    /// Control messages are tiny and NIC/switch QoS lets them interleave
    /// with bulk transfers, so they are charged the RPC overhead and wire
    /// time without queueing on the link resources. Crossing the spine adds
    /// a second switch hop, so cross-rack RPCs pay the overhead twice.
    pub fn rpc(&mut self, now: SimTime, src: usize, dst: usize) -> SimTime {
        assert!(
            src < self.cfg.endpoints && dst < self.cfg.endpoints,
            "endpoint out of range"
        );
        if src == dst {
            return now;
        }
        let cross = self.cfg.topology.crosses_spine(src, dst);
        self.traffic
            .record(src, dst, 64, cross, FlowClass::Foreground);
        let hops = if cross { 2 } else { 1 };
        now + self.wire_time(64) + hops * self.cfg.rpc_overhead
    }

    /// Busy time booked on an endpoint's egress link (diagnostics).
    pub fn egress_busy(&self, ep: usize) -> u64 {
        self.egress[ep].busy_time()
    }

    /// Busy time booked on an endpoint's ingress link (diagnostics).
    pub fn ingress_busy(&self, ep: usize) -> u64 {
        self.ingress[ep].busy_time()
    }

    /// Busy time booked on a rack's spine uplink (diagnostics).
    pub fn uplink_busy(&self, rack: usize) -> u64 {
        self.uplink[rack].busy_time()
    }

    /// Busy time booked on a rack's spine downlink (diagnostics).
    pub fn downlink_busy(&self, rack: usize) -> u64 {
        self.downlink[rack].busy_time()
    }

    /// Latest completion ever booked on an endpoint's ingress (diagnostics:
    /// a value far beyond the simulation clock reveals a runaway queue).
    pub fn ingress_backlog(&self, ep: usize) -> u64 {
        self.ingress[ep].last_completion()
    }

    /// Latest completion ever booked on an endpoint's egress.
    pub fn egress_backlog(&self, ep: usize) -> u64 {
        self.egress[ep].last_completion()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdes::units::{MICROS, SECS};

    fn net(n: usize) -> Network {
        Network::new(NetConfig::ethernet_25g(n))
    }

    /// Two racks of two endpoints each: {0, 1} and {2, 3}.
    fn racked_net(oversub: f64) -> Network {
        Network::new(
            NetConfig::ethernet_25g(4).with_topology(Topology::racked(vec![0, 0, 1, 1], oversub)),
        )
    }

    #[test]
    fn small_message_dominated_by_rpc_overhead() {
        let mut n = net(2);
        let t = n.send(0, 0, 1, 64);
        assert!(t >= 30 * MICROS);
        assert!(t < 40 * MICROS, "delivery {t}");
    }

    #[test]
    fn large_message_dominated_by_bandwidth() {
        let mut n = net(2);
        let bytes = 1u64 << 30; // 1 GiB at 25 Gb/s ~ 0.34 s
        let t = n.send(0, 0, 1, bytes);
        let ideal = bytes * SECS / (25_000_000_000 / 8);
        assert!(t >= ideal);
        assert!(t < ideal + ideal / 4, "delivery {t} vs ideal {ideal}");
    }

    #[test]
    fn self_send_is_free_and_uncounted() {
        let mut n = net(2);
        assert_eq!(n.send(123, 1, 1, 1 << 20), 123);
        assert_eq!(n.traffic().total_bytes(), 0);
    }

    #[test]
    fn egress_contention_serialises() {
        let mut n = net(3);
        let bytes = 100 << 20;
        let t1 = n.send(0, 0, 1, bytes);
        let t2 = n.send(0, 0, 2, bytes);
        assert!(t2 >= t1 + n.wire_time(bytes) - 1, "t1 {t1} t2 {t2}");
    }

    #[test]
    fn ingress_contention_serialises() {
        let mut n = net(3);
        let bytes = 100 << 20;
        let t1 = n.send(0, 0, 2, bytes);
        let t2 = n.send(0, 1, 2, bytes);
        assert!(t2 > t1, "two senders into one receiver must queue");
    }

    #[test]
    fn different_pairs_flow_in_parallel() {
        let mut n = net(4);
        let bytes = 100 << 20;
        let t1 = n.send(0, 0, 1, bytes);
        let t2 = n.send(0, 2, 3, bytes);
        assert_eq!(t1, t2, "disjoint pairs share no resource");
    }

    #[test]
    fn traffic_matrix_accounts_by_pair() {
        let mut n = net(3);
        n.send(0, 0, 1, 1000);
        n.send(0, 0, 1, 500);
        n.send(0, 2, 0, 42);
        assert_eq!(n.traffic().bytes(0, 1), 1500);
        assert_eq!(n.traffic().messages(0, 1), 2);
        assert_eq!(n.traffic().bytes(2, 0), 42);
        assert_eq!(n.traffic().total_bytes(), 1542);
        assert_eq!(n.traffic().total_messages(), 3);
    }

    #[test]
    fn flow_classes_partition_totals_and_share_resources() {
        let mut n = net(3);
        let bytes = 100 << 20;
        let t1 = n.send(0, 0, 1, bytes);
        // A repair flow out of the same endpoint queues behind the
        // foreground flow: classes share the egress link.
        let t2 = n.send_classed(0, 0, 2, bytes, FlowClass::Repair);
        assert!(t2 >= t1 + n.wire_time(bytes) - 1, "t1 {t1} t2 {t2}");
        n.rpc(0, 1, 2);
        let t = n.traffic();
        assert_eq!(t.foreground_bytes(), bytes + 64);
        assert_eq!(t.repair_bytes(), bytes);
        assert_eq!(t.foreground_bytes() + t.repair_bytes(), t.total_bytes());
        assert_eq!(t.foreground_messages(), 2);
        assert_eq!(t.repair_messages(), 1);
        assert_eq!(
            t.foreground_messages() + t.repair_messages(),
            t.total_messages()
        );
    }

    #[test]
    fn repair_class_does_not_change_timing() {
        // Identical flows, classed differently, must book identical times:
        // the class is pure accounting.
        let bytes = 64 << 20;
        let mut a = racked_net(2.0);
        let fg = a.send(0, 0, 2, bytes);
        let mut b = racked_net(2.0);
        let rep = b.send_classed(0, 0, 2, bytes, FlowClass::Repair);
        assert_eq!(fg, rep);
        assert_eq!(
            a.traffic().cross_rack_bytes(),
            b.traffic().cross_rack_bytes(),
            "tier accounting is class-independent"
        );
    }

    #[test]
    fn infiniband_has_lower_overhead() {
        let mut ib = Network::new(NetConfig::infiniband_40g(2));
        let mut eth = net(2);
        assert!(ib.send(0, 0, 1, 64) < eth.send(0, 0, 1, 64));
    }

    #[test]
    #[should_panic(expected = "endpoint out of range")]
    fn bad_endpoint_panics() {
        let mut n = net(2);
        n.send(0, 0, 5, 10);
    }

    #[test]
    fn flat_topology_counts_nothing_cross_rack() {
        let mut n = net(3);
        n.send(0, 0, 1, 1000);
        n.rpc(0, 1, 2);
        assert_eq!(n.traffic().cross_rack_bytes(), 0);
        assert_eq!(n.traffic().cross_rack_messages(), 0);
        assert_eq!(n.traffic().intra_rack_bytes(), 1064);
        assert_eq!(n.traffic().intra_rack_messages(), 2);
    }

    #[test]
    fn tiers_partition_totals() {
        let mut n = racked_net(1.0);
        n.send(0, 0, 1, 1000); // intra
        n.send(0, 0, 2, 500); // cross
        n.send(0, 3, 2, 200); // intra
        n.rpc(0, 1, 3); // cross
        let t = n.traffic();
        assert_eq!(t.intra_rack_bytes() + t.cross_rack_bytes(), t.total_bytes());
        assert_eq!(
            t.intra_rack_messages() + t.cross_rack_messages(),
            t.total_messages()
        );
        assert_eq!(t.cross_rack_bytes(), 564);
        assert_eq!(t.cross_rack_messages(), 2);
    }

    #[test]
    fn full_bisection_cross_rack_matches_intra_timing() {
        // With oversubscription 1.0 and idle uplinks, a cross-rack send of a
        // single flow completes at the same time as an intra-rack one (the
        // spine hops run cut-through and are at least as fast as a link).
        let mut n = racked_net(1.0);
        let bytes = 64 << 20;
        let intra = n.send(0, 0, 1, bytes);
        let mut m = racked_net(1.0);
        let cross = m.send(0, 0, 2, bytes);
        assert_eq!(intra, cross);
    }

    #[test]
    fn oversubscribed_uplink_throttles_cross_rack_flows() {
        // Two senders in rack 0 each stream to a different rack-1 receiver:
        // disjoint endpoint links, but a 2:1 uplink forces the flows to
        // share half the aggregate bandwidth — the second delivery lands
        // roughly an uplink-serialisation later than with full bisection.
        let bytes = 100 << 20;
        let mut fat = racked_net(1.0);
        fat.send(0, 0, 2, bytes);
        let fat_t2 = fat.send(0, 1, 3, bytes);
        let mut thin = racked_net(2.0);
        thin.send(0, 0, 2, bytes);
        let thin_t2 = thin.send(0, 1, 3, bytes);
        assert!(
            thin_t2 > fat_t2 + thin.wire_time(bytes) / 4,
            "2:1 spine must delay the second flow: fat {fat_t2} thin {thin_t2}"
        );
        // Intra-rack flows never touch the spine, oversubscribed or not.
        let mut a = racked_net(4.0);
        let mut b = racked_net(1.0);
        assert_eq!(a.send(0, 0, 1, bytes), b.send(0, 0, 1, bytes));
    }

    #[test]
    fn starved_spine_bounds_even_a_single_flow() {
        // With a 16:1 spine the downlink is 8x slower than the endpoint
        // link (2 members x B / 16): one uncontended cross-rack flow must
        // not be delivered before its last byte clears the spine.
        let bytes = 100 << 20;
        let mut thin = racked_net(16.0);
        let t = thin.send(0, 0, 2, bytes);
        let spine = thin.rack_wire_time(1, bytes);
        assert!(spine > thin.wire_time(bytes));
        assert!(
            t >= spine,
            "delivery {t} precedes spine serialisation {spine}"
        );
    }

    #[test]
    fn cross_rack_rpc_pays_extra_hop() {
        let mut n = racked_net(1.0);
        let intra = n.rpc(0, 0, 1);
        let cross = n.rpc(0, 0, 2);
        assert_eq!(cross, intra + 30 * MICROS);
    }

    #[test]
    fn uplink_busy_accounts_spine_time() {
        let mut n = racked_net(1.0);
        assert_eq!(n.uplink_busy(0), 0);
        n.send(0, 0, 2, 50 << 20);
        assert!(n.uplink_busy(0) > 0);
        assert!(n.downlink_busy(1) > 0);
        assert_eq!(n.uplink_busy(1), 0, "reverse direction unused");
    }

    #[test]
    fn topology_accessors() {
        let t = Topology::racked(vec![0, 0, 1, 1, 2], 3.0);
        assert_eq!(t.endpoints(), 5);
        assert_eq!(t.racks(), 3);
        assert_eq!(t.members(0), 2);
        assert_eq!(t.members(2), 1);
        assert!(t.crosses_spine(0, 4));
        assert!(!t.crosses_spine(2, 3));
        assert!(!t.is_flat());
        assert!(Topology::flat(8).is_flat());
    }

    #[test]
    #[should_panic(expected = "must host an endpoint")]
    fn topology_rejects_empty_rack() {
        let _ = Topology::racked(vec![0, 2], 1.0);
    }

    #[test]
    #[should_panic(expected = "finite ratio")]
    fn topology_rejects_bad_oversubscription() {
        let _ = Topology::racked(vec![0, 1], 0.5);
    }

    #[test]
    #[should_panic(expected = "cover every endpoint")]
    fn network_rejects_topology_mismatch() {
        let cfg = NetConfig::ethernet_25g(4).with_topology(Topology::flat(3));
        let _ = Network::new(cfg);
    }
}
