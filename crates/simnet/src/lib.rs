//! Cluster network model: full-duplex per-node links behind a switch,
//! cut-through message timing, and a per-(src, dst) traffic matrix.
//!
//! Stands in for the paper's 25 Gb/s Ethernet (SSD testbed) and 40 Gb/s
//! InfiniBand (HDD testbed) fabrics. Each endpoint owns an egress and an
//! ingress [`simdes::Resource`]; a message serialises on the sender's
//! egress, flows cut-through into the receiver's ingress, and is delivered
//! after a fixed per-RPC overhead. Network traffic per method — Table 1's
//! last column — falls out of the traffic matrix.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use simdes::{Resource, SimTime};

/// Network configuration.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Number of endpoints (OSDs + clients + MDS).
    pub endpoints: usize,
    /// Per-direction link bandwidth in bytes per second.
    pub bandwidth: u64,
    /// Fixed per-message overhead (NIC + stack + propagation).
    pub rpc_overhead: SimTime,
}

impl NetConfig {
    /// 25 Gb/s Ethernet with a 30 µs RPC overhead (the paper's SSD testbed).
    pub fn ethernet_25g(endpoints: usize) -> NetConfig {
        NetConfig {
            endpoints,
            bandwidth: 25_000_000_000 / 8,
            rpc_overhead: 30 * simdes::units::MICROS,
        }
    }

    /// 40 Gb/s InfiniBand with a 5 µs overhead (the paper's HDD testbed).
    pub fn infiniband_40g(endpoints: usize) -> NetConfig {
        NetConfig {
            endpoints,
            bandwidth: 40_000_000_000 / 8,
            rpc_overhead: 5 * simdes::units::MICROS,
        }
    }
}

/// Accumulated traffic between endpoint pairs.
#[derive(Debug, Clone)]
pub struct TrafficMatrix {
    n: usize,
    bytes: Vec<u64>,
    messages: Vec<u64>,
}

impl TrafficMatrix {
    fn new(n: usize) -> TrafficMatrix {
        TrafficMatrix {
            n,
            bytes: vec![0; n * n],
            messages: vec![0; n * n],
        }
    }

    /// Bytes sent from `src` to `dst`.
    pub fn bytes(&self, src: usize, dst: usize) -> u64 {
        self.bytes[src * self.n + dst]
    }

    /// Messages sent from `src` to `dst`.
    pub fn messages(&self, src: usize, dst: usize) -> u64 {
        self.messages[src * self.n + dst]
    }

    /// Total bytes over the fabric.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Total messages over the fabric.
    pub fn total_messages(&self) -> u64 {
        self.messages.iter().sum()
    }

    /// Total bytes in GiB.
    pub fn total_gib(&self) -> f64 {
        self.total_bytes() as f64 / (1u64 << 30) as f64
    }

    fn record(&mut self, src: usize, dst: usize, bytes: u64) {
        self.bytes[src * self.n + dst] += bytes;
        self.messages[src * self.n + dst] += 1;
    }
}

/// The switched fabric connecting all endpoints.
#[derive(Debug, Clone)]
pub struct Network {
    cfg: NetConfig,
    egress: Vec<Resource>,
    ingress: Vec<Resource>,
    traffic: TrafficMatrix,
}

impl Network {
    /// Builds the fabric.
    ///
    /// # Panics
    /// Panics if `endpoints == 0` or `bandwidth == 0`.
    pub fn new(cfg: NetConfig) -> Network {
        assert!(cfg.endpoints > 0, "network needs endpoints");
        assert!(cfg.bandwidth > 0, "network needs bandwidth");
        Network {
            egress: (0..cfg.endpoints).map(|_| Resource::new(1)).collect(),
            ingress: (0..cfg.endpoints).map(|_| Resource::new(1)).collect(),
            traffic: TrafficMatrix::new(cfg.endpoints),
            cfg,
        }
    }

    /// Configuration in force.
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    /// The traffic matrix accumulated so far.
    pub fn traffic(&self) -> &TrafficMatrix {
        &self.traffic
    }

    /// Pure serialisation time of `bytes` on one link.
    pub fn wire_time(&self, bytes: u64) -> SimTime {
        bytes * simdes::units::SECS / self.cfg.bandwidth
    }

    /// Sends `bytes` from `src` to `dst` starting at `now`; returns the
    /// delivery time at `dst`.
    ///
    /// Local sends (`src == dst`) are free and uncounted: they model
    /// intra-process hand-offs, which the paper's traffic numbers exclude.
    ///
    /// # Panics
    /// Panics on out-of-range endpoints.
    pub fn send(&mut self, now: SimTime, src: usize, dst: usize, bytes: u64) -> SimTime {
        assert!(
            src < self.cfg.endpoints && dst < self.cfg.endpoints,
            "endpoint out of range"
        );
        if src == dst {
            return now;
        }
        self.traffic.record(src, dst, bytes);
        let dur = self.wire_time(bytes);
        let tx_end = self.egress[src].reserve(now, dur);
        // Cut-through: the receiver's link is busy for the same duration,
        // overlapping the tail of the transmission.
        let rx_end = self.ingress[dst].reserve(tx_end.saturating_sub(dur), dur);
        rx_end + self.cfg.rpc_overhead
    }

    /// Delivery time for a zero-payload control message (pure RPC).
    ///
    /// Control messages are tiny and NIC/switch QoS lets them interleave
    /// with bulk transfers, so they are charged the RPC overhead and wire
    /// time without queueing on the link resources.
    pub fn rpc(&mut self, now: SimTime, src: usize, dst: usize) -> SimTime {
        assert!(
            src < self.cfg.endpoints && dst < self.cfg.endpoints,
            "endpoint out of range"
        );
        if src == dst {
            return now;
        }
        self.traffic.record(src, dst, 64);
        now + self.wire_time(64) + self.cfg.rpc_overhead
    }

    /// Busy time booked on an endpoint's egress link (diagnostics).
    pub fn egress_busy(&self, ep: usize) -> u64 {
        self.egress[ep].busy_time()
    }

    /// Busy time booked on an endpoint's ingress link (diagnostics).
    pub fn ingress_busy(&self, ep: usize) -> u64 {
        self.ingress[ep].busy_time()
    }

    /// Latest completion ever booked on an endpoint's ingress (diagnostics:
    /// a value far beyond the simulation clock reveals a runaway queue).
    pub fn ingress_backlog(&self, ep: usize) -> u64 {
        self.ingress[ep].last_completion()
    }

    /// Latest completion ever booked on an endpoint's egress.
    pub fn egress_backlog(&self, ep: usize) -> u64 {
        self.egress[ep].last_completion()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdes::units::{MICROS, SECS};

    fn net(n: usize) -> Network {
        Network::new(NetConfig::ethernet_25g(n))
    }

    #[test]
    fn small_message_dominated_by_rpc_overhead() {
        let mut n = net(2);
        let t = n.send(0, 0, 1, 64);
        assert!(t >= 30 * MICROS);
        assert!(t < 40 * MICROS, "delivery {t}");
    }

    #[test]
    fn large_message_dominated_by_bandwidth() {
        let mut n = net(2);
        let bytes = 1u64 << 30; // 1 GiB at 25 Gb/s ~ 0.34 s
        let t = n.send(0, 0, 1, bytes);
        let ideal = bytes * SECS / (25_000_000_000 / 8);
        assert!(t >= ideal);
        assert!(t < ideal + ideal / 4, "delivery {t} vs ideal {ideal}");
    }

    #[test]
    fn self_send_is_free_and_uncounted() {
        let mut n = net(2);
        assert_eq!(n.send(123, 1, 1, 1 << 20), 123);
        assert_eq!(n.traffic().total_bytes(), 0);
    }

    #[test]
    fn egress_contention_serialises() {
        let mut n = net(3);
        let bytes = 100 << 20;
        let t1 = n.send(0, 0, 1, bytes);
        let t2 = n.send(0, 0, 2, bytes);
        assert!(t2 >= t1 + n.wire_time(bytes) - 1, "t1 {t1} t2 {t2}");
    }

    #[test]
    fn ingress_contention_serialises() {
        let mut n = net(3);
        let bytes = 100 << 20;
        let t1 = n.send(0, 0, 2, bytes);
        let t2 = n.send(0, 1, 2, bytes);
        assert!(t2 > t1, "two senders into one receiver must queue");
    }

    #[test]
    fn different_pairs_flow_in_parallel() {
        let mut n = net(4);
        let bytes = 100 << 20;
        let t1 = n.send(0, 0, 1, bytes);
        let t2 = n.send(0, 2, 3, bytes);
        assert_eq!(t1, t2, "disjoint pairs share no resource");
    }

    #[test]
    fn traffic_matrix_accounts_by_pair() {
        let mut n = net(3);
        n.send(0, 0, 1, 1000);
        n.send(0, 0, 1, 500);
        n.send(0, 2, 0, 42);
        assert_eq!(n.traffic().bytes(0, 1), 1500);
        assert_eq!(n.traffic().messages(0, 1), 2);
        assert_eq!(n.traffic().bytes(2, 0), 42);
        assert_eq!(n.traffic().total_bytes(), 1542);
        assert_eq!(n.traffic().total_messages(), 3);
    }

    #[test]
    fn infiniband_has_lower_overhead() {
        let mut ib = Network::new(NetConfig::infiniband_40g(2));
        let mut eth = net(2);
        assert!(ib.send(0, 0, 1, 64) < eth.send(0, 0, 1, 64));
    }

    #[test]
    #[should_panic(expected = "endpoint out of range")]
    fn bad_endpoint_panics() {
        let mut n = net(2);
        n.send(0, 0, 5, 10);
    }
}
