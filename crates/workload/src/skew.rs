//! Skew models: who issues each arrival, and where in the volume it lands.
//!
//! Real client populations are never uniform — the traces the paper
//! measures (Ali-Cloud, Ten-Cloud, MSR) all show a few tenants dominating
//! the request stream and a few address ranges dominating the touched
//! bytes. [`ClientSkew`] models the former (per-arrival client draw),
//! [`OffsetSkew`] the latter (per-client address locality reshaping, on
//! top of the trace family's own hot-set parameters).

use rand::Rng;
use traces::{AliasZipf, WorkloadParams};

/// How the issuing client is drawn for each arrival.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClientSkew {
    /// Every client equally likely.
    Uniform,
    /// Client popularity follows Zipf(θ): client 0 is the hottest.
    Zipf {
        /// Skew in `[0, 1)` (0 degenerates to uniform).
        theta: f64,
    },
    /// A hot subset: the first `ceil(hot_fraction * clients)` clients
    /// receive `hot_share` of all arrivals (uniformly among themselves);
    /// the rest spread uniformly over the whole population.
    HotSpot {
        /// Fraction of clients in the hot set, in `(0, 1]`.
        hot_fraction: f64,
        /// Fraction of arrivals directed at the hot set, in `[0, 1]`.
        hot_share: f64,
    },
}

impl ClientSkew {
    /// Validates shape parameters.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            ClientSkew::Uniform => Ok(()),
            ClientSkew::Zipf { theta } => {
                if !(0.0..1.0).contains(&theta) {
                    return Err(format!("zipf theta = {theta} must be in [0, 1)"));
                }
                Ok(())
            }
            ClientSkew::HotSpot {
                hot_fraction,
                hot_share,
            } => {
                if !(hot_fraction > 0.0 && hot_fraction <= 1.0) {
                    return Err(format!("hot_fraction = {hot_fraction} must be in (0, 1]"));
                }
                if !(0.0..=1.0).contains(&hot_share) {
                    return Err(format!("hot_share = {hot_share} must be in [0, 1]"));
                }
                Ok(())
            }
        }
    }
}

/// A prepared per-arrival client sampler for a fixed population size.
///
/// Setup is O(min(clients, 1024)) and each draw O(1) for every skew: the
/// Zipf variant samples through a `traces::AliasZipf` table, so a
/// million-client population costs the same per arrival as a ten-client
/// one.
#[derive(Debug, Clone)]
pub struct ClientPicker {
    skew: ClientSkew,
    clients: u64,
    zipf: Option<AliasZipf>,
}

impl ClientPicker {
    /// Builds a picker over `clients` clients.
    ///
    /// # Panics
    /// Panics if the skew fails validation or `clients == 0`.
    pub fn new(skew: ClientSkew, clients: u64) -> ClientPicker {
        skew.validate().expect("invalid client skew");
        assert!(clients > 0, "picker over empty client population");
        let zipf = match skew {
            ClientSkew::Zipf { theta } => Some(AliasZipf::new(clients, theta)),
            _ => None,
        };
        ClientPicker {
            skew,
            clients,
            zipf,
        }
    }

    /// Draws the issuing client for one arrival.
    pub fn pick<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        match self.skew {
            ClientSkew::Uniform => rng.random_range(0..self.clients),
            ClientSkew::Zipf { .. } => self.zipf.as_ref().expect("built with zipf").sample(rng),
            ClientSkew::HotSpot {
                hot_fraction,
                hot_share,
            } => {
                let hot_n =
                    ((self.clients as f64 * hot_fraction).ceil() as u64).clamp(1, self.clients);
                if rng.random::<f64>() < hot_share {
                    rng.random_range(0..hot_n)
                } else {
                    rng.random_range(0..self.clients)
                }
            }
        }
    }
}

/// How each client's address locality is reshaped relative to the trace
/// family's own parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OffsetSkew {
    /// Keep the family's hot-set parameters untouched.
    Family,
    /// Override the hot set: `access_fraction` of update/read accesses land
    /// in a `hot_fraction` slice of the written region — a hot-spot offset
    /// range sharper (or flatter) than the family default.
    HotRange {
        /// Fraction of the written region forming the hot range, `(0, 1]`.
        hot_fraction: f64,
        /// Fraction of accesses directed at it, `[0, 1]`.
        access_fraction: f64,
    },
    /// Flatten locality entirely: uniform offsets, no sequential runs —
    /// the adversarial case for locality-exploiting log merging.
    Uniform,
}

impl OffsetSkew {
    /// Validates shape parameters.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            OffsetSkew::Family | OffsetSkew::Uniform => Ok(()),
            OffsetSkew::HotRange {
                hot_fraction,
                access_fraction,
            } => {
                if !(hot_fraction > 0.0 && hot_fraction <= 1.0) {
                    return Err(format!("hot_fraction = {hot_fraction} must be in (0, 1]"));
                }
                if !(0.0..=1.0).contains(&access_fraction) {
                    return Err(format!(
                        "access_fraction = {access_fraction} must be in [0, 1]"
                    ));
                }
                Ok(())
            }
        }
    }

    /// Applies the reshaping to one client's workload parameters.
    pub fn apply(&self, params: &mut WorkloadParams) {
        match *self {
            OffsetSkew::Family => {}
            OffsetSkew::HotRange {
                hot_fraction,
                access_fraction,
            } => {
                params.hot_fraction = hot_fraction;
                params.hot_access_fraction = access_fraction;
            }
            OffsetSkew::Uniform => {
                params.hot_access_fraction = 0.0;
                params.seq_run_prob = 0.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn skews_validate() {
        assert!(ClientSkew::Uniform.validate().is_ok());
        assert!(ClientSkew::Zipf { theta: 0.9 }.validate().is_ok());
        assert!(ClientSkew::Zipf { theta: 1.0 }.validate().is_err());
        assert!(ClientSkew::HotSpot {
            hot_fraction: 0.1,
            hot_share: 0.9
        }
        .validate()
        .is_ok());
        assert!(ClientSkew::HotSpot {
            hot_fraction: 0.0,
            hot_share: 0.9
        }
        .validate()
        .is_err());
        assert!(OffsetSkew::HotRange {
            hot_fraction: 0.05,
            access_fraction: 0.95
        }
        .validate()
        .is_ok());
        assert!(OffsetSkew::HotRange {
            hot_fraction: 1.5,
            access_fraction: 0.95
        }
        .validate()
        .is_err());
    }

    fn shares(skew: ClientSkew, clients: u64, draws: usize) -> Vec<usize> {
        let picker = ClientPicker::new(skew, clients);
        let mut rng = StdRng::seed_from_u64(17);
        let mut counts = vec![0usize; clients as usize];
        for _ in 0..draws {
            counts[picker.pick(&mut rng) as usize] += 1;
        }
        counts
    }

    #[test]
    fn uniform_spreads_evenly() {
        let counts = shares(ClientSkew::Uniform, 10, 50_000);
        for &c in &counts {
            assert!((3_500..6_500).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn hotspot_gives_hot_clients_their_share() {
        // 2 of 10 clients take 80 % of arrivals (plus their uniform slice).
        let counts = shares(
            ClientSkew::HotSpot {
                hot_fraction: 0.2,
                hot_share: 0.8,
            },
            10,
            50_000,
        );
        let hot: usize = counts[..2].iter().sum();
        assert!(
            hot > 50_000 * 7 / 10,
            "hot clients drew only {hot}/50000: {counts:?}"
        );
    }

    #[test]
    fn zipf_orders_clients_by_popularity() {
        let counts = shares(ClientSkew::Zipf { theta: 0.9 }, 8, 50_000);
        assert!(counts[0] > counts[4] * 2, "counts {counts:?}");
    }

    #[test]
    fn offset_skew_rewrites_params() {
        let mut p = WorkloadParams::ali_cloud(64 << 20);
        OffsetSkew::HotRange {
            hot_fraction: 0.02,
            access_fraction: 0.99,
        }
        .apply(&mut p);
        assert_eq!(p.hot_fraction, 0.02);
        assert_eq!(p.hot_access_fraction, 0.99);
        p.validate().unwrap();

        let mut q = WorkloadParams::ali_cloud(64 << 20);
        OffsetSkew::Uniform.apply(&mut q);
        assert_eq!(q.hot_access_fraction, 0.0);
        assert_eq!(q.seq_run_prob, 0.0);
        q.validate().unwrap();
    }
}
