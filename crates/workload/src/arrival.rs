//! Arrival processes: a base point process modulated by a rate curve.
//!
//! The split keeps the pieces composable: [`BaseProcess`] decides the
//! *statistics* of the gaps (memoryless Poisson vs a deterministic
//! metronome), [`RateCurve`] decides the *intensity* over time (constant,
//! bursty on/off, diurnal). Gaps are drawn from the instantaneous rate at
//! the moment of the draw — the standard rate-function approximation of a
//! non-homogeneous process, which is exact for constant curves and keeps
//! generation O(1) per arrival and fully deterministic under a seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Rates below this (ops/s) are treated as "off": the generator skips
/// forward to the next active stretch instead of drawing a near-infinite
/// gap.
const MIN_ACTIVE_RATE: f64 = 1e-3;

/// The base point process interarrival gaps are drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaseProcess {
    /// Exponential gaps (memoryless): the classic open-loop arrival model.
    Poisson,
    /// Constant gaps: a deterministic metronome at the curve's rate.
    Periodic,
}

/// The aggregate arrival rate as a function of time, in ops per second.
#[derive(Debug, Clone, PartialEq)]
pub enum RateCurve {
    /// A flat rate.
    Constant {
        /// Aggregate arrival rate (ops/s).
        ops_per_s: f64,
    },
    /// A square wave: `on_ops_per_s` for the first `duty` fraction of every
    /// `period_ns`, `off_ops_per_s` (which may be 0) for the rest — bursty
    /// on/off traffic.
    OnOff {
        /// Rate inside the burst (ops/s).
        on_ops_per_s: f64,
        /// Rate between bursts (ops/s; 0 silences the off phase).
        off_ops_per_s: f64,
        /// Full on+off cycle length in nanoseconds.
        period_ns: u64,
        /// Fraction of the period spent in the burst, in `(0, 1]`.
        duty: f64,
    },
    /// A raised-cosine day: rate swings smoothly between
    /// `trough_ops_per_s` (at phase 0) and `peak_ops_per_s` (at half
    /// period) — a diurnal load curve compressed to simulation scale.
    Diurnal {
        /// Rate at the top of the curve (ops/s).
        peak_ops_per_s: f64,
        /// Rate at the bottom of the curve (ops/s; may be 0).
        trough_ops_per_s: f64,
        /// Full cycle length in nanoseconds.
        period_ns: u64,
    },
}

impl RateCurve {
    /// The instantaneous rate at `t_ns`, in ops/s.
    pub fn rate_at(&self, t_ns: u64) -> f64 {
        match *self {
            RateCurve::Constant { ops_per_s } => ops_per_s,
            RateCurve::OnOff {
                on_ops_per_s,
                off_ops_per_s,
                period_ns,
                duty,
            } => {
                let phase = (t_ns % period_ns) as f64 / period_ns as f64;
                if phase < duty {
                    on_ops_per_s
                } else {
                    off_ops_per_s
                }
            }
            RateCurve::Diurnal {
                peak_ops_per_s,
                trough_ops_per_s,
                period_ns,
            } => {
                let phase = (t_ns % period_ns) as f64 / period_ns as f64;
                let swing = 0.5 * (1.0 - (2.0 * std::f64::consts::PI * phase).cos());
                trough_ops_per_s + (peak_ops_per_s - trough_ops_per_s) * swing
            }
        }
    }

    /// The rate averaged over one full cycle (the whole horizon for
    /// constant curves) — what a load sweep ramps.
    pub fn mean_rate(&self) -> f64 {
        match *self {
            RateCurve::Constant { ops_per_s } => ops_per_s,
            RateCurve::OnOff {
                on_ops_per_s,
                off_ops_per_s,
                duty,
                ..
            } => on_ops_per_s * duty + off_ops_per_s * (1.0 - duty),
            RateCurve::Diurnal {
                peak_ops_per_s,
                trough_ops_per_s,
                ..
            } => 0.5 * (peak_ops_per_s + trough_ops_per_s),
        }
    }

    /// Validates rates and shape parameters.
    pub fn validate(&self) -> Result<(), String> {
        let finite_nonneg = |name: &str, v: f64| -> Result<(), String> {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("{name} = {v} must be finite and >= 0"));
            }
            Ok(())
        };
        match *self {
            RateCurve::Constant { ops_per_s } => finite_nonneg("ops_per_s", ops_per_s)?,
            RateCurve::OnOff {
                on_ops_per_s,
                off_ops_per_s,
                period_ns,
                duty,
            } => {
                finite_nonneg("on_ops_per_s", on_ops_per_s)?;
                finite_nonneg("off_ops_per_s", off_ops_per_s)?;
                if period_ns == 0 {
                    return Err("on/off period must be positive".into());
                }
                if !(duty > 0.0 && duty <= 1.0) {
                    return Err(format!("duty = {duty} must be in (0, 1]"));
                }
            }
            RateCurve::Diurnal {
                peak_ops_per_s,
                trough_ops_per_s,
                period_ns,
            } => {
                finite_nonneg("peak_ops_per_s", peak_ops_per_s)?;
                finite_nonneg("trough_ops_per_s", trough_ops_per_s)?;
                if period_ns == 0 {
                    return Err("diurnal period must be positive".into());
                }
                if peak_ops_per_s < trough_ops_per_s {
                    return Err("diurnal peak must be >= trough".into());
                }
            }
        }
        if self.mean_rate() <= MIN_ACTIVE_RATE {
            return Err("rate curve never rises above zero".into());
        }
        Ok(())
    }

    /// The earliest `t >= t_ns` at which the curve is active (rate above
    /// [`MIN_ACTIVE_RATE`]); used to hop over silent off phases.
    fn next_active(&self, t_ns: u64) -> u64 {
        if self.rate_at(t_ns) > MIN_ACTIVE_RATE {
            return t_ns;
        }
        match *self {
            // Unreachable after validate(), but stay total.
            RateCurve::Constant { .. } => t_ns,
            RateCurve::OnOff { period_ns, .. } => {
                // Inactive only in the off phase: hop to the next cycle.
                (t_ns / period_ns + 1) * period_ns
            }
            RateCurve::Diurnal { period_ns, .. } => {
                // The curve is smooth; step in 1/64-period increments until
                // it rises (bounded by one full period since the peak is
                // active).
                let step = (period_ns / 64).max(1);
                let mut t = t_ns;
                for _ in 0..=64 {
                    t += step;
                    if self.rate_at(t) > MIN_ACTIVE_RATE {
                        return t;
                    }
                }
                t
            }
        }
    }
}

/// A deterministic, seedable arrival-time generator: each call to
/// [`Self::next_ns`] returns the absolute nanosecond of the next arrival.
#[derive(Debug, Clone)]
pub struct ArrivalGen {
    process: BaseProcess,
    curve: RateCurve,
    rng: StdRng,
    clock_ns: u64,
}

impl ArrivalGen {
    /// Builds a generator starting at time 0.
    ///
    /// # Panics
    /// Panics if the curve fails validation.
    pub fn new(process: BaseProcess, curve: RateCurve, seed: u64) -> ArrivalGen {
        curve.validate().expect("invalid rate curve");
        ArrivalGen {
            process,
            curve,
            rng: StdRng::seed_from_u64(seed),
            clock_ns: 0,
        }
    }

    /// The absolute time of the next arrival, in nanoseconds. Strictly
    /// increasing (gaps clamp to >= 1 ns).
    pub fn next_ns(&mut self) -> u64 {
        let t = self.curve.next_active(self.clock_ns);
        let rate = self.curve.rate_at(t);
        let mean_gap_ns = 1e9 / rate;
        let gap = match self.process {
            BaseProcess::Periodic => mean_gap_ns,
            BaseProcess::Poisson => {
                let u: f64 = self.rng.random::<f64>().max(1e-12);
                -u.ln() * mean_gap_ns
            }
        };
        self.clock_ns = t.saturating_add((gap as u64).max(1));
        self.clock_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_validate() {
        assert!(RateCurve::Constant { ops_per_s: 1000.0 }.validate().is_ok());
        assert!(RateCurve::Constant { ops_per_s: 0.0 }.validate().is_err());
        assert!(RateCurve::Constant {
            ops_per_s: f64::NAN
        }
        .validate()
        .is_err());
        assert!(RateCurve::OnOff {
            on_ops_per_s: 1000.0,
            off_ops_per_s: 0.0,
            period_ns: 1_000_000,
            duty: 0.25,
        }
        .validate()
        .is_ok());
        assert!(RateCurve::OnOff {
            on_ops_per_s: 1000.0,
            off_ops_per_s: 0.0,
            period_ns: 0,
            duty: 0.25,
        }
        .validate()
        .is_err());
        assert!(RateCurve::Diurnal {
            peak_ops_per_s: 100.0,
            trough_ops_per_s: 200.0,
            period_ns: 1_000_000,
        }
        .validate()
        .is_err());
    }

    #[test]
    fn poisson_mean_gap_matches_rate() {
        let mut g = ArrivalGen::new(
            BaseProcess::Poisson,
            RateCurve::Constant {
                ops_per_s: 10_000.0,
            },
            42,
        );
        let n = 20_000;
        let mut last = 0;
        for _ in 0..n {
            last = g.next_ns();
        }
        let mean_gap = last as f64 / n as f64;
        // Mean gap should be ~100 µs within a few percent at n = 20k.
        assert!(
            (mean_gap - 100_000.0).abs() < 5_000.0,
            "mean gap {mean_gap:.0} ns"
        );
    }

    #[test]
    fn periodic_is_a_metronome() {
        let mut g = ArrivalGen::new(
            BaseProcess::Periodic,
            RateCurve::Constant {
                ops_per_s: 1_000_000.0,
            },
            0,
        );
        assert_eq!(g.next_ns(), 1_000);
        assert_eq!(g.next_ns(), 2_000);
        assert_eq!(g.next_ns(), 3_000);
    }

    #[test]
    fn deterministic_under_seed() {
        let curve = RateCurve::Diurnal {
            peak_ops_per_s: 50_000.0,
            trough_ops_per_s: 1_000.0,
            period_ns: 10_000_000,
        };
        let mut a = ArrivalGen::new(BaseProcess::Poisson, curve.clone(), 7);
        let mut b = ArrivalGen::new(BaseProcess::Poisson, curve, 7);
        for _ in 0..1000 {
            assert_eq!(a.next_ns(), b.next_ns());
        }
    }

    #[test]
    fn onoff_concentrates_arrivals_in_bursts() {
        let period = 1_000_000u64; // 1 ms cycle
        let mut g = ArrivalGen::new(
            BaseProcess::Poisson,
            RateCurve::OnOff {
                on_ops_per_s: 100_000.0,
                off_ops_per_s: 0.0,
                period_ns: period,
                duty: 0.3,
            },
            9,
        );
        let mut in_burst = 0;
        let n = 5_000;
        for _ in 0..n {
            let t = g.next_ns();
            let phase = (t % period) as f64 / period as f64;
            // The draw can land just past the burst edge (gap drawn at the
            // on-rate straddles the boundary); allow a small spill.
            if phase < 0.35 {
                in_burst += 1;
            }
        }
        assert!(
            in_burst > n * 9 / 10,
            "only {in_burst}/{n} arrivals in bursts"
        );
    }

    #[test]
    fn onoff_silent_phase_skips_forward() {
        let mut g = ArrivalGen::new(
            BaseProcess::Periodic,
            RateCurve::OnOff {
                on_ops_per_s: 2_000_000.0, // 500 ns gaps
                off_ops_per_s: 0.0,
                period_ns: 10_000,
                duty: 0.1, // 1 µs on, 9 µs off
            },
            0,
        );
        let mut prev = 0;
        for _ in 0..100 {
            let t = g.next_ns();
            assert!(t > prev);
            prev = t;
        }
        // 100 arrivals at ~2 per cycle means we crossed many off phases.
        assert!(prev > 10_000 * 40, "clock stuck at {prev}");
    }

    #[test]
    fn diurnal_rate_swings_between_trough_and_peak() {
        let c = RateCurve::Diurnal {
            peak_ops_per_s: 10_000.0,
            trough_ops_per_s: 100.0,
            period_ns: 1_000_000,
        };
        assert!((c.rate_at(0) - 100.0).abs() < 1e-6);
        assert!((c.rate_at(500_000) - 10_000.0).abs() < 1e-6);
        assert!((c.mean_rate() - 5_050.0).abs() < 1e-6);
    }
}
