//! Timed op streams: the open-loop unit of exchange between generators,
//! trace importers, and the replay engine.
//!
//! A [`TimedStream`] is a time-sorted sequence of `(client, op)` pairs
//! whose `op.at_ns` is an **absolute arrival time** — the moment the op is
//! offered to the cluster regardless of what else is in flight. Synthetic
//! specs materialise into one (`OpenLoopSpec::materialize`), and imported
//! traces (`traces::io::msr_to_ops`, `traces::io::ali_to_ops`) convert
//! into one with their real timestamps preserved, so the replay engine has
//! a single open-loop consumption path.

use std::collections::HashSet;

use traces::workload::SLOT;
use traces::{OpKind, TraceOp};

/// One offered op: the arrival schedule lives in `op.at_ns`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedOp {
    /// The issuing client (u64: populations can exceed `usize` indexing
    /// conventions — sparse runtimes key on the id, never index by it).
    pub client: u64,
    /// The op, with `at_ns` as its absolute arrival time.
    pub op: TraceOp,
}

/// A time-sorted stream of offered ops.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TimedStream {
    ops: Vec<TimedOp>,
}

impl TimedStream {
    /// Wraps a pre-built op list.
    ///
    /// # Panics
    /// Panics if arrival times are not non-decreasing — a mis-sorted
    /// stream would silently reorder the offered load.
    pub fn new(ops: Vec<TimedOp>) -> TimedStream {
        assert!(
            ops.windows(2).all(|w| w[0].op.at_ns <= w[1].op.at_ns),
            "timed stream must be sorted by arrival time"
        );
        TimedStream { ops }
    }

    /// All ops issued by one client, timestamps taken from the ops
    /// themselves (e.g. straight out of `msr_to_ops`/`ali_to_ops`).
    pub fn single_client(client: u64, ops: Vec<TraceOp>) -> TimedStream {
        Self::new(ops.into_iter().map(|op| TimedOp { client, op }).collect())
    }

    /// Shards an imported op list over `clients` clients round-robin,
    /// preserving every op's real arrival time.
    ///
    /// # Panics
    /// Panics if `clients == 0`.
    pub fn round_robin(clients: u64, ops: Vec<TraceOp>) -> TimedStream {
        assert!(clients > 0, "round_robin over zero clients");
        Self::new(
            ops.into_iter()
                .enumerate()
                .map(|(i, op)| TimedOp {
                    client: i as u64 % clients,
                    op,
                })
                .collect(),
        )
    }

    /// The ops, in arrival order.
    pub fn ops(&self) -> &[TimedOp] {
        &self.ops
    }

    /// Number of offered ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The last arrival time (the schedule horizon), 0 when empty.
    pub fn horizon_ns(&self) -> u64 {
        self.ops.last().map(|t| t.op.at_ns).unwrap_or(0)
    }

    /// Compresses (factor > 1) or stretches (factor < 1) the arrival
    /// schedule — replaying a day-long trace at 100× its real rate is
    /// `scale_rate(100.0)`. Op content is untouched.
    ///
    /// # Panics
    /// Panics unless `factor` is finite and positive.
    pub fn scale_rate(mut self, factor: f64) -> TimedStream {
        assert!(
            factor.is_finite() && factor > 0.0,
            "rate factor must be finite and positive"
        );
        for t in &mut self.ops {
            t.op.at_ns = (t.op.at_ns as f64 / factor) as u64;
        }
        self
    }

    /// Remaps offsets into a `volume_bytes` logical volume (slot-aligned
    /// modulo wrap) and **re-runs first-touch Write/Update classification**
    /// per `(client, slot)` on the remapped addresses: wrapping can alias
    /// two distinct raw slots onto one volume slot, so the imported
    /// classification no longer matches what the replay engine's volumes
    /// will observe. Reads stay reads.
    ///
    /// # Panics
    /// Panics if `volume_bytes` is below one slot or an op is longer than
    /// the volume.
    pub fn fit_to_volume(mut self, volume_bytes: u64) -> TimedStream {
        assert!(volume_bytes >= SLOT, "volume below one slot");
        let total_slots = volume_bytes / SLOT;
        let mut written: HashSet<(u64, u64)> = HashSet::new();
        for t in &mut self.ops {
            let len = t.op.len.max(1) as u64;
            let len_slots = len.div_ceil(SLOT);
            assert!(
                len_slots <= total_slots,
                "op of {len} bytes cannot fit a {volume_bytes}-byte volume"
            );
            // The wrap is length-independent (modulo the volume, then clamp
            // long ops back from the edge) so ops at the same raw offset
            // stay aliased to the same volume slot regardless of length —
            // the overlap structure the trace recorded survives the remap.
            let max_start = total_slots - len_slots;
            let slot = ((t.op.offset / SLOT) % total_slots).min(max_start);
            t.op.offset = slot * SLOT;
            if t.op.kind != OpKind::Read {
                t.op.kind =
                    traces::io::classify_write(&mut written, t.client, t.op.offset, t.op.len);
            }
        }
        self
    }

    /// Validates the stream against the replay population and volume:
    /// sorted arrivals, known clients, positive lengths, ops inside the
    /// volume.
    pub fn validate(&self, clients: u64, volume_bytes: u64) -> Result<(), String> {
        if self.ops.is_empty() {
            return Err("timed stream is empty".into());
        }
        let mut last = 0u64;
        for (i, t) in self.ops.iter().enumerate() {
            if t.op.at_ns < last {
                return Err(format!("op {i} arrives before its predecessor"));
            }
            last = t.op.at_ns;
            if t.client >= clients {
                return Err(format!(
                    "op {i} targets client {} but the cluster has {clients} clients",
                    t.client
                ));
            }
            if t.op.len == 0 {
                return Err(format!("op {i} has zero length"));
            }
            if t.op.end() > volume_bytes {
                return Err(format!(
                    "op {i} ends at {} beyond the {volume_bytes}-byte volume \
                     (use fit_to_volume to remap imported traces)",
                    t.op.end()
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(at_ns: u64, offset: u64, len: u32, kind: OpKind) -> TraceOp {
        TraceOp {
            at_ns,
            offset,
            len,
            kind,
        }
    }

    #[test]
    fn single_client_and_round_robin_preserve_timestamps() {
        let ops = vec![
            op(10, 0, 4096, OpKind::Write),
            op(20, 4096, 4096, OpKind::Update),
            op(35, 0, 4096, OpKind::Read),
        ];
        let s = TimedStream::single_client(2, ops.clone());
        assert_eq!(s.len(), 3);
        assert_eq!(s.horizon_ns(), 35);
        assert!(s.ops().iter().all(|t| t.client == 2));

        let rr = TimedStream::round_robin(2, ops);
        assert_eq!(
            rr.ops().iter().map(|t| t.client).collect::<Vec<_>>(),
            vec![0, 1, 0]
        );
        assert_eq!(rr.horizon_ns(), 35);
    }

    #[test]
    #[should_panic(expected = "sorted by arrival")]
    fn unsorted_stream_rejected() {
        TimedStream::new(vec![
            TimedOp {
                client: 0,
                op: op(20, 0, 4096, OpKind::Write),
            },
            TimedOp {
                client: 0,
                op: op(10, 0, 4096, OpKind::Write),
            },
        ]);
    }

    #[test]
    fn scale_rate_compresses_the_schedule() {
        let s = TimedStream::single_client(
            0,
            vec![
                op(1_000_000, 0, 4096, OpKind::Write),
                op(2_000_000, 4096, 4096, OpKind::Write),
            ],
        )
        .scale_rate(100.0);
        assert_eq!(s.ops()[0].op.at_ns, 10_000);
        assert_eq!(s.horizon_ns(), 20_000);
    }

    #[test]
    fn fit_to_volume_wraps_and_reclassifies() {
        let vol = 16 * SLOT;
        let s = TimedStream::single_client(
            0,
            vec![
                // Raw slot 100 wraps onto slot 100 % 16 = 4 (len 2 slots).
                op(0, 100 * SLOT, 2 * SLOT as u32, OpKind::Write),
                // Raw slot 20 also wraps to slot 4: aliased, so the fresh
                // Write becomes an Update of the wrapped slot.
                op(5, 20 * SLOT, SLOT as u32, OpKind::Write),
                // Raw slot 5 maps to written slot 5: Update stays.
                op(9, 5 * SLOT, SLOT as u32, OpKind::Update),
                // An imported Update landing on a never-written volume slot
                // is a first touch here: reclassified to Write.
                op(11, 7 * SLOT, SLOT as u32, OpKind::Update),
                // Reads never reclassify.
                op(12, 999 * SLOT, SLOT as u32, OpKind::Read),
                // Same raw offset as the first op but a different length:
                // the wrap is length-independent, so it still aliases onto
                // slot 4 and classifies as the overwrite the trace recorded.
                op(13, 100 * SLOT, SLOT as u32, OpKind::Write),
            ],
        )
        .fit_to_volume(vol);
        let kinds: Vec<OpKind> = s.ops().iter().map(|t| t.op.kind).collect();
        assert_eq!(
            kinds,
            vec![
                OpKind::Write,
                OpKind::Update,
                OpKind::Update,
                OpKind::Write,
                OpKind::Read,
                OpKind::Update
            ]
        );
        for t in s.ops() {
            assert!(t.op.end() <= vol, "{t:?} beyond volume");
            assert_eq!(t.op.offset % SLOT, 0);
        }
        s.validate(1, vol).unwrap();
    }

    #[test]
    fn validate_catches_bad_streams() {
        let good = TimedStream::single_client(0, vec![op(0, 0, 4096, OpKind::Write)]);
        assert!(good.validate(1, 1 << 20).is_ok());
        assert!(good.validate(0, 1 << 20).is_err(), "client out of range");
        let far = TimedStream::single_client(0, vec![op(0, 1 << 30, 4096, OpKind::Write)]);
        assert!(far.validate(1, 1 << 20).is_err(), "op beyond volume");
        assert!(TimedStream::default().validate(1, 1 << 20).is_err());
    }
}
