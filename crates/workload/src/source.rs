//! Lazy arrival generation: the O(active) alternative to materialising a
//! whole [`TimedStream`](crate::TimedStream) up front.
//!
//! [`ArrivalSource`] is an iterator producing the **byte-identical** op
//! sequence `OpenLoopSpec::materialize` would build (same seeds, same
//! draws, same order — pinned by `lazy_equals_eager_*` tests), but with
//! memory proportional to the *touched* client set instead of the
//! population: per-client content generators are created on a client's
//! first pick and nothing is ever pre-allocated per client. Combined with
//! the alias-table Zipf picker (`traces::AliasZipf`, O(min(n, 1024))
//! setup), a `clients: 1_000_000` spec costs a few KiB to stand up and
//! then O(1) per arrival.
//!
//! Laziness is sound because the eager path already used one independent
//! seeded RNG per concern: each client's `WorkloadGen` consumes only its
//! own `seed + client` stream, arrival times their own salted stream, and
//! client picks a third — so deferring a generator's construction to first
//! use cannot perturb any other draw.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::SeedableRng;
use traces::{WorkloadGen, WorkloadParams};

use crate::arrival::ArrivalGen;
use crate::skew::ClientPicker;
use crate::stream::TimedOp;
use crate::OpenLoopSpec;

/// A lazy, infinite-capable source of timed ops for one open-loop spec.
///
/// Yields exactly `total_ops` [`TimedOp`]s with strictly increasing
/// `op.at_ns`. Holds one [`WorkloadGen`] per client *touched so far* —
/// the only state that scales, reported by [`Self::state_bytes`].
#[derive(Debug, Clone)]
pub struct ArrivalSource {
    params: WorkloadParams,
    seed: u64,
    /// Per-client content generators, created on first pick.
    gens: HashMap<u64, WorkloadGen>,
    arrivals: ArrivalGen,
    picker: ClientPicker,
    pick_rng: StdRng,
    remaining: u64,
}

impl ArrivalSource {
    /// Builds the source; see `OpenLoopSpec::source` for the public entry.
    ///
    /// # Panics
    /// Panics if the spec or `base` fail validation, or `clients == 0`.
    pub(crate) fn new(
        spec: &OpenLoopSpec,
        base: &WorkloadParams,
        clients: u64,
        total_ops: u64,
        seed: u64,
    ) -> ArrivalSource {
        spec.validate().expect("invalid open-loop spec");
        assert!(clients > 0, "open-loop load needs at least one client");
        let mut params = base.clone();
        spec.offset_skew.apply(&mut params);
        ArrivalSource {
            params,
            seed,
            gens: HashMap::new(),
            arrivals: ArrivalGen::new(
                spec.process,
                spec.rate.clone(),
                seed ^ 0x6172_7269_7661_6c73, // "arrivals"
            ),
            picker: ClientPicker::new(spec.client_skew, clients),
            pick_rng: StdRng::seed_from_u64(seed ^ 0x636c_6965_6e74_7321), // "clients!"
            remaining: total_ops,
        }
    }

    /// Ops not yet yielded.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Distinct clients that have issued at least one op so far — the
    /// quantity the generator's memory actually scales with.
    pub fn touched_clients(&self) -> u64 {
        self.gens.len() as u64
    }

    /// Heap bytes currently held by the per-client generator map, counted
    /// from live capacities and exact struct sizes (not population math).
    pub fn state_bytes(&self) -> u64 {
        let per_entry = size_of::<u64>() + size_of::<WorkloadGen>();
        let map = self.gens.capacity() * per_entry;
        let heap: usize = self
            .gens
            .values()
            .map(|g| {
                g.params().name.capacity()
                    + g.params().size_dist.capacity() * size_of::<(u32, f64)>()
            })
            .sum();
        (map + heap) as u64
    }
}

impl Iterator for ArrivalSource {
    type Item = TimedOp;

    fn next(&mut self) -> Option<TimedOp> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let at_ns = self.arrivals.next_ns();
        let client = self.picker.pick(&mut self.pick_rng);
        let params = &self.params;
        let seed = self.seed;
        let gen = self
            .gens
            .entry(client)
            .or_insert_with(|| WorkloadGen::new(params.clone(), seed.wrapping_add(client)));
        let mut op = gen.next().expect("generator is infinite");
        op.at_ns = at_ns;
        Some(TimedOp { client, op })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining as usize;
        (n, Some(n))
    }
}
