//! Open-loop offered load: arrival processes, skewed client populations,
//! and timed op streams.
//!
//! Everything the replay engine ran before this crate was **closed-loop**:
//! each client issues its next op the instant the previous one completes,
//! so the offered rate self-throttles to whatever the cluster sustains and
//! the queueing collapse that separates update methods under real load can
//! never appear. This crate generates **open-loop** load — ops arrive on
//! their own schedule whether or not earlier ops finished — in three
//! composable pieces:
//!
//! * [`arrival`] — *when* ops arrive: a base point process
//!   ([`BaseProcess::Poisson`] or [`BaseProcess::Periodic`]) modulated by a
//!   [`RateCurve`] (constant, bursty on/off, diurnal), so "Poisson at
//!   20 kop/s in 30 % duty bursts" is one spec;
//! * [`skew`] — *who* issues them: [`ClientSkew`] draws the issuing client
//!   per arrival (uniform, Zipfian hot clients, hot-spot subsets) and
//!   [`OffsetSkew`] reshapes each client's address locality (family
//!   default, tightened hot ranges, flattened uniform);
//! * [`stream`] — *what* arrives: a [`TimedStream`] of `(client, op)` pairs
//!   carrying absolute arrival timestamps. Synthetic specs materialise into
//!   one ([`OpenLoopSpec::materialize`]), and imported real traces
//!   (`traces::io::msr_to_ops`, `traces::io::ali_to_ops`) convert into one
//!   with their *real* arrival times preserved.
//!
//! The replay engine consumes a [`TimedStream`] with a bounded
//! outstanding-op window per client and an admission queue, and reports
//! offered-vs-acked throughput (goodput), queue-delay percentiles, and a
//! saturation flag — see `ecfs::replay`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrival;
pub mod skew;
pub mod source;
pub mod stream;

pub use arrival::{ArrivalGen, BaseProcess, RateCurve};
pub use skew::{ClientPicker, ClientSkew, OffsetSkew};
pub use source::ArrivalSource;
pub use stream::{TimedOp, TimedStream};

use traces::WorkloadParams;

/// A complete open-loop load specification: arrival process × client skew
/// × offset skew × per-client concurrency window.
///
/// The `rate` is the **aggregate** offered rate over the whole client
/// population, in ops per second.
#[derive(Debug, Clone)]
pub struct OpenLoopSpec {
    /// The base point process gaps are drawn from.
    pub process: BaseProcess,
    /// The (possibly time-varying) aggregate arrival rate.
    pub rate: RateCurve,
    /// How the issuing client is drawn per arrival.
    pub client_skew: ClientSkew,
    /// How each client's address locality is reshaped.
    pub offset_skew: OffsetSkew,
    /// Maximum ops a client keeps outstanding; arrivals beyond it wait in
    /// the admission queue (their wait is the measured queue delay).
    pub window: usize,
}

impl OpenLoopSpec {
    /// Poisson arrivals at a constant aggregate `ops_per_s`, uniform
    /// clients, family-default locality, window 4.
    pub fn poisson(ops_per_s: f64) -> OpenLoopSpec {
        OpenLoopSpec {
            process: BaseProcess::Poisson,
            rate: RateCurve::Constant { ops_per_s },
            client_skew: ClientSkew::Uniform,
            offset_skew: OffsetSkew::Family,
            window: 4,
        }
    }

    /// Deterministic (periodic) arrivals at a constant aggregate
    /// `ops_per_s`; otherwise as [`Self::poisson`].
    pub fn periodic(ops_per_s: f64) -> OpenLoopSpec {
        OpenLoopSpec {
            process: BaseProcess::Periodic,
            ..Self::poisson(ops_per_s)
        }
    }

    /// Replaces the rate curve (builder-style).
    pub fn with_rate(mut self, rate: RateCurve) -> OpenLoopSpec {
        self.rate = rate;
        self
    }

    /// Replaces the base process (builder-style).
    pub fn with_process(mut self, process: BaseProcess) -> OpenLoopSpec {
        self.process = process;
        self
    }

    /// Replaces the client-skew model (builder-style).
    pub fn with_client_skew(mut self, skew: ClientSkew) -> OpenLoopSpec {
        self.client_skew = skew;
        self
    }

    /// Replaces the offset-skew model (builder-style).
    pub fn with_offset_skew(mut self, skew: OffsetSkew) -> OpenLoopSpec {
        self.offset_skew = skew;
        self
    }

    /// Replaces the per-client outstanding-op window (builder-style).
    pub fn with_window(mut self, window: usize) -> OpenLoopSpec {
        self.window = window;
        self
    }

    /// Validates every component of the spec.
    pub fn validate(&self) -> Result<(), String> {
        self.rate.validate()?;
        self.client_skew.validate()?;
        self.offset_skew.validate()?;
        if self.window == 0 {
            return Err("open-loop window must admit at least one op".into());
        }
        Ok(())
    }

    /// Builds a lazy [`ArrivalSource`] yielding `total_ops` arrivals over
    /// `clients` clients — the O(active-memory) path the replay engine
    /// pulls from one op at a time.
    ///
    /// Deterministic in `(spec, base, clients, total_ops, seed)`. Op
    /// *content* comes from one `traces::WorkloadGen` per client seeded
    /// `seed + client` — the same seeding the closed-loop replay uses, so
    /// an open-loop run at low rate replays statistically the same ops as
    /// its closed-loop twin. Arrival times and client picks come from
    /// seed-salted side streams so they perturb neither the content nor
    /// each other.
    ///
    /// # Panics
    /// Panics if the spec or `base` fail validation, or `clients == 0`.
    pub fn source(
        &self,
        base: &WorkloadParams,
        clients: u64,
        total_ops: u64,
        seed: u64,
    ) -> ArrivalSource {
        ArrivalSource::new(self, base, clients, total_ops, seed)
    }

    /// Materialises the spec into a [`TimedStream`] of `total_ops`
    /// arrivals — the eager compat path: exactly
    /// [`Self::source`]`.collect()`, byte-identical op for op (pinned by
    /// the `lazy_equals_eager_*` tests), at O(total_ops) memory.
    ///
    /// # Panics
    /// Panics if the spec or `base` fail validation, or `clients == 0`.
    pub fn materialize(
        &self,
        base: &WorkloadParams,
        clients: u64,
        total_ops: u64,
        seed: u64,
    ) -> TimedStream {
        TimedStream::new(self.source(base, clients, total_ops, seed).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traces::OpKind;

    const VOL: u64 = 64 << 20;

    fn base() -> WorkloadParams {
        WorkloadParams::ali_cloud(VOL)
    }

    #[test]
    fn spec_validates() {
        assert!(OpenLoopSpec::poisson(10_000.0).validate().is_ok());
        assert!(OpenLoopSpec::poisson(0.0).validate().is_err());
        assert!(OpenLoopSpec::poisson(1.0)
            .with_window(0)
            .validate()
            .is_err());
    }

    #[test]
    fn materialize_is_deterministic() {
        let spec =
            OpenLoopSpec::poisson(50_000.0).with_client_skew(ClientSkew::Zipf { theta: 0.9 });
        let a = spec.materialize(&base(), 8, 2000, 42);
        let b = spec.materialize(&base(), 8, 2000, 42);
        assert_eq!(a, b);
        let c = spec.materialize(&base(), 8, 2000, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn materialize_produces_sorted_valid_stream() {
        let spec = OpenLoopSpec::poisson(20_000.0);
        let s = spec.materialize(&base(), 4, 1000, 7);
        assert_eq!(s.len(), 1000);
        s.validate(4, VOL).unwrap();
        // Arrival times strictly increase (gaps are clamped to >= 1 ns).
        let ats: Vec<u64> = s.ops().iter().map(|t| t.op.at_ns).collect();
        assert!(ats.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn materialize_rate_is_close_to_spec() {
        let spec = OpenLoopSpec::poisson(100_000.0);
        let s = spec.materialize(&base(), 8, 10_000, 11);
        let secs = s.horizon_ns() as f64 / 1e9;
        let rate = s.len() as f64 / secs;
        assert!(
            (rate - 100_000.0).abs() / 100_000.0 < 0.05,
            "offered rate {rate:.0} drifted from 100k"
        );
    }

    #[test]
    fn zipf_clients_concentrate_arrivals() {
        let spec =
            OpenLoopSpec::poisson(50_000.0).with_client_skew(ClientSkew::Zipf { theta: 0.95 });
        let s = spec.materialize(&base(), 16, 8000, 3);
        let mut counts = [0usize; 16];
        for t in s.ops() {
            counts[t.client as usize] += 1;
        }
        let hottest = *counts.iter().max().unwrap();
        assert!(
            hottest > 8000 / 16 * 3,
            "hottest client drew only {hottest}/8000 arrivals"
        );
        // Client 0 is the Zipf head.
        assert_eq!(counts[0], hottest);
    }

    #[test]
    fn lazy_equals_eager_across_all_specs() {
        // The tentpole invariant: the lazy ArrivalSource yields the exact
        // op sequence the eager materialize path builds — byte for byte —
        // for every BaseProcess × RateCurve × ClientSkew × OffsetSkew
        // combination. (materialize() itself now collects the source, so
        // this pins the iterator against an independently-driven copy:
        // per-item pulls with interleaved state inspection.)
        let processes = [BaseProcess::Poisson, BaseProcess::Periodic];
        let rates = [
            RateCurve::Constant {
                ops_per_s: 40_000.0,
            },
            RateCurve::OnOff {
                on_ops_per_s: 80_000.0,
                off_ops_per_s: 0.0,
                period_ns: 2_000_000,
                duty: 0.3,
            },
            RateCurve::Diurnal {
                peak_ops_per_s: 60_000.0,
                trough_ops_per_s: 10_000.0,
                period_ns: 4_000_000,
            },
        ];
        let client_skews = [
            ClientSkew::Uniform,
            ClientSkew::Zipf { theta: 0.9 },
            ClientSkew::HotSpot {
                hot_fraction: 0.1,
                hot_share: 0.8,
            },
        ];
        let offset_skews = [
            OffsetSkew::Family,
            OffsetSkew::HotRange {
                hot_fraction: 0.05,
                access_fraction: 0.95,
            },
            OffsetSkew::Uniform,
        ];
        for process in processes {
            for rate in &rates {
                for cs in client_skews {
                    for os in offset_skews {
                        let spec = OpenLoopSpec::poisson(1.0)
                            .with_process(process)
                            .with_rate(rate.clone())
                            .with_client_skew(cs)
                            .with_offset_skew(os);
                        let eager = spec.materialize(&base(), 32, 400, 99);
                        let mut source = spec.source(&base(), 32, 400, 99);
                        assert_eq!(source.remaining(), 400);
                        let lazy: Vec<TimedOp> = source.by_ref().collect();
                        assert_eq!(
                            eager.ops(),
                            lazy.as_slice(),
                            "lazy != eager for {process:?} × {rate:?} × {cs:?} × {os:?}"
                        );
                        assert_eq!(source.remaining(), 0);
                        assert!(source.next().is_none(), "source must be exhausted");
                        // Generators exist only for clients that issued ops.
                        let touched: std::collections::HashSet<u64> =
                            lazy.iter().map(|t| t.client).collect();
                        assert_eq!(source.touched_clients(), touched.len() as u64);
                        assert!(source.state_bytes() > 0);
                    }
                }
            }
        }
    }

    #[test]
    fn source_scales_setup_to_touched_clients_not_population() {
        // A million-client spec must stand up instantly and hold state for
        // the handful of clients that actually issued ops.
        let spec =
            OpenLoopSpec::poisson(50_000.0).with_client_skew(ClientSkew::Zipf { theta: 0.9 });
        let mut source = spec.source(&base(), 1_000_000, 500, 7);
        let ops: Vec<TimedOp> = source.by_ref().collect();
        assert_eq!(ops.len(), 500);
        assert!(source.touched_clients() <= 500);
        assert!(
            source.touched_clients() < 1_000_000 / 100,
            "touched {} clients — state is not O(active)",
            source.touched_clients()
        );
        // Tail clients past the alias head must still be reachable.
        assert!(
            ops.iter().any(|t| t.client >= 1024),
            "no tail client ever picked"
        );
    }

    #[test]
    fn uniform_offset_skew_flattens_locality() {
        let spec = OpenLoopSpec::poisson(50_000.0).with_offset_skew(OffsetSkew::Uniform);
        let s = spec.materialize(&base(), 2, 4000, 9);
        // With locality flattened, update/read offsets spread over the
        // whole written region instead of piling into the 10 % hot set.
        let mut hits = std::collections::HashSet::new();
        for t in s.ops() {
            if t.op.kind == OpKind::Update {
                hits.insert(t.op.offset >> 12);
            }
        }
        assert!(
            hits.len() > 500,
            "only {} distinct update slots",
            hits.len()
        );
    }
}
