//! Open-loop offered load: arrival processes, skewed client populations,
//! and timed op streams.
//!
//! Everything the replay engine ran before this crate was **closed-loop**:
//! each client issues its next op the instant the previous one completes,
//! so the offered rate self-throttles to whatever the cluster sustains and
//! the queueing collapse that separates update methods under real load can
//! never appear. This crate generates **open-loop** load — ops arrive on
//! their own schedule whether or not earlier ops finished — in three
//! composable pieces:
//!
//! * [`arrival`] — *when* ops arrive: a base point process
//!   ([`BaseProcess::Poisson`] or [`BaseProcess::Periodic`]) modulated by a
//!   [`RateCurve`] (constant, bursty on/off, diurnal), so "Poisson at
//!   20 kop/s in 30 % duty bursts" is one spec;
//! * [`skew`] — *who* issues them: [`ClientSkew`] draws the issuing client
//!   per arrival (uniform, Zipfian hot clients, hot-spot subsets) and
//!   [`OffsetSkew`] reshapes each client's address locality (family
//!   default, tightened hot ranges, flattened uniform);
//! * [`stream`] — *what* arrives: a [`TimedStream`] of `(client, op)` pairs
//!   carrying absolute arrival timestamps. Synthetic specs materialise into
//!   one ([`OpenLoopSpec::materialize`]), and imported real traces
//!   (`traces::io::msr_to_ops`, `traces::io::ali_to_ops`) convert into one
//!   with their *real* arrival times preserved.
//!
//! The replay engine consumes a [`TimedStream`] with a bounded
//! outstanding-op window per client and an admission queue, and reports
//! offered-vs-acked throughput (goodput), queue-delay percentiles, and a
//! saturation flag — see `ecfs::replay`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrival;
pub mod skew;
pub mod stream;

pub use arrival::{ArrivalGen, BaseProcess, RateCurve};
pub use skew::{ClientPicker, ClientSkew, OffsetSkew};
pub use stream::{TimedOp, TimedStream};

use rand::rngs::StdRng;
use rand::SeedableRng;
use traces::{WorkloadGen, WorkloadParams};

/// A complete open-loop load specification: arrival process × client skew
/// × offset skew × per-client concurrency window.
///
/// The `rate` is the **aggregate** offered rate over the whole client
/// population, in ops per second.
#[derive(Debug, Clone)]
pub struct OpenLoopSpec {
    /// The base point process gaps are drawn from.
    pub process: BaseProcess,
    /// The (possibly time-varying) aggregate arrival rate.
    pub rate: RateCurve,
    /// How the issuing client is drawn per arrival.
    pub client_skew: ClientSkew,
    /// How each client's address locality is reshaped.
    pub offset_skew: OffsetSkew,
    /// Maximum ops a client keeps outstanding; arrivals beyond it wait in
    /// the admission queue (their wait is the measured queue delay).
    pub window: usize,
}

impl OpenLoopSpec {
    /// Poisson arrivals at a constant aggregate `ops_per_s`, uniform
    /// clients, family-default locality, window 4.
    pub fn poisson(ops_per_s: f64) -> OpenLoopSpec {
        OpenLoopSpec {
            process: BaseProcess::Poisson,
            rate: RateCurve::Constant { ops_per_s },
            client_skew: ClientSkew::Uniform,
            offset_skew: OffsetSkew::Family,
            window: 4,
        }
    }

    /// Deterministic (periodic) arrivals at a constant aggregate
    /// `ops_per_s`; otherwise as [`Self::poisson`].
    pub fn periodic(ops_per_s: f64) -> OpenLoopSpec {
        OpenLoopSpec {
            process: BaseProcess::Periodic,
            ..Self::poisson(ops_per_s)
        }
    }

    /// Replaces the rate curve (builder-style).
    pub fn with_rate(mut self, rate: RateCurve) -> OpenLoopSpec {
        self.rate = rate;
        self
    }

    /// Replaces the base process (builder-style).
    pub fn with_process(mut self, process: BaseProcess) -> OpenLoopSpec {
        self.process = process;
        self
    }

    /// Replaces the client-skew model (builder-style).
    pub fn with_client_skew(mut self, skew: ClientSkew) -> OpenLoopSpec {
        self.client_skew = skew;
        self
    }

    /// Replaces the offset-skew model (builder-style).
    pub fn with_offset_skew(mut self, skew: OffsetSkew) -> OpenLoopSpec {
        self.offset_skew = skew;
        self
    }

    /// Replaces the per-client outstanding-op window (builder-style).
    pub fn with_window(mut self, window: usize) -> OpenLoopSpec {
        self.window = window;
        self
    }

    /// Validates every component of the spec.
    pub fn validate(&self) -> Result<(), String> {
        self.rate.validate()?;
        self.client_skew.validate()?;
        self.offset_skew.validate()?;
        if self.window == 0 {
            return Err("open-loop window must admit at least one op".into());
        }
        Ok(())
    }

    /// Materialises the spec into a [`TimedStream`] of `total_ops`
    /// arrivals over `clients` clients.
    ///
    /// Deterministic in `(spec, base, clients, total_ops, seed)`. Op
    /// *content* comes from one [`WorkloadGen`] per client seeded
    /// `seed + client` — the same seeding the closed-loop replay uses, so
    /// an open-loop run at low rate replays statistically the same ops as
    /// its closed-loop twin. Arrival times and client picks come from
    /// seed-salted side streams so they perturb neither the content nor
    /// each other.
    ///
    /// # Panics
    /// Panics if the spec or `base` fail validation, or `clients == 0`.
    pub fn materialize(
        &self,
        base: &WorkloadParams,
        clients: usize,
        total_ops: usize,
        seed: u64,
    ) -> TimedStream {
        self.validate().expect("invalid open-loop spec");
        assert!(clients > 0, "open-loop load needs at least one client");
        let mut params = base.clone();
        self.offset_skew.apply(&mut params);
        let mut gens: Vec<WorkloadGen> = (0..clients)
            .map(|c| WorkloadGen::new(params.clone(), seed.wrapping_add(c as u64)))
            .collect();
        let mut arrivals = ArrivalGen::new(
            self.process,
            self.rate.clone(),
            seed ^ 0x6172_7269_7661_6c73, // "arrivals"
        );
        let picker = ClientPicker::new(self.client_skew, clients);
        let mut pick_rng = StdRng::seed_from_u64(seed ^ 0x636c_6965_6e74_7321); // "clients!"
        let mut ops = Vec::with_capacity(total_ops);
        for _ in 0..total_ops {
            let at_ns = arrivals.next_ns();
            let client = picker.pick(&mut pick_rng);
            let mut op = gens[client].next().expect("generator is infinite");
            op.at_ns = at_ns;
            ops.push(TimedOp { client, op });
        }
        TimedStream::new(ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traces::OpKind;

    const VOL: u64 = 64 << 20;

    fn base() -> WorkloadParams {
        WorkloadParams::ali_cloud(VOL)
    }

    #[test]
    fn spec_validates() {
        assert!(OpenLoopSpec::poisson(10_000.0).validate().is_ok());
        assert!(OpenLoopSpec::poisson(0.0).validate().is_err());
        assert!(OpenLoopSpec::poisson(1.0)
            .with_window(0)
            .validate()
            .is_err());
    }

    #[test]
    fn materialize_is_deterministic() {
        let spec =
            OpenLoopSpec::poisson(50_000.0).with_client_skew(ClientSkew::Zipf { theta: 0.9 });
        let a = spec.materialize(&base(), 8, 2000, 42);
        let b = spec.materialize(&base(), 8, 2000, 42);
        assert_eq!(a, b);
        let c = spec.materialize(&base(), 8, 2000, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn materialize_produces_sorted_valid_stream() {
        let spec = OpenLoopSpec::poisson(20_000.0);
        let s = spec.materialize(&base(), 4, 1000, 7);
        assert_eq!(s.len(), 1000);
        s.validate(4, VOL).unwrap();
        // Arrival times strictly increase (gaps are clamped to >= 1 ns).
        let ats: Vec<u64> = s.ops().iter().map(|t| t.op.at_ns).collect();
        assert!(ats.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn materialize_rate_is_close_to_spec() {
        let spec = OpenLoopSpec::poisson(100_000.0);
        let s = spec.materialize(&base(), 8, 10_000, 11);
        let secs = s.horizon_ns() as f64 / 1e9;
        let rate = s.len() as f64 / secs;
        assert!(
            (rate - 100_000.0).abs() / 100_000.0 < 0.05,
            "offered rate {rate:.0} drifted from 100k"
        );
    }

    #[test]
    fn zipf_clients_concentrate_arrivals() {
        let spec =
            OpenLoopSpec::poisson(50_000.0).with_client_skew(ClientSkew::Zipf { theta: 0.95 });
        let s = spec.materialize(&base(), 16, 8000, 3);
        let mut counts = [0usize; 16];
        for t in s.ops() {
            counts[t.client] += 1;
        }
        let hottest = *counts.iter().max().unwrap();
        assert!(
            hottest > 8000 / 16 * 3,
            "hottest client drew only {hottest}/8000 arrivals"
        );
        // Client 0 is the Zipf head.
        assert_eq!(counts[0], hottest);
    }

    #[test]
    fn uniform_offset_skew_flattens_locality() {
        let spec = OpenLoopSpec::poisson(50_000.0).with_offset_skew(OffsetSkew::Uniform);
        let s = spec.materialize(&base(), 2, 4000, 9);
        // With locality flattened, update/read offsets spread over the
        // whole written region instead of piling into the 10 % hot set.
        let mut hits = std::collections::HashSet::new();
        for t in s.ops() {
            if t.op.kind == OpKind::Update {
                hits.insert(t.op.offset >> 12);
            }
        }
        assert!(
            hits.len() > 500,
            "only {} distinct update slots",
            hits.len()
        );
    }
}
