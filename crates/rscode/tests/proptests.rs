//! Property tests: the codec is MDS and the incremental paths are exact.

use proptest::prelude::*;
use rscode::{delta, CodeParams, MatrixKind, ReedSolomon, Stripe};

/// Strategy over the paper's evaluated code shapes plus a few small ones.
fn code_shape() -> impl Strategy<Value = (usize, usize)> {
    prop_oneof![
        Just((2usize, 2usize)),
        Just((3, 2)),
        Just((4, 2)),
        Just((6, 2)),
        Just((6, 3)),
        Just((6, 4)),
        Just((12, 2)),
        Just((12, 3)),
        Just((12, 4)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn encode_erase_reconstruct_roundtrip(
        (k, m) in code_shape(),
        len in 1usize..300,
        seed in any::<u64>(),
        kind in prop_oneof![Just(MatrixKind::Cauchy), Just(MatrixKind::Vandermonde)],
    ) {
        let rs = ReedSolomon::with_matrix_kind(CodeParams::new(k, m).unwrap(), kind);
        let mut shards: Vec<Vec<u8>> = (0..k + m)
            .map(|i| {
                (0..len)
                    .map(|b| (seed.wrapping_mul(i as u64 + 1).wrapping_add(b as u64 * 2654435761) >> 16) as u8)
                    .collect()
            })
            .collect();
        rs.encode_shards(&mut shards).unwrap();
        prop_assert!(rs.verify(&shards).unwrap());

        // Erase a pseudo-random m-subset.
        let mut holes: Vec<Option<Vec<u8>>> = shards.iter().cloned().map(Some).collect();
        let mut x = seed | 1;
        let mut erased = 0;
        while erased < m {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let idx = (x >> 33) as usize % (k + m);
            if holes[idx].is_some() {
                holes[idx] = None;
                erased += 1;
            }
        }
        rs.reconstruct(&mut holes).unwrap();
        for i in 0..k + m {
            prop_assert_eq!(holes[i].as_deref(), Some(&shards[i][..]));
        }
    }

    #[test]
    fn arbitrary_update_sequence_keeps_parity_exact(
        (k, m) in code_shape(),
        updates in proptest::collection::vec(
            (0usize..12, 0usize..100, proptest::collection::vec(any::<u8>(), 1..40)),
            1..20
        ),
    ) {
        let block_len = 160usize;
        let rs = ReedSolomon::new(CodeParams::new(k, m).unwrap());
        let data: Vec<Vec<u8>> = (0..k).map(|i| vec![i as u8; block_len]).collect();
        let mut s = Stripe::from_data(rs.clone(), data.clone()).unwrap();
        let mut reference = Stripe::from_data(rs, data).unwrap();

        for (blk, off, bytes) in &updates {
            let blk = blk % k;
            let off = off % (block_len - bytes.len().min(block_len - 1));
            // Incremental path.
            s.update(blk, off, bytes);
            // Reference path: raw write + full re-encode.
            let mut raw: Vec<Vec<u8>> = (0..k).map(|i| reference.block(i).to_vec()).collect();
            raw[blk][off..off + bytes.len()].copy_from_slice(bytes);
            reference = Stripe::from_data(reference.codec().clone(), raw).unwrap();
        }

        for i in 0..k + m {
            prop_assert_eq!(s.block(i), reference.block(i), "block {}", i);
        }
        prop_assert!(s.verify().unwrap());
    }

    #[test]
    fn eq5_combination_equals_separate_application(
        (k, m) in code_shape(),
        raw_deltas in proptest::collection::vec(
            (0usize..12, proptest::collection::vec(any::<u8>(), 32)),
            1..8
        ),
    ) {
        let rs = ReedSolomon::new(CodeParams::new(k, m).unwrap());
        let deltas: Vec<(usize, Vec<u8>)> = raw_deltas
            .into_iter()
            .map(|(j, d)| (j % k, d))
            .collect();
        for p in 0..m {
            let refs: Vec<(usize, &[u8])> =
                deltas.iter().map(|(j, d)| (*j, d.as_slice())).collect();
            let combined = delta::combine_stripe_deltas(&rs, p, &refs);

            let mut separate = vec![0u8; 32];
            for (j, d) in &deltas {
                delta::parity_delta(&rs, p, *j, d, &mut separate);
            }
            prop_assert_eq!(&combined, &separate, "parity {}", p);
        }
    }

    #[test]
    fn delta_accumulator_equals_endpoint_delta(
        versions in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 24),
            2..10
        ),
    ) {
        // Folding per-step deltas must equal first-to-last delta (Eq. 4).
        let mut acc = delta::DeltaAccumulator::new(24);
        for w in versions.windows(2) {
            acc.merge(&delta::data_delta(&w[0], &w[1]));
        }
        let endpoint = delta::data_delta(&versions[0], &versions[versions.len() - 1]);
        prop_assert_eq!(acc.net(), &endpoint[..]);
    }

    #[test]
    fn parity_delta_application_order_is_irrelevant(
        (k, m) in code_shape(),
        d1 in proptest::collection::vec(any::<u8>(), 16),
        d2 in proptest::collection::vec(any::<u8>(), 16),
        d3 in proptest::collection::vec(any::<u8>(), 16),
        j1 in 0usize..12,
        j2 in 0usize..12,
        j3 in 0usize..12,
    ) {
        let rs = ReedSolomon::new(CodeParams::new(k, m).unwrap());
        let (j1, j2, j3) = (j1 % k, j2 % k, j3 % k);
        let base = vec![0x5au8; 16];

        let mut fwd = base.clone();
        delta::parity_delta(&rs, 0, j1, &d1, &mut fwd);
        delta::parity_delta(&rs, 0, j2, &d2, &mut fwd);
        delta::parity_delta(&rs, 0, j3, &d3, &mut fwd);

        let mut rev = base.clone();
        delta::parity_delta(&rs, 0, j3, &d3, &mut rev);
        delta::parity_delta(&rs, 0, j1, &d1, &mut rev);
        delta::parity_delta(&rs, 0, j2, &d2, &mut rev);

        prop_assert_eq!(fwd, rev);
    }
}
