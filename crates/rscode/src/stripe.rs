//! In-memory stripe: `k` data blocks plus `m` parity blocks kept
//! consistent under sub-block updates.
//!
//! `Stripe` is the ground-truth model used by integration tests and by the
//! cluster simulator's consistency oracle: every update path in the paper
//! (FO, PL, PLR, PARIX, CoRD, TSUE) must converge to the state a `Stripe`
//! reaches via direct incremental updates.

use gf256::slice;

use crate::codec::{CodeParams, ReedSolomon, RsError};
use crate::delta;

/// A fully materialised stripe with always-consistent parity.
#[derive(Debug, Clone)]
pub struct Stripe {
    rs: ReedSolomon,
    block_len: usize,
    blocks: Vec<Vec<u8>>,
}

impl Stripe {
    /// Creates a stripe of zeroed blocks.
    pub fn zeroed(rs: ReedSolomon, block_len: usize) -> Stripe {
        let total = rs.params().total();
        Stripe {
            rs,
            block_len,
            blocks: vec![vec![0u8; block_len]; total],
        }
    }

    /// Creates a stripe from `k` data blocks, computing parity.
    pub fn from_data(rs: ReedSolomon, data: Vec<Vec<u8>>) -> Result<Stripe, RsError> {
        let params = rs.params();
        if data.len() != params.k() {
            return Err(RsError::WrongShardCount {
                got: data.len(),
                expected: params.k(),
            });
        }
        let block_len = data[0].len();
        let mut blocks = data;
        blocks.resize(params.total(), vec![0u8; block_len]);
        let mut s = Stripe {
            rs,
            block_len,
            blocks,
        };
        s.reencode()?;
        Ok(s)
    }

    /// The codec used by this stripe.
    pub fn codec(&self) -> &ReedSolomon {
        &self.rs
    }

    /// The code parameters.
    pub fn params(&self) -> CodeParams {
        self.rs.params()
    }

    /// Block length in bytes.
    pub fn block_len(&self) -> usize {
        self.block_len
    }

    /// Read-only view of block `idx` (data for `idx < k`, parity otherwise).
    ///
    /// # Panics
    /// Panics if `idx >= k + m`.
    pub fn block(&self, idx: usize) -> &[u8] {
        &self.blocks[idx]
    }

    /// Reads `len` bytes at `offset` within data block `idx`.
    ///
    /// # Panics
    /// Panics if the range exceeds the block or `idx` is not a data block.
    pub fn read(&self, idx: usize, offset: usize, len: usize) -> &[u8] {
        assert!(idx < self.params().k(), "read: not a data block");
        &self.blocks[idx][offset..offset + len]
    }

    /// Applies a sub-block update to data block `idx` at `offset`,
    /// incrementally folding the parity deltas into every parity block
    /// (Eq. 2 applied at sub-block granularity).
    ///
    /// Returns the data delta for the updated byte range.
    ///
    /// # Panics
    /// Panics if the range exceeds the block or `idx` is not a data block.
    pub fn update(&mut self, idx: usize, offset: usize, new: &[u8]) -> Vec<u8> {
        let k = self.params().k();
        assert!(idx < k, "update: not a data block");
        assert!(
            offset + new.len() <= self.block_len,
            "update: range out of bounds"
        );
        let old = &self.blocks[idx][offset..offset + new.len()];
        let dd = delta::data_delta(old, new);
        self.blocks[idx][offset..offset + new.len()].copy_from_slice(new);
        for p in 0..self.params().m() {
            let c = self.rs.coefficient(p, idx).value();
            let parity = &mut self.blocks[k + p][offset..offset + new.len()];
            slice::mul_acc(parity, &dd, c);
        }
        dd
    }

    /// Recomputes all parity from the data blocks (reference path).
    pub fn reencode(&mut self) -> Result<(), RsError> {
        self.rs.encode_shards(&mut self.blocks)
    }

    /// Checks parity consistency.
    pub fn verify(&self) -> Result<bool, RsError> {
        self.rs.verify(&self.blocks)
    }

    /// Simulates losing the given blocks and reconstructing them; returns an
    /// error if reconstruction is impossible, otherwise verifies the rebuilt
    /// stripe matches the original bytes.
    pub fn drill_recovery(&self, lost: &[usize]) -> Result<bool, RsError> {
        let mut holes: Vec<Option<Vec<u8>>> = self.blocks.iter().cloned().map(Some).collect();
        for &l in lost {
            holes[l] = None;
        }
        self.rs.reconstruct(&mut holes)?;
        Ok(holes
            .iter()
            .zip(&self.blocks)
            .all(|(h, b)| h.as_deref() == Some(&b[..])))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stripe(k: usize, m: usize, len: usize) -> Stripe {
        let rs = ReedSolomon::new(CodeParams::new(k, m).unwrap());
        let data: Vec<Vec<u8>> = (0..k)
            .map(|i| (0..len).map(|b| ((i + 1) * (b + 3) % 256) as u8).collect())
            .collect();
        Stripe::from_data(rs, data).unwrap()
    }

    #[test]
    fn fresh_stripe_verifies() {
        let s = stripe(6, 3, 256);
        assert!(s.verify().unwrap());
    }

    #[test]
    fn incremental_update_keeps_parity_consistent() {
        let mut s = stripe(6, 3, 256);
        s.update(0, 0, &[0xde, 0xad, 0xbe, 0xef]);
        s.update(3, 100, &[0x42; 50]);
        s.update(5, 252, &[1, 2, 3, 4]);
        assert!(s.verify().unwrap());
    }

    #[test]
    fn incremental_matches_reencode() {
        let mut a = stripe(4, 2, 128);
        let mut b = a.clone();
        a.update(2, 17, &[0x99; 31]);
        b.blocks[2][17..48].copy_from_slice(&[0x99; 31]);
        b.reencode().unwrap();
        assert_eq!(a.blocks, b.blocks);
    }

    #[test]
    fn read_returns_updated_bytes() {
        let mut s = stripe(4, 2, 64);
        s.update(1, 10, &[7, 8, 9]);
        assert_eq!(s.read(1, 10, 3), &[7, 8, 9]);
    }

    #[test]
    fn recovery_drill_after_updates() {
        let mut s = stripe(6, 4, 128);
        for i in 0..6 {
            s.update(i, i * 13, &[(0xa0 + i) as u8; 20]);
        }
        // Lose a mix of data and parity up to m blocks.
        assert!(s.drill_recovery(&[0]).unwrap());
        assert!(s.drill_recovery(&[0, 7]).unwrap());
        assert!(s.drill_recovery(&[1, 3, 8]).unwrap());
        assert!(s.drill_recovery(&[0, 2, 6, 9]).unwrap());
        // m + 1 losses must fail.
        assert!(s.drill_recovery(&[0, 1, 2, 3, 4]).is_err());
    }

    #[test]
    fn update_returns_data_delta() {
        let mut s = stripe(2, 2, 16);
        let old = s.read(0, 4, 4).to_vec();
        let new = [9u8, 9, 9, 9];
        let dd = s.update(0, 4, &new);
        for i in 0..4 {
            assert_eq!(dd[i], old[i] ^ new[i]);
        }
    }

    #[test]
    #[should_panic(expected = "not a data block")]
    fn updating_parity_panics() {
        let mut s = stripe(2, 2, 16);
        s.update(2, 0, &[1]);
    }
}
