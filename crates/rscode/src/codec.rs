//! The systematic RS(k, m) codec: encode, verify, reconstruct.

use core::fmt;

use gf256::{slice, Gf, Matrix};

/// Errors produced by the codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsError {
    /// `k` or `m` is zero, or `k + m` exceeds the field size budget.
    InvalidParams {
        /// Requested data-block count.
        k: usize,
        /// Requested parity-block count.
        m: usize,
    },
    /// A shard had a different length from the others.
    ShardSizeMismatch {
        /// Index of the offending shard.
        index: usize,
        /// Its length.
        got: usize,
        /// The expected length.
        expected: usize,
    },
    /// The number of shards passed does not equal `k + m`.
    WrongShardCount {
        /// How many shards were passed.
        got: usize,
        /// How many were expected.
        expected: usize,
    },
    /// Fewer than `k` shards survive: reconstruction is impossible.
    TooManyErasures {
        /// Number of surviving shards.
        present: usize,
        /// Number required.
        needed: usize,
    },
}

impl fmt::Display for RsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RsError::InvalidParams { k, m } => {
                write!(f, "invalid RS parameters k={k}, m={m}")
            }
            RsError::ShardSizeMismatch {
                index,
                got,
                expected,
            } => write!(f, "shard {index} has length {got}, expected {expected}"),
            RsError::WrongShardCount { got, expected } => {
                write!(f, "got {got} shards, expected {expected}")
            }
            RsError::TooManyErasures { present, needed } => {
                write!(f, "only {present} shards survive but {needed} are needed")
            }
        }
    }
}

impl std::error::Error for RsError {}

/// Which family of MDS matrix generates the parity blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatrixKind {
    /// Cauchy matrix (every square submatrix invertible by construction).
    #[default]
    Cauchy,
    /// Vandermonde matrix column-reduced into systematic form.
    Vandermonde,
}

/// Validated RS(k, m) shape: `k` data blocks, `m` parity blocks per stripe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CodeParams {
    k: usize,
    m: usize,
}

impl CodeParams {
    /// Validates and constructs the parameters.
    ///
    /// Requires `k >= 1`, `m >= 1`, and `k + m <= 255` so the generator
    /// matrices stay within GF(2^8).
    pub fn new(k: usize, m: usize) -> Result<CodeParams, RsError> {
        if k == 0 || m == 0 || k + m > 255 {
            return Err(RsError::InvalidParams { k, m });
        }
        Ok(CodeParams { k, m })
    }

    /// Number of data blocks per stripe.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of parity blocks per stripe.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Total blocks per stripe (`k + m`).
    #[inline]
    pub fn total(&self) -> usize {
        self.k + self.m
    }

    /// Storage overhead factor `(k + m) / k`.
    #[inline]
    pub fn overhead(&self) -> f64 {
        self.total() as f64 / self.k as f64
    }
}

/// A systematic Reed-Solomon codec for one `(k, m)` shape.
///
/// Construction precomputes the `m × k` parity matrix; encode/reconstruct
/// are then allocation-light streaming passes over the shards.
#[derive(Debug, Clone)]
pub struct ReedSolomon {
    params: CodeParams,
    kind: MatrixKind,
    /// `m × k` parity-generation matrix (the `∂` coefficients of Eq. 1-5).
    parity: Matrix,
}

impl ReedSolomon {
    /// Codec with the default (Cauchy) parity matrix.
    pub fn new(params: CodeParams) -> ReedSolomon {
        Self::with_matrix_kind(params, MatrixKind::Cauchy)
    }

    /// Codec with an explicit matrix family.
    pub fn with_matrix_kind(params: CodeParams, kind: MatrixKind) -> ReedSolomon {
        let parity = match kind {
            MatrixKind::Cauchy => Matrix::cauchy(params.m, params.k),
            MatrixKind::Vandermonde => Matrix::rs_vandermonde(params.k, params.m),
        };
        ReedSolomon {
            params,
            kind,
            parity,
        }
    }

    /// The codec's parameters.
    #[inline]
    pub fn params(&self) -> CodeParams {
        self.params
    }

    /// Which matrix family the codec uses.
    #[inline]
    pub fn matrix_kind(&self) -> MatrixKind {
        self.kind
    }

    /// The encoding coefficient `∂(parity_idx, data_idx)` of Eq. (1)-(5).
    ///
    /// # Panics
    /// Panics if either index is out of range.
    #[inline]
    pub fn coefficient(&self, parity_idx: usize, data_idx: usize) -> Gf {
        self.parity.get(parity_idx, data_idx)
    }

    /// Borrow of the `m × k` parity matrix.
    #[inline]
    pub fn parity_matrix(&self) -> &Matrix {
        &self.parity
    }

    fn check_shard_lengths<T: AsRef<[u8]>>(&self, shards: &[T]) -> Result<usize, RsError> {
        if shards.len() != self.params.total() {
            return Err(RsError::WrongShardCount {
                got: shards.len(),
                expected: self.params.total(),
            });
        }
        let expected = shards[0].as_ref().len();
        for (i, s) in shards.iter().enumerate() {
            if s.as_ref().len() != expected {
                return Err(RsError::ShardSizeMismatch {
                    index: i,
                    got: s.as_ref().len(),
                    expected,
                });
            }
        }
        Ok(expected)
    }

    /// Encodes parity from data: `parity[i] = Σ_j ∂(i,j) · data[j]` (Eq. 1).
    ///
    /// `data` must hold exactly `k` equal-length slices and `parity` exactly
    /// `m` equal-length buffers of the same length; parity buffers are
    /// overwritten.
    pub fn encode(&self, data: &[&[u8]], parity: &mut [&mut [u8]]) -> Result<(), RsError> {
        if data.len() != self.params.k || parity.len() != self.params.m {
            return Err(RsError::WrongShardCount {
                got: data.len() + parity.len(),
                expected: self.params.total(),
            });
        }
        let len = data[0].len();
        for (i, d) in data.iter().enumerate() {
            if d.len() != len {
                return Err(RsError::ShardSizeMismatch {
                    index: i,
                    got: d.len(),
                    expected: len,
                });
            }
        }
        for (i, p) in parity.iter().enumerate() {
            if p.len() != len {
                return Err(RsError::ShardSizeMismatch {
                    index: self.params.k + i,
                    got: p.len(),
                    expected: len,
                });
            }
        }
        for (i, p) in parity.iter_mut().enumerate() {
            p.fill(0);
            for (j, d) in data.iter().enumerate() {
                slice::mul_acc(p, d, self.parity.get(i, j).value());
            }
        }
        Ok(())
    }

    /// Encodes in place over a `k + m` shard vector: the first `k` entries
    /// are data, the last `m` are overwritten with parity.
    pub fn encode_shards(&self, shards: &mut [Vec<u8>]) -> Result<(), RsError> {
        self.check_shard_lengths(shards)?;
        let (data, parity) = shards.split_at_mut(self.params.k);
        let data_refs: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
        let mut parity_refs: Vec<&mut [u8]> = parity.iter_mut().map(|v| v.as_mut_slice()).collect();
        self.encode(&data_refs, &mut parity_refs)
    }

    /// Checks that the parity shards are consistent with the data shards.
    pub fn verify(&self, shards: &[Vec<u8>]) -> Result<bool, RsError> {
        let len = self.check_shard_lengths(shards)?;
        let mut buf = vec![0u8; len];
        for i in 0..self.params.m {
            buf.fill(0);
            for (j, shard) in shards.iter().take(self.params.k).enumerate() {
                slice::mul_acc(&mut buf, shard, self.parity.get(i, j).value());
            }
            if buf != shards[self.params.k + i] {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Rebuilds every missing shard (`None` entry) from the survivors.
    ///
    /// Succeeds whenever at least `k` of the `k + m` entries are present,
    /// regardless of *which* ones — the MDS guarantee. Reconstructed entries
    /// are written back as `Some`.
    pub fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), RsError> {
        let (k, m) = (self.params.k, self.params.m);
        if shards.len() != k + m {
            return Err(RsError::WrongShardCount {
                got: shards.len(),
                expected: k + m,
            });
        }
        let present: Vec<usize> = (0..k + m).filter(|&i| shards[i].is_some()).collect();
        if present.len() < k {
            return Err(RsError::TooManyErasures {
                present: present.len(),
                needed: k,
            });
        }
        let missing: Vec<usize> = (0..k + m).filter(|&i| shards[i].is_none()).collect();
        if missing.is_empty() {
            return Ok(());
        }
        let len = shards[present[0]].as_ref().unwrap().len();
        for &i in &present {
            let got = shards[i].as_ref().unwrap().len();
            if got != len {
                return Err(RsError::ShardSizeMismatch {
                    index: i,
                    got,
                    expected: len,
                });
            }
        }

        // Extended generator: row i of [I; A] maps data -> shard i.
        let full = self.extended_generator();
        // Use the first k survivors as the solve basis.
        let basis: Vec<usize> = present.iter().copied().take(k).collect();
        let sub = full.select_rows(&basis);
        let inv = sub
            .inverted()
            .expect("any k rows of an MDS generator are invertible");

        // data[j] = Σ_b inv(j, b) * shard[basis[b]]; compute only the data
        // blocks we actually need, then re-encode missing parity from them.
        let missing_data: Vec<usize> = missing.iter().copied().filter(|&i| i < k).collect();
        let missing_parity: Vec<usize> = missing.iter().copied().filter(|&i| i >= k).collect();

        // Recover all data blocks needed: every missing data block, plus (if
        // any parity is missing) every data block, because parity re-encode
        // reads them all.
        let need_all_data = !missing_parity.is_empty();
        let mut data_blocks: Vec<Option<Vec<u8>>> = vec![None; k];
        for j in 0..k {
            if let Some(buf) = &shards[j] {
                data_blocks[j] = Some(buf.clone());
            }
        }
        let to_solve: Vec<usize> = (0..k)
            .filter(|&j| data_blocks[j].is_none() && (need_all_data || missing_data.contains(&j)))
            .collect();
        for &j in &to_solve {
            let mut out = vec![0u8; len];
            for (b, &src) in basis.iter().enumerate() {
                let c = inv.get(j, b).value();
                slice::mul_acc(&mut out, shards[src].as_ref().unwrap(), c);
            }
            data_blocks[j] = Some(out);
        }

        for &j in &missing_data {
            shards[j] = Some(data_blocks[j].clone().expect("solved above"));
        }
        for &p in &missing_parity {
            let i = p - k;
            let mut out = vec![0u8; len];
            for (j, db) in data_blocks.iter().enumerate() {
                let d = db.as_ref().expect("all data recovered for parity");
                slice::mul_acc(&mut out, d, self.parity.get(i, j).value());
            }
            shards[p] = Some(out);
        }
        Ok(())
    }

    /// The `(k+m) × k` extended generator `[I; A]`.
    pub fn extended_generator(&self) -> Matrix {
        let (k, m) = (self.params.k, self.params.m);
        let mut full = Matrix::zero(k + m, k);
        for i in 0..k {
            full.set(i, i, Gf::ONE);
        }
        for i in 0..m {
            for j in 0..k {
                full.set(k + i, j, self.parity.get(i, j));
            }
        }
        full
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_shards(k: usize, m: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k + m)
            .map(|i| {
                (0..len)
                    .map(|b| ((i * 131 + b * 17 + 7) % 256) as u8)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn params_validation() {
        assert!(CodeParams::new(0, 2).is_err());
        assert!(CodeParams::new(2, 0).is_err());
        assert!(CodeParams::new(200, 56).is_err());
        let p = CodeParams::new(6, 4).unwrap();
        assert_eq!(p.k(), 6);
        assert_eq!(p.m(), 4);
        assert_eq!(p.total(), 10);
        assert!((p.overhead() - 10.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn encode_verify_roundtrip_both_kinds() {
        for kind in [MatrixKind::Cauchy, MatrixKind::Vandermonde] {
            let rs = ReedSolomon::with_matrix_kind(CodeParams::new(6, 3).unwrap(), kind);
            let mut shards = make_shards(6, 3, 512);
            rs.encode_shards(&mut shards).unwrap();
            assert!(rs.verify(&shards).unwrap(), "{kind:?}");
            shards[0][10] ^= 1;
            assert!(!rs.verify(&shards).unwrap(), "{kind:?}");
        }
    }

    #[test]
    fn reconstruct_every_single_erasure() {
        let rs = ReedSolomon::new(CodeParams::new(6, 4).unwrap());
        let mut shards = make_shards(6, 4, 128);
        rs.encode_shards(&mut shards).unwrap();
        for lost in 0..10 {
            let mut holes: Vec<Option<Vec<u8>>> = shards.iter().cloned().map(Some).collect();
            holes[lost] = None;
            rs.reconstruct(&mut holes).unwrap();
            assert_eq!(
                holes[lost].as_deref(),
                Some(&shards[lost][..]),
                "lost {lost}"
            );
        }
    }

    #[test]
    fn reconstruct_all_m_sized_erasure_patterns() {
        let (k, m) = (4usize, 3usize);
        let rs = ReedSolomon::new(CodeParams::new(k, m).unwrap());
        let mut shards = make_shards(k, m, 64);
        rs.encode_shards(&mut shards).unwrap();
        // Every 3-subset of 7 shards.
        for a in 0..k + m {
            for b in a + 1..k + m {
                for c in b + 1..k + m {
                    let mut holes: Vec<Option<Vec<u8>>> =
                        shards.iter().cloned().map(Some).collect();
                    holes[a] = None;
                    holes[b] = None;
                    holes[c] = None;
                    rs.reconstruct(&mut holes).unwrap();
                    for i in 0..k + m {
                        assert_eq!(
                            holes[i].as_deref(),
                            Some(&shards[i][..]),
                            "pattern ({a},{b},{c}) shard {i}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn too_many_erasures_rejected() {
        let rs = ReedSolomon::new(CodeParams::new(4, 2).unwrap());
        let mut shards = make_shards(4, 2, 64);
        rs.encode_shards(&mut shards).unwrap();
        let mut holes: Vec<Option<Vec<u8>>> = shards.iter().cloned().map(Some).collect();
        holes[0] = None;
        holes[1] = None;
        holes[2] = None;
        let err = rs.reconstruct(&mut holes).unwrap_err();
        assert_eq!(
            err,
            RsError::TooManyErasures {
                present: 3,
                needed: 4
            }
        );
    }

    #[test]
    fn shard_length_mismatch_rejected() {
        let rs = ReedSolomon::new(CodeParams::new(2, 2).unwrap());
        let mut shards = make_shards(2, 2, 64);
        shards[3].push(0);
        assert!(matches!(
            rs.encode_shards(&mut shards),
            Err(RsError::ShardSizeMismatch { index: 3, .. })
        ));
    }

    #[test]
    fn wrong_shard_count_rejected() {
        let rs = ReedSolomon::new(CodeParams::new(2, 2).unwrap());
        let mut shards = make_shards(2, 1, 64);
        assert!(matches!(
            rs.encode_shards(&mut shards),
            Err(RsError::WrongShardCount {
                got: 3,
                expected: 4
            })
        ));
    }

    #[test]
    fn reconstruct_noop_when_nothing_missing() {
        let rs = ReedSolomon::new(CodeParams::new(3, 2).unwrap());
        let mut shards = make_shards(3, 2, 32);
        rs.encode_shards(&mut shards).unwrap();
        let mut holes: Vec<Option<Vec<u8>>> = shards.iter().cloned().map(Some).collect();
        rs.reconstruct(&mut holes).unwrap();
        for i in 0..5 {
            assert_eq!(holes[i].as_deref(), Some(&shards[i][..]));
        }
    }

    #[test]
    fn paper_code_shapes_all_work() {
        for (k, m) in [(6, 2), (6, 3), (6, 4), (12, 2), (12, 3), (12, 4)] {
            let rs = ReedSolomon::new(CodeParams::new(k, m).unwrap());
            let mut shards = make_shards(k, m, 256);
            rs.encode_shards(&mut shards).unwrap();
            assert!(rs.verify(&shards).unwrap());
            let mut holes: Vec<Option<Vec<u8>>> = shards.iter().cloned().map(Some).collect();
            for i in 0..m {
                holes[i * 2] = None; // spread erasures over data and parity
            }
            rs.reconstruct(&mut holes).unwrap();
            for i in 0..k + m {
                assert_eq!(holes[i].as_deref(), Some(&shards[i][..]), "RS({k},{m})");
            }
        }
    }
}
