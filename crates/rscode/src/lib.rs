//! Systematic Reed-Solomon erasure codec with incremental-update support.
//!
//! Implements the coding substrate of the TSUE paper:
//!
//! * **Eq. (1)** — full-stripe encoding `P = A · D` over GF(2^8), where `A`
//!   is an `m × k` MDS parity-generation matrix (Cauchy by default,
//!   Vandermonde-derived optionally) — see [`codec::ReedSolomon::encode`];
//! * **reconstruction** of up to `m` lost blocks from any `k` survivors by
//!   inverting the corresponding rows of the extended generator matrix —
//!   see [`codec::ReedSolomon::reconstruct`];
//! * **Eq. (2)** — incremental parity delta
//!   `P₁ⁿ = P₁ⁿ⁻¹ + ∂₁₁ · (D₁ⁿ − D₁ⁿ⁻¹)` — see [`delta::parity_delta`];
//! * **Eq. (3)/(4)** — merging repeated updates of the same address so only
//!   the *net* delta is propagated — see [`delta::DeltaAccumulator`];
//! * **Eq. (5)** — merging same-offset deltas from *different data blocks of
//!   the same stripe* into a single parity delta, the DeltaLog trick that
//!   cuts network traffic — see [`delta::combine_stripe_deltas`].
//!
//! # Example
//!
//! ```
//! use rscode::{CodeParams, ReedSolomon};
//!
//! let rs = ReedSolomon::new(CodeParams::new(4, 2).unwrap());
//! let mut shards: Vec<Vec<u8>> = (0..6).map(|i| vec![i as u8; 64]).collect();
//! rs.encode_shards(&mut shards).unwrap();
//!
//! // Lose any two shards...
//! let mut holes: Vec<Option<Vec<u8>>> = shards.iter().cloned().map(Some).collect();
//! holes[1] = None;
//! holes[5] = None;
//! // ...and get them back.
//! rs.reconstruct(&mut holes).unwrap();
//! assert_eq!(holes[1].as_deref(), Some(&shards[1][..]));
//! assert_eq!(holes[5].as_deref(), Some(&shards[5][..]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod delta;
pub mod stripe;

pub use codec::{CodeParams, MatrixKind, ReedSolomon, RsError};
pub use stripe::Stripe;
