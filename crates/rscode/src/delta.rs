//! Incremental-update mathematics: Eq. (2) through Eq. (5) of the paper.
//!
//! The whole point of delta-based erasure-code updates is that a small write
//! to one data block can be folded into each parity block without touching
//! the other `k − 1` data blocks:
//!
//! * Eq. (2): `Pᵢⁿ = Pᵢⁿ⁻¹ + ∂ᵢⱼ · ΔD` with `ΔD = Dⁿ − Dⁿ⁻¹`;
//! * Eq. (3)/(4): repeated updates at one address collapse — XOR-merging the
//!   data deltas first and multiplying once is equivalent to applying each
//!   delta separately (associativity), so only the *net* change travels;
//! * Eq. (5): same-offset deltas from *different* data blocks of one stripe
//!   combine into a single parity delta per parity block, because parity is
//!   linear in all data blocks.

use gf256::slice;

use crate::codec::ReedSolomon;

/// Computes the data delta `ΔD = new − old` (XOR in characteristic 2).
///
/// # Panics
/// Panics if lengths differ.
pub fn data_delta(old: &[u8], new: &[u8]) -> Vec<u8> {
    assert_eq!(old.len(), new.len(), "data_delta: length mismatch");
    let mut out = vec![0u8; old.len()];
    slice::delta(&mut out, old, new);
    out
}

/// Eq. (2): folds `∂(parity_idx, data_idx) · data_delta` into `parity_acc`.
///
/// `parity_acc` may be an actual parity block (in-place update) or a parity
/// *delta* accumulator that is applied later — the operation is the same.
///
/// # Panics
/// Panics if lengths differ or indices are out of range.
pub fn parity_delta(
    rs: &ReedSolomon,
    parity_idx: usize,
    data_idx: usize,
    data_delta: &[u8],
    parity_acc: &mut [u8],
) {
    let c = rs.coefficient(parity_idx, data_idx).value();
    slice::mul_acc(parity_acc, data_delta, c);
}

/// Applies an already-computed parity delta to a parity block (plain XOR).
///
/// Parity deltas commute (§3.4 of the paper: "their specific sequence
/// becomes inconsequential"), so callers may apply them in any order.
///
/// # Panics
/// Panics if lengths differ.
pub fn apply_parity_delta(parity: &mut [u8], delta: &[u8]) {
    slice::xor(parity, delta);
}

/// Eq. (5): combines same-offset data deltas from several data blocks of one
/// stripe into the single parity delta for `parity_idx`.
///
/// `deltas` holds `(data_idx, ΔD)` pairs; all deltas must be equal length.
/// Returns `Σ_j ∂(parity_idx, j) · ΔD_j`.
///
/// # Panics
/// Panics if deltas is empty, lengths differ, or indices are out of range.
pub fn combine_stripe_deltas(
    rs: &ReedSolomon,
    parity_idx: usize,
    deltas: &[(usize, &[u8])],
) -> Vec<u8> {
    assert!(!deltas.is_empty(), "combine_stripe_deltas: no deltas");
    let len = deltas[0].1.len();
    let mut out = vec![0u8; len];
    for &(data_idx, d) in deltas {
        assert_eq!(d.len(), len, "combine_stripe_deltas: length mismatch");
        parity_delta(rs, parity_idx, data_idx, d, &mut out);
    }
    out
}

/// Eq. (3)/(4): accumulator that XOR-merges successive data deltas for one
/// address so that only the net delta is forwarded.
///
/// For a location updated `n` times, `P` needs only
/// `∂ · (Dⁿ − D⁰) = ∂ · (ΔD₁ ⊕ ΔD₂ ⊕ … ⊕ ΔDₙ)`; this type maintains that
/// running XOR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaAccumulator {
    acc: Vec<u8>,
    merged: u64,
}

impl DeltaAccumulator {
    /// Empty accumulator for a region of `len` bytes.
    pub fn new(len: usize) -> DeltaAccumulator {
        DeltaAccumulator {
            acc: vec![0u8; len],
            merged: 0,
        }
    }

    /// Accumulator seeded with a first delta.
    pub fn from_delta(delta: &[u8]) -> DeltaAccumulator {
        DeltaAccumulator {
            acc: delta.to_vec(),
            merged: 1,
        }
    }

    /// XOR-merges another delta for the same address (Eq. 3).
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn merge(&mut self, delta: &[u8]) {
        slice::xor(&mut self.acc, delta);
        self.merged += 1;
    }

    /// The net delta accumulated so far.
    pub fn net(&self) -> &[u8] {
        &self.acc
    }

    /// Number of deltas merged (useful for traffic-reduction accounting).
    pub fn merged_count(&self) -> u64 {
        self.merged
    }

    /// Consumes the accumulator, returning the net delta.
    pub fn into_net(self) -> Vec<u8> {
        self.acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::CodeParams;

    fn setup(k: usize, m: usize, len: usize) -> (ReedSolomon, Vec<Vec<u8>>) {
        let rs = ReedSolomon::new(CodeParams::new(k, m).unwrap());
        let mut shards: Vec<Vec<u8>> = (0..k + m)
            .map(|i| {
                (0..len)
                    .map(|b| ((i * 37 + b * 11 + 3) % 256) as u8)
                    .collect()
            })
            .collect();
        rs.encode_shards(&mut shards).unwrap();
        (rs, shards)
    }

    #[test]
    fn eq2_incremental_matches_reencode() {
        let (rs, mut shards) = setup(6, 4, 128);
        // Update block 2 with new content.
        let new_block: Vec<u8> = (0..128).map(|b| (b * 7 + 99) as u8).collect();
        let dd = data_delta(&shards[2], &new_block);

        // Incremental path (Eq. 2): fold ∂·ΔD into each parity in place.
        let mut incr = shards.clone();
        incr[2] = new_block.clone();
        for p in 0..4 {
            let (data_part, parity_part) = incr.split_at_mut(6);
            let _ = data_part;
            parity_delta(&rs, p, 2, &dd, &mut parity_part[p]);
        }

        // Reference path: full re-encode.
        shards[2] = new_block;
        rs.encode_shards(&mut shards).unwrap();

        assert_eq!(incr, shards);
    }

    #[test]
    fn eq3_merged_deltas_match_sequential_application() {
        let (rs, shards) = setup(4, 2, 64);
        let orig = shards[1].clone();

        // Three successive updates to block 1.
        let v1: Vec<u8> = (0..64).map(|b| (b + 1) as u8).collect();
        let v2: Vec<u8> = (0..64).map(|b| (b * 3) as u8).collect();
        let v3: Vec<u8> = (0..64).map(|b| (b * 5 + 2) as u8).collect();

        // Sequential: apply each delta to parity as it happens.
        let mut seq_parity = shards[4].clone();
        let mut cur = orig.clone();
        for v in [&v1, &v2, &v3] {
            let dd = data_delta(&cur, v);
            parity_delta(&rs, 0, 1, &dd, &mut seq_parity);
            cur = v.clone();
        }

        // Merged (Eq. 3): accumulate deltas, apply once.
        let mut acc = DeltaAccumulator::new(64);
        let mut cur = orig.clone();
        for v in [&v1, &v2, &v3] {
            acc.merge(&data_delta(&cur, v));
            cur = v.clone();
        }
        assert_eq!(acc.merged_count(), 3);
        let mut merged_parity = shards[4].clone();
        parity_delta(&rs, 0, 1, acc.net(), &mut merged_parity);

        assert_eq!(seq_parity, merged_parity);

        // Eq. 4 sanity: the net delta equals last-new XOR first-old.
        assert_eq!(acc.into_net(), data_delta(&orig, &v3));
    }

    #[test]
    fn eq5_combined_delta_matches_individual_deltas() {
        let (rs, shards) = setup(6, 3, 96);

        // Same-offset updates to data blocks 0, 2 and 4.
        let updates: Vec<(usize, Vec<u8>)> = [0usize, 2, 4]
            .iter()
            .map(|&j| {
                let new: Vec<u8> = (0..96).map(|b| ((b * (j + 2)) % 256) as u8).collect();
                (j, data_delta(&shards[j], &new))
            })
            .collect();

        for p in 0..3 {
            // Individually applied.
            let mut indiv = shards[6 + p].clone();
            for (j, dd) in &updates {
                parity_delta(&rs, p, *j, dd, &mut indiv);
            }
            // Combined (Eq. 5): one parity delta from all data deltas.
            let refs: Vec<(usize, &[u8])> =
                updates.iter().map(|(j, d)| (*j, d.as_slice())).collect();
            let combined = combine_stripe_deltas(&rs, p, &refs);
            let mut comb = shards[6 + p].clone();
            apply_parity_delta(&mut comb, &combined);

            assert_eq!(indiv, comb, "parity {p}");
        }
    }

    #[test]
    fn parity_deltas_commute() {
        let (rs, shards) = setup(4, 2, 32);
        let d1 = data_delta(&shards[0], &[0xaa; 32]);
        let d2 = data_delta(&shards[3], &[0x55; 32]);

        let mut order_a = shards[4].clone();
        parity_delta(&rs, 0, 0, &d1, &mut order_a);
        parity_delta(&rs, 0, 3, &d2, &mut order_a);

        let mut order_b = shards[4].clone();
        parity_delta(&rs, 0, 3, &d2, &mut order_b);
        parity_delta(&rs, 0, 0, &d1, &mut order_b);

        assert_eq!(order_a, order_b);
    }

    #[test]
    fn delta_accumulator_identities() {
        let mut acc = DeltaAccumulator::new(8);
        assert_eq!(acc.net(), &[0u8; 8]);
        assert_eq!(acc.merged_count(), 0);
        let d = [1u8, 2, 3, 4, 5, 6, 7, 8];
        acc.merge(&d);
        acc.merge(&d); // self-inverse
        assert_eq!(acc.net(), &[0u8; 8]);
        assert_eq!(acc.merged_count(), 2);

        let seeded = DeltaAccumulator::from_delta(&d);
        assert_eq!(seeded.net(), &d);
        assert_eq!(seeded.merged_count(), 1);
    }
}
