//! GF(2^8) finite-field arithmetic, slice kernels, and matrix algebra.
//!
//! This crate is the arithmetic substrate for the Reed-Solomon codec used by
//! the TSUE reproduction. It implements, from scratch:
//!
//! * scalar field operations over GF(2^8) with the AES-adjacent reducing
//!   polynomial `x^8 + x^4 + x^3 + x^2 + 1` (`0x11d`), the conventional
//!   choice for storage Reed-Solomon codes ([`field`]);
//! * compile-time generated log/exp and full multiplication tables
//!   ([`tables`]);
//! * cache-friendly slice kernels — bulk XOR and multiply-accumulate — that
//!   the codec uses to stream whole blocks through the field ([`mod@slice`]);
//! * dense matrices over the field with multiplication, Gaussian inversion,
//!   and Vandermonde / Cauchy constructors ([`matrix`]).
//!
//! # Example
//!
//! ```
//! use gf256::{Gf, matrix::Matrix};
//!
//! // Field arithmetic.
//! let a = Gf(0x53);
//! let b = Gf(0x8c);
//! assert_eq!(a * b, Gf(0x01)); // 0x53 and 0x8c are inverses under 0x11d
//!
//! // Every square Cauchy matrix is invertible: the MDS property that makes
//! // Reed-Solomon recovery work.
//! let m = Matrix::cauchy(4, 4);
//! let inv = m.inverted().expect("Cauchy matrices are non-singular");
//! assert!(m.mul(&inv).is_identity());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod field;
pub mod matrix;
pub mod slice;
pub mod tables;

pub use field::Gf;
pub use matrix::Matrix;
