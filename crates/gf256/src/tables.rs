//! Compile-time generated lookup tables for GF(2^8) under polynomial `0x11d`.
//!
//! All tables are produced by `const fn`s and materialised as statics, so
//! there is no runtime initialisation, no locking, and no allocation. The
//! generator element is `2`, which is primitive for `0x11d`: its powers
//! enumerate all 255 non-zero field elements.

/// The reducing polynomial `x^8 + x^4 + x^3 + x^2 + 1`, written with the
/// implicit `x^8` bit: `0b1_0001_1101`.
pub const POLY: u16 = 0x11d;

/// The generator element whose powers enumerate the multiplicative group.
pub const GENERATOR: u8 = 2;

const fn build_exp_log() -> ([u8; 512], [u8; 256]) {
    let mut exp = [0u8; 512];
    let mut log = [0u8; 256];
    let mut x: u16 = 1;
    let mut i = 0usize;
    while i < 255 {
        exp[i] = x as u8;
        log[x as usize] = i as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= POLY;
        }
        i += 1;
    }
    // Mirror the cycle so `exp[log a + log b]` needs no `% 255`.
    let mut j = 255usize;
    while j < 512 {
        exp[j] = exp[j - 255];
        j += 1;
    }
    (exp, log)
}

const EXP_LOG: ([u8; 512], [u8; 256]) = build_exp_log();

/// `EXP[i] = g^i` for `i in 0..510` (the second half mirrors the first so
/// that `EXP[log(a) + log(b)]` is a valid multiply without a modulo).
pub static EXP: [u8; 512] = EXP_LOG.0;

/// `LOG[a] = log_g(a)` for non-zero `a`; `LOG[0]` is unused and zero.
pub static LOG: [u8; 256] = EXP_LOG.1;

const fn build_mul_table() -> [[u8; 256]; 256] {
    let (exp, log) = build_exp_log();
    let mut t = [[0u8; 256]; 256];
    let mut a = 1usize;
    while a < 256 {
        let la = log[a] as usize;
        let mut b = 1usize;
        while b < 256 {
            t[a][b] = exp[la + log[b] as usize];
            b += 1;
        }
        a += 1;
    }
    t
}

/// Full 64 KiB multiplication table: `MUL[a][b] = a * b` in the field.
///
/// Row `MUL[c]` is the multiply-by-`c` map used by the slice kernels; a whole
/// row fits in one or two cache lines' worth of L1 sets, so streaming a block
/// through a fixed coefficient is fast.
pub static MUL: [[u8; 256]; 256] = build_mul_table();

const fn build_inv_table() -> [u8; 256] {
    let (exp, log) = build_exp_log();
    let mut t = [0u8; 256];
    let mut a = 1usize;
    while a < 256 {
        t[a] = exp[255 - log[a] as usize];
        a += 1;
    }
    t
}

/// Multiplicative inverses: `INV[a] = a^-1` for non-zero `a`; `INV[0] = 0`.
pub static INV: [u8; 256] = build_inv_table();

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_has_full_order() {
        // Powers of the generator must visit every non-zero element once.
        let mut seen = [false; 256];
        for (i, &e) in EXP.iter().enumerate().take(255) {
            let v = e as usize;
            assert_ne!(v, 0, "generator power hit zero at exponent {i}");
            assert!(!seen[v], "generator power repeated at exponent {i}");
            seen[v] = true;
        }
        assert!(seen[1..].iter().all(|&s| s));
    }

    #[test]
    fn exp_table_mirrors() {
        for i in 0..255 {
            assert_eq!(EXP[i], EXP[i + 255]);
        }
    }

    #[test]
    fn log_exp_roundtrip() {
        for a in 1..=255u8 {
            assert_eq!(EXP[LOG[a as usize] as usize], a);
        }
    }

    #[test]
    fn mul_table_matches_log_exp() {
        for a in 1..=255u16 {
            for b in 1..=255u16 {
                let expect = EXP[LOG[a as usize] as usize + LOG[b as usize] as usize];
                assert_eq!(MUL[a as usize][b as usize], expect);
            }
        }
    }

    #[test]
    fn mul_by_zero_is_zero() {
        for (a, row) in MUL.iter().enumerate() {
            assert_eq!(row[0], 0);
            assert_eq!(MUL[0][a], 0);
        }
    }

    #[test]
    fn inverses_multiply_to_one() {
        for a in 1..=255usize {
            assert_eq!(MUL[a][INV[a] as usize], 1, "a = {a}");
        }
        assert_eq!(INV[0], 0);
    }
}
