//! Dense matrices over GF(2^8): multiplication, Gaussian inversion, and the
//! Vandermonde / Cauchy constructors used to build erasure-coding matrices
//! (Eq. 1 of the paper).

use core::fmt;

use crate::field::Gf;

/// A dense row-major matrix over GF(2^8).
#[derive(Clone, PartialEq, Eq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<u8>,
}

impl Matrix {
    /// All-zero matrix of the given shape.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn zero(rows: usize, cols: usize) -> Matrix {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Matrix {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zero(n, n);
        for i in 0..n {
            m.set(i, i, Gf::ONE);
        }
        m
    }

    /// Builds a matrix from a row-major byte slice.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols` or a dimension is zero.
    pub fn from_rows(rows: usize, cols: usize, data: &[u8]) -> Matrix {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        assert_eq!(data.len(), rows * cols, "matrix data length mismatch");
        Matrix {
            rows,
            cols,
            data: data.to_vec(),
        }
    }

    /// `rows × cols` Vandermonde matrix: `a[i][j] = (i+1)^j`.
    ///
    /// Note: an *extended* Vandermonde matrix is not directly usable as the
    /// parity part of a systematic code; see [`Matrix::rs_vandermonde`].
    pub fn vandermonde(rows: usize, cols: usize) -> Matrix {
        let mut m = Matrix::zero(rows, cols);
        for i in 0..rows {
            let x = Gf((i + 1) as u8);
            for j in 0..cols {
                m.set(i, j, x.pow(j as u32));
            }
        }
        m
    }

    /// `rows × cols` Cauchy matrix: `a[i][j] = 1 / (x_i + y_j)` with
    /// `x_i = i + cols` and `y_j = j`.
    ///
    /// Every square submatrix of a Cauchy matrix is invertible, which is the
    /// MDS property required of the parity-generation matrix.
    ///
    /// # Panics
    /// Panics if `rows + cols > 256` (the element sets must stay disjoint
    /// within the field).
    pub fn cauchy(rows: usize, cols: usize) -> Matrix {
        assert!(
            rows + cols <= 256,
            "cauchy: rows + cols must fit in the field"
        );
        let mut m = Matrix::zero(rows, cols);
        for i in 0..rows {
            let xi = Gf((i + cols) as u8);
            for j in 0..cols {
                let yj = Gf(j as u8);
                let denom = xi + yj;
                m.set(i, j, denom.inverse().expect("x_i and y_j are disjoint"));
            }
        }
        m
    }

    /// Parity-generation matrix for a systematic RS(k, m) code derived from
    /// an extended Vandermonde matrix.
    ///
    /// Builds the `(k+m) × k` Vandermonde matrix, then column-reduces it so
    /// the top `k × k` block becomes the identity; the bottom `m × k` block
    /// is returned. Any `k` rows of `[I; B]` remain linearly independent, so
    /// the code is MDS.
    ///
    /// # Panics
    /// Panics if `k + m > 255` or `k == 0 || m == 0`.
    pub fn rs_vandermonde(k: usize, m: usize) -> Matrix {
        assert!(k > 0 && m > 0, "rs_vandermonde: k and m must be non-zero");
        assert!(k + m <= 255, "rs_vandermonde: k + m must be <= 255");
        let mut v = Matrix::vandermonde(k + m, k);
        // Column-reduce so rows 0..k become the identity. Column operations
        // preserve the "any k rows are independent" property.
        for i in 0..k {
            // Ensure pivot v[i][i] != 0 by swapping columns if needed.
            if v.get(i, i).is_zero() {
                let swap = (i + 1..k)
                    .find(|&j| !v.get(i, j).is_zero())
                    .expect("vandermonde rows are independent");
                v.swap_cols(i, swap);
            }
            let pivot_inv = v.get(i, i).inverse().unwrap();
            // Scale column i so the pivot is 1.
            for r in 0..k + m {
                v.set(r, i, v.get(r, i) * pivot_inv);
            }
            // Eliminate the rest of row i.
            for j in 0..k {
                if j == i {
                    continue;
                }
                let factor = v.get(i, j);
                if factor.is_zero() {
                    continue;
                }
                for r in 0..k + m {
                    let val = v.get(r, j) + v.get(r, i) * factor;
                    v.set(r, j, val);
                }
            }
        }
        v.submatrix(k, k + m, 0, k)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    /// Panics on out-of-bounds indices.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> Gf {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        Gf(self.data[r * self.cols + c])
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    /// Panics on out-of-bounds indices.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: Gf) {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        self.data[r * self.cols + c] = v.0;
    }

    /// Borrow of row `r` as raw bytes (the coefficient row used by slice
    /// kernels during encoding).
    #[inline]
    pub fn row(&self, r: usize) -> &[u8] {
        assert!(r < self.rows, "matrix row out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    /// Panics if `self.cols != rhs.rows`.
    pub fn mul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "matrix shape mismatch in mul");
        let mut out = Matrix::zero(self.rows, rhs.cols);
        for i in 0..self.rows {
            for l in 0..self.cols {
                let a = self.get(i, l);
                if a.is_zero() {
                    continue;
                }
                for j in 0..rhs.cols {
                    let cur = out.get(i, j);
                    out.set(i, j, cur + a * rhs.get(l, j));
                }
            }
        }
        out
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Panics
    /// Panics if `v.len() != self.cols`.
    pub fn mul_vec(&self, v: &[Gf]) -> Vec<Gf> {
        assert_eq!(v.len(), self.cols, "vector length mismatch in mul_vec");
        (0..self.rows)
            .map(|i| (0..self.cols).map(|j| self.get(i, j) * v[j]).sum::<Gf>())
            .collect()
    }

    /// Rectangular sub-block `[r0, r1) × [c0, c1)`.
    ///
    /// # Panics
    /// Panics if the range is empty or out of bounds.
    pub fn submatrix(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> Matrix {
        assert!(r0 < r1 && r1 <= self.rows, "row range out of bounds");
        assert!(c0 < c1 && c1 <= self.cols, "column range out of bounds");
        let mut out = Matrix::zero(r1 - r0, c1 - c0);
        for r in r0..r1 {
            for c in c0..c1 {
                out.set(r - r0, c - c0, self.get(r, c));
            }
        }
        out
    }

    /// New matrix made of the given rows of `self`, in order.
    ///
    /// # Panics
    /// Panics if `rows` is empty or any index is out of bounds.
    pub fn select_rows(&self, rows: &[usize]) -> Matrix {
        assert!(!rows.is_empty(), "select_rows: empty selection");
        let mut out = Matrix::zero(rows.len(), self.cols);
        for (i, &r) in rows.iter().enumerate() {
            assert!(r < self.rows, "select_rows: row {r} out of bounds");
            out.data[i * self.cols..(i + 1) * self.cols].copy_from_slice(self.row(r));
        }
        out
    }

    /// Swaps two rows in place.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        assert!(a < self.rows && b < self.rows, "row index out of bounds");
        if a == b {
            return;
        }
        let (lo, hi) = (a.min(b), a.max(b));
        let (head, tail) = self.data.split_at_mut(hi * self.cols);
        head[lo * self.cols..(lo + 1) * self.cols].swap_with_slice(&mut tail[..self.cols]);
    }

    /// Swaps two columns in place.
    pub fn swap_cols(&mut self, a: usize, b: usize) {
        assert!(a < self.cols && b < self.cols, "column index out of bounds");
        if a == b {
            return;
        }
        for r in 0..self.rows {
            self.data.swap(r * self.cols + a, r * self.cols + b);
        }
    }

    /// Gauss-Jordan inverse. Returns `None` if the matrix is singular.
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn inverted(&self) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols, "only square matrices invert");
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = Matrix::identity(n);
        for col in 0..n {
            // Find a pivot.
            let pivot = (col..n).find(|&r| !a.get(r, col).is_zero())?;
            a.swap_rows(col, pivot);
            inv.swap_rows(col, pivot);
            // Normalise the pivot row.
            let scale = a.get(col, col).inverse().expect("pivot is non-zero");
            for c in 0..n {
                a.set(col, c, a.get(col, c) * scale);
                inv.set(col, c, inv.get(col, c) * scale);
            }
            // Eliminate the column from every other row.
            for r in 0..n {
                if r == col {
                    continue;
                }
                let factor = a.get(r, col);
                if factor.is_zero() {
                    continue;
                }
                for c in 0..n {
                    let va = a.get(r, c) + factor * a.get(col, c);
                    a.set(r, c, va);
                    let vi = inv.get(r, c) + factor * inv.get(col, c);
                    inv.set(r, c, vi);
                }
            }
        }
        Some(inv)
    }

    /// Whether this is the identity matrix.
    pub fn is_identity(&self) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for r in 0..self.rows {
            for c in 0..self.cols {
                let want = if r == c { Gf::ONE } else { Gf::ZERO };
                if self.get(r, c) != want {
                    return false;
                }
            }
        }
        true
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  ")?;
            for c in 0..self.cols {
                write!(f, "{:02x} ", self.get(r, c).0)?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_properties() {
        let i = Matrix::identity(5);
        assert!(i.is_identity());
        let m = Matrix::cauchy(5, 5);
        assert_eq!(i.mul(&m), m);
        assert_eq!(m.mul(&i), m);
    }

    #[test]
    fn cauchy_square_blocks_invert() {
        for n in 1..=8 {
            let m = Matrix::cauchy(n, n);
            let inv = m.inverted().expect("cauchy must invert");
            assert!(m.mul(&inv).is_identity(), "n = {n}");
            assert!(inv.mul(&m).is_identity(), "n = {n}");
        }
    }

    #[test]
    fn singular_matrix_returns_none() {
        // Two identical rows.
        let m = Matrix::from_rows(2, 2, &[1, 2, 1, 2]);
        assert!(m.inverted().is_none());
    }

    #[test]
    fn rs_vandermonde_is_mds_for_small_codes() {
        // For RS(k, m): appending the parity rows to the identity must keep
        // every k-row subset invertible.
        for (k, m) in [(2usize, 2usize), (3, 2), (4, 3), (6, 4)] {
            let b = Matrix::rs_vandermonde(k, m);
            assert_eq!(b.rows(), m);
            assert_eq!(b.cols(), k);
            let mut full = Matrix::zero(k + m, k);
            for i in 0..k {
                full.set(i, i, Gf::ONE);
            }
            for i in 0..m {
                for j in 0..k {
                    full.set(k + i, j, b.get(i, j));
                }
            }
            // Exhaustively check all k-subsets of rows for invertibility.
            let idx: Vec<usize> = (0..k + m).collect();
            for combo in combinations(&idx, k) {
                let sub = full.select_rows(&combo);
                assert!(
                    sub.inverted().is_some(),
                    "rows {combo:?} singular for RS({k},{m})"
                );
            }
        }
    }

    #[test]
    fn cauchy_parity_is_mds_for_paper_codes() {
        for (k, m) in [(6usize, 2usize), (6, 3), (6, 4), (12, 2), (12, 3), (12, 4)] {
            let b = Matrix::cauchy(m, k);
            let mut full = Matrix::zero(k + m, k);
            for i in 0..k {
                full.set(i, i, Gf::ONE);
            }
            for i in 0..m {
                for j in 0..k {
                    full.set(k + i, j, b.get(i, j));
                }
            }
            // Check a structured sample of k-subsets (exhaustive for small m).
            let idx: Vec<usize> = (0..k + m).collect();
            for combo in combinations(&idx, k).into_iter().take(5000) {
                let sub = full.select_rows(&combo);
                assert!(
                    sub.inverted().is_some(),
                    "rows {combo:?} singular for Cauchy RS({k},{m})"
                );
            }
        }
    }

    #[test]
    fn mul_vec_matches_mul() {
        let m = Matrix::cauchy(3, 4);
        let v = [Gf(9), Gf(200), Gf(3), Gf(77)];
        let as_col = Matrix::from_rows(4, 1, &[9, 200, 3, 77]);
        let prod = m.mul(&as_col);
        let prod_vec = m.mul_vec(&v);
        for (i, &got) in prod_vec.iter().enumerate() {
            assert_eq!(prod.get(i, 0), got);
        }
    }

    #[test]
    fn submatrix_and_select_rows() {
        let m = Matrix::vandermonde(4, 3);
        let sub = m.submatrix(1, 3, 0, 2);
        assert_eq!(sub.rows(), 2);
        assert_eq!(sub.cols(), 2);
        assert_eq!(sub.get(0, 0), m.get(1, 0));
        assert_eq!(sub.get(1, 1), m.get(2, 1));

        let sel = m.select_rows(&[3, 0]);
        assert_eq!(sel.row(0), m.row(3));
        assert_eq!(sel.row(1), m.row(0));
    }

    #[test]
    fn swap_rows_and_cols() {
        let mut m = Matrix::from_rows(2, 2, &[1, 2, 3, 4]);
        m.swap_rows(0, 1);
        assert_eq!(m.row(0), &[3, 4]);
        m.swap_cols(0, 1);
        assert_eq!(m.row(0), &[4, 3]);
    }

    /// All k-combinations of `items` (small inputs only; test helper).
    fn combinations(items: &[usize], k: usize) -> Vec<Vec<usize>> {
        if k == 0 {
            return vec![vec![]];
        }
        if items.len() < k {
            return vec![];
        }
        let mut out = Vec::new();
        for (i, &first) in items.iter().enumerate() {
            for mut rest in combinations(&items[i + 1..], k - 1) {
                rest.insert(0, first);
                out.push(rest);
            }
        }
        out
    }
}
