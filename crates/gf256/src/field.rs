//! Scalar GF(2^8) element type and operations.

// Field arithmetic legitimately implements `+`/`-` as XOR and `/` via `*`;
// clippy's suspicious-arithmetic lints assume integer semantics.
#![allow(clippy::suspicious_arithmetic_impl)]
#![allow(clippy::suspicious_op_assign_impl)]

use core::fmt;
use core::iter::{Product, Sum};
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::tables::{EXP, INV, LOG, MUL};

/// An element of GF(2^8) under the reducing polynomial `0x11d`.
///
/// Addition and subtraction are both XOR (the field has characteristic 2),
/// multiplication goes through the compile-time log/exp tables, and division
/// multiplies by the precomputed inverse. All operations are branch-light
/// and constant-time with respect to the *values* involved (table lookups
/// aside), and none can panic except [`Div`] by zero.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
#[repr(transparent)]
pub struct Gf(pub u8);

impl Gf {
    /// The additive identity.
    pub const ZERO: Gf = Gf(0);
    /// The multiplicative identity.
    pub const ONE: Gf = Gf(1);
    /// The field's primitive generator element.
    pub const GENERATOR: Gf = Gf(crate::tables::GENERATOR);

    /// Raw byte value of this element.
    #[inline]
    pub const fn value(self) -> u8 {
        self.0
    }

    /// Whether this is the additive identity.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplicative inverse.
    ///
    /// Returns `None` for zero, which has no inverse.
    #[inline]
    pub fn inverse(self) -> Option<Gf> {
        if self.is_zero() {
            None
        } else {
            Some(Gf(INV[self.0 as usize]))
        }
    }

    /// `self` raised to the power `n` (with `0^0 == 1` by convention).
    pub fn pow(self, n: u32) -> Gf {
        if n == 0 {
            return Gf::ONE;
        }
        if self.is_zero() {
            return Gf::ZERO;
        }
        // log(a^n) = n * log(a) mod 255.
        let l = LOG[self.0 as usize] as u64;
        let e = (l * n as u64) % 255;
        Gf(EXP[e as usize])
    }

    /// `g^n` for the field generator `g`.
    #[inline]
    pub fn exp(n: u32) -> Gf {
        Gf(EXP[(n % 255) as usize])
    }

    /// Discrete logarithm base `g`; `None` for zero.
    #[inline]
    pub fn log(self) -> Option<u8> {
        if self.is_zero() {
            None
        } else {
            Some(LOG[self.0 as usize])
        }
    }
}

impl fmt::Debug for Gf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gf(0x{:02x})", self.0)
    }
}

impl fmt::Display for Gf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:02x}", self.0)
    }
}

impl From<u8> for Gf {
    #[inline]
    fn from(v: u8) -> Self {
        Gf(v)
    }
}

impl From<Gf> for u8 {
    #[inline]
    fn from(v: Gf) -> Self {
        v.0
    }
}

impl Add for Gf {
    type Output = Gf;
    #[inline]
    fn add(self, rhs: Gf) -> Gf {
        Gf(self.0 ^ rhs.0)
    }
}

impl AddAssign for Gf {
    #[inline]
    fn add_assign(&mut self, rhs: Gf) {
        self.0 ^= rhs.0;
    }
}

impl Sub for Gf {
    type Output = Gf;
    #[inline]
    fn sub(self, rhs: Gf) -> Gf {
        // Characteristic 2: subtraction and addition coincide.
        Gf(self.0 ^ rhs.0)
    }
}

impl SubAssign for Gf {
    #[inline]
    fn sub_assign(&mut self, rhs: Gf) {
        self.0 ^= rhs.0;
    }
}

impl Neg for Gf {
    type Output = Gf;
    #[inline]
    fn neg(self) -> Gf {
        self
    }
}

impl Mul for Gf {
    type Output = Gf;
    #[inline]
    fn mul(self, rhs: Gf) -> Gf {
        Gf(MUL[self.0 as usize][rhs.0 as usize])
    }
}

impl MulAssign for Gf {
    #[inline]
    fn mul_assign(&mut self, rhs: Gf) {
        *self = *self * rhs;
    }
}

impl Div for Gf {
    type Output = Gf;

    /// Field division.
    ///
    /// # Panics
    /// Panics when dividing by zero, mirroring integer division semantics.
    #[inline]
    fn div(self, rhs: Gf) -> Gf {
        let inv = rhs.inverse().expect("division by zero in GF(2^8)");
        self * inv
    }
}

impl DivAssign for Gf {
    #[inline]
    fn div_assign(&mut self, rhs: Gf) {
        *self = *self / rhs;
    }
}

impl Sum for Gf {
    fn sum<I: Iterator<Item = Gf>>(iter: I) -> Gf {
        iter.fold(Gf::ZERO, |acc, x| acc + x)
    }
}

impl Product for Gf {
    fn product<I: Iterator<Item = Gf>>(iter: I) -> Gf {
        iter.fold(Gf::ONE, |acc, x| acc * x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_is_xor() {
        assert_eq!(Gf(0b1010) + Gf(0b0110), Gf(0b1100));
        assert_eq!(Gf(0xff) + Gf(0xff), Gf::ZERO);
    }

    #[test]
    fn known_products() {
        // Hand-checked products under 0x11d.
        assert_eq!(Gf(2) * Gf(2), Gf(4));
        assert_eq!(Gf(0x80) * Gf(2), Gf(0x1d));
        assert_eq!(Gf(0x53) * Gf(0xca), Gf(0x8f));
        assert_eq!(Gf(0x53) * Gf(0x8c), Gf(1));
    }

    #[test]
    fn pow_matches_repeated_mul() {
        for a in [Gf(0), Gf(1), Gf(2), Gf(3), Gf(0x1d), Gf(0xff)] {
            let mut acc = Gf::ONE;
            for n in 0..520u32 {
                assert_eq!(a.pow(n), acc, "a = {a:?}, n = {n}");
                acc *= a;
            }
        }
    }

    #[test]
    fn pow_zero_conventions() {
        assert_eq!(Gf::ZERO.pow(0), Gf::ONE);
        assert_eq!(Gf::ZERO.pow(5), Gf::ZERO);
    }

    #[test]
    fn division_roundtrip() {
        for a in 0..=255u8 {
            for b in 1..=255u8 {
                let q = Gf(a) / Gf(b);
                assert_eq!(q * Gf(b), Gf(a));
            }
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = Gf(1) / Gf(0);
    }

    #[test]
    fn sum_and_product_iterators() {
        let xs = [Gf(1), Gf(2), Gf(3)];
        assert_eq!(xs.iter().copied().sum::<Gf>(), Gf(1) + Gf(2) + Gf(3));
        assert_eq!(xs.iter().copied().product::<Gf>(), Gf(1) * Gf(2) * Gf(3));
    }

    #[test]
    fn exp_log_scalar_api() {
        for n in 0..255u32 {
            let v = Gf::exp(n);
            assert_eq!(v.log(), Some((n % 255) as u8));
        }
        assert_eq!(Gf::ZERO.log(), None);
    }
}
