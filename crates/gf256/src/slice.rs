//! Bulk slice kernels over GF(2^8).
//!
//! Erasure coding streams entire blocks (kilobytes to megabytes) through the
//! field with a fixed coefficient per (data block, parity block) pair. These
//! kernels are the hot path: `xor` runs at memory bandwidth by chunking
//! through `u64` words, and the multiply kernels walk a single 256-byte
//! table row that stays resident in L1.

use crate::tables::MUL;

/// `dst[i] ^= src[i]` for all `i`.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn xor(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "xor: length mismatch");
    // Process 8-byte lanes via explicit little-endian round-trips; the
    // compiler turns this into wide vector XORs.
    let mut d = dst.chunks_exact_mut(8);
    let mut s = src.chunks_exact(8);
    for (dc, sc) in (&mut d).zip(&mut s) {
        let x = u64::from_le_bytes(dc.try_into().unwrap());
        let y = u64::from_le_bytes(sc.try_into().unwrap());
        dc.copy_from_slice(&(x ^ y).to_le_bytes());
    }
    for (db, sb) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *db ^= *sb;
    }
}

/// `dst[i] = c * src[i]` for all `i`.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn mul(dst: &mut [u8], src: &[u8], c: u8) {
    assert_eq!(dst.len(), src.len(), "mul: length mismatch");
    match c {
        0 => dst.fill(0),
        1 => dst.copy_from_slice(src),
        _ => {
            let row = &MUL[c as usize];
            for (d, &s) in dst.iter_mut().zip(src) {
                *d = row[s as usize];
            }
        }
    }
}

/// `dst[i] ^= c * src[i]` for all `i` — the fused multiply-accumulate at the
/// heart of both full encoding (Eq. 1) and incremental parity updates
/// (Eq. 2 of the paper: `P^n = P^{n-1} + a * (D^n - D^{n-1})`).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn mul_acc(dst: &mut [u8], src: &[u8], c: u8) {
    assert_eq!(dst.len(), src.len(), "mul_acc: length mismatch");
    match c {
        0 => {}
        1 => xor(dst, src),
        _ => {
            let row = &MUL[c as usize];
            for (d, &s) in dst.iter_mut().zip(src) {
                *d ^= row[s as usize];
            }
        }
    }
}

/// `dst[i] = c * dst[i]` in place.
pub fn scale(dst: &mut [u8], c: u8) {
    match c {
        0 => dst.fill(0),
        1 => {}
        _ => {
            let row = &MUL[c as usize];
            for d in dst.iter_mut() {
                *d = row[*d as usize];
            }
        }
    }
}

/// Computes `out[i] = a[i] ^ b[i]` — the "data delta" `D^n - D^{n-1}` of the
/// paper's Eq. (2) — without mutating either input.
///
/// # Panics
/// Panics if any slice length differs.
pub fn delta(out: &mut [u8], a: &[u8], b: &[u8]) {
    assert_eq!(out.len(), a.len(), "delta: length mismatch");
    assert_eq!(a.len(), b.len(), "delta: length mismatch");
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = x ^ y;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Gf;

    fn ref_mul_acc(dst: &mut [u8], src: &[u8], c: u8) {
        for (d, &s) in dst.iter_mut().zip(src) {
            *d = (Gf(*d) + Gf(c) * Gf(s)).0;
        }
    }

    #[test]
    fn xor_various_lengths() {
        for len in [0usize, 1, 7, 8, 9, 15, 16, 63, 64, 100, 4096] {
            let a: Vec<u8> = (0..len).map(|i| (i * 7 + 13) as u8).collect();
            let b: Vec<u8> = (0..len).map(|i| (i * 31 + 5) as u8).collect();
            let mut d = a.clone();
            xor(&mut d, &b);
            for i in 0..len {
                assert_eq!(d[i], a[i] ^ b[i], "len {len}, index {i}");
            }
        }
    }

    #[test]
    fn xor_is_involutive() {
        let a: Vec<u8> = (0..1000).map(|i| (i % 251) as u8).collect();
        let b: Vec<u8> = (0..1000).map(|i| (i % 83) as u8).collect();
        let mut d = a.clone();
        xor(&mut d, &b);
        xor(&mut d, &b);
        assert_eq!(d, a);
    }

    #[test]
    fn mul_matches_scalar() {
        let src: Vec<u8> = (0..=255u8).collect();
        for c in [0u8, 1, 2, 0x1d, 0x80, 0xff] {
            let mut dst = vec![0u8; 256];
            mul(&mut dst, &src, c);
            for (i, &d) in dst.iter().enumerate() {
                assert_eq!(Gf(d), Gf(c) * Gf(src[i]));
            }
        }
    }

    #[test]
    fn mul_acc_matches_reference() {
        let src: Vec<u8> = (0..512).map(|i| (i * 17 + 3) as u8).collect();
        for c in [0u8, 1, 2, 7, 0x1d, 0xfe] {
            let mut fast: Vec<u8> = (0..512).map(|i| (i * 5) as u8).collect();
            let mut slow = fast.clone();
            mul_acc(&mut fast, &src, c);
            ref_mul_acc(&mut slow, &src, c);
            assert_eq!(fast, slow, "c = {c}");
        }
    }

    #[test]
    fn scale_then_inverse_restores() {
        let orig: Vec<u8> = (0..300).map(|i| (i * 11) as u8).collect();
        for c in 1..=255u8 {
            let mut v = orig.clone();
            scale(&mut v, c);
            scale(&mut v, Gf(c).inverse().unwrap().0);
            assert_eq!(v, orig, "c = {c}");
        }
    }

    #[test]
    fn delta_is_xor_of_inputs() {
        let a = [1u8, 2, 3, 4];
        let b = [5u8, 6, 7, 0];
        let mut out = [0u8; 4];
        delta(&mut out, &a, &b);
        assert_eq!(out, [4, 4, 4, 4]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut d = [0u8; 3];
        xor(&mut d, &[0u8; 4]);
    }

    #[test]
    fn distributivity_over_slices() {
        // c*(a ^ b) == c*a ^ c*b, elementwise over slices.
        let a: Vec<u8> = (0..256).map(|i| i as u8).collect();
        let b: Vec<u8> = (0..256).map(|i| (i * 3 + 1) as u8).collect();
        for c in [2u8, 0x1d, 0x7f] {
            let mut lhs = a.clone();
            xor(&mut lhs, &b);
            scale(&mut lhs, c);

            let mut ca = vec![0u8; 256];
            mul(&mut ca, &a, c);
            let mut cb = vec![0u8; 256];
            mul(&mut cb, &b, c);
            xor(&mut ca, &cb);

            assert_eq!(lhs, ca, "c = {c}");
        }
    }
}
