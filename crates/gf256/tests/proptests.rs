//! Property-based tests: field axioms and kernel/matrix equivalences.

use gf256::{slice, Gf, Matrix};
use proptest::prelude::*;

fn gf() -> impl Strategy<Value = Gf> {
    any::<u8>().prop_map(Gf)
}

proptest! {
    #[test]
    fn addition_commutes(a in gf(), b in gf()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn addition_associates(a in gf(), b in gf(), c in gf()) {
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn additive_identity_and_inverse(a in gf()) {
        prop_assert_eq!(a + Gf::ZERO, a);
        prop_assert_eq!(a + a, Gf::ZERO); // every element is its own negation
        prop_assert_eq!(-a, a);
    }

    #[test]
    fn multiplication_commutes(a in gf(), b in gf()) {
        prop_assert_eq!(a * b, b * a);
    }

    #[test]
    fn multiplication_associates(a in gf(), b in gf(), c in gf()) {
        prop_assert_eq!((a * b) * c, a * (b * c));
    }

    #[test]
    fn multiplicative_identity(a in gf()) {
        prop_assert_eq!(a * Gf::ONE, a);
    }

    #[test]
    fn distributivity(a in gf(), b in gf(), c in gf()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn inverse_cancels(a in gf()) {
        if let Some(inv) = a.inverse() {
            prop_assert_eq!(a * inv, Gf::ONE);
        } else {
            prop_assert_eq!(a, Gf::ZERO);
        }
    }

    #[test]
    fn pow_adds_exponents(a in gf(), m in 0u32..600, n in 0u32..600) {
        if !a.is_zero() {
            prop_assert_eq!(a.pow(m) * a.pow(n), a.pow(m + n));
        }
    }

    #[test]
    fn sub_is_add(a in gf(), b in gf()) {
        prop_assert_eq!(a - b, a + b);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn slice_mul_acc_matches_scalar(
        src in proptest::collection::vec(any::<u8>(), 0..2048),
        init in any::<u8>(),
        c in any::<u8>(),
    ) {
        let mut dst = vec![init; src.len()];
        let expect: Vec<u8> = dst
            .iter()
            .zip(&src)
            .map(|(&d, &s)| (Gf(d) + Gf(c) * Gf(s)).0)
            .collect();
        slice::mul_acc(&mut dst, &src, c);
        prop_assert_eq!(dst, expect);
    }

    #[test]
    fn slice_xor_matches_scalar(
        a in proptest::collection::vec(any::<u8>(), 0..2048),
        seed in any::<u8>(),
    ) {
        let b: Vec<u8> = a.iter().map(|&x| x.wrapping_mul(31).wrapping_add(seed)).collect();
        let mut dst = a.clone();
        slice::xor(&mut dst, &b);
        for i in 0..a.len() {
            prop_assert_eq!(dst[i], a[i] ^ b[i]);
        }
    }

    #[test]
    fn random_invertible_matrices_roundtrip(
        n in 1usize..9,
        seed in proptest::collection::vec(any::<u8>(), 81),
    ) {
        let data: Vec<u8> = seed.into_iter().take(n * n).collect();
        let m = Matrix::from_rows(n, n, &data);
        if let Some(inv) = m.inverted() {
            prop_assert!(m.mul(&inv).is_identity());
            prop_assert!(inv.mul(&m).is_identity());
        }
    }

    #[test]
    fn matrix_mul_associates(
        a_data in proptest::collection::vec(any::<u8>(), 9),
        b_data in proptest::collection::vec(any::<u8>(), 9),
        c_data in proptest::collection::vec(any::<u8>(), 9),
    ) {
        let a = Matrix::from_rows(3, 3, &a_data);
        let b = Matrix::from_rows(3, 3, &b_data);
        let c = Matrix::from_rows(3, 3, &c_data);
        prop_assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
    }
}
