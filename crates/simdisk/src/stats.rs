//! Per-device I/O accounting: the raw material for the paper's Table 1.

use simdes::stats::OpCounter;

/// Cumulative device statistics.
///
/// *Overwrites* are writes that land on previously written addresses — the
/// "write penalty" column of Table 1: they are what invalidates flash pages
/// and burns erase cycles, so the paper reports them separately from total
/// read/write traffic.
#[derive(Debug, Clone, Default)]
pub struct DeviceStats {
    /// All read commands.
    pub reads: OpCounter,
    /// All write commands (first writes and overwrites alike).
    pub writes: OpCounter,
    /// Writes to previously written bytes (the write penalty of Table 1).
    pub overwrites: OpCounter,
    /// Reads issued with the random-pattern hint.
    pub random_reads: OpCounter,
    /// Writes issued with the random-pattern hint.
    pub random_writes: OpCounter,
    /// NAND block erase operations (SSD only; the lifespan currency).
    pub erases: u64,
    /// Pages relocated by garbage collection (SSD write amplification).
    pub gc_relocated_pages: u64,
    /// Pages physically programmed, including GC relocations.
    pub nand_pages_programmed: u64,
    /// Bytes physically written to the media so far — the per-device wear
    /// high-water mark. On an SSD this counts programmed NAND bytes (host
    /// pages *and* GC relocations); on an HDD it is the host write volume.
    /// Unlike every other counter, [`DeviceStats::merge`] keeps the **max**
    /// across devices: a merged aggregate answers "how worn is the most
    /// worn disk of the fleet", which is what wear-aware placement and
    /// lifespan projections need.
    pub wear_bytes: u64,
}

impl DeviceStats {
    /// Total host read+write operations.
    pub fn rw_ops(&self) -> u64 {
        self.reads.ops + self.writes.ops
    }

    /// Total host read+write bytes.
    pub fn rw_bytes(&self) -> u64 {
        self.reads.bytes + self.writes.bytes
    }

    /// Write amplification factor: NAND pages programmed per host page
    /// written (1.0 means no GC overhead; 0 writes yields 1.0).
    pub fn write_amplification(&self, page: u64) -> f64 {
        let host_pages = self.writes.bytes.div_ceil(page).max(1);
        self.nand_pages_programmed as f64 / host_pages as f64
    }

    /// Merges another device's statistics into this one (cluster totals).
    pub fn merge(&mut self, other: &DeviceStats) {
        self.reads.merge(other.reads);
        self.writes.merge(other.writes);
        self.overwrites.merge(other.overwrites);
        self.random_reads.merge(other.random_reads);
        self.random_writes.merge(other.random_writes);
        self.erases += other.erases;
        self.gc_relocated_pages += other.gc_relocated_pages;
        self.nand_pages_programmed += other.nand_pages_programmed;
        // Wear is a per-device high-water mark, not a fleet total.
        self.wear_bytes = self.wear_bytes.max(other.wear_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_everything() {
        let mut a = DeviceStats::default();
        a.reads.record(100);
        a.writes.record(200);
        a.overwrites.record(50);
        a.erases = 3;
        a.nand_pages_programmed = 10;
        a.wear_bytes = 4096;

        let mut b = DeviceStats::default();
        b.reads.record(1);
        b.erases = 2;
        b.gc_relocated_pages = 7;
        b.wear_bytes = 9000;

        a.merge(&b);
        assert_eq!(a.reads.ops, 2);
        assert_eq!(a.reads.bytes, 101);
        assert_eq!(a.erases, 5);
        assert_eq!(a.gc_relocated_pages, 7);
        assert_eq!(a.rw_ops(), 3);
        assert_eq!(a.rw_bytes(), 301);
        // Wear takes the most-worn device, not the sum.
        assert_eq!(a.wear_bytes, 9000);
    }

    #[test]
    fn write_amplification_baseline_is_one() {
        let mut s = DeviceStats::default();
        s.writes.record(4096 * 10);
        s.nand_pages_programmed = 10;
        assert!((s.write_amplification(4096) - 1.0).abs() < 1e-12);
        s.gc_relocated_pages = 5;
        s.nand_pages_programmed = 15;
        assert!((s.write_amplification(4096) - 1.5).abs() < 1e-12);
    }
}
