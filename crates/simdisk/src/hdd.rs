//! Mechanical HDD model: seek + rotational latency + media transfer, with
//! head-position tracking so genuinely contiguous streams pay no seek.

use simdes::{Resource, SimTime};

use crate::lse::LseModel;
use crate::stats::DeviceStats;
use crate::{IoKind, IoOp, Pattern};

/// HDD configuration. Defaults model a 7200 rpm nearline SATA drive like
/// the 2 TB units in the paper's HDD cluster (capacity scaled down).
#[derive(Debug, Clone)]
pub struct HddConfig {
    /// Capacity in bytes.
    pub capacity: u64,
    /// Shortest (track-to-track) seek.
    pub min_seek: SimTime,
    /// Full-stroke seek across the whole capacity.
    pub full_seek: SimTime,
    /// Average rotational delay (half a revolution; 4.17 ms at 7200 rpm).
    pub rotational_delay: SimTime,
    /// Sustained media transfer rate, bytes per second.
    pub transfer_bandwidth: u64,
    /// Fixed controller/command overhead per op.
    pub command_overhead: SimTime,
}

impl Default for HddConfig {
    fn default() -> Self {
        HddConfig {
            capacity: 8 << 30, // 8 GiB (scaled-down 2 TB)
            min_seek: simdes::units::MILLIS / 2,
            full_seek: 13 * simdes::units::MILLIS,
            rotational_delay: 4_170 * simdes::units::MICROS,
            transfer_bandwidth: 180_000_000,
            command_overhead: 50 * simdes::units::MICROS,
        }
    }
}

/// The HDD device: one actuator (single-server queue), head tracking,
/// statistics.
#[derive(Debug, Clone)]
pub struct Hdd {
    cfg: HddConfig,
    queue: Resource,
    stats: DeviceStats,
    head: u64,
    /// End offset of the most recent sequential op (the log stream).
    seq_end: u64,
    written: Vec<u64>,
    /// Overwrite-bitmap granularity (bytes per bit).
    grain: u64,
    /// Latent-sector-error oracle, if installed.
    lse: Option<LseModel>,
}

impl Hdd {
    /// Builds an HDD from its configuration.
    pub fn new(cfg: HddConfig) -> Hdd {
        let grain = 4096;
        let bits = cfg.capacity.div_ceil(grain) as usize;
        Hdd {
            queue: Resource::new(1),
            stats: DeviceStats::default(),
            head: 0,
            seq_end: 0,
            written: vec![0; bits.div_ceil(64)],
            grain,
            lse: None,
            cfg,
        }
    }

    /// HDD with default configuration.
    pub fn with_defaults() -> Hdd {
        Hdd::new(HddConfig::default())
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.cfg.capacity
    }

    /// Device configuration.
    pub fn config(&self) -> &HddConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    /// Total busy time booked on the device.
    pub fn busy_time(&self) -> u64 {
        self.queue.busy_time()
    }

    /// Installs (or replaces) the latent-sector-error oracle.
    pub fn install_lse(&mut self, model: LseModel) {
        self.lse = Some(model);
    }

    /// The latent-sector-error oracle, if installed.
    pub fn lse(&self) -> Option<&LseModel> {
        self.lse.as_ref()
    }

    /// Mutable access to the latent-sector-error oracle.
    pub fn lse_mut(&mut self) -> Option<&mut LseModel> {
        self.lse.as_mut()
    }

    /// Seek time for a head movement of `distance` bytes, scaled by the
    /// square root of relative distance (classic seek-curve shape).
    pub fn seek_time(&self, distance: u64) -> SimTime {
        if distance == 0 {
            return 0;
        }
        let frac = (distance as f64 / self.cfg.capacity as f64).min(1.0);
        let range = (self.cfg.full_seek - self.cfg.min_seek) as f64;
        self.cfg.min_seek + (range * frac.sqrt()) as SimTime
    }

    /// Service time if the op were issued with the head at `head` and the
    /// device's log stream last ending at `seq_end`.
    ///
    /// Sequential ops that continue either position stream are free of
    /// positioning; sequential ops that jump (e.g. resuming a log after
    /// data I/O moved the head) pay only a short seek — the drive's write
    /// cache and elevator absorb the rotational delay for streamed writes.
    /// Random ops pay the full seek + rotation.
    pub fn service_time_at(&self, op: &IoOp, head: u64, seq_end: u64) -> SimTime {
        let transfer = op.len * simdes::units::SECS / self.cfg.transfer_bandwidth;
        let positioning = match op.pattern {
            Pattern::Sequential if op.offset == head || op.offset == seq_end => 0,
            Pattern::Sequential => self.cfg.min_seek,
            Pattern::Random => self.seek_time(op.offset.abs_diff(head)) + self.cfg.rotational_delay,
        };
        self.cfg.command_overhead + positioning + transfer
    }

    /// Submits an I/O; returns its completion time and advances the head.
    ///
    /// # Panics
    /// Panics if the op exceeds the device capacity or has zero length.
    pub fn submit(&mut self, now: SimTime, op: IoOp) -> SimTime {
        assert!(op.len > 0, "zero-length I/O");
        assert!(
            op.offset + op.len <= self.cfg.capacity,
            "I/O beyond device capacity"
        );
        let service = self.service_time_at(&op, self.head, self.seq_end);
        self.head = op.offset + op.len;
        if op.pattern == Pattern::Sequential {
            self.seq_end = op.offset + op.len;
        }
        match op.kind {
            IoKind::Read => {
                self.stats.reads.record(op.len);
                if op.pattern == Pattern::Random {
                    self.stats.random_reads.record(op.len);
                }
            }
            IoKind::Write => {
                self.stats.writes.record(op.len);
                self.stats.wear_bytes += op.len;
                if op.pattern == Pattern::Random {
                    self.stats.random_writes.record(op.len);
                }
                let first = op.offset / self.grain;
                let last = (op.offset + op.len - 1) / self.grain;
                let mut over = 0u64;
                for g in first..=last {
                    let (w, b) = ((g / 64) as usize, g % 64);
                    if self.written[w] >> b & 1 == 1 {
                        let gs = g * self.grain;
                        let ge = gs + self.grain;
                        over += (op.offset + op.len).min(ge) - op.offset.max(gs);
                    } else {
                        self.written[w] |= 1 << b;
                    }
                }
                if over > 0 {
                    self.stats.overwrites.record(over);
                }
            }
        }
        self.queue.reserve(now, service)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdes::units::MILLIS;

    #[test]
    fn sequential_stream_avoids_seeks() {
        let mut hdd = Hdd::with_defaults();
        // Position the head.
        hdd.submit(0, IoOp::write(0, 4096, Pattern::Sequential));
        let t1 = hdd.submit(0, IoOp::write(4096, 4096, Pattern::Sequential));
        let t2 = hdd.submit(0, IoOp::write(8192, 4096, Pattern::Sequential));
        // Appends after the first should each take well under a millisecond.
        assert!(t2 - t1 < MILLIS, "append cost {} ns", t2 - t1);
    }

    #[test]
    fn random_access_pays_seek_and_rotation() {
        let hdd = Hdd::with_defaults();
        let t = hdd.service_time_at(&IoOp::read(4 << 30, 4096, Pattern::Random), 0, 0);
        assert!(t > 8 * MILLIS, "far random read was {t} ns");
    }

    #[test]
    fn seek_time_monotonic_in_distance() {
        let hdd = Hdd::with_defaults();
        let near = hdd.seek_time(1 << 20);
        let mid = hdd.seek_time(1 << 30);
        let far = hdd.seek_time(8 << 30);
        assert!(near < mid && mid < far);
        assert_eq!(hdd.seek_time(0), 0);
        assert!(far <= hdd.config().full_seek);
    }

    #[test]
    fn single_actuator_serialises() {
        let mut hdd = Hdd::with_defaults();
        let t1 = hdd.submit(0, IoOp::read(0, 4096, Pattern::Random));
        let t2 = hdd.submit(0, IoOp::read(1 << 30, 4096, Pattern::Random));
        assert!(t2 > t1, "second op must queue behind the first");
    }

    #[test]
    fn overwrite_accounting() {
        let mut hdd = Hdd::with_defaults();
        hdd.submit(0, IoOp::write(0, 8192, Pattern::Sequential));
        assert_eq!(hdd.stats().overwrites.ops, 0);
        hdd.submit(0, IoOp::write(0, 8192, Pattern::Random));
        assert_eq!(hdd.stats().overwrites.ops, 1);
        assert_eq!(hdd.stats().overwrites.bytes, 8192);
        assert_eq!(hdd.stats().erases, 0, "HDDs have no erase cycles");
    }

    #[test]
    fn wear_tracks_host_write_volume() {
        let mut hdd = Hdd::with_defaults();
        hdd.submit(0, IoOp::write(0, 8192, Pattern::Sequential));
        hdd.submit(0, IoOp::read(0, 1 << 20, Pattern::Sequential));
        hdd.submit(0, IoOp::write(0, 4096, Pattern::Random));
        // Magnetic media has no write amplification: wear = host bytes.
        assert_eq!(hdd.stats().wear_bytes, 8192 + 4096);
        assert_eq!(hdd.stats().wear_bytes, hdd.stats().writes.bytes);
    }

    #[test]
    fn jump_breaks_sequentiality() {
        let mut hdd = Hdd::with_defaults();
        hdd.submit(0, IoOp::write(0, 4096, Pattern::Sequential));
        // A sequential-pattern op at a non-contiguous offset pays a short
        // repositioning seek (the write cache absorbs the rotation)...
        let before = hdd.busy_time();
        hdd.submit(0, IoOp::write(1 << 30, 4096, Pattern::Sequential));
        let cost = hdd.busy_time() - before;
        assert!(
            cost >= hdd.config().min_seek,
            "jump must pay a seek: {cost}"
        );
        // ...while a random op at a far offset pays seek + rotation.
        let before = hdd.busy_time();
        hdd.submit(0, IoOp::write(4 << 30, 4096, Pattern::Random));
        let cost_rand = hdd.busy_time() - before;
        assert!(
            cost_rand > 4 * MILLIS,
            "random op must seek+rotate: {cost_rand}"
        );
    }
}
