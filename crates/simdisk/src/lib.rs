//! Storage device models: a NAND SSD with a page-mapped FTL and a
//! mechanical HDD with a seek model.
//!
//! This crate stands in for the paper's physical devices (one 400 GB SSD per
//! node on the Chameleon testbed; three 2 TB HDDs per node in the HDD
//! cluster). The two properties the evaluation depends on are modelled
//! explicitly:
//!
//! 1. **The random-vs-sequential gap.** On the SSD, small random operations
//!    pay a fixed per-command overhead that dwarfs the transfer time, while
//!    large sequential streams run at media bandwidth ([`ssd`]). On the HDD
//!    the gap is mechanical: non-contiguous accesses pay seek plus
//!    rotational latency ([`hdd`]).
//! 2. **Flash wear.** Every host write lands in a page-mapped FTL; small
//!    in-place overwrites invalidate pages and eventually force garbage
//!    collection, whose relocations and block erases are both charged to
//!    the device timeline and counted for the lifespan analysis
//!    (paper §5.3.4 and Table 1) ([`ssd::Ftl`]).
//!
//! All devices expose the same [`IoOp`]/[`submit`](Disk::submit) interface
//! returning completion times against a [`simdes::Resource`] queue, plus
//! [`DeviceStats`] counting reads, writes, *overwrites* (the write-penalty
//! metric of Table 1) and erases.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hdd;
pub mod lse;
pub mod ssd;
pub mod stats;

pub use hdd::{Hdd, HddConfig};
pub use lse::{LseModel, LseSite};
pub use ssd::{Ssd, SsdConfig};
pub use stats::DeviceStats;

use simdes::SimTime;

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoKind {
    /// Data flows from the device.
    Read,
    /// Data flows to the device.
    Write,
}

/// Access-pattern hint supplied by the storage layer.
///
/// The OSD knows the semantics of each access (log appends are sequential,
/// in-place block updates are random), so the hint is authoritative for the
/// SSD's command-overhead model; the HDD additionally tracks head position
/// and only charges a seek when the access is actually discontiguous.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pattern {
    /// Part of a sequential stream (e.g. log append, recovery scan).
    Sequential,
    /// Independent small access (e.g. in-place block update).
    Random,
}

/// One device command.
#[derive(Debug, Clone, Copy)]
pub struct IoOp {
    /// Read or write.
    pub kind: IoKind,
    /// Byte offset on the device.
    pub offset: u64,
    /// Length in bytes (must be non-zero).
    pub len: u64,
    /// Access-pattern hint.
    pub pattern: Pattern,
}

impl IoOp {
    /// Convenience constructor for a read.
    pub fn read(offset: u64, len: u64, pattern: Pattern) -> IoOp {
        IoOp {
            kind: IoKind::Read,
            offset,
            len,
            pattern,
        }
    }

    /// Convenience constructor for a write.
    pub fn write(offset: u64, len: u64, pattern: Pattern) -> IoOp {
        IoOp {
            kind: IoKind::Write,
            offset,
            len,
            pattern,
        }
    }
}

/// A storage device: either flavour behind one interface.
#[derive(Debug, Clone)]
pub enum Disk {
    /// NAND SSD with FTL.
    Ssd(Ssd),
    /// Mechanical HDD.
    Hdd(Hdd),
}

impl Disk {
    /// Submits an I/O at simulation time `now`; returns its completion time.
    pub fn submit(&mut self, now: SimTime, op: IoOp) -> SimTime {
        match self {
            Disk::Ssd(d) => d.submit(now, op),
            Disk::Hdd(d) => d.submit(now, op),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DeviceStats {
        match self {
            Disk::Ssd(d) => d.stats(),
            Disk::Hdd(d) => d.stats(),
        }
    }

    /// Device capacity in bytes.
    pub fn capacity(&self) -> u64 {
        match self {
            Disk::Ssd(d) => d.capacity(),
            Disk::Hdd(d) => d.capacity(),
        }
    }

    /// Bytes physically written to the media so far — the wear high-water
    /// mark ([`DeviceStats::wear_bytes`]) capacity/wear-aware placement
    /// and rebalance policies consult.
    pub fn wear_bytes(&self) -> u64 {
        self.stats().wear_bytes
    }

    /// Total busy time booked on the device.
    pub fn busy_time(&self) -> u64 {
        match self {
            Disk::Ssd(d) => d.busy_time(),
            Disk::Hdd(d) => d.busy_time(),
        }
    }

    /// Explicitly erases a fixed region (SSD: counts erase cycles and books
    /// erase time; HDD: free — magnetic media needs no erase).
    pub fn erase_region(&mut self, now: SimTime, offset: u64, len: u64) -> SimTime {
        match self {
            Disk::Ssd(d) => d.erase_region(now, offset, len),
            Disk::Hdd(_) => now,
        }
    }

    /// Installs (or replaces) the latent-sector-error oracle ([`lse`]).
    pub fn install_lse(&mut self, model: LseModel) {
        match self {
            Disk::Ssd(d) => d.install_lse(model),
            Disk::Hdd(d) => d.install_lse(model),
        }
    }

    /// The latent-sector-error oracle, if installed.
    pub fn lse(&self) -> Option<&LseModel> {
        match self {
            Disk::Ssd(d) => d.lse(),
            Disk::Hdd(d) => d.lse(),
        }
    }

    /// Scrubs `[offset, offset + len)` against the LSE oracle at `now`;
    /// returns the number of newly detected error sites (0 when no oracle
    /// is installed).
    pub fn scrub_lse(&mut self, now: SimTime, offset: u64, len: u64) -> usize {
        match self {
            Disk::Ssd(d) => d.lse_mut(),
            Disk::Hdd(d) => d.lse_mut(),
        }
        .map_or(0, |m| m.scrub(now, offset, len))
    }

    /// Marks detected LSE sites in `[offset, offset + len)` repaired after
    /// the covering block was rebuilt; returns how many were cleared.
    pub fn clear_lse(&mut self, offset: u64, len: u64) -> usize {
        match self {
            Disk::Ssd(d) => d.lse_mut(),
            Disk::Hdd(d) => d.lse_mut(),
        }
        .map_or(0, |m| m.clear(offset, len))
    }

    /// Unrepaired error sites with onset by `now` — the current exposure
    /// window (0 when no oracle is installed).
    pub fn lse_latent(&self, now: SimTime) -> usize {
        self.lse().map_or(0, |m| m.latent(now))
    }

    /// Whether `[offset, offset + len)` holds an unrepaired onset LSE site.
    pub fn lse_overlaps_latent(&self, now: SimTime, offset: u64, len: u64) -> bool {
        self.lse()
            .is_some_and(|m| m.overlaps_latent(now, offset, len))
    }
}
