//! NAND SSD model: command-overhead latency plus a page-mapped FTL whose
//! garbage collection charges real time and counts erase cycles.

use simdes::{Resource, SimTime};

use crate::lse::LseModel;
use crate::stats::DeviceStats;
use crate::{IoKind, IoOp, Pattern};

const UNMAPPED: u32 = u32::MAX;

/// SSD configuration.
///
/// Defaults model a datacenter SATA/NVMe-class drive of the kind the paper's
/// Chameleon nodes carried, scaled down in capacity so sixteen simulated
/// devices stay memory-cheap. The latency constants encode the property the
/// paper leans on: a small random command costs two orders of magnitude more
/// than its share of a large sequential stream.
#[derive(Debug, Clone)]
pub struct SsdConfig {
    /// NAND page size in bytes.
    pub page_size: u64,
    /// Pages per erase block.
    pub pages_per_block: u32,
    /// Logical (host-visible) capacity in bytes.
    pub capacity: u64,
    /// Extra physical space fraction reserved for the FTL.
    pub over_provision: f64,
    /// Internal command parallelism (NCQ/NVMe queue lanes).
    pub queue_depth: usize,
    /// Fixed overhead of a random read command.
    pub rand_read_overhead: SimTime,
    /// Fixed overhead of a random write command.
    pub rand_write_overhead: SimTime,
    /// Fixed overhead of a sequential read command.
    pub seq_read_overhead: SimTime,
    /// Fixed overhead of a sequential write command.
    pub seq_write_overhead: SimTime,
    /// Sustained read bandwidth, bytes per second.
    pub read_bandwidth: u64,
    /// Sustained write bandwidth, bytes per second.
    pub write_bandwidth: u64,
    /// Time to erase one NAND block.
    pub erase_time: SimTime,
    /// Time to relocate one valid page during GC (read + program).
    pub gc_page_move_time: SimTime,
    /// GC starts when the free-block fraction drops below this.
    pub gc_free_threshold: f64,
}

impl Default for SsdConfig {
    fn default() -> Self {
        SsdConfig {
            page_size: 4096,
            pages_per_block: 64, // 256 KiB erase block
            capacity: 2 << 30,   // 2 GiB logical (scaled-down 400 GB drive)
            over_provision: 0.125,
            queue_depth: 4,
            rand_read_overhead: 45 * simdes::units::MICROS,
            rand_write_overhead: 60 * simdes::units::MICROS,
            seq_read_overhead: 15 * simdes::units::MICROS,
            seq_write_overhead: 20 * simdes::units::MICROS,
            read_bandwidth: 2_000_000_000,
            write_bandwidth: 1_100_000_000,
            erase_time: 2 * simdes::units::MILLIS,
            gc_page_move_time: 60 * simdes::units::MICROS,
            gc_free_threshold: 0.06,
        }
    }
}

/// Page-mapped flash translation layer.
///
/// Logical pages map to physical pages; overwrites invalidate the old
/// physical page. When the pool of free blocks falls below the GC
/// threshold, greedy GC picks the block with the fewest valid pages,
/// relocates them, and erases it. Erases and relocations are returned to
/// the caller so they can be charged to the device timeline and to the
/// wear counters.
#[derive(Debug, Clone)]
pub struct Ftl {
    pages_per_block: u32,
    logical_pages: u64,
    /// lpn -> ppa
    map: Vec<u32>,
    /// ppa -> lpn
    rmap: Vec<u32>,
    /// valid page count per physical block
    valid: Vec<u16>,
    /// stack of free (erased) block ids
    free_blocks: Vec<u32>,
    active_block: u32,
    active_next_page: u32,
    gc_threshold_blocks: usize,
    total_blocks: usize,
    /// Re-entrancy guard: relocations during GC allocate pages, which must
    /// not trigger a nested GC pass (the inner pass could erase and reuse
    /// the outer pass's victim mid-relocation).
    gc_active: bool,
}

/// GC/wear cost of a batch of page writes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlashCost {
    /// Pages programmed on behalf of the host.
    pub host_pages: u64,
    /// Pages relocated by garbage collection.
    pub moved_pages: u64,
    /// Blocks erased.
    pub erases: u64,
}

impl Ftl {
    fn new(cfg: &SsdConfig) -> Ftl {
        let logical_pages = cfg.capacity.div_ceil(cfg.page_size);
        let physical_pages = ((logical_pages as f64) * (1.0 + cfg.over_provision)).ceil() as u64;
        let total_blocks = physical_pages.div_ceil(cfg.pages_per_block as u64) as usize;
        assert!(
            total_blocks >= 4,
            "SSD too small: needs at least 4 erase blocks"
        );
        let mut free_blocks: Vec<u32> = (1..total_blocks as u32).rev().collect();
        let active_block = 0;
        let gc_threshold_blocks =
            ((total_blocks as f64 * cfg.gc_free_threshold).ceil() as usize).max(2);
        let _ = &mut free_blocks;
        Ftl {
            pages_per_block: cfg.pages_per_block,
            logical_pages,
            map: vec![UNMAPPED; logical_pages as usize],
            rmap: vec![UNMAPPED; total_blocks * cfg.pages_per_block as usize],
            valid: vec![0; total_blocks],
            free_blocks,
            active_block,
            active_next_page: 0,
            gc_threshold_blocks,
            total_blocks,
            gc_active: false,
        }
    }

    /// Number of logical pages.
    pub fn logical_pages(&self) -> u64 {
        self.logical_pages
    }

    /// Writes one logical page; returns the wear cost incurred (including
    /// any GC this write triggered).
    pub fn write_page(&mut self, lpn: u64) -> FlashCost {
        debug_assert!(lpn < self.logical_pages, "lpn out of range");
        let mut cost = FlashCost::default();
        // Invalidate the previous location.
        let old = self.map[lpn as usize];
        if old != UNMAPPED {
            let blk = (old / self.pages_per_block) as usize;
            self.valid[blk] -= 1;
            self.rmap[old as usize] = UNMAPPED;
        }
        let ppa = self.allocate_page(&mut cost);
        self.map[lpn as usize] = ppa;
        self.rmap[ppa as usize] = lpn as u32;
        self.valid[(ppa / self.pages_per_block) as usize] += 1;
        cost.host_pages += 1;
        cost
    }

    fn allocate_page(&mut self, cost: &mut FlashCost) -> u32 {
        if self.active_next_page == self.pages_per_block {
            // Active block is full: pick a new one, GC first if needed.
            if !self.gc_active && self.free_blocks.len() < self.gc_threshold_blocks {
                self.collect_garbage(cost);
            }
            self.active_block = self
                .free_blocks
                .pop()
                .expect("GC must keep at least one free block");
            self.active_next_page = 0;
        }
        let ppa = self.active_block * self.pages_per_block + self.active_next_page;
        self.active_next_page += 1;
        ppa
    }

    fn collect_garbage(&mut self, cost: &mut FlashCost) {
        self.gc_active = true;
        while self.free_blocks.len() < self.gc_threshold_blocks {
            // Greedy victim: fewest valid pages, excluding active and free.
            let mut victim = usize::MAX;
            let mut best = u16::MAX;
            for b in 0..self.total_blocks {
                if b as u32 == self.active_block {
                    continue;
                }
                if self.free_blocks.contains(&(b as u32)) {
                    continue;
                }
                if self.valid[b] < best {
                    best = self.valid[b];
                    victim = b;
                    if best == 0 {
                        break;
                    }
                }
            }
            assert!(victim != usize::MAX, "no GC victim available");
            // Relocate the victim's valid pages into the active stream.
            let base = victim as u32 * self.pages_per_block;
            for p in 0..self.pages_per_block {
                let ppa = base + p;
                let lpn = self.rmap[ppa as usize];
                if lpn == UNMAPPED {
                    continue;
                }
                self.rmap[ppa as usize] = UNMAPPED;
                self.valid[victim] -= 1;
                let new_ppa = self.allocate_page(cost);
                self.map[lpn as usize] = new_ppa;
                self.rmap[new_ppa as usize] = lpn;
                self.valid[(new_ppa / self.pages_per_block) as usize] += 1;
                cost.moved_pages += 1;
            }
            debug_assert_eq!(self.valid[victim], 0);
            cost.erases += 1;
            self.free_blocks.push(victim as u32);
        }
        self.gc_active = false;
    }
}

/// The SSD device: latency model + FTL + statistics.
#[derive(Debug, Clone)]
pub struct Ssd {
    cfg: SsdConfig,
    ftl: Ftl,
    queue: Resource,
    stats: DeviceStats,
    /// Page-granularity "has been written" bitmap for overwrite accounting.
    written: Vec<u64>,
    /// Latent-sector-error oracle, if installed.
    lse: Option<LseModel>,
}

impl Ssd {
    /// Builds an SSD from its configuration.
    pub fn new(cfg: SsdConfig) -> Ssd {
        let ftl = Ftl::new(&cfg);
        let words = (ftl.logical_pages() as usize).div_ceil(64);
        Ssd {
            queue: Resource::new(cfg.queue_depth),
            ftl,
            written: vec![0; words],
            stats: DeviceStats::default(),
            lse: None,
            cfg,
        }
    }

    /// SSD with default configuration.
    pub fn with_defaults() -> Ssd {
        Ssd::new(SsdConfig::default())
    }

    /// Logical capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.cfg.capacity
    }

    /// Device configuration.
    pub fn config(&self) -> &SsdConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    /// Total busy time booked on the device queue.
    pub fn busy_time(&self) -> u64 {
        self.queue.busy_time()
    }

    /// Installs (or replaces) the latent-sector-error oracle.
    pub fn install_lse(&mut self, model: LseModel) {
        self.lse = Some(model);
    }

    /// The latent-sector-error oracle, if installed.
    pub fn lse(&self) -> Option<&LseModel> {
        self.lse.as_ref()
    }

    /// Mutable access to the latent-sector-error oracle.
    pub fn lse_mut(&mut self) -> Option<&mut LseModel> {
        self.lse.as_mut()
    }

    /// Pure service-time model for an op (no queueing, no FTL): fixed
    /// command overhead by pattern plus transfer at media bandwidth.
    pub fn service_time(&self, op: &IoOp) -> SimTime {
        let (overhead, bw) = match (op.kind, op.pattern) {
            (IoKind::Read, Pattern::Random) => {
                (self.cfg.rand_read_overhead, self.cfg.read_bandwidth)
            }
            (IoKind::Read, Pattern::Sequential) => {
                (self.cfg.seq_read_overhead, self.cfg.read_bandwidth)
            }
            (IoKind::Write, Pattern::Random) => {
                (self.cfg.rand_write_overhead, self.cfg.write_bandwidth)
            }
            (IoKind::Write, Pattern::Sequential) => {
                (self.cfg.seq_write_overhead, self.cfg.write_bandwidth)
            }
        };
        overhead + op.len * simdes::units::SECS / bw
    }

    /// Submits an I/O; returns its completion time.
    ///
    /// Writes run through the FTL page by page; GC relocations and erases
    /// extend this command's service time (foreground GC), which is how
    /// sustained random overwrite load degrades latency on real drives.
    ///
    /// # Panics
    /// Panics if the op exceeds the device capacity or has zero length.
    pub fn submit(&mut self, now: SimTime, op: IoOp) -> SimTime {
        assert!(op.len > 0, "zero-length I/O");
        assert!(
            op.offset + op.len <= self.cfg.capacity,
            "I/O beyond device capacity: offset {} len {} cap {}",
            op.offset,
            op.len,
            self.cfg.capacity
        );
        let mut service = self.service_time(&op);
        match op.kind {
            IoKind::Read => {
                self.stats.reads.record(op.len);
                if op.pattern == Pattern::Random {
                    self.stats.random_reads.record(op.len);
                }
            }
            IoKind::Write => {
                self.stats.writes.record(op.len);
                if op.pattern == Pattern::Random {
                    self.stats.random_writes.record(op.len);
                }
                // Overwrite accounting at page granularity.
                let first = op.offset / self.cfg.page_size;
                let last = (op.offset + op.len - 1) / self.cfg.page_size;
                let mut over_bytes = 0u64;
                for lpn in first..=last {
                    let (w, b) = ((lpn / 64) as usize, lpn % 64);
                    if self.written[w] >> b & 1 == 1 {
                        over_bytes += self.page_overlap(op.offset, op.len, lpn);
                    } else {
                        self.written[w] |= 1 << b;
                    }
                }
                if over_bytes > 0 {
                    self.stats.overwrites.record(over_bytes);
                }
                // FTL programming + GC.
                let mut cost = FlashCost::default();
                for lpn in first..=last {
                    let c = self.ftl.write_page(lpn);
                    cost.host_pages += c.host_pages;
                    cost.moved_pages += c.moved_pages;
                    cost.erases += c.erases;
                }
                self.stats.nand_pages_programmed += cost.host_pages + cost.moved_pages;
                self.stats.gc_relocated_pages += cost.moved_pages;
                self.stats.erases += cost.erases;
                self.stats.wear_bytes += (cost.host_pages + cost.moved_pages) * self.cfg.page_size;
                service += cost.moved_pages * self.cfg.gc_page_move_time
                    + cost.erases * self.cfg.erase_time;
            }
        }
        self.queue.reserve(now, service)
    }

    fn page_overlap(&self, offset: u64, len: u64, lpn: u64) -> u64 {
        let ps = self.cfg.page_size;
        let page_start = lpn * ps;
        let page_end = page_start + ps;
        let start = offset.max(page_start);
        let end = (offset + len).min(page_end);
        end.saturating_sub(start)
    }

    /// Explicitly erases the flash blocks backing `[offset, offset+len)` —
    /// the cost of reusing *fixed* on-device log regions (e.g. PLR's
    /// reserved space) that cannot ride the FTL's remapping. Counts erase
    /// cycles and books erase time on the device queue.
    pub fn erase_region(&mut self, now: SimTime, offset: u64, len: u64) -> SimTime {
        assert!(len > 0, "zero-length erase");
        assert!(offset + len <= self.cfg.capacity, "erase beyond capacity");
        let block_bytes = self.cfg.page_size * self.cfg.pages_per_block as u64;
        let first = offset / block_bytes;
        let last = (offset + len - 1) / block_bytes;
        let blocks = last - first + 1;
        self.stats.erases += blocks;
        self.queue.reserve(now, blocks * self.cfg.erase_time)
    }

    /// Projected lifespan multiplier relative to a baseline erase count:
    /// `baseline_erases / self.erases` (∞-safe: returns baseline when this
    /// device has zero erases).
    pub fn lifespan_vs(&self, baseline_erases: u64) -> f64 {
        if self.stats.erases == 0 {
            baseline_erases.max(1) as f64
        } else {
            baseline_erases as f64 / self.stats.erases as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdes::units::{MICROS, SECS};

    fn small_ssd() -> Ssd {
        Ssd::new(SsdConfig {
            capacity: 16 << 20, // 16 MiB
            ..SsdConfig::default()
        })
    }

    #[test]
    fn sequential_faster_than_random() {
        let ssd = small_ssd();
        let r = ssd.service_time(&IoOp::read(0, 4096, Pattern::Random));
        let s = ssd.service_time(&IoOp::read(0, 4096, Pattern::Sequential));
        assert!(r > 2 * s, "random {r} vs sequential {s}");
        let rw = ssd.service_time(&IoOp::write(0, 4096, Pattern::Random));
        let sw = ssd.service_time(&IoOp::write(0, 4096, Pattern::Sequential));
        assert!(rw > 2 * sw, "random {rw} vs sequential {sw}");
    }

    #[test]
    fn large_sequential_hits_bandwidth() {
        let ssd = small_ssd();
        let len = 8 << 20; // 8 MiB
        let t = ssd.service_time(&IoOp::read(0, len, Pattern::Sequential));
        let ideal = len * SECS / ssd.config().read_bandwidth;
        assert!(t < ideal + ideal / 10, "t {t} vs ideal {ideal}");
    }

    #[test]
    fn queue_depth_allows_parallel_commands() {
        let mut ssd = small_ssd();
        let t1 = ssd.submit(0, IoOp::read(0, 4096, Pattern::Random));
        let t2 = ssd.submit(0, IoOp::read(8192, 4096, Pattern::Random));
        assert_eq!(t1, t2, "two commands fit the queue simultaneously");
        // Saturate the queue: the (QD+1)-th command must wait.
        let mut last = 0;
        for i in 0..ssd.config().queue_depth as u64 {
            last = ssd.submit(0, IoOp::read(i * 4096, 4096, Pattern::Random));
        }
        assert!(last > t1);
    }

    #[test]
    fn overwrites_counted_only_on_rewrite() {
        let mut ssd = small_ssd();
        ssd.submit(0, IoOp::write(0, 8192, Pattern::Sequential));
        assert_eq!(ssd.stats().overwrites.ops, 0);
        ssd.submit(0, IoOp::write(0, 4096, Pattern::Random));
        assert_eq!(ssd.stats().overwrites.ops, 1);
        assert_eq!(ssd.stats().overwrites.bytes, 4096);
        // A fresh region is again not an overwrite.
        ssd.submit(0, IoOp::write(1 << 20, 4096, Pattern::Random));
        assert_eq!(ssd.stats().overwrites.ops, 1);
    }

    #[test]
    fn sub_page_overwrite_counts_overlap_bytes() {
        let mut ssd = small_ssd();
        ssd.submit(0, IoOp::write(0, 4096, Pattern::Random));
        ssd.submit(0, IoOp::write(100, 200, Pattern::Random));
        assert_eq!(ssd.stats().overwrites.bytes, 200);
    }

    #[test]
    fn sustained_overwrite_triggers_gc_and_erases() {
        let mut ssd = Ssd::new(SsdConfig {
            capacity: 4 << 20, // 4 MiB: 16 blocks of 256 KiB
            over_provision: 0.25,
            ..SsdConfig::default()
        });
        // Fill the device once, then overwrite it several times.
        let mut now = 0;
        for round in 0..6u64 {
            for off in (0..(4 << 20)).step_by(4096) {
                now = ssd.submit(now, IoOp::write(off, 4096, Pattern::Random));
            }
            if round == 0 {
                assert_eq!(ssd.stats().erases, 0, "first fill needs no GC");
            }
        }
        assert!(ssd.stats().erases > 0, "overwrites must trigger GC");
        assert!(
            ssd.stats().write_amplification(4096) >= 1.0,
            "WA must be >= 1"
        );
    }

    #[test]
    fn wear_tracks_write_volume() {
        // Two devices, one written 4x more: it must erase more.
        let cfg = SsdConfig {
            capacity: 4 << 20,
            ..SsdConfig::default()
        };
        let mut a = Ssd::new(cfg.clone());
        let mut b = Ssd::new(cfg);
        for round in 0..2u64 {
            let _ = round;
            for off in (0..(4 << 20)).step_by(4096) {
                a.submit(0, IoOp::write(off, 4096, Pattern::Random));
            }
        }
        for _ in 0..8u64 {
            for off in (0..(4 << 20)).step_by(4096) {
                b.submit(0, IoOp::write(off, 4096, Pattern::Random));
            }
        }
        assert!(b.stats().erases > a.stats().erases);
        assert!(a.lifespan_vs(b.stats().erases) > 1.0);
    }

    #[test]
    fn wear_counts_programmed_bytes_including_gc() {
        let mut ssd = Ssd::new(SsdConfig {
            capacity: 4 << 20,
            over_provision: 0.25,
            ..SsdConfig::default()
        });
        assert_eq!(ssd.stats().wear_bytes, 0);
        ssd.submit(0, IoOp::write(0, 8192, Pattern::Sequential));
        assert_eq!(ssd.stats().wear_bytes, 8192, "no GC yet: wear = host bytes");
        // Reads never wear the flash.
        ssd.submit(0, IoOp::read(0, 8192, Pattern::Sequential));
        assert_eq!(ssd.stats().wear_bytes, 8192);
        // Fill once, then hammer only the even pages: GC victims keep
        // their odd pages valid, forcing relocations (physical wear beyond
        // the host write volume).
        for off in (0..(4 << 20)).step_by(4096) {
            ssd.submit(0, IoOp::write(off, 4096, Pattern::Random));
        }
        for _ in 0..8u64 {
            for off in (0..(4 << 20)).step_by(8192) {
                ssd.submit(0, IoOp::write(off, 4096, Pattern::Random));
            }
        }
        let host = ssd.stats().writes.bytes;
        assert!(
            ssd.stats().wear_bytes > host,
            "GC relocations must wear beyond host writes: {} vs {host}",
            ssd.stats().wear_bytes
        );
        assert_eq!(
            ssd.stats().wear_bytes,
            ssd.stats().nand_pages_programmed * ssd.config().page_size
        );
    }

    #[test]
    #[should_panic(expected = "beyond device capacity")]
    fn oversized_io_rejected() {
        let mut ssd = small_ssd();
        ssd.submit(0, IoOp::read((16 << 20) - 100, 4096, Pattern::Random));
    }

    #[test]
    fn service_time_includes_transfer() {
        let ssd = small_ssd();
        let small = ssd.service_time(&IoOp::write(0, 4096, Pattern::Sequential));
        let big = ssd.service_time(&IoOp::write(0, 1 << 20, Pattern::Sequential));
        assert!(
            big > small + 800 * MICROS,
            "1 MiB at ~1.1 GB/s takes ~950 us"
        );
    }
}
