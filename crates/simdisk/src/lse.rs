//! Latent sector error (LSE) injection: deterministic, per-device media
//! corruption that stays invisible until something reads the affected
//! extent.
//!
//! Field studies (Bairavasundaram et al., FAST'07/'08) show latent sector
//! errors accumulate silently and are only discovered by *reads* — either a
//! foreground access or a background scrub pass. The maintenance subsystem
//! in `ecfs` uses this model to ask the question the scrub policy exists
//! for: are injected errors found and repaired before a correlated node
//! failure turns a latent error plus a dead disk into data loss?
//!
//! The model is intentionally simple and fully deterministic:
//!
//! * a fixed set of error **sites** (byte offsets) is drawn at construction
//!   from a seeded splitmix64 stream — no `rand` dependency, and the same
//!   `(seed, span, count, horizon)` always yields the same sites;
//! * each site has an **onset time**; before it the medium is healthy, so a
//!   scrub pass that sweeps early can legitimately miss an error that
//!   develops later (exactly the race real scrubbers lose);
//! * a [`LseModel::scrub`] of an extent *detects* every onset site inside
//!   it; [`LseModel::clear`] marks sites repaired once the block above has
//!   been rebuilt from redundancy.
//!
//! The model deliberately does not alter I/O timing or contents — it is an
//! oracle bolted onto the device, the same role `ecfs`'s consistency oracle
//! plays for parity.

use simdes::SimTime;

/// One latent error site on the medium.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LseSite {
    /// Byte offset of the corrupted sector.
    pub offset: u64,
    /// Simulation time at which the medium degrades; the site is invisible
    /// to scrubs before this.
    pub onset: SimTime,
    /// Whether a scrub has found the site.
    pub detected: bool,
    /// Whether the block covering the site has been rebuilt since
    /// detection.
    pub repaired: bool,
}

/// The per-device latent-error oracle. Attach with
/// [`crate::Disk::install_lse`]; scrub passes report extents through
/// [`crate::Disk::scrub_lse`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LseModel {
    sites: Vec<LseSite>,
}

/// splitmix64: the tiny, high-quality mixer used to derive site offsets and
/// onsets without a `rand` dependency.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl LseModel {
    /// Draws `count` error sites with offsets in `[0, span)` and onsets in
    /// `[0, horizon_ns]`, deterministically from `seed`.
    ///
    /// # Panics
    /// Panics if `span == 0` while `count > 0`.
    pub fn seeded(seed: u64, span: u64, count: usize, horizon_ns: SimTime) -> LseModel {
        assert!(count == 0 || span > 0, "LSE span must be non-zero");
        let mut state = seed ^ 0x6c73_655f_7369_7465; // "lse_site"
        let mut sites = Vec::with_capacity(count);
        for _ in 0..count {
            let offset = splitmix64(&mut state) % span;
            let onset = if horizon_ns == 0 {
                0
            } else {
                splitmix64(&mut state) % (horizon_ns + 1)
            };
            sites.push(LseSite {
                offset,
                onset,
                detected: false,
                repaired: false,
            });
        }
        // Offset order keeps reporting deterministic and readable.
        sites.sort_by_key(|s| (s.offset, s.onset));
        LseModel { sites }
    }

    /// Scrubs the extent `[offset, offset + len)` at time `now`: every
    /// onset, not-yet-detected site inside it is marked detected. Returns
    /// how many sites this pass newly detected.
    pub fn scrub(&mut self, now: SimTime, offset: u64, len: u64) -> usize {
        let end = offset.saturating_add(len);
        let mut found = 0;
        for s in &mut self.sites {
            if !s.detected && s.onset <= now && s.offset >= offset && s.offset < end {
                s.detected = true;
                found += 1;
            }
        }
        found
    }

    /// Marks every detected site inside `[offset, offset + len)` repaired —
    /// call once the covering block has been rebuilt from redundancy.
    /// Returns how many sites were repaired.
    pub fn clear(&mut self, offset: u64, len: u64) -> usize {
        let end = offset.saturating_add(len);
        let mut cleared = 0;
        for s in &mut self.sites {
            if s.detected && !s.repaired && s.offset >= offset && s.offset < end {
                s.repaired = true;
                cleared += 1;
            }
        }
        cleared
    }

    /// Total sites injected on this device.
    pub fn injected(&self) -> usize {
        self.sites.len()
    }

    /// Sites a scrub has found so far.
    pub fn detected(&self) -> usize {
        self.sites.iter().filter(|s| s.detected).count()
    }

    /// Sites repaired (rebuilt from redundancy) so far.
    pub fn repaired(&self) -> usize {
        self.sites.iter().filter(|s| s.repaired).count()
    }

    /// Sites that have onset by `now` but are still unrepaired — the
    /// exposure window a correlated failure would turn into data loss.
    pub fn latent(&self, now: SimTime) -> usize {
        self.sites
            .iter()
            .filter(|s| s.onset <= now && !s.repaired)
            .count()
    }

    /// Whether `[offset, offset + len)` holds any unrepaired onset site at
    /// `now` — used to count rebuilds reading from silently-bad extents.
    pub fn overlaps_latent(&self, now: SimTime, offset: u64, len: u64) -> bool {
        let end = offset.saturating_add(len);
        self.sites
            .iter()
            .any(|s| s.onset <= now && !s.repaired && s.offset >= offset && s.offset < end)
    }

    /// The raw sites, offset-sorted (inspection and tests).
    pub fn sites(&self) -> &[LseSite] {
        &self.sites
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let a = LseModel::seeded(42, 1 << 30, 8, 1_000_000);
        let b = LseModel::seeded(42, 1 << 30, 8, 1_000_000);
        assert_eq!(a, b);
        assert_eq!(a.injected(), 8);
        let c = LseModel::seeded(43, 1 << 30, 8, 1_000_000);
        assert_ne!(a, c, "different seeds must draw different sites");
    }

    #[test]
    fn sites_land_in_span_and_horizon() {
        let m = LseModel::seeded(7, 4096, 32, 500);
        for s in m.sites() {
            assert!(s.offset < 4096);
            assert!(s.onset <= 500);
        }
    }

    #[test]
    fn scrub_respects_onset_and_extent() {
        let mut m = LseModel::seeded(1, 1 << 20, 16, 1_000);
        // A scrub before every onset sees nothing.
        assert_eq!(
            m.scrub(0, 0, 1 << 20),
            m.sites().iter().filter(|s| s.onset == 0).count()
        );
        // After the horizon the full sweep finds everything remaining.
        let rest = m.scrub(1_001, 0, 1 << 20);
        assert_eq!(m.detected(), 16);
        assert!(rest <= 16);
        // Out-of-extent scrubs find nothing more.
        assert_eq!(m.scrub(2_000, 1 << 20, 1 << 20), 0);
    }

    #[test]
    fn clear_repairs_only_detected_sites() {
        let mut m = LseModel::seeded(9, 1 << 16, 4, 0);
        assert_eq!(m.clear(0, 1 << 16), 0, "nothing detected yet");
        assert_eq!(m.scrub(0, 0, 1 << 16), 4);
        assert_eq!(m.clear(0, 1 << 16), 4);
        assert_eq!(m.repaired(), 4);
        assert_eq!(m.latent(u64::MAX), 0);
        // Repaired sites never re-detect.
        assert_eq!(m.scrub(u64::MAX, 0, 1 << 16), 0);
    }

    #[test]
    fn latent_counts_unrepaired_onset_sites() {
        let mut m = LseModel::seeded(3, 1 << 16, 6, 0);
        assert_eq!(m.latent(0), 6);
        m.scrub(0, 0, 1 << 16);
        assert_eq!(m.latent(0), 6, "detection alone does not repair");
        m.clear(0, 1 << 16);
        assert_eq!(m.latent(0), 0);
    }

    #[test]
    fn overlaps_latent_tracks_extents() {
        let mut m = LseModel::seeded(5, 1 << 16, 3, 0);
        let first = m.sites()[0].offset;
        assert!(m.overlaps_latent(0, first, 1));
        m.scrub(0, first, 1);
        m.clear(first, 1);
        assert!(!m.overlaps_latent(0, first, 1));
    }
}
