//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! Provides only what this workspace uses: [`Rng::random`],
//! [`Rng::random_range`], [`SeedableRng::seed_from_u64`], and
//! [`rngs::StdRng`]. The generator is xoshiro256++ seeded via SplitMix64 —
//! deterministic, fast, and statistically solid for simulation workloads
//! (it is not the upstream StdRng stream, so seeds produce different but
//! equally valid sequences).

#![forbid(unsafe_code)]

/// Types that can be sampled uniformly from the full generator output.
pub trait Standard: Sized {
    /// Draws one value from `next` (a 64-bit generator step).
    fn sample_standard(next: &mut dyn FnMut() -> u64) -> Self;
}

impl Standard for f64 {
    fn sample_standard(next: &mut dyn FnMut() -> u64) -> f64 {
        // 53 high bits -> uniform in [0, 1).
        (next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard(next: &mut dyn FnMut() -> u64) -> f32 {
        (next() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard(next: &mut dyn FnMut() -> u64) -> $t {
                next() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard(next: &mut dyn FnMut() -> u64) -> bool {
        next() & 1 == 1
    }
}

/// Types with uniform sampling over a half-open `start..end` range.
pub trait SampleUniform: Sized {
    /// Draws one value in `[start, end)`.
    fn sample_range(start: Self, end: Self, next: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(start: $t, end: $t, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(start < end, "empty range in random_range");
                let span = (end as u128).wrapping_sub(start as u128) as u128;
                // Modulo bias is < 2^-64 * span: negligible for simulation.
                let v = (next() as u128) % span;
                start.wrapping_add(v as $t)
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample_range(start: f64, end: f64, next: &mut dyn FnMut() -> u64) -> f64 {
        let u = f64::sample_standard(next);
        start + u * (end - start)
    }
}

/// The subset of `rand::Rng` this workspace calls.
pub trait Rng {
    /// One 64-bit generator step.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample of `T` over its standard distribution.
    fn random<T: Standard>(&mut self) -> T {
        let mut step = || self.next_u64();
        T::sample_standard(&mut step)
    }

    /// Uniform sample in `[range.start, range.end)`.
    fn random_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        let mut step = || self.next_u64();
        T::sample_range(range.start, range.end, &mut step)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (the `seed_from_u64` entry point only).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (offline `StdRng` stand-in).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v: f64 = r.random();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(5);
        let mut seen_low = false;
        for _ in 0..10_000 {
            let v = r.random_range(10u64..20);
            assert!((10..20).contains(&v));
            seen_low |= v == 10;
        }
        assert!(seen_low, "lower bound never sampled");
    }

    #[test]
    fn roughly_uniform() {
        let mut r = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.random_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "{counts:?}");
        }
    }
}
