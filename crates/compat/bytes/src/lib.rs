//! Offline stand-in for the `bytes` crate: an `Arc<[u8]>`-backed immutable
//! buffer with O(1) `clone`/`slice`, and a growable `BytesMut` that freezes
//! into it.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// Cheaply cloneable immutable byte buffer (a view into shared storage).
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::from(Vec::new())
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(src: &[u8]) -> Bytes {
        Bytes::from(src.to_vec())
    }

    /// O(1) sub-view of `range`.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let start = match range.start_bound() {
            std::ops::Bound::Included(&s) => s,
            std::ops::Bound::Excluded(&s) => s + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            std::ops::Bound::Included(&e) => e + 1,
            std::ops::Bound::Excluded(&e) => e,
            std::ops::Bound::Unbounded => len,
        };
        assert!(start <= end && end <= len, "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + start,
            end: self.start + end,
        }
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({:?})", &self[..])
    }
}

/// Growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.0)
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> BytesMut {
        BytesMut(src.to_vec())
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_storage() {
        let b = Bytes::copy_from_slice(&[1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let ss = s.slice(1..2);
        assert_eq!(&ss[..], &[3]);
        assert_eq!(b.len(), 5);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        let b = Bytes::copy_from_slice(&[1]);
        let _ = b.slice(0..2);
    }

    #[test]
    fn freeze_roundtrip() {
        let mut m = BytesMut::with_capacity(4);
        m.extend_from_slice(&[9, 8]);
        m[0] = 7;
        let b = m.freeze();
        assert_eq!(&b[..], &[7, 8]);
    }

    #[test]
    fn equality_ignores_view_offsets() {
        let a = Bytes::copy_from_slice(&[1, 2, 3]).slice(1..3);
        let b = Bytes::copy_from_slice(&[2, 3]);
        assert_eq!(a, b);
    }
}
