//! Offline stand-in for `parking_lot`: poison-free wrappers over
//! `std::sync` primitives with the `parking_lot` calling convention
//! (`lock()`/`read()`/`write()` return guards directly, `Condvar::wait*`
//! take `&mut MutexGuard`).

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// A mutex whose `lock` returns the guard directly (panics propagate
/// instead of poisoning).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|p| p.into_inner())))
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard taken")
    }
}

/// A reader-writer lock with direct-guard `read`/`write`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|p| p.into_inner())
    }
}

/// Condition variable operating on [`MutexGuard`] in place.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

/// Result of a timed wait.
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    /// Creates a new condition variable.
    pub fn new() -> Condvar {
        Condvar(std::sync::Condvar::new())
    }

    /// Blocks until notified, re-acquiring the lock in place.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard taken");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(|p| p.into_inner()));
    }

    /// Blocks until notified or the timeout elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard taken");
        let (inner, result) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|p| p.into_inner());
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }

    #[test]
    fn condvar_notifies_across_threads() {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let other = Arc::clone(&shared);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*other;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*shared;
        let mut g = m.lock();
        while !*g {
            cv.wait_for(&mut g, Duration::from_millis(1));
        }
        t.join().unwrap();
        assert!(*g);
    }
}
