//! Offline stand-in for `proptest`: a random-input property runner covering
//! the macro/strategy subset this workspace uses.
//!
//! Differences from upstream: only **basic shrinking** (integers halve
//! toward their range minimum, one component at a time; see
//! [`Strategy::shrink`]), no persistence, and a fixed deterministic seed
//! per test function (cases still vary across the run counter, so each of
//! the `cases` iterations sees fresh inputs). A failing case is re-run on
//! progressively smaller inputs while it keeps failing; the final panic
//! reports the minimal failing input found.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration (`cases` is the only knob honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// The generator handed to strategies (deterministic xoshiro stream).
pub type TestRng = StdRng;

/// Builds the per-test RNG. Used by the [`proptest!`] expansion.
pub fn test_rng(test_name: &str) -> TestRng {
    // Stable per-test seed: same inputs every run, distinct across tests.
    let mut h = 0xcbf29ce484222325u64;
    for b in test_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h)
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Proposes a strictly simpler value than `value`, or `None` when the
    /// value is already minimal (or the strategy cannot shrink). Integer
    /// strategies halve toward their minimum; tuples shrink the first
    /// component that still can.
    fn shrink(&self, value: &Self::Value) -> Option<Self::Value> {
        let _ = value;
        None
    }

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
    fn shrink(&self, value: &S::Value) -> Option<S::Value> {
        (**self).shrink(value)
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
    fn shrink(&self, value: &T) -> Option<T> {
        self.0.shrink(value)
    }
}

/// Strategy mapping combinator (see [`Strategy::prop_map`]).
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniformly picks one of the inner strategies per case.
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.random_range(0..self.0.len());
        self.0[idx].generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;

    /// Proposes a strictly simpler value (integers halve toward zero).
    fn shrink_value(&self) -> Option<Self> {
        None
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
            fn shrink_value(&self) -> Option<$t> {
                // Halve toward zero (also from the negative side).
                if *self == 0 {
                    None
                } else {
                    Some(*self / 2)
                }
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
    fn shrink_value(&self) -> Option<bool> {
        self.then_some(false)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.random()
    }
}

/// Strategy over all values of `T`.
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
    fn shrink(&self, value: &T) -> Option<T> {
        value.shrink_value()
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Option<$t> {
                // Halve the distance to the range minimum.
                if *value <= self.start {
                    None
                } else {
                    Some(self.start + (*value - self.start) / 2)
                }
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize);

// Float ranges generate but do not shrink (halving need not terminate).
impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+)
        where
            $($name::Value: Clone,)+
        {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Option<Self::Value> {
                // Shrink the first component that still can.
                $(
                    if let Some(smaller) = self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = smaller;
                        return Some(next);
                    }
                )+
                None
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Length specification for [`vec()`]: a fixed size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                start: n,
                end: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            SizeRange {
                start: r.start,
                end: r.end,
            }
        }
    }

    /// Strategy yielding vectors of `element` values.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vector of values drawn from `element`, with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.start + 1 >= self.size.end {
                self.size.start
            } else {
                rng.random_range(self.size.start..self.size.end)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
        fn shrink(&self, value: &Vec<S::Value>) -> Option<Vec<S::Value>> {
            // Halve the length toward the minimum, then shrink elements.
            if value.len() > self.size.start {
                let keep = self.size.start + (value.len() - self.size.start) / 2;
                return Some(value[..keep].to_vec());
            }
            for (i, v) in value.iter().enumerate() {
                if let Some(smaller) = self.element.shrink(v) {
                    let mut next = value.clone();
                    next[i] = smaller;
                    return Some(next);
                }
            }
            None
        }
    }
}

/// Extracts a human-readable message from a caught panic payload.
fn payload_msg(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "<non-string panic payload>"
    }
}

/// The engine behind [`proptest!`]: runs `cases` random executions of
/// `body`; on failure, greedily shrinks the input (re-running the body)
/// while it keeps failing, then panics reporting the minimal failing
/// input. Not part of the public proptest API surface.
#[doc(hidden)]
pub fn run_property<S, F>(cases: u32, rng: &mut TestRng, strat: &S, mut body: F)
where
    S: Strategy,
    S::Value: Clone + std::fmt::Debug,
    F: FnMut(S::Value),
{
    let mut run_one = |v: S::Value| -> Result<(), Box<dyn std::any::Any + Send>> {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(v)))
    };
    for _case in 0..cases {
        let generated = strat.generate(rng);
        let Err(first_payload) = run_one(generated.clone()) else {
            continue;
        };
        // Shrink: accept each simpler candidate that still fails; stop at
        // the first candidate that passes or when nothing shrinks further.
        // The default panic hook would print a dump per shrink step, so it
        // is silenced for the duration (like upstream proptest; racy only
        // against another test failing in the same instant, in which case
        // both still fail with their own reports).
        let saved_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let mut minimal = generated;
        let mut payload = first_payload;
        while let Some(smaller) = strat.shrink(&minimal) {
            match run_one(smaller.clone()) {
                Err(p) => {
                    minimal = smaller;
                    payload = p;
                }
                Ok(()) => break,
            }
        }
        std::panic::set_hook(saved_hook);
        panic!(
            "property failed: {}; minimal failing input: {:?}",
            payload_msg(payload.as_ref()),
            minimal
        );
    }
}

/// The glob-import surface tests pull in.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Runs each property as `cases` random executions, with basic shrinking
/// on failure (see [`Strategy::shrink`]).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg); $($rest)*);
    };
    (@run ($cfg:expr); $(
        $(#[$attr:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            // All argument strategies become one tuple strategy so the
            // runner can re-generate and shrink the case as a unit. A
            // `prop_assume!` miss skips the case via an early return.
            let strat = ($(($strat),)+);
            $crate::run_property(cfg.cases, &mut rng, &strat, |($($arg,)+)| $body);
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// `assert!` under the property runner.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under the property runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Skips the current case when the assumption fails (early return from the
/// case body — the runner treats the case as passed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Uniformly picks one of several strategies (all must yield one type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(a in 3u32..9, b in 0.25f64..0.5) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((0.25..0.5).contains(&b));
        }

        #[test]
        fn vec_sizes_respected(v in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
        }

        #[test]
        fn fixed_vec_size(v in crate::collection::vec(any::<u64>(), 7usize)) {
            prop_assert_eq!(v.len(), 7);
        }

        #[test]
        fn oneof_and_just(x in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(x == 1 || x == 2);
        }

        #[test]
        fn map_and_tuples((a, b) in (0u8..4, 0u8..4).prop_map(|(a, b)| (a * 2, b))) {
            prop_assert!(a % 2 == 0);
            prop_assert!(b < 4);
        }

        #[test]
        fn assume_skips(n in 0u8..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    fn integer_ranges_halve_toward_minimum() {
        let s = 10u32..100;
        assert_eq!(s.shrink(&90), Some(50)); // 10 + 80/2
        assert_eq!(s.shrink(&11), Some(10));
        assert_eq!(s.shrink(&10), None);
        let a = any::<i32>();
        assert_eq!(a.shrink(&-8), Some(-4));
        assert_eq!(a.shrink(&7), Some(3));
        assert_eq!(a.shrink(&0), None);
    }

    #[test]
    fn shrink_chains_terminate() {
        let s = 3u64..1_000_000;
        let mut v = 999_999u64;
        let mut steps = 0;
        while let Some(next) = s.shrink(&v) {
            assert!(next < v, "shrink must make progress");
            v = next;
            steps += 1;
            assert!(steps < 100, "halving must terminate quickly");
        }
        assert_eq!(v, s.start);
    }

    #[test]
    fn tuples_shrink_one_component_at_a_time() {
        let s = (0u8..10, 0u8..10);
        assert_eq!(s.shrink(&(8, 6)), Some((4, 6)));
        assert_eq!(s.shrink(&(0, 6)), Some((0, 3)));
        assert_eq!(s.shrink(&(0, 0)), None);
    }

    #[test]
    fn vecs_shrink_length_then_elements() {
        let s = crate::collection::vec(0u8..10, 1..5);
        assert_eq!(s.shrink(&vec![7, 7, 7]), Some(vec![7, 7]));
        assert_eq!(s.shrink(&vec![6]), Some(vec![3]));
        assert_eq!(s.shrink(&vec![0]), None);
    }

    // The meta-test: a failing property must be reported with its shrunken
    // (minimal) input. Any generated n >= 1 fails and halves down to 1.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        #[should_panic(expected = "minimal failing input: (1,)")]
        fn failing_property_reports_minimal_case(n in 0u32..100_000) {
            prop_assume!(n > 0); // 0 is legitimately skipped
            prop_assert!(n == 0, "nonzero input {n}");
        }
    }
}
