//! Offline stand-in for `proptest`: a random-input property runner covering
//! the macro/strategy subset this workspace uses.
//!
//! Differences from upstream: **no shrinking** (failures report the raw
//! generated case via the panic message), no persistence, and a fixed
//! deterministic seed per test function (cases still vary across the run
//! counter, so each of the `cases` iterations sees fresh inputs).

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration (`cases` is the only knob honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// The generator handed to strategies (deterministic xoshiro stream).
pub type TestRng = StdRng;

/// Builds the per-test RNG. Used by the [`proptest!`] expansion.
pub fn test_rng(test_name: &str) -> TestRng {
    // Stable per-test seed: same inputs every run, distinct across tests.
    let mut h = 0xcbf29ce484222325u64;
    for b in test_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h)
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Strategy mapping combinator (see [`Strategy::prop_map`]).
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniformly picks one of the inner strategies per case.
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.random_range(0..self.0.len());
        self.0[idx].generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.random()
    }
}

/// Strategy over all values of `T`.
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Length specification for [`vec()`]: a fixed size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                start: n,
                end: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            SizeRange {
                start: r.start,
                end: r.end,
            }
        }
    }

    /// Strategy yielding vectors of `element` values.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vector of values drawn from `element`, with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.start + 1 >= self.size.end {
                self.size.start
            } else {
                rng.random_range(self.size.start..self.size.end)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The glob-import surface tests pull in.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Runs each property as `cases` random executions (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg); $($rest)*);
    };
    (@run ($cfg:expr); $(
        $(#[$attr:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..cfg.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                // A `prop_assume!` miss skips the case via `continue`.
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// `assert!` under the property runner.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under the property runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Skips the current case when the assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

/// Uniformly picks one of several strategies (all must yield one type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(a in 3u32..9, b in 0.25f64..0.5) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((0.25..0.5).contains(&b));
        }

        #[test]
        fn vec_sizes_respected(v in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
        }

        #[test]
        fn fixed_vec_size(v in crate::collection::vec(any::<u64>(), 7usize)) {
            prop_assert_eq!(v.len(), 7);
        }

        #[test]
        fn oneof_and_just(x in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(x == 1 || x == 2);
        }

        #[test]
        fn map_and_tuples((a, b) in (0u8..4, 0u8..4).prop_map(|(a, b)| (a * 2, b))) {
            prop_assert!(a % 2 == 0);
            prop_assert!(b < 4);
        }

        #[test]
        fn assume_skips(n in 0u8..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }
}
