//! Offline stand-in for `criterion`: runs benchmark closures under a plain
//! wall-clock harness and prints mean/min per iteration (plus throughput
//! when declared). No statistics engine, no HTML reports, no comparisons —
//! just enough to keep `cargo bench` targets runnable and their numbers
//! readable.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Prevents the optimiser from discarding a value (best-effort, stable-Rust
/// implementation using a volatile-style read through `std::hint`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared throughput of a benchmark, for per-byte/per-element rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `function_id/parameter`.
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Criterion {
        self.measurement_time = t;
        self
    }

    /// Warm-up budget per benchmark.
    pub fn warm_up_time(mut self, t: Duration) -> Criterion {
        self.warm_up_time = t;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            harness: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Criterion {
        run_bench(self, None, id, None, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    harness: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the declared throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a named benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_bench(self.harness, Some(&self.name), id, self.throughput, f);
        self
    }

    /// Runs a parameterised benchmark (the input is passed to the closure).
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(
            self.harness,
            Some(&self.name),
            &id.id,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (formatting separator only).
    pub fn finish(self) {
        println!();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    harness: &Criterion,
    group: Option<&str>,
    id: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let label = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };

    // Warm-up with single iterations to estimate cost.
    let warm_start = Instant::now();
    let mut probe_iters = 0u64;
    while warm_start.elapsed() < harness.warm_up_time || probe_iters == 0 {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        probe_iters += 1;
    }
    let per_iter = warm_start.elapsed() / probe_iters as u32;

    // Size each sample so all samples fit the measurement budget.
    let budget = harness.measurement_time / harness.sample_size as u32;
    let iters = (budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

    let mut total = Duration::ZERO;
    let mut best = Duration::MAX;
    for _ in 0..harness.sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per = b.elapsed / iters as u32;
        total += b.elapsed;
        best = best.min(per);
    }
    let mean = total / (harness.sample_size as u64 * iters) as u32;
    let rate = throughput.map(|t| match t {
        Throughput::Bytes(n) => format!(
            "  {:>10.1} MiB/s",
            n as f64 / mean.as_secs_f64() / (1u64 << 20) as f64
        ),
        Throughput::Elements(n) => {
            format!("  {:>10.0} elem/s", n as f64 / mean.as_secs_f64())
        }
    });
    println!(
        "{label:<40} mean {:>12?}  min {:>12?}{}",
        mean,
        best,
        rate.unwrap_or_default()
    );
}

/// Builds the registered-group function list (mirrors criterion's macro).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            $(
                {
                    let mut c: $crate::Criterion = $cfg;
                    $target(&mut c);
                }
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(1))
    }

    #[test]
    fn bench_function_runs() {
        let mut c = quick();
        let mut hits = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                hits += 1;
                hits
            })
        });
        assert!(hits > 0);
    }

    #[test]
    fn group_with_throughput_runs() {
        let mut c = quick();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Bytes(4096));
        g.bench_with_input(BenchmarkId::new("param", 7), &7, |b, &p| b.iter(|| p * 2));
        g.finish();
    }
}
