//! Property tests: the workload generator must produce valid streams for
//! *arbitrary* (valid) parameterisations, not just the calibrated presets.

use proptest::prelude::*;
use traces::workload::SLOT;
use traces::{ArrivalModel, OpKind, WorkloadGen, WorkloadParams};

fn arb_params() -> impl Strategy<Value = WorkloadParams> {
    (
        1u64..64,     // volume MiB
        0.1f64..0.9,  // prefilled fraction
        0.0f64..0.9,  // update fraction
        0.0f64..0.5,  // hot fraction (floor applied below)
        0.0f64..1.0,  // hot access fraction
        0.0f64..0.5,  // seq run probability
        0.0f64..0.95, // zipf theta
        0u8..3,       // size mixture selector
    )
        .prop_map(|(vol_mib, prefill, upd, hot, hot_acc, seq, theta, sizes)| {
            let size_dist = match sizes {
                0 => vec![(4096u32, 1.0f64)],
                1 => vec![(4096, 0.5), (16 << 10, 0.5)],
                _ => vec![(4096, 0.3), (8 << 10, 0.3), (64 << 10, 0.4)],
            };
            WorkloadParams {
                name: "prop".into(),
                volume_bytes: vol_mib << 20,
                prefilled_fraction: prefill,
                update_fraction: upd.min(0.9),
                read_fraction: (1.0 - upd.min(0.9)).min(0.1),
                size_dist,
                zipf_theta: theta,
                hot_fraction: hot.max(0.01),
                hot_access_fraction: hot_acc,
                seq_run_prob: seq,
                arrival: ArrivalModel::ClosedLoop,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_ops_always_valid(params in arb_params(), seed in any::<u64>()) {
        prop_assume!(params.validate().is_ok());
        let vol = params.volume_bytes;
        let mut gen = WorkloadGen::new(params, seed);
        let ops = gen.take_ops(2000);
        let frontier = gen.written_bytes();
        for op in &ops {
            prop_assert!(op.len > 0);
            prop_assert_eq!(op.offset % SLOT, 0, "offset unaligned");
            prop_assert!(op.end() <= vol, "op beyond volume");
            if matches!(op.kind, OpKind::Update | OpKind::Read) {
                prop_assert!(op.end() <= frontier, "update/read beyond frontier");
            }
        }
    }

    #[test]
    fn determinism_holds_for_any_params(params in arb_params(), seed in any::<u64>()) {
        prop_assume!(params.validate().is_ok());
        let mut a = WorkloadGen::new(params.clone(), seed);
        let mut b = WorkloadGen::new(params, seed);
        prop_assert_eq!(a.take_ops(500), b.take_ops(500));
    }

    #[test]
    fn update_ratio_tracks_parameter(
        upd in 0.2f64..0.8,
        seed in any::<u64>(),
    ) {
        // Volume large enough that fresh writes never exhaust it (the
        // generator's documented fallback converts writes to updates once
        // the volume fills, which would inflate the measured ratio).
        let mut params = WorkloadParams::ali_cloud(1 << 30);
        params.update_fraction = upd;
        params.read_fraction = (1.0 - upd) / 2.0;
        params.seq_run_prob = 0.0; // runs would correlate kinds
        let mut gen = WorkloadGen::new(params, seed);
        let ops = gen.take_ops(4000);
        let updates = ops.iter().filter(|o| o.kind == OpKind::Update).count();
        let measured = updates as f64 / ops.len() as f64;
        prop_assert!(
            (measured - upd).abs() < 0.05,
            "requested {upd:.2}, measured {measured:.2}"
        );
    }
}
