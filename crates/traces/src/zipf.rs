//! Zipf-distributed sampling over `0..n`, used for slot popularity.
//!
//! Implements the classic Gray et al. incremental method ("Quickly
//! generating billion-record synthetic databases", SIGMOD '94): after an
//! O(n) one-time harmonic precomputation, each sample is O(1).

use rand::Rng;

/// A Zipf(θ) sampler over `0..n`.
///
/// θ = 0 degenerates to uniform; θ → 1 concentrates mass on few slots.
/// Item `i` has probability proportional to `1 / (i+1)^θ`.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipf {
    /// Builds a sampler over `0..n` with skew `theta` in `[0, 1)`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta` is outside `[0, 1)`.
    pub fn new(n: u64, theta: f64) -> Zipf {
        assert!(n > 0, "zipf over empty domain");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0, 1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipf {
            n,
            theta,
            alpha,
            zetan,
            eta,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct sum for small n; Euler-Maclaurin style approximation for
        // large n keeps construction cheap at trace scales.
        if n <= 10_000_000 {
            (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
        } else {
            let head: f64 = (1..=10_000u64).map(|i| 1.0 / (i as f64).powf(theta)).sum();
            let tail = ((n as f64).powf(1.0 - theta) - 10_000f64.powf(1.0 - theta)) / (1.0 - theta);
            head + tail
        }
    }

    /// Domain size.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draws one sample in `0..n` (0 is the most popular item).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.random();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1.min(self.n - 1);
        }
        let v = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        v.min(self.n - 1)
    }
}

/// How many head ranks an [`AliasZipf`] resolves exactly; everything past
/// the head is one aggregated tail outcome. 1024 ranks cover >99 % of the
/// probability mass for every θ the workloads use, so the table costs a few
/// KiB regardless of the domain size.
pub const ALIAS_HEAD_RANKS: u64 = 1024;

/// A Zipf(θ) sampler over `0..n` whose **setup cost is O(min(n, 1024))**
/// instead of O(n) — built for million-entity domains (client populations)
/// where [`Zipf`]'s harmonic precomputation would dominate.
///
/// The most popular `min(n, 1024)` ranks get exact probabilities resolved
/// through a Vose alias table (O(1) per draw); the remaining tail is a
/// single alias outcome whose rank is drawn from the continuous power-law
/// inverse CDF. The tail mass uses the integral approximation
/// `∫ x^(-θ) dx = (n^(1-θ) - head^(1-θ)) / (1-θ)`, exact for θ = 0 and
/// within the discretisation error of the harmonic sum otherwise, so the
/// draw distribution matches [`Zipf`] within statistical tolerance (see
/// `alias_matches_exact_zipf`).
#[derive(Debug, Clone)]
pub struct AliasZipf {
    n: u64,
    theta: f64,
    /// Ranks `0..head` are exact alias-table outcomes; outcome `head`
    /// (present only when `n > head`) is the aggregated tail.
    head: u64,
    /// Vose acceptance thresholds, one per outcome.
    prob: Vec<f64>,
    /// Vose alias targets, one per outcome.
    alias: Vec<u32>,
    /// `head^(1-θ)` — lower bound of the tail inverse CDF.
    tail_lo: f64,
    /// `n^(1-θ)` — upper bound of the tail inverse CDF.
    tail_hi: f64,
    /// `1 / (1-θ)`.
    inv_one_minus_theta: f64,
}

impl AliasZipf {
    /// Builds a sampler over `0..n` with skew `theta` in `[0, 1)`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta` is outside `[0, 1)`.
    pub fn new(n: u64, theta: f64) -> AliasZipf {
        assert!(n > 0, "zipf over empty domain");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0, 1)");
        let head = n.min(ALIAS_HEAD_RANKS);
        let mut weights: Vec<f64> = (0..head)
            .map(|i| 1.0 / ((i + 1) as f64).powf(theta))
            .collect();
        let tail_lo = (head as f64).powf(1.0 - theta);
        let tail_hi = (n as f64).powf(1.0 - theta);
        if n > head {
            weights.push((tail_hi - tail_lo) / (1.0 - theta));
        }

        // Vose's alias method: O(outcomes) construction, one comparison per
        // draw. `prob[i]` is the chance column i resolves to outcome i
        // rather than to `alias[i]`.
        let k = weights.len();
        let total: f64 = weights.iter().sum();
        let mut scaled: Vec<f64> = weights.iter().map(|w| w * k as f64 / total).collect();
        let mut prob = vec![0.0f64; k];
        let mut alias = vec![0u32; k];
        let mut small: Vec<usize> = (0..k).filter(|&i| scaled[i] < 1.0).collect();
        let mut large: Vec<usize> = (0..k).filter(|&i| scaled[i] >= 1.0).collect();
        while !small.is_empty() && !large.is_empty() {
            let s = small.pop().expect("checked non-empty");
            let l = *large.last().expect("checked non-empty");
            prob[s] = scaled[s];
            alias[s] = l as u32;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Leftovers are exactly 1 up to float error: they keep themselves.
        for i in small.into_iter().chain(large) {
            prob[i] = 1.0;
            alias[i] = i as u32;
        }

        AliasZipf {
            n,
            theta,
            head,
            prob,
            alias,
            tail_lo,
            tail_hi,
            inv_one_minus_theta: 1.0 / (1.0 - theta),
        }
    }

    /// Domain size.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Heap bytes held by the alias table (for state accounting).
    pub fn table_bytes(&self) -> u64 {
        (self.prob.capacity() * size_of::<f64>() + self.alias.capacity() * size_of::<u32>()) as u64
    }

    /// Draws one sample in `0..n` (0 is the most popular item).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let k = self.prob.len();
        let scaled = rng.random::<f64>() * k as f64;
        let idx = (scaled as usize).min(k - 1);
        let frac = scaled - idx as f64;
        let outcome = if frac < self.prob[idx] {
            idx as u64
        } else {
            self.alias[idx] as u64
        };
        if outcome < self.head {
            return outcome;
        }
        // Tail outcome: rank from the continuous inverse CDF over [head, n).
        let u: f64 = rng.random();
        let x = (self.tail_lo + u * (self.tail_hi - self.tail_lo)).powf(self.inv_one_minus_theta);
        (x as u64).clamp(self.head, self.n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_domain() {
        let z = Zipf::new(1000, 0.9);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 1000);
        }
    }

    #[test]
    fn theta_zero_is_roughly_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            assert!((6_000..14_000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn high_theta_concentrates_mass() {
        let z = Zipf::new(100_000, 0.99);
        let mut rng = StdRng::seed_from_u64(42);
        let mut top100 = 0u32;
        const N: u32 = 100_000;
        for _ in 0..N {
            if z.sample(&mut rng) < 100 {
                top100 += 1;
            }
        }
        // With theta ~1 over 1e5 items, the top 0.1% of items should draw
        // a large share of accesses.
        assert!(
            top100 > N / 3,
            "top-100 items drew only {top100}/{N} accesses"
        );
    }

    #[test]
    fn skew_orders_by_theta() {
        let mut rng = StdRng::seed_from_u64(9);
        let frac_top = |theta: f64, rng: &mut StdRng| {
            let z = Zipf::new(10_000, theta);
            let mut hit = 0;
            for _ in 0..20_000 {
                if z.sample(rng) < 100 {
                    hit += 1;
                }
            }
            hit
        };
        let low = frac_top(0.2, &mut rng);
        let high = frac_top(0.95, &mut rng);
        assert!(high > low * 2, "low {low}, high {high}");
    }

    #[test]
    #[should_panic(expected = "empty domain")]
    fn zero_domain_rejected() {
        let _ = Zipf::new(0, 0.5);
    }

    /// Empirical rank shares from `draws` samples, bucketed as
    /// (top-1, top-100, top-head, beyond-head).
    fn shares<F: FnMut(&mut StdRng) -> u64>(mut sample: F, seed: u64) -> [f64; 4] {
        let mut rng = StdRng::seed_from_u64(seed);
        const DRAWS: u32 = 200_000;
        let mut counts = [0u32; 4];
        for _ in 0..DRAWS {
            let r = sample(&mut rng);
            if r == 0 {
                counts[0] += 1;
            }
            if r < 100 {
                counts[1] += 1;
            }
            if r < ALIAS_HEAD_RANKS {
                counts[2] += 1;
            } else {
                counts[3] += 1;
            }
        }
        counts.map(|c| c as f64 / DRAWS as f64)
    }

    #[test]
    fn alias_samples_stay_in_domain() {
        for n in [1u64, 2, 1000, 2_000_000] {
            let z = AliasZipf::new(n, 0.9);
            let mut rng = StdRng::seed_from_u64(7);
            for _ in 0..10_000 {
                assert!(z.sample(&mut rng) < n);
            }
        }
    }

    #[test]
    fn alias_matches_exact_zipf() {
        // The whole point of the alias sampler: at any domain size its draw
        // distribution matches the O(n)-setup Gray et al. sampler within
        // statistical tolerance, for both a pure-head domain (n <= 1024,
        // alias table only) and a large domain exercising the tail path.
        for (n, theta) in [
            (16u64, 0.9),
            (500u64, 0.5),
            (100_000u64, 0.9),
            (100_000u64, 0.0),
        ] {
            let exact = Zipf::new(n, theta);
            let alias = AliasZipf::new(n, theta);
            let se = shares(|rng| exact.sample(rng), 11);
            let sa = shares(|rng| alias.sample(rng), 13);
            for (i, (e, a)) in se.iter().zip(&sa).enumerate() {
                assert!(
                    (e - a).abs() < 0.05,
                    "n={n} theta={theta} share bucket {i}: exact {e:.3} vs alias {a:.3}"
                );
            }
        }
    }

    #[test]
    fn alias_million_domain_is_cheap_and_skewed() {
        // Setup at n = 1M must cost only the head table...
        let z = AliasZipf::new(1_000_000, 0.9);
        assert_eq!(z.n(), 1_000_000);
        assert!(z.theta() == 0.9);
        assert!(
            z.table_bytes() < 64 << 10,
            "table {} bytes",
            z.table_bytes()
        );
        // ...while still concentrating mass like a Zipf should: at θ = 0.9
        // over 1M ranks the top 1024 (0.1 % of the domain) hold ~35 % of
        // the mass and rank 0 alone ~3 %.
        let s = shares(|rng| z.sample(rng), 5);
        assert!(s[0] > 0.02, "rank-0 share {:.4}", s[0]);
        assert!(s[2] > 0.3, "head share {:.4}", s[2]);
        assert!(s[3] > 0.01, "tail must still be reachable: {:.4}", s[3]);
    }

    #[test]
    fn alias_theta_zero_is_roughly_uniform() {
        let z = AliasZipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            assert!((6_000..14_000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "empty domain")]
    fn alias_zero_domain_rejected() {
        let _ = AliasZipf::new(0, 0.5);
    }

    #[test]
    #[should_panic(expected = "theta must be")]
    fn alias_theta_one_rejected() {
        let _ = AliasZipf::new(10, 1.0);
    }

    #[test]
    #[should_panic(expected = "theta must be")]
    fn theta_one_rejected() {
        let _ = Zipf::new(10, 1.0);
    }
}
