//! Zipf-distributed sampling over `0..n`, used for slot popularity.
//!
//! Implements the classic Gray et al. incremental method ("Quickly
//! generating billion-record synthetic databases", SIGMOD '94): after an
//! O(n) one-time harmonic precomputation, each sample is O(1).

use rand::Rng;

/// A Zipf(θ) sampler over `0..n`.
///
/// θ = 0 degenerates to uniform; θ → 1 concentrates mass on few slots.
/// Item `i` has probability proportional to `1 / (i+1)^θ`.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipf {
    /// Builds a sampler over `0..n` with skew `theta` in `[0, 1)`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta` is outside `[0, 1)`.
    pub fn new(n: u64, theta: f64) -> Zipf {
        assert!(n > 0, "zipf over empty domain");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0, 1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipf {
            n,
            theta,
            alpha,
            zetan,
            eta,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct sum for small n; Euler-Maclaurin style approximation for
        // large n keeps construction cheap at trace scales.
        if n <= 10_000_000 {
            (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
        } else {
            let head: f64 = (1..=10_000u64).map(|i| 1.0 / (i as f64).powf(theta)).sum();
            let tail = ((n as f64).powf(1.0 - theta) - 10_000f64.powf(1.0 - theta)) / (1.0 - theta);
            head + tail
        }
    }

    /// Domain size.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draws one sample in `0..n` (0 is the most popular item).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.random();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1.min(self.n - 1);
        }
        let v = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        v.min(self.n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_domain() {
        let z = Zipf::new(1000, 0.9);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 1000);
        }
    }

    #[test]
    fn theta_zero_is_roughly_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            assert!((6_000..14_000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn high_theta_concentrates_mass() {
        let z = Zipf::new(100_000, 0.99);
        let mut rng = StdRng::seed_from_u64(42);
        let mut top100 = 0u32;
        const N: u32 = 100_000;
        for _ in 0..N {
            if z.sample(&mut rng) < 100 {
                top100 += 1;
            }
        }
        // With theta ~1 over 1e5 items, the top 0.1% of items should draw
        // a large share of accesses.
        assert!(
            top100 > N / 3,
            "top-100 items drew only {top100}/{N} accesses"
        );
    }

    #[test]
    fn skew_orders_by_theta() {
        let mut rng = StdRng::seed_from_u64(9);
        let frac_top = |theta: f64, rng: &mut StdRng| {
            let z = Zipf::new(10_000, theta);
            let mut hit = 0;
            for _ in 0..20_000 {
                if z.sample(rng) < 100 {
                    hit += 1;
                }
            }
            hit
        };
        let low = frac_top(0.2, &mut rng);
        let high = frac_top(0.95, &mut rng);
        assert!(high > low * 2, "low {low}, high {high}");
    }

    #[test]
    #[should_panic(expected = "empty domain")]
    fn zero_domain_rejected() {
        let _ = Zipf::new(0, 0.5);
    }

    #[test]
    #[should_panic(expected = "theta must be")]
    fn theta_one_rejected() {
        let _ = Zipf::new(10, 1.0);
    }
}
