//! Trace statistics: the validator that keeps synthetic workloads honest
//! against the published numbers of §2.1 of the paper.

use crate::{OpKind, TraceOp};

/// Summary statistics over a trace slice.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Total operations.
    pub total: usize,
    /// Update (overwrite) operations.
    pub updates: usize,
    /// Fresh writes.
    pub writes: usize,
    /// Reads.
    pub reads: usize,
    /// Total bytes written (writes + updates).
    pub write_bytes: u64,
    /// Distinct 4 KiB slots touched by updates.
    pub update_footprint_slots: usize,
}

impl TraceStats {
    /// Computes statistics over `ops`.
    pub fn from_ops(ops: &[TraceOp]) -> TraceStats {
        let mut updates = 0;
        let mut writes = 0;
        let mut reads = 0;
        let mut write_bytes = 0;
        let mut touched = std::collections::HashSet::new();
        for op in ops {
            match op.kind {
                OpKind::Update => {
                    updates += 1;
                    write_bytes += op.len as u64;
                    let first = op.offset / crate::workload::SLOT;
                    let last = (op.end() - 1) / crate::workload::SLOT;
                    for s in first..=last {
                        touched.insert(s);
                    }
                }
                OpKind::Write => {
                    writes += 1;
                    write_bytes += op.len as u64;
                }
                OpKind::Read => reads += 1,
            }
        }
        TraceStats {
            total: ops.len(),
            updates,
            writes,
            reads,
            write_bytes,
            update_footprint_slots: touched.len(),
        }
    }

    /// Fraction of all requests that are updates.
    pub fn update_ratio(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.updates as f64 / self.total as f64
        }
    }

    /// Fraction of *update* requests with length ≤ `bytes`.
    pub fn update_size_le(&self, ops: &[TraceOp], bytes: u32) -> f64 {
        let (mut le, mut n) = (0usize, 0usize);
        for op in ops {
            if op.kind == OpKind::Update {
                n += 1;
                if op.len <= bytes {
                    le += 1;
                }
            }
        }
        if n == 0 {
            0.0
        } else {
            le as f64 / n as f64
        }
    }

    /// Fraction of *update* requests with length exactly `bytes`.
    pub fn update_size_eq(&self, ops: &[TraceOp], bytes: u32) -> f64 {
        let (mut eq, mut n) = (0usize, 0usize);
        for op in ops {
            if op.kind == OpKind::Update {
                n += 1;
                if op.len == bytes {
                    eq += 1;
                }
            }
        }
        if n == 0 {
            0.0
        } else {
            eq as f64 / n as f64
        }
    }

    /// Update footprint as a fraction of `volume_bytes`: how much of the
    /// volume the update stream actually touches (Ten-Cloud: <5 % for most
    /// datasets).
    pub fn update_footprint_fraction(&self, volume_bytes: u64) -> f64 {
        (self.update_footprint_slots as u64 * crate::workload::SLOT) as f64 / volume_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{MsrVolume, WorkloadGen, WorkloadParams};

    const VOL: u64 = 512 << 20;
    const N: usize = 60_000;

    #[test]
    fn ali_cloud_matches_published_statistics() {
        let mut g = WorkloadGen::new(WorkloadParams::ali_cloud(VOL), 1234);
        let ops = g.take_ops(N);
        let s = TraceStats::from_ops(&ops);
        // Paper §2.1: 75% updates; of updates 46% = 4 KiB, 60% ≤ 16 KiB.
        assert!(
            (s.update_ratio() - 0.75).abs() < 0.03,
            "{}",
            s.update_ratio()
        );
        assert!(
            (s.update_size_eq(&ops, 4 << 10) - 0.46).abs() < 0.04,
            "{}",
            s.update_size_eq(&ops, 4 << 10)
        );
        assert!(
            (s.update_size_le(&ops, 16 << 10) - 0.60).abs() < 0.04,
            "{}",
            s.update_size_le(&ops, 16 << 10)
        );
    }

    #[test]
    fn ten_cloud_matches_published_statistics() {
        let mut g = WorkloadGen::new(WorkloadParams::ten_cloud(VOL), 99);
        let ops = g.take_ops(N);
        let s = TraceStats::from_ops(&ops);
        // Paper §2.1: 69% updates; of updates 69% = 4 KiB, 88% ≤ 16 KiB.
        assert!(
            (s.update_ratio() - 0.69).abs() < 0.03,
            "{}",
            s.update_ratio()
        );
        assert!(
            (s.update_size_eq(&ops, 4 << 10) - 0.69).abs() < 0.04,
            "{}",
            s.update_size_eq(&ops, 4 << 10)
        );
        assert!(
            (s.update_size_le(&ops, 16 << 10) - 0.88).abs() < 0.04,
            "{}",
            s.update_size_le(&ops, 16 << 10)
        );
    }

    #[test]
    fn ten_cloud_footprint_is_small() {
        // §2.3.3: most datasets process <5% of their volume. Our preset
        // directs 90% of accesses at a hot 4% of written space.
        let mut g = WorkloadGen::new(WorkloadParams::ten_cloud(VOL), 7);
        let ops = g.take_ops(N);
        let s = TraceStats::from_ops(&ops);
        assert!(
            s.update_footprint_fraction(VOL) < 0.30,
            "footprint {}",
            s.update_footprint_fraction(VOL)
        );
    }

    #[test]
    fn msr_volumes_are_update_dominated() {
        for v in MsrVolume::ALL {
            let mut g = WorkloadGen::new(WorkloadParams::msr(v, VOL), 5);
            let ops = g.take_ops(20_000);
            let s = TraceStats::from_ops(&ops);
            // >90% of writes are updates (MSR analysis in §2.1).
            let of_writes = s.updates as f64 / (s.updates + s.writes) as f64;
            assert!(of_writes > 0.80, "{}: {of_writes}", v.name());
            // 90% of updates ≤ 16 KiB.
            assert!(
                s.update_size_le(&ops, 16 << 10) > 0.80,
                "{}: {}",
                v.name(),
                s.update_size_le(&ops, 16 << 10)
            );
        }
    }

    #[test]
    fn msr_volumes_have_distinct_locality() {
        // The seven volumes must not degenerate to one profile: check the
        // footprint ordering between a hot volume (src10) and a wide one
        // (proj2).
        let mut hot = WorkloadGen::new(WorkloadParams::msr(MsrVolume::Src10, VOL), 5);
        let mut wide = WorkloadGen::new(WorkloadParams::msr(MsrVolume::Proj2, VOL), 5);
        let hs = TraceStats::from_ops(&hot.take_ops(N));
        let ws = TraceStats::from_ops(&wide.take_ops(N));
        assert!(
            hs.update_footprint_slots < ws.update_footprint_slots,
            "src10 {} vs proj2 {}",
            hs.update_footprint_slots,
            ws.update_footprint_slots
        );
    }

    #[test]
    fn empty_trace_is_safe() {
        let s = TraceStats::from_ops(&[]);
        assert_eq!(s.update_ratio(), 0.0);
        assert_eq!(s.update_footprint_fraction(1 << 30), 0.0);
    }
}
