//! The synthetic workload generator and its per-family presets.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::zipf::Zipf;
use crate::{OpKind, TraceOp};

/// 4 KiB: the slot granularity all offsets align to (matching the sector
/// alignment of the original block traces).
pub const SLOT: u64 = 4096;

/// How request arrival times are produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalModel {
    /// No timestamps: the replayer issues the next op when the previous one
    /// completes (the paper's client model).
    ClosedLoop,
    /// Exponential interarrivals with the given mean, for open-loop tests.
    OpenLoop {
        /// Mean interarrival gap in nanoseconds.
        mean_interarrival_ns: u64,
    },
}

/// The three trace families of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceFamily {
    /// Alibaba block storage trace (§5.2).
    AliCloud,
    /// Tencent block storage trace (§5.2).
    TenCloud,
    /// MSR-Cambridge volume by name (§5.4).
    Msr(MsrVolume),
}

/// The seven MSR-Cambridge volumes used in Fig. 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum MsrVolume {
    Src10,
    Src22,
    Proj2,
    Prn1,
    Hm0,
    Usr0,
    Mds0,
}

impl MsrVolume {
    /// All seven volumes in the order Fig. 8 plots them.
    pub const ALL: [MsrVolume; 7] = [
        MsrVolume::Src10,
        MsrVolume::Src22,
        MsrVolume::Proj2,
        MsrVolume::Prn1,
        MsrVolume::Hm0,
        MsrVolume::Usr0,
        MsrVolume::Mds0,
    ];

    /// Display name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            MsrVolume::Src10 => "src10",
            MsrVolume::Src22 => "src22",
            MsrVolume::Proj2 => "proj2",
            MsrVolume::Prn1 => "prn1",
            MsrVolume::Hm0 => "hm0",
            MsrVolume::Usr0 => "usr0",
            MsrVolume::Mds0 => "mds0",
        }
    }
}

/// All statistical knobs of a synthetic workload.
#[derive(Debug, Clone)]
pub struct WorkloadParams {
    /// Human-readable name (figure labels).
    pub name: String,
    /// Logical volume size in bytes (slot-aligned).
    pub volume_bytes: u64,
    /// Fraction of the volume pre-written before replay starts.
    pub prefilled_fraction: f64,
    /// Fraction of requests that are updates (overwrites).
    pub update_fraction: f64,
    /// Fraction of requests that are reads.
    pub read_fraction: f64,
    /// `(size_bytes, probability)` mixture for request sizes.
    pub size_dist: Vec<(u32, f64)>,
    /// Zipf skew of slot popularity inside the hot region.
    pub zipf_theta: f64,
    /// Fraction of written slots forming the hot region.
    pub hot_fraction: f64,
    /// Fraction of update/read accesses directed at the hot region.
    pub hot_access_fraction: f64,
    /// Probability the next request continues where the previous ended
    /// (sequential run → adjacent-merge opportunities).
    pub seq_run_prob: f64,
    /// Arrival model.
    pub arrival: ArrivalModel,
}

impl WorkloadParams {
    /// Validates invariants (probabilities in range, distribution sums to 1).
    pub fn validate(&self) -> Result<(), String> {
        let sum: f64 = self.size_dist.iter().map(|&(_, p)| p).sum();
        if (sum - 1.0).abs() > 1e-6 {
            return Err(format!("size distribution sums to {sum}, not 1"));
        }
        for &(s, _) in &self.size_dist {
            if s == 0 || !(s as u64).is_multiple_of(SLOT) {
                return Err(format!("size {s} not a positive multiple of {SLOT}"));
            }
        }
        for (name, v) in [
            ("prefilled_fraction", self.prefilled_fraction),
            ("update_fraction", self.update_fraction),
            ("read_fraction", self.read_fraction),
            ("hot_fraction", self.hot_fraction),
            ("hot_access_fraction", self.hot_access_fraction),
            ("seq_run_prob", self.seq_run_prob),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} = {v} out of [0,1]"));
            }
        }
        if self.update_fraction + self.read_fraction > 1.0 {
            return Err("update + read fractions exceed 1".into());
        }
        if self.volume_bytes < 16 * SLOT {
            return Err("volume too small".into());
        }
        Ok(())
    }

    /// The Ali-Cloud preset: 75 % updates; of those 46 % are exactly 4 KiB
    /// and 60 % are ≤ 16 KiB; moderate skew.
    pub fn ali_cloud(volume_bytes: u64) -> WorkloadParams {
        WorkloadParams {
            name: "Ali-Cloud".into(),
            volume_bytes,
            prefilled_fraction: 0.6,
            update_fraction: 0.75,
            read_fraction: 0.15,
            size_dist: vec![
                (4 << 10, 0.46),
                (8 << 10, 0.07),
                (16 << 10, 0.07),
                (32 << 10, 0.12),
                (64 << 10, 0.13),
                (128 << 10, 0.10),
                (256 << 10, 0.05),
            ],
            zipf_theta: 0.85,
            hot_fraction: 0.10,
            hot_access_fraction: 0.80,
            seq_run_prob: 0.15,
            arrival: ArrivalModel::ClosedLoop,
        }
    }

    /// The Ten-Cloud preset: 69 % updates; 69 % exactly 4 KiB, 88 % ≤ 16 KiB;
    /// strong skew (>80 % of datasets touch <5 % of their volume).
    pub fn ten_cloud(volume_bytes: u64) -> WorkloadParams {
        WorkloadParams {
            name: "Ten-Cloud".into(),
            volume_bytes,
            prefilled_fraction: 0.6,
            update_fraction: 0.69,
            read_fraction: 0.20,
            size_dist: vec![
                (4 << 10, 0.69),
                (8 << 10, 0.10),
                (16 << 10, 0.09),
                (32 << 10, 0.05),
                (64 << 10, 0.04),
                (128 << 10, 0.03),
            ],
            zipf_theta: 0.95,
            hot_fraction: 0.04,
            hot_access_fraction: 0.90,
            seq_run_prob: 0.20,
            arrival: ArrivalModel::ClosedLoop,
        }
    }

    /// An MSR-Cambridge volume preset: write-dominated (>90 % of writes are
    /// updates), ~60 % of updates <4 KiB... rounded up to the 4 KiB slot,
    /// 90 % ≤ 16 KiB; per-volume size/skew flavour.
    pub fn msr(volume: MsrVolume, volume_bytes: u64) -> WorkloadParams {
        // (theta, hot_fraction, read_fraction, seq_run, big_io_share)
        let (theta, hot, read, seq, big) = match volume {
            MsrVolume::Src10 => (0.92, 0.05, 0.05, 0.25, 0.04),
            MsrVolume::Src22 => (0.85, 0.08, 0.06, 0.20, 0.06),
            MsrVolume::Proj2 => (0.70, 0.15, 0.12, 0.15, 0.12),
            MsrVolume::Prn1 => (0.80, 0.10, 0.08, 0.18, 0.08),
            MsrVolume::Hm0 => (0.88, 0.06, 0.05, 0.22, 0.05),
            MsrVolume::Usr0 => (0.75, 0.12, 0.10, 0.15, 0.10),
            MsrVolume::Mds0 => (0.90, 0.05, 0.04, 0.25, 0.03),
        };
        let small = 1.0 - 0.25 - 0.10 - big;
        WorkloadParams {
            name: format!("MSR-{}", volume.name()),
            volume_bytes,
            prefilled_fraction: 0.6,
            update_fraction: 0.90 * (1.0 - read),
            read_fraction: read,
            size_dist: vec![
                (4 << 10, small),
                (8 << 10, 0.25),
                (16 << 10, 0.10),
                (64 << 10, big),
            ],
            zipf_theta: theta,
            hot_fraction: hot,
            hot_access_fraction: 0.85,
            seq_run_prob: seq,
            arrival: ArrivalModel::ClosedLoop,
        }
    }

    /// Preset lookup by family.
    pub fn for_family(family: TraceFamily, volume_bytes: u64) -> WorkloadParams {
        match family {
            TraceFamily::AliCloud => Self::ali_cloud(volume_bytes),
            TraceFamily::TenCloud => Self::ten_cloud(volume_bytes),
            TraceFamily::Msr(v) => Self::msr(v, volume_bytes),
        }
    }
}

/// Deterministic, seedable trace generator implementing the statistical
/// model of [`WorkloadParams`]; yields an infinite stream via [`Iterator`].
#[derive(Debug, Clone)]
pub struct WorkloadGen {
    params: WorkloadParams,
    rng: StdRng,
    zipf_hot: Zipf,
    total_slots: u64,
    /// Slots `0..frontier` are written (updates and reads target these).
    frontier: u64,
    /// First slot of the hot region (position drawn from the seed).
    hot_base: u64,
    /// Continuation point for sequential runs.
    last_end: Option<(OpKind, u64)>,
    clock_ns: u64,
}

impl WorkloadGen {
    /// Builds a generator.
    ///
    /// # Panics
    /// Panics if the parameters fail validation.
    pub fn new(params: WorkloadParams, seed: u64) -> WorkloadGen {
        params.validate().expect("invalid workload parameters");
        let total_slots = params.volume_bytes / SLOT;
        let frontier = ((total_slots as f64 * params.prefilled_fraction) as u64).max(8);
        let hot_slots = ((frontier as f64 * params.hot_fraction) as u64).max(4);
        let mut rng = StdRng::seed_from_u64(seed);
        let hot_base = rng.random_range(0..frontier.saturating_sub(hot_slots).max(1));
        let zipf_hot = Zipf::new(hot_slots, params.zipf_theta);
        WorkloadGen {
            params,
            rng,
            zipf_hot,
            total_slots,
            frontier,
            hot_base,
            last_end: None,
            clock_ns: 0,
        }
    }

    /// The parameters in force.
    pub fn params(&self) -> &WorkloadParams {
        &self.params
    }

    /// Current written frontier in bytes.
    pub fn written_bytes(&self) -> u64 {
        self.frontier * SLOT
    }

    fn sample_size(&mut self) -> u32 {
        let u: f64 = self.rng.random();
        let mut acc = 0.0;
        for &(s, p) in &self.params.size_dist {
            acc += p;
            if u < acc {
                return s;
            }
        }
        self.params.size_dist.last().map(|&(s, _)| s).unwrap()
    }

    fn sample_written_offset(&mut self, len: u64) -> u64 {
        let len_slots = len.div_ceil(SLOT);
        let slot = if self.rng.random::<f64>() < self.params.hot_access_fraction {
            // Hot region: Zipf-popular slot.
            let s = self.hot_base + self.zipf_hot.sample(&mut self.rng);
            s.min(self.frontier - 1)
        } else {
            self.rng.random_range(0..self.frontier)
        };
        // Clamp so the request stays inside the written region.
        let max_start = self.frontier.saturating_sub(len_slots);
        slot.min(max_start) * SLOT
    }

    fn next_op(&mut self) -> TraceOp {
        let len = self.sample_size();
        let len_slots = len as u64 / SLOT;

        // Sequential continuation: keep the previous kind, adjacent offset.
        if let Some((kind, end)) = self.last_end {
            if self.rng.random::<f64>() < self.params.seq_run_prob {
                let end_slot = end / SLOT;
                let fits_written = end_slot + len_slots <= self.frontier;
                if kind != OpKind::Write && fits_written {
                    let op = self.emit(kind, end, len);
                    return op;
                }
            }
        }

        let u: f64 = self.rng.random();
        let (kind, offset) = if u < self.params.update_fraction {
            (OpKind::Update, self.sample_written_offset(len as u64))
        } else if u < self.params.update_fraction + self.params.read_fraction {
            (OpKind::Read, self.sample_written_offset(len as u64))
        } else {
            // Fresh write: extend the frontier; once the volume is full,
            // fall back to updates (the device cannot grow).
            if self.frontier + len_slots <= self.total_slots {
                let off = self.frontier * SLOT;
                self.frontier += len_slots;
                (OpKind::Write, off)
            } else {
                (OpKind::Update, self.sample_written_offset(len as u64))
            }
        };
        self.emit(kind, offset, len)
    }

    fn emit(&mut self, kind: OpKind, offset: u64, len: u32) -> TraceOp {
        self.last_end = Some((kind, offset + len as u64));
        let at_ns = match self.params.arrival {
            ArrivalModel::ClosedLoop => 0,
            ArrivalModel::OpenLoop {
                mean_interarrival_ns,
            } => {
                // Exponential interarrival via inverse transform.
                let u: f64 = self.rng.random::<f64>().max(1e-12);
                self.clock_ns += (-u.ln() * mean_interarrival_ns as f64) as u64;
                self.clock_ns
            }
        };
        TraceOp {
            at_ns,
            offset,
            len,
            kind,
        }
    }

    /// Generates exactly `n` operations.
    pub fn take_ops(&mut self, n: usize) -> Vec<TraceOp> {
        (0..n).map(|_| self.next_op()).collect()
    }
}

impl Iterator for WorkloadGen {
    type Item = TraceOp;

    fn next(&mut self) -> Option<TraceOp> {
        Some(self.next_op())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const VOL: u64 = 256 << 20; // 256 MiB test volume

    #[test]
    fn presets_validate() {
        WorkloadParams::ali_cloud(VOL).validate().unwrap();
        WorkloadParams::ten_cloud(VOL).validate().unwrap();
        for v in MsrVolume::ALL {
            WorkloadParams::msr(v, VOL).validate().unwrap();
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let mut a = WorkloadGen::new(WorkloadParams::ali_cloud(VOL), 42);
        let mut b = WorkloadGen::new(WorkloadParams::ali_cloud(VOL), 42);
        assert_eq!(a.take_ops(5000), b.take_ops(5000));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = WorkloadGen::new(WorkloadParams::ali_cloud(VOL), 1);
        let mut b = WorkloadGen::new(WorkloadParams::ali_cloud(VOL), 2);
        assert_ne!(a.take_ops(100), b.take_ops(100));
    }

    #[test]
    fn ops_stay_in_volume_and_aligned() {
        let mut g = WorkloadGen::new(WorkloadParams::ten_cloud(VOL), 7);
        for op in g.take_ops(20_000) {
            assert!(op.end() <= VOL, "op beyond volume: {op:?}");
            assert_eq!(op.offset % SLOT, 0, "unaligned offset: {op:?}");
            assert!(op.len > 0);
        }
    }

    #[test]
    fn updates_and_reads_hit_written_space() {
        let mut g = WorkloadGen::new(WorkloadParams::ali_cloud(VOL), 3);
        let ops = g.take_ops(20_000);
        let frontier_end = g.written_bytes();
        for op in &ops {
            if matches!(op.kind, OpKind::Update | OpKind::Read) {
                assert!(
                    op.end() <= frontier_end,
                    "update/read beyond written frontier: {op:?}"
                );
            }
        }
    }

    #[test]
    fn open_loop_timestamps_increase() {
        let mut p = WorkloadParams::ali_cloud(VOL);
        p.arrival = ArrivalModel::OpenLoop {
            mean_interarrival_ns: 10_000,
        };
        let mut g = WorkloadGen::new(p, 11);
        let ops = g.take_ops(1000);
        let mut last = 0;
        for op in &ops {
            assert!(op.at_ns >= last);
            last = op.at_ns;
        }
        assert!(last > 0);
    }

    #[test]
    fn closed_loop_timestamps_zero() {
        let mut g = WorkloadGen::new(WorkloadParams::ali_cloud(VOL), 11);
        assert!(g.take_ops(100).iter().all(|o| o.at_ns == 0));
    }

    #[test]
    fn volume_full_falls_back_to_updates() {
        let mut p = WorkloadParams::ali_cloud(1 << 20); // 1 MiB: fills fast
        p.update_fraction = 0.0;
        p.read_fraction = 0.0;
        p.size_dist = vec![(4096, 1.0)];
        let mut g = WorkloadGen::new(p, 5);
        let ops = g.take_ops(2000);
        // 1 MiB = 256 slots; 60% prefilled leaves ~102 fresh writes.
        let writes = ops.iter().filter(|o| o.kind == OpKind::Write).count();
        let updates = ops.iter().filter(|o| o.kind == OpKind::Update).count();
        assert!(writes <= 110, "writes {writes}");
        assert!(updates >= 1890, "updates {updates}");
    }
}
