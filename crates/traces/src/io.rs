//! Plain-text trace import/export (CSV), so generated workloads can be
//! inspected, diffed, and replayed outside the benchmarks.

use std::io::{BufRead, BufReader, Read, Write};

use crate::{OpKind, TraceOp};

/// Serialisation/parsing errors.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed line with its 1-based line number.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        reason: String,
    },
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "I/O error: {e}"),
            TraceIoError::Parse { line, reason } => {
                write!(f, "parse error at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for TraceIoError {}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

fn kind_str(k: OpKind) -> &'static str {
    match k {
        OpKind::Write => "W",
        OpKind::Update => "U",
        OpKind::Read => "R",
    }
}

fn parse_kind(s: &str) -> Option<OpKind> {
    match s {
        "W" => Some(OpKind::Write),
        "U" => Some(OpKind::Update),
        "R" => Some(OpKind::Read),
        _ => None,
    }
}

/// Writes ops as `at_ns,offset,len,kind` lines with a header row.
pub fn write_csv<W: Write>(mut w: W, ops: &[TraceOp]) -> Result<(), TraceIoError> {
    writeln!(w, "at_ns,offset,len,kind")?;
    for op in ops {
        writeln!(
            w,
            "{},{},{},{}",
            op.at_ns,
            op.offset,
            op.len,
            kind_str(op.kind)
        )?;
    }
    Ok(())
}

/// Reads ops written by [`write_csv`].
pub fn read_csv<R: Read>(r: R) -> Result<Vec<TraceOp>, TraceIoError> {
    let reader = BufReader::new(r);
    let mut out = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = i + 1;
        if i == 0 {
            if line != "at_ns,offset,len,kind" {
                return Err(TraceIoError::Parse {
                    line: lineno,
                    reason: format!("unexpected header {line:?}"),
                });
            }
            continue;
        }
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split(',');
        let mut field = |name: &str| -> Result<&str, TraceIoError> {
            parts.next().ok_or_else(|| TraceIoError::Parse {
                line: lineno,
                reason: format!("missing field {name}"),
            })
        };
        let at_ns: u64 = field("at_ns")?.parse().map_err(|e| TraceIoError::Parse {
            line: lineno,
            reason: format!("at_ns: {e}"),
        })?;
        let offset: u64 = field("offset")?.parse().map_err(|e| TraceIoError::Parse {
            line: lineno,
            reason: format!("offset: {e}"),
        })?;
        let len: u32 = field("len")?.parse().map_err(|e| TraceIoError::Parse {
            line: lineno,
            reason: format!("len: {e}"),
        })?;
        let kind = parse_kind(field("kind")?).ok_or_else(|| TraceIoError::Parse {
            line: lineno,
            reason: "bad kind".into(),
        })?;
        out.push(TraceOp {
            at_ns,
            offset,
            len,
            kind,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{WorkloadGen, WorkloadParams};

    #[test]
    fn roundtrip_preserves_ops() {
        let mut g = WorkloadGen::new(WorkloadParams::ali_cloud(64 << 20), 3);
        let ops = g.take_ops(500);
        let mut buf = Vec::new();
        write_csv(&mut buf, &ops).unwrap();
        let back = read_csv(&buf[..]).unwrap();
        assert_eq!(ops, back);
    }

    #[test]
    fn rejects_bad_header() {
        let res = read_csv(&b"nope\n1,2,3,W\n"[..]);
        assert!(matches!(res, Err(TraceIoError::Parse { line: 1, .. })));
    }

    #[test]
    fn rejects_bad_kind() {
        let res = read_csv(&b"at_ns,offset,len,kind\n1,2,3,X\n"[..]);
        assert!(matches!(res, Err(TraceIoError::Parse { line: 2, .. })));
    }

    #[test]
    fn rejects_missing_field() {
        let res = read_csv(&b"at_ns,offset,len,kind\n1,2\n"[..]);
        assert!(matches!(res, Err(TraceIoError::Parse { line: 2, .. })));
    }

    #[test]
    fn empty_lines_skipped() {
        let back = read_csv(&b"at_ns,offset,len,kind\n\n5,4096,512,U\n"[..]).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].kind, OpKind::Update);
    }
}
