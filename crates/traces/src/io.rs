//! Plain-text trace import/export (CSV), so generated workloads can be
//! inspected, diffed, and replayed outside the benchmarks — plus adapters
//! for the public MSR-Cambridge block-trace format
//! (`timestamp,hostname,disk,type,offset,size,latency`) and the Alibaba
//! Block Traces format (`device_id,opcode,offset,length,timestamp`),
//! mapping real traces onto the [`TraceOp`] model the replay engine
//! consumes — arrival timestamps included, so the open-loop engine can
//! replay them on their real schedule.

use std::io::{BufRead, BufReader, Read, Write};

use crate::{OpKind, TraceOp};

/// Serialisation/parsing errors.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed line with its 1-based line number.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        reason: String,
    },
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "I/O error: {e}"),
            TraceIoError::Parse { line, reason } => {
                write!(f, "parse error at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for TraceIoError {}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

fn kind_str(k: OpKind) -> &'static str {
    match k {
        OpKind::Write => "W",
        OpKind::Update => "U",
        OpKind::Read => "R",
    }
}

fn parse_kind(s: &str) -> Option<OpKind> {
    match s {
        "W" => Some(OpKind::Write),
        "U" => Some(OpKind::Update),
        "R" => Some(OpKind::Read),
        _ => None,
    }
}

/// Writes ops as `at_ns,offset,len,kind` lines with a header row.
pub fn write_csv<W: Write>(mut w: W, ops: &[TraceOp]) -> Result<(), TraceIoError> {
    writeln!(w, "at_ns,offset,len,kind")?;
    for op in ops {
        writeln!(
            w,
            "{},{},{},{}",
            op.at_ns,
            op.offset,
            op.len,
            kind_str(op.kind)
        )?;
    }
    Ok(())
}

/// Reads ops written by [`write_csv`].
pub fn read_csv<R: Read>(r: R) -> Result<Vec<TraceOp>, TraceIoError> {
    let reader = BufReader::new(r);
    let mut out = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = i + 1;
        if i == 0 {
            if line != "at_ns,offset,len,kind" {
                return Err(TraceIoError::Parse {
                    line: lineno,
                    reason: format!("unexpected header {line:?}"),
                });
            }
            continue;
        }
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split(',');
        let mut field = |name: &str| -> Result<&str, TraceIoError> {
            parts.next().ok_or_else(|| TraceIoError::Parse {
                line: lineno,
                reason: format!("missing field {name}"),
            })
        };
        let at_ns: u64 = field("at_ns")?.parse().map_err(|e| TraceIoError::Parse {
            line: lineno,
            reason: format!("at_ns: {e}"),
        })?;
        let offset: u64 = field("offset")?.parse().map_err(|e| TraceIoError::Parse {
            line: lineno,
            reason: format!("offset: {e}"),
        })?;
        let len: u32 = field("len")?.parse().map_err(|e| TraceIoError::Parse {
            line: lineno,
            reason: format!("len: {e}"),
        })?;
        let kind = parse_kind(field("kind")?).ok_or_else(|| TraceIoError::Parse {
            line: lineno,
            reason: "bad kind".into(),
        })?;
        out.push(TraceOp {
            at_ns,
            offset,
            len,
            kind,
        });
    }
    Ok(out)
}

/// First-touch Write/Update classification over 4 KiB slots — the single
/// rule shared by [`msr_to_ops`], [`ali_to_ops`], and stream remappers
/// (`workload::TimedStream::fit_to_volume`): a write touching any slot of
/// `stream` not yet in `written` is a fresh [`OpKind::Write`] (the encode
/// path), a write whose slots were all written before is an
/// [`OpKind::Update`] (the update path the paper measures). `stream`
/// separates independent slot spaces (devices, clients); adapters over a
/// single space pass 0.
pub fn classify_write(
    written: &mut std::collections::HashSet<(u64, u64)>,
    stream: u64,
    offset: u64,
    len: u32,
) -> OpKind {
    let first_slot = offset >> 12;
    let last_slot = (offset + len.max(1) as u64 - 1) >> 12;
    let mut fresh = false;
    for slot in first_slot..=last_slot {
        if written.insert((stream, slot)) {
            fresh = true;
        }
    }
    if fresh {
        OpKind::Write
    } else {
        OpKind::Update
    }
}

/// One record of an MSR-Cambridge block trace: the seven-field CSV rows
/// (`timestamp,hostname,disk,type,offset,size,latency`) published with
/// the SNIA trace release. Timestamps are Windows FILETIME (100 ns ticks);
/// latency is the response time in the same units.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MsrRecord {
    /// Windows FILETIME timestamp (100 ns ticks since 1601).
    pub timestamp: u64,
    /// Source host (e.g. `usr`, `web`, `src1`).
    pub hostname: String,
    /// Disk number within the host.
    pub disk: u32,
    /// `Read` or `Write` (case-insensitive in the wild).
    pub is_write: bool,
    /// Byte offset on the disk.
    pub offset: u64,
    /// Request size in bytes.
    pub size: u32,
    /// Response time in 100 ns ticks.
    pub latency: u64,
}

/// Reads MSR-Cambridge CSV rows (no header line in the published files;
/// a `timestamp,...` header is tolerated and skipped).
pub fn read_msr_csv<R: Read>(r: R) -> Result<Vec<MsrRecord>, TraceIoError> {
    let reader = BufReader::new(r);
    let mut out = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = i + 1;
        if line.is_empty() || (i == 0 && line.starts_with("timestamp")) {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 7 {
            return Err(TraceIoError::Parse {
                line: lineno,
                reason: format!("expected 7 fields, got {}", fields.len()),
            });
        }
        let num = |idx: usize, name: &str| -> Result<u64, TraceIoError> {
            fields[idx].trim().parse().map_err(|e| TraceIoError::Parse {
                line: lineno,
                reason: format!("{name}: {e}"),
            })
        };
        let is_write = match fields[3].trim().to_ascii_lowercase().as_str() {
            "write" => true,
            "read" => false,
            other => {
                return Err(TraceIoError::Parse {
                    line: lineno,
                    reason: format!("bad type {other:?} (want Read/Write)"),
                })
            }
        };
        out.push(MsrRecord {
            timestamp: num(0, "timestamp")?,
            hostname: fields[1].trim().to_string(),
            disk: num(2, "disk")? as u32,
            is_write,
            offset: num(4, "offset")?,
            size: num(5, "size")? as u32,
            latency: num(6, "latency")?,
        });
    }
    Ok(out)
}

/// Writes records in the MSR-Cambridge seven-field format, so an imported
/// trace round-trips byte-for-byte (modulo whitespace and header).
pub fn write_msr_csv<W: Write>(mut w: W, records: &[MsrRecord]) -> Result<(), TraceIoError> {
    for r in records {
        writeln!(
            w,
            "{},{},{},{},{},{},{}",
            r.timestamp,
            r.hostname,
            r.disk,
            if r.is_write { "Write" } else { "Read" },
            r.offset,
            r.size,
            r.latency
        )?;
    }
    Ok(())
}

/// Maps MSR records onto the replay engine's [`TraceOp`] model:
///
/// * arrival times become nanoseconds relative to the first record
///   (FILETIME ticks are 100 ns each);
/// * reads stay reads;
/// * a write is classified per 4 KiB slot — the engine's allocation unit:
///   the first write touching any not-yet-written slot is a fresh
///   [`OpKind::Write`] (encode path), a write whose slots were all written
///   before is an [`OpKind::Update`] (the update path the paper measures).
///
/// Records from different `(hostname, disk)` pairs address different
/// devices; filter before converting if a single volume is wanted.
pub fn msr_to_ops(records: &[MsrRecord]) -> Vec<TraceOp> {
    let t0 = records.iter().map(|r| r.timestamp).min().unwrap_or(0);
    let mut written = std::collections::HashSet::new();
    let mut out = Vec::with_capacity(records.len());
    for r in records {
        let kind = if !r.is_write {
            OpKind::Read
        } else {
            classify_write(&mut written, 0, r.offset, r.size)
        };
        out.push(TraceOp {
            at_ns: (r.timestamp - t0) * 100,
            offset: r.offset,
            len: r.size,
            kind,
        });
    }
    out
}

/// One record of an Alibaba Block Traces release (the 2020 cloud block
/// storage dataset): five comma-separated fields
/// `device_id,opcode,offset,length,timestamp` — opcode `R`/`W`, offset
/// and length in bytes, timestamp in **microseconds** from trace start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AliRecord {
    /// Virtual-device id the request targets.
    pub device: u32,
    /// `W` or `R` (case-insensitive on input).
    pub is_write: bool,
    /// Byte offset on the device.
    pub offset: u64,
    /// Request size in bytes.
    pub size: u32,
    /// Request timestamp in microseconds.
    pub timestamp_us: u64,
}

/// Reads Alibaba block-trace CSV rows (no header in the published files;
/// a `device_id,...` header is tolerated and skipped).
pub fn read_ali_csv<R: Read>(r: R) -> Result<Vec<AliRecord>, TraceIoError> {
    let reader = BufReader::new(r);
    let mut out = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = i + 1;
        if line.is_empty() || (i == 0 && line.starts_with("device_id")) {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 5 {
            return Err(TraceIoError::Parse {
                line: lineno,
                reason: format!("expected 5 fields, got {}", fields.len()),
            });
        }
        let num = |idx: usize, name: &str| -> Result<u64, TraceIoError> {
            fields[idx].trim().parse().map_err(|e| TraceIoError::Parse {
                line: lineno,
                reason: format!("{name}: {e}"),
            })
        };
        let is_write = match fields[1].trim().to_ascii_uppercase().as_str() {
            "W" => true,
            "R" => false,
            other => {
                return Err(TraceIoError::Parse {
                    line: lineno,
                    reason: format!("bad opcode {other:?} (want R/W)"),
                })
            }
        };
        out.push(AliRecord {
            device: num(0, "device_id")? as u32,
            is_write,
            offset: num(2, "offset")?,
            size: num(3, "length")? as u32,
            timestamp_us: num(4, "timestamp")?,
        });
    }
    Ok(out)
}

/// Writes records in the Alibaba five-field format, so an imported trace
/// round-trips byte-for-byte (modulo whitespace and header).
pub fn write_ali_csv<W: Write>(mut w: W, records: &[AliRecord]) -> Result<(), TraceIoError> {
    for r in records {
        writeln!(
            w,
            "{},{},{},{},{}",
            r.device,
            if r.is_write { "W" } else { "R" },
            r.offset,
            r.size,
            r.timestamp_us
        )?;
    }
    Ok(())
}

/// Maps Alibaba records onto the replay engine's [`TraceOp`] model,
/// mirroring [`msr_to_ops`]:
///
/// * arrival times become nanoseconds relative to the first record
///   (Alibaba timestamps are microseconds);
/// * reads stay reads;
/// * a write is classified per 4 KiB slot: first touch of any unwritten
///   slot is a fresh [`OpKind::Write`], a write whose slots were all
///   written before is an [`OpKind::Update`].
///
/// Records from different `device_id`s address different virtual disks;
/// filter before converting if a single volume is wanted.
pub fn ali_to_ops(records: &[AliRecord]) -> Vec<TraceOp> {
    let t0 = records.iter().map(|r| r.timestamp_us).min().unwrap_or(0);
    let mut written = std::collections::HashSet::new();
    let mut out = Vec::with_capacity(records.len());
    for r in records {
        let kind = if !r.is_write {
            OpKind::Read
        } else {
            classify_write(&mut written, 0, r.offset, r.size)
        };
        out.push(TraceOp {
            at_ns: (r.timestamp_us - t0) * 1_000,
            offset: r.offset,
            len: r.size,
            kind,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{WorkloadGen, WorkloadParams};

    /// A hand-written MSR-Cambridge excerpt: two hosts, overlapping
    /// offsets, mixed reads and writes (format per the SNIA release).
    const MSR_FIXTURE: &str = "\
128166372003061629,usr,0,Write,0,4096,151\n\
128166372003061700,usr,0,Read,0,4096,80\n\
128166372003062000,usr,0,Write,4096,8192,212\n\
128166372003062500,usr,0,Write,0,4096,98\n\
128166372003063000,src1,1,Write,8192,4096,77\n\
128166372003063500,usr,0,Write,2048,4096,130\n\
128166372003064000,usr,0,Read,1048576,16384,310\n\
128166372003064500,usr,0,Write,12288,4096,64\n";

    #[test]
    fn msr_fixture_parses_and_roundtrips() {
        let records = read_msr_csv(MSR_FIXTURE.as_bytes()).unwrap();
        assert_eq!(records.len(), 8);
        assert_eq!(records[0].hostname, "usr");
        assert_eq!(records[4].hostname, "src1");
        assert_eq!(records[4].disk, 1);
        assert!(records[0].is_write);
        assert!(!records[1].is_write);
        assert_eq!(records[2].size, 8192);
        assert_eq!(records[7].latency, 64);

        // Round-trip: write back out and re-parse, record for record.
        let mut buf = Vec::new();
        write_msr_csv(&mut buf, &records).unwrap();
        let back = read_msr_csv(&buf[..]).unwrap();
        assert_eq!(records, back);
    }

    #[test]
    fn msr_mapping_classifies_slot_for_slot() {
        let records = read_msr_csv(MSR_FIXTURE.as_bytes()).unwrap();
        let ops = msr_to_ops(&records);
        assert_eq!(ops.len(), 8);
        // Slot-for-slot expectations against the fixture (4 KiB slots):
        let expected = [
            OpKind::Write,  // offset 0: slot 0, first touch
            OpKind::Read,   // reads never reclassify
            OpKind::Write,  // offset 4096 x 8192: slots 1-2, first touch
            OpKind::Update, // offset 0 again: slot 0 already written
            OpKind::Update, // offset 8192: slot 2 already written (op 2)
            OpKind::Update, // offset 2048 x 4096: slots 0-1 both written
            OpKind::Read,   // read of an unwritten region stays a read
            OpKind::Write,  // offset 12288: slot 3, first touch
        ];
        for (i, (op, want)) in ops.iter().zip(expected).enumerate() {
            assert_eq!(op.kind, want, "op {i} ({:?})", records[i]);
        }
        // Arrival times are 100 ns ticks relative to the first record.
        assert_eq!(ops[0].at_ns, 0);
        assert_eq!(ops[1].at_ns, 71 * 100);
        // Per-host filtering gives a distinct slot space: src1's write is
        // then a fresh Write.
        let src1: Vec<MsrRecord> = records
            .iter()
            .filter(|r| r.hostname == "src1")
            .cloned()
            .collect();
        let src1_ops = msr_to_ops(&src1);
        assert_eq!(src1_ops.len(), 1);
        assert_eq!(src1_ops[0].kind, OpKind::Write);
        assert_eq!(src1_ops[0].at_ns, 0);
    }

    #[test]
    fn msr_ops_replay_through_the_op_model_roundtrip() {
        // The mapped ops are ordinary TraceOps: they survive the generic
        // CSV round-trip slot for slot, so real traces can be cached in
        // the repo's own format after import.
        let records = read_msr_csv(MSR_FIXTURE.as_bytes()).unwrap();
        let ops = msr_to_ops(&records);
        let mut buf = Vec::new();
        write_csv(&mut buf, &ops).unwrap();
        let back = read_csv(&buf[..]).unwrap();
        assert_eq!(ops, back);
    }

    #[test]
    fn msr_rejects_malformed_rows() {
        assert!(matches!(
            read_msr_csv(&b"1,usr,0,Write,0,4096\n"[..]),
            Err(TraceIoError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            read_msr_csv(&b"1,usr,0,Wrong,0,4096,9\n"[..]),
            Err(TraceIoError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            read_msr_csv(&b"x,usr,0,Write,0,4096,9\n"[..]),
            Err(TraceIoError::Parse { line: 1, .. })
        ));
        // Case-insensitive types and a tolerated header.
        let ok = read_msr_csv(
            &b"timestamp,hostname,disk,type,offset,size,latency\n5,web,2,READ,0,512,3\n"[..],
        )
        .unwrap();
        assert_eq!(ok.len(), 1);
        assert!(!ok[0].is_write);
    }

    /// A hand-written Alibaba Block Traces excerpt: two virtual devices,
    /// overlapping offsets, mixed reads and writes (format per the 2020
    /// release: `device_id,opcode,offset,length,timestamp[us]`).
    const ALI_FIXTURE: &str = "\
64,W,126705664,4096,1577808000000000\n\
64,R,126705664,4096,1577808000000090\n\
64,W,126709760,8192,1577808000000210\n\
727,W,8192,4096,1577808000000305\n\
64,W,126705664,4096,1577808000000450\n\
64,W,126707712,4096,1577808000000530\n\
64,R,999989248,16384,1577808000000700\n\
64,W,126717952,4096,1577808000000820\n";

    #[test]
    fn ali_fixture_parses_and_roundtrips() {
        let records = read_ali_csv(ALI_FIXTURE.as_bytes()).unwrap();
        assert_eq!(records.len(), 8);
        assert_eq!(records[0].device, 64);
        assert_eq!(records[3].device, 727);
        assert!(records[0].is_write);
        assert!(!records[1].is_write);
        assert_eq!(records[2].size, 8192);
        assert_eq!(records[7].timestamp_us, 1_577_808_000_000_820);

        // Round-trip: write back out and re-parse, record for record.
        let mut buf = Vec::new();
        write_ali_csv(&mut buf, &records).unwrap();
        let back = read_ali_csv(&buf[..]).unwrap();
        assert_eq!(records, back);
    }

    #[test]
    fn ali_mapping_classifies_slot_for_slot() {
        let records = read_ali_csv(ALI_FIXTURE.as_bytes()).unwrap();
        let ops = ali_to_ops(&records);
        assert_eq!(ops.len(), 8);
        // Slot-for-slot expectations against the fixture (4 KiB slots;
        // offset 126705664 = slot 30934):
        let expected = [
            OpKind::Write,  // slot 30934, first touch
            OpKind::Read,   // reads never reclassify
            OpKind::Write,  // offset 126709760 x 8192: slots 30935-30936
            OpKind::Write,  // device 727 slot 2: first touch of that slot
            OpKind::Update, // slot 30934 again: already written
            OpKind::Update, // mid-slot straddle of written 30934-30935
            OpKind::Read,   // read of an unwritten region stays a read
            OpKind::Write,  // offset 126717952: slot 30937, first touch
        ];
        for (i, (op, want)) in ops.iter().zip(expected).enumerate() {
            assert_eq!(op.kind, want, "op {i} ({:?})", records[i]);
        }
        // Arrival times are microsecond ticks relative to the first record.
        assert_eq!(ops[0].at_ns, 0);
        assert_eq!(ops[1].at_ns, 90 * 1_000);
        assert_eq!(ops[7].at_ns, 820 * 1_000);
        // Per-device filtering gives a distinct slot space.
        let dev727: Vec<AliRecord> = records
            .iter()
            .filter(|r| r.device == 727)
            .cloned()
            .collect();
        let dev_ops = ali_to_ops(&dev727);
        assert_eq!(dev_ops.len(), 1);
        assert_eq!(dev_ops[0].kind, OpKind::Write);
        assert_eq!(dev_ops[0].at_ns, 0);
    }

    #[test]
    fn ali_ops_survive_the_generic_csv_roundtrip() {
        let records = read_ali_csv(ALI_FIXTURE.as_bytes()).unwrap();
        let ops = ali_to_ops(&records);
        let mut buf = Vec::new();
        write_csv(&mut buf, &ops).unwrap();
        let back = read_csv(&buf[..]).unwrap();
        assert_eq!(ops, back);
    }

    #[test]
    fn ali_rejects_malformed_rows() {
        assert!(matches!(
            read_ali_csv(&b"64,W,0,4096\n"[..]),
            Err(TraceIoError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            read_ali_csv(&b"64,X,0,4096,5\n"[..]),
            Err(TraceIoError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            read_ali_csv(&b"dev,W,0,4096,5\n"[..]),
            Err(TraceIoError::Parse { line: 1, .. })
        ));
        // Case-insensitive opcodes and a tolerated header.
        let ok =
            read_ali_csv(&b"device_id,opcode,offset,length,timestamp\n3,r,0,512,77\n"[..]).unwrap();
        assert_eq!(ok.len(), 1);
        assert!(!ok[0].is_write);
        assert_eq!(ok[0].timestamp_us, 77);
    }

    #[test]
    fn roundtrip_preserves_ops() {
        let mut g = WorkloadGen::new(WorkloadParams::ali_cloud(64 << 20), 3);
        let ops = g.take_ops(500);
        let mut buf = Vec::new();
        write_csv(&mut buf, &ops).unwrap();
        let back = read_csv(&buf[..]).unwrap();
        assert_eq!(ops, back);
    }

    #[test]
    fn rejects_bad_header() {
        let res = read_csv(&b"nope\n1,2,3,W\n"[..]);
        assert!(matches!(res, Err(TraceIoError::Parse { line: 1, .. })));
    }

    #[test]
    fn rejects_bad_kind() {
        let res = read_csv(&b"at_ns,offset,len,kind\n1,2,3,X\n"[..]);
        assert!(matches!(res, Err(TraceIoError::Parse { line: 2, .. })));
    }

    #[test]
    fn rejects_missing_field() {
        let res = read_csv(&b"at_ns,offset,len,kind\n1,2\n"[..]);
        assert!(matches!(res, Err(TraceIoError::Parse { line: 2, .. })));
    }

    #[test]
    fn empty_lines_skipped() {
        let back = read_csv(&b"at_ns,offset,len,kind\n\n5,4096,512,U\n"[..]).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].kind, OpKind::Update);
    }
}
