//! Synthetic block-trace workloads calibrated to the statistics the paper
//! reports for its three trace families.
//!
//! The real Ali-Cloud, Ten-Cloud and MSR-Cambridge traces are large external
//! datasets; per the substitution rule, this crate generates synthetic
//! streams matching the **published statistics** that drive TSUE's results:
//!
//! | family | update ratio | ≤16 KiB | =4 KiB | locality |
//! |---|---|---|---|---|
//! | Ali-Cloud (§2.1) | 75 % of requests | 60 % | 46 % | Zipf hot set |
//! | Ten-Cloud (§2.1) | 69 % | 88 % | 69 % | very skewed: >80 % of datasets touch <5 % of volume |
//! | MSR-Cambridge (§2.1) | >90 % of writes | 90 % | ~60 % <4 KiB | per-volume presets |
//!
//! Spatio-temporal locality is the *mechanism* TSUE exploits (same-address
//! and adjacent-address merging), so the generator exposes it explicitly:
//! a Zipf popularity law over 4 KiB slots (temporal re-touch), a hot-region
//! split (spatial concentration), and a sequential-run probability
//! (adjacent-address merges).
//!
//! Every preset has unit tests asserting the generated stream reproduces the
//! table above within tolerance ([`stats`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod io;
pub mod stats;
pub mod workload;
pub mod zipf;

pub use workload::{ArrivalModel, TraceFamily, WorkloadGen, WorkloadParams};
pub use zipf::{AliasZipf, Zipf};

/// Request type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// First write to an address range (goes through the encode path).
    Write,
    /// Overwrite of previously written data (goes through the update path).
    Update,
    /// Read.
    Read,
}

/// One trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceOp {
    /// Arrival time offset in nanoseconds (0 for closed-loop replay).
    pub at_ns: u64,
    /// Byte offset within the workload's logical volume.
    pub offset: u64,
    /// Request length in bytes.
    pub len: u32,
    /// Request type.
    pub kind: OpKind,
}

impl TraceOp {
    /// End offset (exclusive).
    pub fn end(&self) -> u64 {
        self.offset + self.len as u64
    }

    /// Whether this is a write of either kind.
    pub fn is_write(&self) -> bool {
        matches!(self.kind, OpKind::Write | OpKind::Update)
    }
}
