//! Failure recovery (Fig. 8b): drain outstanding logs, then rebuild every
//! block of the failed scope — one node, or a whole rack — from `k`
//! survivors per stripe.
//!
//! The paper's §2.3.2 argument materialises here: methods that defer log
//! recycling must replay their logs *before* reconstruction can start, so
//! their effective recovery bandwidth drops; TSUE's real-time recycling
//! leaves almost nothing to drain and recovers at FO-like speed.
//!
//! Rack drills add the topology dimension: whether a rack failure is
//! recoverable at all depends on the [`crate::placement::PlacementPolicy`]
//! (rack-aware placement bounds a stripe's per-rack block count; the flat
//! default does not), and the rebuild streams cross the spine, so the
//! drill reports its spine traffic alongside the timing breakdown.

use simdes::Sim;
use simdisk::{IoOp, Pattern};

use crate::cluster::Cluster;
use crate::methods;

/// Outcome of a recovery drill.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryResult {
    /// Blocks rebuilt.
    pub blocks: usize,
    /// Bytes rebuilt.
    pub rebuilt_bytes: u64,
    /// Seconds spent draining logs before reconstruction.
    pub drain_s: f64,
    /// Seconds spent reconstructing.
    pub rebuild_s: f64,
    /// Effective recovery bandwidth, MiB/s, over drain + rebuild.
    pub bandwidth_mib_s: f64,
    /// Spine (cross-rack) traffic the drill itself generated, GiB. Zero on
    /// a flat topology.
    pub cross_rack_gib: f64,
}

/// A block that cannot be reconstructed: the failure scope ate into its
/// stripe beyond the code's `m`-erasure budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryError {
    /// The unreconstructible block.
    pub addr: crate::layout::BlockAddr,
    /// Survivors available for its stripe.
    pub survivors: usize,
    /// Survivors needed (`k`).
    pub needed: usize,
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "data loss: block {:?} has {} survivors but reconstruction needs {}",
            self.addr, self.survivors, self.needed
        )
    }
}

impl std::error::Error for RecoveryError {}

/// The Fig. 8b drill: drains logs, fails `node`, and reconstructs its
/// blocks onto the other nodes (round-robin). Returns the timing
/// breakdown.
///
/// # Panics
/// Panics if some stripe cannot be reconstructed (impossible for a single
/// node failure with `m >= 1`; use [`recover_scope`] for fallible drills).
pub fn recover_node(sim: &mut Sim<Cluster>, cl: &mut Cluster, node: usize) -> RecoveryResult {
    recover_scope(sim, cl, &[node]).expect("not enough survivors")
}

/// The top-of-rack-switch / PDU failure drill: drains outstanding logs
/// (the §2.3.2 consistency prerequisite — charged to the recovery clock,
/// like every drill here), then fails every node in `rack` simultaneously
/// and reconstructs cross-rack. Fails with [`RecoveryError`] when the
/// placement policy left more than `m` blocks of some stripe in the rack.
pub fn recover_rack(
    sim: &mut Sim<Cluster>,
    cl: &mut Cluster,
    rack: usize,
) -> Result<RecoveryResult, RecoveryError> {
    let victims: Vec<usize> = cl.layout.racks().members(rack).to_vec();
    recover_scope(sim, cl, &victims)
}

/// The general drill: drains logs, fails an arbitrary set of nodes, and
/// reconstructs every lost block from `k` survivors per stripe onto the
/// remaining live nodes, re-homing each rebuilt block in the layout.
/// Drills compose: nodes failed by earlier drills stay failed, and blocks
/// they lost are found at their rebuild targets.
pub fn recover_scope(
    sim: &mut Sim<Cluster>,
    cl: &mut Cluster,
    victims: &[usize],
) -> Result<RecoveryResult, RecoveryError> {
    assert!(!victims.is_empty(), "recovery needs a failure scope");
    let cross_before = cl.net.traffic().cross_rack_bytes();

    // Phase 1: logs must be consistent before reconstruction (§2.3.2).
    let drain_start = sim.now();
    methods::drain(sim, cl);
    sim.run(cl);
    let mut guard = 0;
    while methods::pending_log_bytes(cl) > 0 {
        methods::drain(sim, cl);
        sim.run(cl);
        guard += 1;
        assert!(guard < 1000, "drain did not converge");
    }
    let drain_end = sim.now();

    // Nodes downed by earlier drills stay down: they are neither survivors
    // nor rebuild targets for this one.
    let mut failed: Vec<bool> = cl.nodes.iter().map(|n| n.failed).collect();
    for &v in victims {
        cl.nodes[v].failed = true;
        failed[v] = true;
    }
    assert!(
        failed.iter().any(|&f| !f),
        "cannot fail every node in the cluster"
    );
    let mut lost = Vec::new();
    for &v in victims {
        lost.extend(cl.layout.blocks_on(v));
    }
    let block_bytes = cl.cfg.block_bytes;
    let k = cl.cfg.code.k();
    let anchor = victims[0];

    // Every stripe must still be reconstructible before any I/O is booked.
    // `locate` (not `node_of`) honours relocations from earlier drills:
    // a block rebuilt off a previously failed node counts as a survivor at
    // its new home.
    for (addr, _) in &lost {
        let survivors = (0..cl.cfg.code.total() as u16)
            .filter(|&idx| idx != addr.index)
            .filter(|&idx| {
                let saddr = crate::layout::BlockAddr {
                    volume: addr.volume,
                    stripe: addr.stripe,
                    index: idx,
                };
                !failed[cl.layout.locate(saddr).0]
            })
            .count();
        if survivors < k {
            return Err(RecoveryError {
                addr: *addr,
                survivors,
                needed: k,
            });
        }
    }

    // Phase 2: for each lost block, stream k survivor blocks to a rebuild
    // target and write the reconstruction sequentially.
    let mut t_end = drain_end;
    let mut rebuilt = 0u64;
    for (i, (addr, _)) in lost.iter().enumerate() {
        let target = {
            // Next live node round-robin.
            let mut t = (anchor + 1 + i) % cl.cfg.nodes;
            while failed[t] {
                t = (t + 1) % cl.cfg.nodes;
            }
            t
        };
        // Pick k survivor blocks of this stripe.
        let mut sources = Vec::with_capacity(k);
        for idx in 0..cl.cfg.code.total() as u16 {
            if idx == addr.index {
                continue;
            }
            let saddr = crate::layout::BlockAddr {
                volume: addr.volume,
                stripe: addr.stripe,
                index: idx,
            };
            let (snode, sdev) = cl.layout.locate(saddr);
            if failed[snode] {
                continue;
            }
            sources.push((snode, sdev));
            if sources.len() == k {
                break;
            }
        }
        debug_assert_eq!(sources.len(), k, "survivor pre-check missed a stripe");
        let mut ready = drain_end;
        for &(snode, sdev) in &sources {
            let t_read = cl.disk_io(
                snode,
                drain_end,
                IoOp::read(sdev, block_bytes, Pattern::Sequential),
            );
            let t_net = cl.send(t_read, snode, target, block_bytes);
            ready = ready.max(t_net);
        }
        // Decode (matrix multiply) is bandwidth-bound on memory: charge a
        // small per-byte cost, then write the rebuilt block.
        let decode_ns = block_bytes / 10; // ~10 bytes per ns ≈ 10 GB/s
        let rebuilt_off = cl.log_offset(target, block_bytes);
        let t_write = cl.disk_io(
            target,
            ready + decode_ns,
            IoOp::write(rebuilt_off, block_bytes, Pattern::Sequential),
        );
        // Re-home the block so later drills (and diagnostics) see it at
        // its rebuild target, not on the dead node.
        cl.layout.relocate(*addr, target, rebuilt_off);
        rebuilt += block_bytes;
        t_end = t_end.max(t_write);
    }

    let drain_s = simdes::units::as_secs_f64(drain_end.saturating_sub(drain_start));
    let rebuild_s = simdes::units::as_secs_f64(t_end.saturating_sub(drain_end));
    let total_s = drain_s + rebuild_s;
    let cross_after = cl.net.traffic().cross_rack_bytes();
    Ok(RecoveryResult {
        blocks: lost.len(),
        rebuilt_bytes: rebuilt,
        drain_s,
        rebuild_s,
        bandwidth_mib_s: if total_s > 0.0 {
            rebuilt as f64 / (1 << 20) as f64 / total_s
        } else {
            0.0
        },
        cross_rack_gib: (cross_after - cross_before) as f64 / (1u64 << 30) as f64,
    })
}
