//! Node-failure recovery (Fig. 8b): drain outstanding logs, then rebuild
//! every block of the failed node from `k` survivors per stripe.
//!
//! The paper's §2.3.2 argument materialises here: methods that defer log
//! recycling must replay their logs *before* reconstruction can start, so
//! their effective recovery bandwidth drops; TSUE's real-time recycling
//! leaves almost nothing to drain and recovers at FO-like speed.

use simdes::Sim;
use simdisk::{IoOp, Pattern};

use crate::cluster::Cluster;
use crate::methods;

/// Outcome of a recovery drill.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryResult {
    /// Blocks rebuilt.
    pub blocks: usize,
    /// Bytes rebuilt.
    pub rebuilt_bytes: u64,
    /// Seconds spent draining logs before reconstruction.
    pub drain_s: f64,
    /// Seconds spent reconstructing.
    pub rebuild_s: f64,
    /// Effective recovery bandwidth, MiB/s, over drain + rebuild.
    pub bandwidth_mib_s: f64,
}

/// Fails `node`, drains logs, and reconstructs its blocks onto the other
/// nodes (round-robin). Returns the timing breakdown.
pub fn recover_node(sim: &mut Sim<Cluster>, cl: &mut Cluster, node: usize) -> RecoveryResult {
    // Phase 1: logs must be consistent before reconstruction (§2.3.2).
    let drain_start = sim.now();
    methods::drain(sim, cl);
    sim.run(cl);
    let mut guard = 0;
    while methods::pending_log_bytes(cl) > 0 {
        methods::drain(sim, cl);
        sim.run(cl);
        guard += 1;
        assert!(guard < 1000, "drain did not converge");
    }
    let drain_end = sim.now();

    cl.nodes[node].failed = true;
    let lost = cl.layout.blocks_on(node);
    let block_bytes = cl.cfg.block_bytes;
    let k = cl.cfg.code.k();

    // Phase 2: for each lost block, stream k survivor blocks to a rebuild
    // target and write the reconstruction sequentially.
    let mut t_end = drain_end;
    let mut rebuilt = 0u64;
    for (i, (addr, _)) in lost.iter().enumerate() {
        let target = {
            // Next live node round-robin.
            let mut t = (node + 1 + i) % cl.cfg.nodes;
            while t == node {
                t = (t + 1) % cl.cfg.nodes;
            }
            t
        };
        // Pick k survivor blocks of this stripe.
        let mut sources = Vec::with_capacity(k);
        for idx in 0..cl.cfg.code.total() as u16 {
            if idx == addr.index {
                continue;
            }
            let saddr = crate::layout::BlockAddr {
                volume: addr.volume,
                stripe: addr.stripe,
                index: idx,
            };
            let (snode, sdev) = cl.layout.locate(saddr);
            if snode == node {
                continue;
            }
            sources.push((snode, sdev));
            if sources.len() == k {
                break;
            }
        }
        assert!(sources.len() >= k, "not enough survivors");
        let mut ready = drain_end;
        for &(snode, sdev) in &sources {
            let t_read = cl.disk_io(
                snode,
                drain_end,
                IoOp::read(sdev, block_bytes, Pattern::Sequential),
            );
            let t_net = cl.send(t_read, snode, target, block_bytes);
            ready = ready.max(t_net);
        }
        // Decode (matrix multiply) is bandwidth-bound on memory: charge a
        // small per-byte cost, then write the rebuilt block.
        let decode_ns = block_bytes / 10; // ~10 bytes per ns ≈ 10 GB/s
        let rebuilt_off = cl.log_offset(target, block_bytes);
        let t_write = cl.disk_io(
            target,
            ready + decode_ns,
            IoOp::write(rebuilt_off, block_bytes, Pattern::Sequential),
        );
        rebuilt += block_bytes;
        t_end = t_end.max(t_write);
    }

    let drain_s = simdes::units::as_secs_f64(drain_end.saturating_sub(drain_start));
    let rebuild_s = simdes::units::as_secs_f64(t_end.saturating_sub(drain_end));
    let total_s = drain_s + rebuild_s;
    RecoveryResult {
        blocks: lost.len(),
        rebuilt_bytes: rebuilt,
        drain_s,
        rebuild_s,
        bandwidth_mib_s: if total_s > 0.0 {
            rebuilt as f64 / (1 << 20) as f64 / total_s
        } else {
            0.0
        },
    }
}
