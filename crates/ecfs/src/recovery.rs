//! Failure recovery: post-replay drills (Fig. 8b) and the mid-replay
//! fault timeline — failures injected while clients are still issuing,
//! with a repair scheduler whose rebuild streams compete with foreground
//! traffic on the same disks and fabric.
//!
//! The paper's §2.3.2 argument materialises here: methods that defer log
//! recycling must replay their logs *before* reconstruction can start, so
//! their effective recovery bandwidth drops; TSUE's real-time recycling
//! leaves almost nothing to drain and recovers at FO-like speed.
//!
//! Rack drills add the topology dimension: whether a rack failure is
//! recoverable at all depends on the [`crate::placement::PlacementPolicy`]
//! (rack-aware placement bounds a stripe's per-rack block count; the flat
//! default does not), and the rebuild streams cross the spine, so the
//! drill reports its spine traffic alongside the timing breakdown.
//!
//! Every survivor read and rebuilt-block write books against the owning
//! node's **own** device from the per-node [`crate::DiskFleet`] — on a
//! heterogeneous fleet a rebuild targeting an HDD node runs at that
//! spindle's rate while flash survivors stream at theirs, so repair rates
//! reflect the *target* disk rather than one cluster-wide model.
//!
//! Mid-replay, [`inject_fault`] marks the scope dead and schedules
//! repair on the shared [`Sim`] timeline: after the plan's detection lag,
//! the method's outstanding log backlog is replayed
//! ([`crate::methods::UpdateMethod::drain_until`], the §2.3.2 gate), then
//! lost blocks rebuild one per event — every survivor read, repair
//! transfer ([`simnet::FlowClass::Repair`]), and rebuilt-block write is
//! booked at the simulation present, so it genuinely queues against
//! client I/O. Ops that reach a dead block in the meantime take the
//! degraded paths in [`crate::methods`].
//!
//! Modeling simplification: log state held by a dead node is treated as
//! recoverable (TSUE replicates its DataLog; the other methods' logs
//! stand in for journals with equivalent durability). TSUE's §2.3.2
//! replay scan is charged to the disks that actually perform it — a dead
//! node's backlog is re-read on its *replica holder*, whose queue then
//! contends with the foreground and repair traffic it is serving
//! (re-replicating the replica chain itself remains future work).
//!
//! A rebuild's *target* can also die while the rebuild is in flight
//! (overlapping faults): the pump re-checks the block's home at
//! completion and re-queues it for a fresh rebuild onto a live node
//! instead of declaring a dead-node write a repair.

use simdes::{Sim, SimTime};
use simdisk::{IoOp, Pattern};

use crate::cluster::Cluster;
use crate::fault::{FaultScope, InjectedFault};
use crate::layout::BlockAddr;
use crate::methods;

/// Outcome of a recovery drill.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryResult {
    /// Blocks rebuilt.
    pub blocks: usize,
    /// Bytes rebuilt.
    pub rebuilt_bytes: u64,
    /// Seconds spent draining logs before reconstruction.
    pub drain_s: f64,
    /// Seconds spent reconstructing.
    pub rebuild_s: f64,
    /// Effective recovery bandwidth, MiB/s, over drain + rebuild.
    pub bandwidth_mib_s: f64,
    /// Spine (cross-rack) traffic the drill itself generated, GiB. Zero on
    /// a flat topology.
    pub cross_rack_gib: f64,
}

/// A block that cannot be reconstructed: the failure scope ate into its
/// stripe beyond the code's `m`-erasure budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryError {
    /// The unreconstructible block.
    pub addr: crate::layout::BlockAddr,
    /// Survivors available for its stripe.
    pub survivors: usize,
    /// Survivors needed (`k`).
    pub needed: usize,
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "data loss: block {:?} has {} survivors but reconstruction needs {}",
            self.addr, self.survivors, self.needed
        )
    }
}

impl std::error::Error for RecoveryError {}

/// The Fig. 8b drill: drains logs, fails `node`, and reconstructs its
/// blocks onto the other nodes (round-robin). Returns the timing
/// breakdown.
///
/// # Panics
/// Panics if some stripe cannot be reconstructed (impossible for a single
/// node failure with `m >= 1`; use [`recover_scope`] for fallible drills).
pub fn recover_node(sim: &mut Sim<Cluster>, cl: &mut Cluster, node: usize) -> RecoveryResult {
    recover_scope(sim, cl, &[node]).expect("not enough survivors")
}

/// The top-of-rack-switch / PDU failure drill: drains outstanding logs
/// (the §2.3.2 consistency prerequisite — charged to the recovery clock,
/// like every drill here), then fails every node in `rack` simultaneously
/// and reconstructs cross-rack. Fails with [`RecoveryError`] when the
/// placement policy left more than `m` blocks of some stripe in the rack.
pub fn recover_rack(
    sim: &mut Sim<Cluster>,
    cl: &mut Cluster,
    rack: usize,
) -> Result<RecoveryResult, RecoveryError> {
    let victims: Vec<usize> = cl.layout.racks().members(rack).to_vec();
    recover_scope(sim, cl, &victims)
}

/// The general drill: drains logs, fails an arbitrary set of nodes, and
/// reconstructs every lost block from `k` survivors per stripe onto the
/// remaining live nodes, re-homing each rebuilt block in the layout.
/// Drills compose: nodes failed by earlier drills stay failed, and blocks
/// they lost are found at their rebuild targets.
pub fn recover_scope(
    sim: &mut Sim<Cluster>,
    cl: &mut Cluster,
    victims: &[usize],
) -> Result<RecoveryResult, RecoveryError> {
    assert!(!victims.is_empty(), "recovery needs a failure scope");
    let cross_before = cl.net.traffic().cross_rack_bytes();

    // Phase 1: logs must be consistent before reconstruction (§2.3.2).
    let drain_start = sim.now();
    methods::drain(sim, cl);
    sim.run(cl);
    let mut guard = 0;
    while methods::pending_log_bytes(cl) > 0 {
        methods::drain(sim, cl);
        sim.run(cl);
        guard += 1;
        assert!(guard < 1000, "drain did not converge");
    }
    let drain_end = sim.now();

    // Nodes downed by earlier drills stay down: they are neither survivors
    // nor rebuild targets for this one.
    let mut failed: Vec<bool> = cl.nodes.iter().map(|n| n.failed).collect();
    for &v in victims {
        cl.nodes[v].failed = true;
        failed[v] = true;
    }
    cl.faults.degraded_mode = true;
    assert!(
        failed.iter().any(|&f| !f),
        "cannot fail every node in the cluster"
    );
    let mut lost = Vec::new();
    for &v in victims {
        lost.extend(cl.layout.blocks_on(v));
    }
    let block_bytes = cl.cfg.block_bytes;
    let k = cl.cfg.code.k();
    let anchor = victims[0];

    // Every stripe must still be reconstructible before any I/O is booked.
    // `locate` (not `node_of`) honours relocations from earlier drills:
    // a block rebuilt off a previously failed node counts as a survivor at
    // its new home.
    for (addr, _) in &lost {
        let survivors = (0..cl.cfg.code.total() as u16)
            .filter(|&idx| idx != addr.index)
            .filter(|&idx| {
                let saddr = crate::layout::BlockAddr {
                    volume: addr.volume,
                    stripe: addr.stripe,
                    index: idx,
                };
                !failed[cl.layout.locate(saddr).0]
            })
            .count();
        if survivors < k {
            return Err(RecoveryError {
                addr: *addr,
                survivors,
                needed: k,
            });
        }
    }

    // Phase 2: for each lost block, stream k survivor blocks to a rebuild
    // target and write the reconstruction sequentially.
    let mut t_end = drain_end;
    let mut rebuilt = 0u64;
    for (i, (addr, _)) in lost.iter().enumerate() {
        let target = {
            // Next live node round-robin.
            let mut t = (anchor + 1 + i) % cl.cfg.nodes;
            while failed[t] {
                t = (t + 1) % cl.cfg.nodes;
            }
            t
        };
        // Pick k survivor blocks of this stripe.
        let mut sources = Vec::with_capacity(k);
        for idx in 0..cl.cfg.code.total() as u16 {
            if idx == addr.index {
                continue;
            }
            let saddr = crate::layout::BlockAddr {
                volume: addr.volume,
                stripe: addr.stripe,
                index: idx,
            };
            let (snode, sdev) = cl.layout.locate(saddr);
            if failed[snode] {
                continue;
            }
            sources.push((snode, sdev));
            if sources.len() == k {
                break;
            }
        }
        debug_assert_eq!(sources.len(), k, "survivor pre-check missed a stripe");
        let mut ready = drain_end;
        for &(snode, sdev) in &sources {
            let t_read = cl.disk_io(
                snode,
                drain_end,
                IoOp::read(sdev, block_bytes, Pattern::Sequential),
            );
            let t_net = cl.send(t_read, snode, target, block_bytes);
            ready = ready.max(t_net);
        }
        // Decode (matrix multiply) is bandwidth-bound on memory: charge a
        // small per-byte cost, then write the rebuilt block.
        let decode_ns = block_bytes / 10; // ~10 bytes per ns ≈ 10 GB/s
        let rebuilt_off = cl.log_offset(target, block_bytes);
        let t_write = cl.disk_io(
            target,
            ready + decode_ns,
            IoOp::write(rebuilt_off, block_bytes, Pattern::Sequential),
        );
        // Re-home the block so later drills (and diagnostics) see it at
        // its rebuild target, not on the dead node.
        cl.layout.relocate(*addr, target, rebuilt_off);
        rebuilt += block_bytes;
        t_end = t_end.max(t_write);
    }

    let drain_s = simdes::units::as_secs_f64(drain_end.saturating_sub(drain_start));
    let rebuild_s = simdes::units::as_secs_f64(t_end.saturating_sub(drain_end));
    let total_s = drain_s + rebuild_s;
    let cross_after = cl.net.traffic().cross_rack_bytes();
    Ok(RecoveryResult {
        blocks: lost.len(),
        rebuilt_bytes: rebuilt,
        drain_s,
        rebuild_s,
        bandwidth_mib_s: if total_s > 0.0 {
            rebuilt as f64 / (1 << 20) as f64 / total_s
        } else {
            0.0
        },
        cross_rack_gib: (cross_after - cross_before) as f64 / (1u64 << 30) as f64,
    })
}

/// Injects a failure *now*, mid-replay: marks the scope's nodes dead (ops
/// reaching them take the degraded path from this instant) and schedules
/// the repair to start after the fault plan's detection lag.
pub fn inject_fault(sim: &mut Sim<Cluster>, cl: &mut Cluster, scope: FaultScope) {
    let victims: Vec<usize> = match scope {
        FaultScope::Node(n) => vec![n],
        FaultScope::Rack(r) => cl.layout.racks().members(r).to_vec(),
    }
    .into_iter()
    .filter(|&v| !cl.nodes[v].failed)
    .collect();
    cl.faults.degraded_mode = true;
    for &v in &victims {
        cl.nodes[v].failed = true;
    }
    assert!(
        cl.nodes.iter().any(|n| !n.failed),
        "fault injection killed every node"
    );
    let idx = cl.faults.injected.len();
    cl.faults.injected.push(InjectedFault {
        at: sim.now(),
        victims,
        outstanding: 0,
        repair_done: None,
    });
    let delay = cl.faults.recovery_delay;
    sim.schedule(delay, move |sim, cl: &mut Cluster| {
        repair_start(sim, cl, idx);
    });
}

/// Starts the repair of injected fault `idx`: replays the log backlog
/// outstanding now (the §2.3.2 consistency gate — deferred-recycling
/// methods pay their whole backlog here, on a cluster still serving
/// clients), then enqueues the lost blocks for the rebuild pump.
fn repair_start(sim: &mut Sim<Cluster>, cl: &mut Cluster, idx: usize) {
    let gate = methods::drain_until(sim, cl);
    sim.schedule_at(gate.max(sim.now()), move |sim, cl: &mut Cluster| {
        enqueue_rebuilds(sim, cl, idx);
    });
}

fn enqueue_rebuilds(sim: &mut Sim<Cluster>, cl: &mut Cluster, idx: usize) {
    let victims = cl.faults.injected[idx].victims.clone();
    let mut lost: Vec<BlockAddr> = Vec::new();
    for v in victims {
        lost.extend(cl.layout.blocks_on(v).into_iter().map(|(a, _)| a));
    }
    if lost.is_empty() {
        let now = sim.now();
        cl.faults.injected[idx].repair_done = Some(now);
        return;
    }
    cl.faults.injected[idx].outstanding = lost.len();
    for addr in lost {
        cl.faults.queue.push_back((addr, idx));
    }
    pump_repair(sim, cl);
}

/// The rebuild pump: one lost block per event, so every booking lands at
/// the simulation present and queues against foreground I/O on the shared
/// disk and fabric resources. The next block starts when this one's
/// rebuild completes — or later, when the fault plan throttles repair
/// bandwidth.
fn pump_repair(sim: &mut Sim<Cluster>, cl: &mut Cluster) {
    if cl.faults.pump_active {
        return;
    }
    // Loop (not recursion): a rack failure can queue thousands of blocks
    // that are skipped (already re-homed inline) or unrecoverable in a
    // row, and each costs no simulated time.
    loop {
        let Some((addr, idx)) = cl.faults.queue.pop_front() else {
            return;
        };
        let now = sim.now();
        // An inline (write-triggered) rebuild may have re-homed the block
        // already; data-loss blocks are recorded and skipped.
        let home = cl.layout.current_node(addr);
        if !cl.nodes[home].failed {
            cl.faults.block_done(idx, now);
            continue;
        }
        match rebuild_block(cl, addr, now) {
            Ok(t_done) => {
                cl.faults.pump_active = true;
                let next = match cl.faults.repair_bandwidth {
                    Some(bw) => {
                        let pace = cl.cfg.block_bytes * simdes::units::SECS / bw.max(1);
                        t_done.max(now + pace)
                    }
                    None => t_done,
                };
                sim.schedule_at(next.max(now), move |sim, cl: &mut Cluster| {
                    cl.faults.pump_active = false;
                    // The rebuild target may itself have died while the
                    // rebuild was in flight (overlapping faults): the
                    // block is then still lost — re-queue it so the next
                    // pump round re-targets it onto a live node instead
                    // of declaring a dead-node write a repair.
                    if cl.nodes[cl.layout.current_node(addr)].failed {
                        cl.faults.retargeted_rebuilds += 1;
                        cl.faults.queue.push_back((addr, idx));
                    } else {
                        cl.faults.repaired_blocks += 1;
                        cl.faults.repaired_bytes += cl.cfg.block_bytes;
                        cl.faults.block_done(idx, sim.now());
                    }
                    pump_repair(sim, cl);
                });
                return;
            }
            Err(_) => {
                cl.faults.data_loss_blocks += 1;
                cl.faults.block_done(idx, now);
            }
        }
    }
}

/// Rebuilds one lost block from `k` survivors onto a live target and
/// re-homes it in the layout, booking every read, repair transfer, and
/// write starting at `from` on the shared resources. Returns the rebuild
/// completion time, or the data-loss report when fewer than `k` survivors
/// remain.
///
/// Shared by the background repair pump and the degraded write path
/// (write-triggered inline rebuilds).
pub(crate) fn rebuild_block(
    cl: &mut Cluster,
    addr: BlockAddr,
    from: SimTime,
) -> Result<SimTime, RecoveryError> {
    let block_bytes = cl.cfg.block_bytes;
    let survivors = select_survivors(cl, addr)?;
    let home = cl.layout.current_node(addr);
    let target = cl.next_live_target(home);
    let mut ready = from;
    for saddr in survivors {
        let (snode, sdev) = cl.layout.locate(saddr);
        let t_read = cl.disk_io(
            snode,
            from,
            IoOp::read(sdev, block_bytes, Pattern::Sequential),
        );
        let t_net = cl.send_repair(t_read, snode, target, block_bytes);
        ready = ready.max(t_net);
    }
    // Decode (matrix multiply) is bandwidth-bound on memory: charge a
    // small per-byte cost, then write the rebuilt block. A parity block
    // re-allocates its method-reserved adjacent extent (PLR's log space)
    // at the new home, so reserved-region replays stay within bounds.
    let decode_ns = block_bytes / 10; // ~10 bytes per ns ≈ 10 GB/s
    let span = if addr.is_data(cl.cfg.code) {
        block_bytes
    } else {
        block_bytes + cl.cfg.method.parity_reserved_bytes(&cl.cfg)
    };
    let rebuilt_off = cl.log_offset(target, span);
    let t_write = cl.disk_io(
        target,
        ready + decode_ns,
        IoOp::write(rebuilt_off, block_bytes, Pattern::Sequential),
    );
    cl.layout.relocate(addr, target, rebuilt_off);
    cl.trace_child(crate::telemetry::Stage::Repair, target, from, t_write);
    Ok(t_write)
}

/// Picks `k` surviving blocks of `addr`'s stripe (live current homes, in
/// stripe-index order — the deterministic selection shared by the repair
/// pump, inline rebuilds, and degraded reads), or reports data loss.
pub(crate) fn select_survivors(
    cl: &mut Cluster,
    addr: BlockAddr,
) -> Result<Vec<BlockAddr>, RecoveryError> {
    let k = cl.cfg.code.k();
    let mut survivors = Vec::with_capacity(k);
    for idx in 0..cl.cfg.code.total() as u16 {
        if idx == addr.index {
            continue;
        }
        let saddr = BlockAddr {
            volume: addr.volume,
            stripe: addr.stripe,
            index: idx,
        };
        if cl.nodes[cl.layout.current_node(saddr)].failed {
            continue;
        }
        survivors.push(saddr);
        if survivors.len() == k {
            break;
        }
    }
    if survivors.len() < k {
        return Err(RecoveryError {
            addr,
            survivors: survivors.len(),
            needed: k,
        });
    }
    Ok(survivors)
}
