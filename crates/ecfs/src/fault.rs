//! Fault plans: scheduled mid-replay failures as first-class simulation
//! events.
//!
//! A [`FaultPlan`] attaches to a [`crate::replay::ReplayConfig`] and turns
//! the replay into a unified fault timeline: at each [`FaultEvent`]'s
//! `at_ns` the scope's nodes are marked dead *while clients are still
//! issuing*, and after [`FaultPlan::recovery_delay_ns`] (the detection /
//! mon-election lag) a repair scheduler starts rebuilding the lost blocks
//! on the same [`simdes::Sim`] timeline as the foreground traffic — repair
//! reads and writes reserve the same disk and fabric resources clients
//! use, so rebuild interference is measured, not assumed.
//!
//! While a block's home node is dead and the block has not been re-homed
//! yet, ops targeting it take the degraded path (see
//! [`crate::methods::begin_read`] and friends): reads decode the lost
//! block from `k` survivors, updates first rebuild-and-relocate the block
//! inline. The empty plan is the default and changes nothing — a replay
//! without faults is byte-for-byte the pre-fault-timeline replay.

use std::collections::VecDeque;

use simdes::SimTime;

use crate::config::{ClusterConfig, ConfigError};
use crate::layout::BlockAddr;

/// What fails at a [`FaultEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultScope {
    /// A single OSD node.
    Node(usize),
    /// Every node of one rack (ToR switch / PDU failure).
    Rack(usize),
}

/// One scheduled failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Simulation time of the failure, nanoseconds from replay start.
    pub at_ns: u64,
    /// What fails.
    pub scope: FaultScope,
}

/// A schedule of failures plus the repair policy, validated like the rest
/// of the replay configuration. [`FaultPlan::default`] is the empty plan:
/// no failures, no repair scheduler, no behavioural change.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Scheduled failures.
    pub events: Vec<FaultEvent>,
    /// Lag between a failure and the start of its repair (failure
    /// detection, re-election, rebuild planning).
    pub recovery_delay_ns: u64,
    /// Repair pacing in bytes/s: the rebuild stream never moves data
    /// faster than this, bounding how hard repair can squeeze foreground
    /// traffic. `None` rebuilds as fast as the shared resources allow.
    pub repair_bandwidth: Option<u64>,
}

impl FaultPlan {
    /// The empty plan (no failures).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Whether the plan schedules no failures.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Adds a node failure at `at_ns` (builder-style).
    pub fn fail_node(mut self, at_ns: u64, node: usize) -> FaultPlan {
        self.events.push(FaultEvent {
            at_ns,
            scope: FaultScope::Node(node),
        });
        self
    }

    /// Adds a whole-rack failure at `at_ns` (builder-style).
    pub fn fail_rack(mut self, at_ns: u64, rack: usize) -> FaultPlan {
        self.events.push(FaultEvent {
            at_ns,
            scope: FaultScope::Rack(rack),
        });
        self
    }

    /// Sets the failure-detection lag before repair starts (builder-style).
    pub fn with_recovery_delay(mut self, delay_ns: u64) -> FaultPlan {
        self.recovery_delay_ns = delay_ns;
        self
    }

    /// Sets the repair-bandwidth throttle (builder-style).
    pub fn with_repair_bandwidth(mut self, bytes_per_sec: u64) -> FaultPlan {
        self.repair_bandwidth = Some(bytes_per_sec);
        self
    }

    /// Validates the plan against the cluster it will be injected into.
    pub fn validate(&self, cfg: &ClusterConfig) -> Result<(), ConfigError> {
        let mut dead = vec![false; cfg.nodes];
        for ev in &self.events {
            match ev.scope {
                FaultScope::Node(n) => {
                    if n >= cfg.nodes {
                        return Err(ConfigError(format!(
                            "fault plan fails node {n} but the cluster has {} nodes",
                            cfg.nodes
                        )));
                    }
                    dead[n] = true;
                }
                FaultScope::Rack(r) => {
                    if r >= cfg.racks {
                        return Err(ConfigError(format!(
                            "fault plan fails rack {r} but the cluster has {} racks",
                            cfg.racks
                        )));
                    }
                    let rm = cfg.rack_map();
                    for (n, d) in dead.iter_mut().enumerate() {
                        if rm.rack_of(n) == r {
                            *d = true;
                        }
                    }
                }
            }
        }
        if dead.iter().all(|&d| d) && !self.events.is_empty() {
            return Err("fault plan kills every node in the cluster".into());
        }
        if self.repair_bandwidth == Some(0) {
            return Err("repair_bandwidth must be positive".into());
        }
        Ok(())
    }
}

/// One injected failure, tracked from injection to repair completion.
#[derive(Debug, Clone)]
pub struct InjectedFault {
    /// When the failure fired.
    pub at: SimTime,
    /// The nodes that went down (excluding already-dead ones).
    pub victims: Vec<usize>,
    /// Lost blocks still awaiting rebuild by the repair scheduler.
    pub outstanding: usize,
    /// When the last lost block finished rebuilding (`None` while the
    /// repair is still running).
    pub repair_done: Option<SimTime>,
}

/// Runtime fault-timeline state carried by [`crate::cluster::Cluster`]:
/// injected failures, the repair queue, and the availability counters the
/// replay harvests into [`crate::replay::RunResult`].
#[derive(Debug, Clone, Default)]
pub struct FaultState {
    /// Whether any node has ever failed — the cheap gate on the degraded
    /// dispatch path (false = the exact pre-fault-timeline hot path).
    pub degraded_mode: bool,
    /// Detection lag copied from the plan.
    pub recovery_delay: SimTime,
    /// Repair pacing copied from the plan.
    pub repair_bandwidth: Option<u64>,
    /// Failures injected so far, in injection order.
    pub injected: Vec<InjectedFault>,
    /// Lost blocks queued for the repair scheduler, with the index of the
    /// fault that lost them.
    pub queue: VecDeque<(BlockAddr, usize)>,
    /// Whether a rebuild is currently in flight (the scheduler rebuilds
    /// one block per event so every booking happens at the simulation
    /// present, interleaved with foreground traffic).
    pub pump_active: bool,
    /// Rotation salt for rebuild-target selection.
    pub rebuild_seq: u64,
    /// Blocks rebuilt by the repair scheduler.
    pub repaired_blocks: u64,
    /// Bytes rebuilt by the repair scheduler.
    pub repaired_bytes: u64,
    /// Blocks rebuilt inline by the degraded update/write path (write
    /// triggered, ahead of the scheduler).
    pub inline_rebuilds: u64,
    /// Rebuilds whose *target* died while the rebuild was in flight and
    /// that were re-queued for a fresh target (overlapping faults).
    pub retargeted_rebuilds: u64,
    /// Lost blocks whose stripes fell below `k` survivors: data loss.
    pub data_loss_blocks: u64,
}

impl FaultState {
    /// Marks one queued rebuild of fault `idx` finished at `t`; closes the
    /// fault's degraded window when it was the last one.
    pub(crate) fn block_done(&mut self, idx: usize, t: SimTime) {
        let f = &mut self.injected[idx];
        f.outstanding = f.outstanding.saturating_sub(1);
        if f.outstanding == 0 && f.repair_done.is_none() {
            f.repair_done = Some(t);
        }
    }

    /// The degraded windows: `[fault, repair completion)` per injected
    /// fault, with `fallback_end` closing windows whose repair never
    /// finished (data loss, or the run ended first).
    pub fn windows(&self, fallback_end: SimTime) -> simdes::stats::WindowSet {
        let mut w = simdes::stats::WindowSet::new();
        for f in &self.injected {
            let end = f.repair_done.unwrap_or(fallback_end).max(f.at + 1);
            w.insert(f.at, end);
        }
        w
    }

    /// Worst repair completion time over all injected faults (MTTR),
    /// seconds; 0 when nothing was injected.
    pub fn mttr_s(&self, fallback_end: SimTime) -> f64 {
        self.injected
            .iter()
            .map(|f| {
                let end = f.repair_done.unwrap_or(fallback_end).max(f.at);
                simdes::units::as_secs_f64(end - f.at)
            })
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MethodKind;
    use rscode::CodeParams;

    fn cfg() -> ClusterConfig {
        let mut c = ClusterConfig::ssd_testbed(CodeParams::new(6, 3).unwrap(), MethodKind::Tsue);
        c.racks = 4;
        c
    }

    #[test]
    fn empty_plan_is_valid_and_empty() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert!(plan.validate(&cfg()).is_ok());
        assert_eq!(plan, FaultPlan::default());
    }

    #[test]
    fn builder_accumulates_events() {
        let plan = FaultPlan::new()
            .fail_node(1_000, 3)
            .fail_rack(2_000, 1)
            .with_recovery_delay(500)
            .with_repair_bandwidth(100 << 20);
        assert_eq!(plan.events.len(), 2);
        assert_eq!(plan.recovery_delay_ns, 500);
        assert_eq!(plan.repair_bandwidth, Some(100 << 20));
        assert!(plan.validate(&cfg()).is_ok());
    }

    #[test]
    fn out_of_range_scopes_rejected() {
        assert!(FaultPlan::new().fail_node(0, 16).validate(&cfg()).is_err());
        assert!(FaultPlan::new().fail_rack(0, 4).validate(&cfg()).is_err());
    }

    #[test]
    fn killing_every_node_rejected() {
        let mut plan = FaultPlan::new();
        for r in 0..4 {
            plan = plan.fail_rack(r as u64, r);
        }
        let err = plan.validate(&cfg()).unwrap_err();
        assert!(err.to_string().contains("every node"));
    }

    #[test]
    fn zero_repair_bandwidth_rejected() {
        let plan = FaultPlan::new().fail_node(0, 0).with_repair_bandwidth(0);
        assert!(plan.validate(&cfg()).is_err());
    }

    #[test]
    fn fault_state_windows_and_mttr() {
        let mut fs = FaultState::default();
        fs.injected.push(InjectedFault {
            at: 1_000_000_000,
            victims: vec![2],
            outstanding: 2,
            repair_done: None,
        });
        fs.block_done(0, 3_000_000_000);
        assert!(fs.injected[0].repair_done.is_none());
        fs.block_done(0, 4_000_000_000);
        assert_eq!(fs.injected[0].repair_done, Some(4_000_000_000));
        let w = fs.windows(0);
        assert!(w.contains(2_000_000_000));
        assert!(!w.contains(4_000_000_001));
        assert!((fs.mttr_s(0) - 3.0).abs() < 1e-9);
    }
}
