//! PL — Parity Logging (Stodolsky et al.): in-place data update, parity
//! deltas appended to per-device parity logs; recycle deferred until a
//! space threshold or a failure (§2.2).
//!
//! PL's strength on SSDs is exactly this deferral: "PL's extensive parity
//! log space allows recycling to be indefinitely delayed without affecting
//! update performance" (§5.2) — so during a run PL pays only the data-block
//! write-after-read plus `m` sequential log appends. The cost surfaces at
//! drain/recovery time, when every logged delta is read-modify-written into
//! its parity block *without* locality merging.

use simdes::{Sim, SimTime};
use simdisk::{IoOp, Pattern};

use crate::cluster::Cluster;
use crate::config::ClusterConfig;
use crate::layout::BlockAddr;
use crate::methods::{NodeLogState, UpdateCtx, UpdateMethod};
use crate::telemetry::{OpClass, Stage};

/// The Parity-Logging driver.
#[derive(Debug, Clone, Copy, Default)]
pub struct Pl;

/// One logged parity delta.
#[derive(Debug, Clone, Copy)]
pub struct PlRecord {
    /// The parity block the delta belongs to.
    pub parity: BlockAddr,
    /// Offset within the parity block.
    pub offset: u32,
    /// Delta length.
    pub len: u32,
}

/// Per-node parity-log state.
#[derive(Debug, Default)]
pub struct PlState {
    /// Appended deltas in arrival order (PL does not index or merge them).
    pub records: Vec<PlRecord>,
    /// Raw logged bytes.
    pub bytes: u64,
}

impl NodeLogState for PlState {
    fn pending_bytes(&self) -> u64 {
        self.bytes
    }
}

impl UpdateMethod for Pl {
    fn name(&self) -> &str {
        "PL"
    }

    fn new_node_state(&self, _cfg: &ClusterConfig) -> Box<dyn NodeLogState> {
        Box::<PlState>::default()
    }

    fn begin_update(&self, sim: &mut Sim<Cluster>, cl: &mut Cluster, ctx: UpdateCtx) {
        let slice = ctx.slice;
        let len = slice.len as u64;
        let (dnode, ddev) = cl.layout.locate(slice.addr);
        let client_ep = cl.cfg.client_endpoint(ctx.client);

        let t_arrive = cl.send(ctx.start_at, client_ep, dnode, len);
        // Write-after-read on the data block.
        let off = ddev + slice.offset as u64;
        let t_read = cl.disk_io(dnode, t_arrive, IoOp::read(off, len, Pattern::Random));
        let t_write = cl.disk_io(dnode, t_read, IoOp::write(off, len, Pattern::Random));
        cl.oracle_apply_data(slice.addr, slice.offset, slice.len);

        // Parity deltas go to logs: sequential appends.
        let mut t_done = t_write;
        for paddr in cl.layout.parity_addrs(slice.addr.volume, slice.addr.stripe) {
            let (pnode, _) = cl.layout.locate(paddr);
            let t_delta = cl.send(t_write, dnode, pnode, len);
            let log_off = cl.log_offset(pnode, len);
            let t_append = cl.disk_io(
                pnode,
                t_delta,
                IoOp::write(log_off, len, Pattern::Sequential),
            );
            if let Some(state) = cl.nodes[pnode].state.downcast_mut::<PlState>() {
                state.records.push(PlRecord {
                    parity: paddr,
                    offset: slice.offset,
                    len: slice.len,
                });
                state.bytes += len;
            }
            t_done = t_done.max(t_append);
        }

        let t_ack = cl.ack(t_done, dnode, client_ep);
        cl.oracle_ack(slice.addr, slice.offset, slice.len);
        cl.trace_op(
            &ctx,
            OpClass::Update,
            &[
                (Stage::NetSend, t_arrive),
                (Stage::DiskIo, t_write),
                (Stage::LogAppend, t_done),
                (Stage::Ack, t_ack),
            ],
        );
        cl.finish_update(sim, ctx, t_ack);
    }

    fn drain(&self, sim: &mut Sim<Cluster>, cl: &mut Cluster) {
        self.drain_until(sim, cl);
    }

    fn drain_until(&self, sim: &mut Sim<Cluster>, cl: &mut Cluster) -> SimTime {
        let now = sim.now();
        let mut t_end = now;
        for node in 0..cl.cfg.nodes {
            let t_node = recycle_node(cl, node, now);
            if t_node > now {
                cl.trace_child(Stage::Recycle, node, now, t_node);
            }
            t_end = t_end.max(t_node);
        }
        // Advance the clock to the drain's completion.
        sim.schedule_at(t_end, |_, _| {});
        t_end
    }
}

/// Recycles the parity log of one node starting at `from`; returns the
/// completion time. Every record costs a random read of the logged delta
/// plus a read-modify-write of the parity block — PL's recycle storm.
pub fn recycle_node(cl: &mut Cluster, node: usize, from: SimTime) -> SimTime {
    let records = match cl.nodes[node].state.downcast_mut::<PlState>() {
        Some(state) => {
            let r = std::mem::take(&mut state.records);
            state.bytes = 0;
            r
        }
        None => return from,
    };
    let mut t = from;
    for rec in records {
        let len = rec.len as u64;
        // Read the delta back from the log (random: the log interleaves
        // deltas of many parity blocks).
        let log_off = cl.log_offset(node, len);
        let mut t_delta = cl.disk_io(node, t, IoOp::read(log_off, len, Pattern::Random));
        let (pnode, pdev) = cl.layout.locate(rec.parity);
        // A failure may have re-homed the parity block since the delta was
        // logged: the replayed delta then crosses the network to the
        // block's rebuild target.
        if pnode != node {
            t_delta = cl.send(t_delta, node, pnode, len);
        }
        let poff = pdev + rec.offset as u64;
        t = cl.disk_io(pnode, t_delta, IoOp::read(poff, len, Pattern::Random));
        t = cl.disk_io(pnode, t, IoOp::write(poff, len, Pattern::Random));
        cl.oracle_apply_parity(rec.parity, rec.offset, rec.len);
    }
    t
}
