//! TSUE — the paper's two-stage update method, driven over the DES cluster.
//!
//! Front end (§3.1.1): the update is appended to the data node's DataLog
//! (memory + sequential SSD persist) and to a replica log on a second node;
//! the client is acked as soon as both appends land. No read, no in-place
//! write, no parity work on the critical path.
//!
//! Back end (§3.1.2): sealed DataLog units are recycled in real time —
//! merged ranges fold into data blocks (one write-after-read per *merged*
//! range, not per update), deltas flow to the DeltaLog on the first parity
//! node (with a copy on the second), stripe-merged parity deltas (Eq. 5)
//! flow to each ParityLog, and finally fold into parity blocks.
//!
//! The [`crate::config::TsueFeatures`] toggles reproduce the Fig. 7
//! breakdown: without `data_locality`/`parity_locality` the recycle pays
//! per-*record* I/O instead of per-merged-range; without `log_pool` a
//! node's appends stall while it recycles; without `delta_log` parity
//! deltas fan out to all `m` parity logs with no cross-block merging.

use simdes::{Sim, SimTime};
use simdisk::{IoOp, Pattern};

use std::collections::HashMap;

use crate::cluster::Cluster;
use crate::config::ClusterConfig;
use crate::layout::BlockAddr;
use crate::methods::{self, NodeLogState, UpdateCtx, UpdateMethod};
use crate::telemetry::{OpClass, Stage};
use tsue::layers::{
    group_delta_jobs, group_parity_jobs, union_ranges, LogPoolSet, ParityKey, StripeBlock,
};
use tsue::payload::Ghost;
use tsue::pool::AppendOutcome;
use tsue::MergeMode;

/// The paper's two-stage update driver.
#[derive(Debug, Clone, Copy, Default)]
pub struct Tsue;

impl UpdateMethod for Tsue {
    fn name(&self) -> &str {
        "TSUE"
    }

    fn new_node_state(&self, cfg: &ClusterConfig) -> Box<dyn NodeLogState> {
        Box::new(TsueState::new(cfg))
    }

    fn begin_update(&self, sim: &mut Sim<Cluster>, cl: &mut Cluster, ctx: UpdateCtx) {
        begin_update(sim, cl, ctx);
    }

    fn drain(&self, sim: &mut Sim<Cluster>, cl: &mut Cluster) {
        drain(sim, cl);
    }

    fn drain_until(&self, sim: &mut Sim<Cluster>, cl: &mut Cluster) -> SimTime {
        // TSUE recycles in real time, so the backlog at a failure is at
        // most the active log units. The recycle chains are event-driven
        // (their exact completion is not known up front), so the recovery
        // gate charges the backlog at a conservative replay rate — the
        // paper's point survives intact: this is typically megabytes,
        // versus the gigabytes deferred methods must replay.
        let now = sim.now();
        let backlog = methods::pending_log_bytes(cl);
        // Charge the replay scan to the disks that actually perform it:
        // each node's pending log bytes are re-read sequentially from
        // its log region — and a *dead* node's backlog is scanned on its
        // replica holder (§2.3.2), whose queue then contends with the
        // foreground and repair traffic it is serving.
        let mut gate = now;
        for node in 0..cl.cfg.nodes {
            let pending = cl.nodes[node].state.pending_bytes();
            if pending == 0 {
                continue;
            }
            let replayer = if cl.nodes[node].failed {
                replica_of(cl, node)
            } else {
                node
            };
            let cap = cl.nodes[replayer].disk.capacity();
            let base = cap / 4 * 3;
            let len = pending.min(cap - base);
            let t = cl.disk_io(replayer, now, IoOp::read(base, len, Pattern::Sequential));
            gate = gate.max(t);
        }
        drain(sim, cl);
        // ~2 GB/s merge CPU on top of the booked scan, plus one
        // scheduling quantum.
        gate.max(now + backlog / 2) + simdes::units::MILLIS
    }
}

/// Layer indices for the pending-bytes ledger.
const DATA: usize = 0;
/// DeltaLog ledger slot.
const DELTA: usize = 1;
/// ParityLog ledger slot.
const PARITY: usize = 2;

/// Per-node TSUE state: the three log-pool sets plus bookkeeping.
pub struct TsueState {
    /// DataLog pools (keyed by data-block key).
    pub data: LogPoolSet<u64, Ghost>,
    /// DeltaLog pools (keyed by stripe + data block index).
    pub delta: LogPoolSet<StripeBlock, Ghost>,
    /// ParityLog pools (keyed by stripe + parity index).
    pub parity: LogPoolSet<ParityKey, Ghost>,
    /// Data-block address per DataLog key.
    pub addr_of: HashMap<u64, BlockAddr>,
    /// Recycles in flight per layer (drives the O3-off exclusivity and the
    /// drain loop).
    pub recycling: [u32; 3],
    /// Bytes appended minus bytes recycled, per layer.
    pub pending: [u64; 3],
}

impl TsueState {
    /// Builds the per-node log structures for the configured features.
    pub fn new(cfg: &ClusterConfig) -> TsueState {
        let pools = cfg.tsue_pools_per_layer();
        TsueState {
            data: LogPoolSet::new(pools, cfg.tsue_pool_cfg(MergeMode::Overwrite)),
            delta: LogPoolSet::new(pools, cfg.tsue_pool_cfg(MergeMode::Xor)),
            parity: LogPoolSet::new(pools, cfg.tsue_pool_cfg(MergeMode::Xor)),
            addr_of: HashMap::new(),
            recycling: [0; 3],
            pending: [0; 3],
        }
    }

    /// Bytes still buffered across the three layers.
    pub fn buffered_bytes(&self) -> u64 {
        self.pending.iter().sum()
    }

    /// Total log memory footprint.
    pub fn log_memory_bytes(&self) -> u64 {
        self.data.memory_bytes() + self.delta.memory_bytes() + self.parity.memory_bytes()
    }
}

impl NodeLogState for TsueState {
    fn pending_bytes(&self) -> u64 {
        self.buffered_bytes()
    }

    fn memory_bytes(&self) -> u64 {
        self.log_memory_bytes()
    }

    fn read_cache_covers(&mut self, addr: BlockAddr, offset: u32, len: u32) -> bool {
        let key = addr.key();
        self.data
            .lookup(&key, offset, len)
            .iter()
            .map(|(_, g)| g.0 as u64)
            .sum::<u64>()
            >= len as u64
    }
}

fn tsue_state(cl: &mut Cluster, node: usize) -> &mut TsueState {
    cl.nodes[node]
        .state
        .downcast_mut::<TsueState>()
        .expect("TSUE driver on non-TSUE node")
}

/// The replica node for a data log: the next live OSD on the ring — or,
/// when the maintenance plan pins appends to flash
/// ([`crate::maintenance::DemoteConfig::pin_appends`]), the next live
/// *flash* OSD, so the synchronous replica append never waits on a
/// spindle seek. Without an armed plan the flag is false and the path
/// is byte-for-byte the plain ring walk.
fn replica_of(cl: &Cluster, node: usize) -> usize {
    let n = cl.cfg.nodes;
    let mut r = (node + 1) % n;
    if cl.maint.pin_appends {
        let mut f = r;
        for _ in 0..n {
            if f != node && !cl.nodes[f].failed && cl.cfg.fleet.is_ssd(f) {
                return f;
            }
            f = (f + 1) % n;
        }
        // No live flash node left: fall back to the plain ring walk.
    }
    let mut guard = 0;
    while cl.nodes[r].failed {
        r = (r + 1) % n;
        guard += 1;
        assert!(guard <= n, "no live replica node");
    }
    r
}

/// Runs one TSUE update (front end only; the back end self-schedules).
fn begin_update(sim: &mut Sim<Cluster>, cl: &mut Cluster, ctx: UpdateCtx) {
    let slice = ctx.slice;
    let len = slice.len as u64;
    let (dnode, _) = cl.layout.locate(slice.addr);
    let client_ep = cl.cfg.client_endpoint(ctx.client);

    // O3 off: single log — appends are exclusive with recycling.
    if !cl.cfg.tsue.log_pool {
        let busy = cl.nodes[dnode]
            .state
            .downcast_ref::<TsueState>()
            .is_some_and(|ts| ts.recycling[DATA] > 0);
        if busy {
            cl.park_on(
                dnode,
                Box::new(move |sim, cl| methods::begin_update(sim, cl, ctx)),
            );
            return;
        }
    }

    let t_arrive = cl.send(ctx.start_at, client_ep, dnode, len);
    let key = slice.addr.key();

    // Append to the DataLog.
    let outcome = {
        let ts = tsue_state(cl, dnode);
        ts.addr_of.insert(key, slice.addr);
        let (_, out) = ts
            .data
            .append(key, slice.offset, Ghost(slice.len), t_arrive);
        if !matches!(out, AppendOutcome::Stalled) {
            ts.pending[DATA] += len;
        }
        out
    };
    if matches!(outcome, AppendOutcome::Stalled) {
        // Quota exhausted: the client's update waits for a recycle.
        cl.park_on(
            dnode,
            Box::new(move |sim, cl| methods::begin_update(sim, cl, ctx)),
        );
        // Make sure a recycle is actually running.
        schedule_data_recycle(sim, cl, dnode, sim.now());
        return;
    }

    // Persist locally (sequential) and on the replica node.
    let log_off = cl.log_offset(dnode, len);
    let t_local = cl.disk_io(
        dnode,
        t_arrive,
        IoOp::write(log_off, len, Pattern::Sequential),
    );
    cl.metrics
        .data_residency
        .append
        .record(t_local.saturating_sub(t_arrive));

    let rnode = replica_of(cl, dnode);
    let t_rsend = cl.send(t_arrive, dnode, rnode, len);
    let rlog_off = cl.log_offset(rnode, len);
    let t_replica = cl.disk_io(
        rnode,
        t_rsend,
        IoOp::write(rlog_off, len, Pattern::Sequential),
    );

    if let AppendOutcome::AppendedAndSealed(_) = outcome {
        schedule_data_recycle(sim, cl, dnode, t_local);
    }

    let t_ack = cl.ack(t_local.max(t_replica), dnode, client_ep);
    if std::env::var("TSUE_TRACE_OPS").is_ok() && ctx.client == 0 {
        eprintln!(
            "op: issue={} arrive=+{} local=+{} replica=+{} ack=+{}",
            ctx.issued_at,
            t_arrive - ctx.issued_at,
            t_local.saturating_sub(t_arrive),
            t_replica.saturating_sub(t_arrive),
            t_ack.saturating_sub(t_local.max(t_replica)),
        );
    }
    cl.oracle_ack(slice.addr, slice.offset, slice.len);
    // The replica append is TSUE's redundancy work on the critical path —
    // charged to ParityIo so cross-method waterfalls compare like for like
    // (FO's parity RMW vs TSUE's replicated sequential append).
    cl.trace_op(
        &ctx,
        OpClass::Update,
        &[
            (Stage::NetSend, t_arrive),
            (Stage::LogAppend, t_local),
            (Stage::ParityIo, t_local.max(t_replica)),
            (Stage::Ack, t_ack),
        ],
    );
    cl.finish_update(sim, ctx, t_ack);
}

fn schedule_data_recycle(sim: &mut Sim<Cluster>, _cl: &mut Cluster, node: usize, at: SimTime) {
    sim.schedule_at(at.max(sim.now()), move |sim, cl: &mut Cluster| {
        recycle_data(sim, cl, node);
    });
}

fn schedule_delta_recycle(sim: &mut Sim<Cluster>, node: usize, at: SimTime) {
    sim.schedule_at(at.max(sim.now()), move |sim, cl: &mut Cluster| {
        recycle_delta(sim, cl, node);
    });
}

fn schedule_parity_recycle(sim: &mut Sim<Cluster>, node: usize, at: SimTime) {
    sim.schedule_at(at.max(sim.now()), move |sim, cl: &mut Cluster| {
        recycle_parity(sim, cl, node);
    });
}

/// DataLog recycle: one unit per invocation.
pub fn recycle_data(sim: &mut Sim<Cluster>, cl: &mut Cluster, node: usize) {
    let now = sim.now();
    let taken = {
        let ts = tsue_state(cl, node);
        // Units recycle concurrently (the paper's recycle thread pool);
        // per-block ordering is preserved by routing one block's records to
        // one thread, which the coverage-level simulation inherits.
        let taken = ts.data.take_recyclable_any();
        if taken.is_some() {
            ts.recycling[DATA] += 1;
        }
        taken
    };
    let Some((pool_idx, taken)) = taken else {
        return;
    };
    if let Some(first) = taken.first_append_at {
        cl.metrics
            .data_residency
            .buffer
            .record(now.saturating_sub(first));
    }

    let use_merged = cl.cfg.tsue.data_locality;
    // Recycle-thread CPU: every raw record is walked once (index scan,
    // merge bookkeeping, checksum) before the merged I/O is issued.
    let cpu = taken.records * cl.cfg.tsue_recycle_cpu_per_record;
    let start = cl.nodes[node].recycle_cpu.reserve(now, cpu);
    let range_total: u64 = taken
        .contents
        .iter()
        .map(|(_, rs)| rs.len() as u64)
        .sum::<u64>()
        .max(1);
    // O1-off per-record cost, distributed over ranges so the chain paces.
    let ops_per_range = (taken.records / range_total).max(1);
    let avg = (taken.bytes / taken.records.max(1)).max(1);

    // Process block by block: write-after-read the merged ranges, then
    // forward that block's deltas immediately — sends pace out across the
    // recycle window instead of bursting on the egress link at the end.
    let mut t_end = start;
    let mut t_io = start;
    for (key, ranges) in &taken.contents {
        let addr = tsue_state(cl, node).addr_of[key];
        let (bnode, bdev) = cl.layout.locate(addr);
        for (off, g) in ranges {
            let len = g.0 as u64;
            if use_merged {
                // A failure may have re-homed the block since its updates
                // were logged: the merged range is then folded at its
                // rebuild target, one network hop away.
                let boff = bdev + *off as u64;
                let t_at = if bnode != node {
                    cl.send(t_io, node, bnode, len)
                } else {
                    t_io
                };
                let t_r = cl.disk_io(bnode, t_at, IoOp::read(boff, len, Pattern::Random));
                t_io = cl.disk_io(bnode, t_r, IoOp::write(boff, len, Pattern::Random));
            } else {
                // O1 off: write-after-read per raw record, not per range.
                for _ in 0..ops_per_range {
                    let roff = cl.log_offset(node, avg);
                    let t_r = cl.disk_io(node, t_io, IoOp::read(roff, avg, Pattern::Random));
                    t_io = cl.disk_io(node, t_r, IoOp::write(roff, avg, Pattern::Random));
                }
            }
            cl.oracle_apply_data(addr, *off, g.0);
        }
        // Forward this block's deltas once its I/O completes. Scheduling a
        // real event (instead of forward-booking the network now) keeps
        // link reservations at the simulation present, so foreground
        // traffic is never falsely queued behind far-future bookings.
        let ranges_owned: Vec<(u32, Ghost)> = ranges.clone();
        cl.forwards_in_flight += 1;
        sim.schedule_at(t_io.max(now), move |sim, cl: &mut Cluster| {
            cl.forwards_in_flight -= 1;
            forward_block_deltas(sim, cl, node, addr, &ranges_owned);
        });
    }
    t_end = t_end.max(t_io);
    cl.trace_child(Stage::Recycle, node, now, t_end.max(now));

    // Finish: free the unit, wake stalled clients, account residency.
    let unit_id = taken.id;
    let bytes = taken.bytes;
    sim.schedule_at(t_end.max(now), move |sim, cl: &mut Cluster| {
        let more = {
            let ts = tsue_state(cl, node);
            ts.data.pool_mut(pool_idx).finish_recycle(unit_id);
            ts.recycling[DATA] -= 1;
            ts.pending[DATA] = ts.pending[DATA].saturating_sub(bytes);
            ts.data
                .pool(pool_idx)
                .count_state(tsue::UnitState::Recyclable)
                > 0
        };
        cl.metrics
            .data_residency
            .recycle
            .record(sim.now().saturating_sub(now));
        cl.wake_waiters(sim, node);
        if more {
            recycle_data(sim, cl, node);
        }
    });
}

/// Forwards one recycled block's data deltas downstream at the simulation
/// present: to the first parity node's DeltaLog (with a copy on the second)
/// when the DeltaLog is enabled, otherwise straight to every ParityLog.
fn forward_block_deltas(
    sim: &mut Sim<Cluster>,
    cl: &mut Cluster,
    node: usize,
    addr: BlockAddr,
    ranges: &[(u32, Ghost)],
) {
    let now = sim.now();
    let delta_log_on = cl.cfg.tsue.delta_log && cl.cfg.code.m() >= 2;
    let skey = cl.stripe_id(addr.volume, addr.stripe);
    let parity_addrs = cl.layout.parity_addrs(addr.volume, addr.stripe);
    if delta_log_on {
        // Delta to the first parity node's DeltaLog + copy on second.
        let (p1, _) = cl.layout.locate(parity_addrs[0]);
        let (p2, _) = cl.layout.locate(parity_addrs[1]);
        for (off, g) in ranges {
            let len = g.0 as u64;
            let t_send = cl.send(now, node, p1, len);
            let plog = cl.log_offset(p1, len);
            let t_persist = cl.disk_io(p1, t_send, IoOp::write(plog, len, Pattern::Sequential));
            cl.metrics
                .delta_residency
                .append
                .record(t_persist.saturating_sub(t_send));
            let sealed = {
                let ts1 = tsue_state(cl, p1);
                ts1.pending[DELTA] += len;
                let sb = StripeBlock {
                    stripe: skey,
                    block_idx: addr.index,
                };
                let (_, out) = ts1.delta.append_overflow(sb, *off, Ghost(g.0), t_send);
                matches!(out, AppendOutcome::AppendedAndSealed(_))
            };
            if sealed {
                schedule_delta_recycle(sim, p1, t_persist);
            }
            // Copy on the second parity node: disk + net only.
            let t_send2 = cl.send(now, node, p2, len);
            let plog2 = cl.log_offset(p2, len);
            cl.disk_io(p2, t_send2, IoOp::write(plog2, len, Pattern::Sequential));
        }
    } else {
        // O5 off: parity deltas straight to every parity node's log.
        for (p, paddr) in parity_addrs.iter().enumerate() {
            let (pn, _) = cl.layout.locate(*paddr);
            for (off, g) in ranges {
                let len = g.0 as u64;
                let t_send = cl.send(now, node, pn, len);
                let plog = cl.log_offset(pn, len);
                let t_persist = cl.disk_io(pn, t_send, IoOp::write(plog, len, Pattern::Sequential));
                let sealed = {
                    let tsp = tsue_state(cl, pn);
                    tsp.pending[PARITY] += len;
                    let pk = ParityKey {
                        stripe: skey,
                        parity_idx: p as u16,
                    };
                    let (_, out) = tsp.parity.append_overflow(pk, *off, Ghost(g.0), t_send);
                    matches!(out, AppendOutcome::AppendedAndSealed(_))
                };
                if sealed {
                    schedule_parity_recycle(sim, pn, t_persist);
                }
            }
        }
    }
}

/// DeltaLog recycle: one unit per invocation (Eq. 5 merge per stripe).
pub fn recycle_delta(sim: &mut Sim<Cluster>, cl: &mut Cluster, node: usize) {
    let now = sim.now();
    let taken = {
        let ts = tsue_state(cl, node);
        let taken = ts.delta.take_recyclable_any();
        if taken.is_some() {
            ts.recycling[DELTA] += 1;
        }
        taken
    };
    let Some((pool_idx, taken)) = taken else {
        return;
    };
    if let Some(first) = taken.first_append_at {
        cl.metrics
            .delta_residency
            .buffer
            .record(now.saturating_sub(first));
    }

    let cpu = taken.records * cl.cfg.tsue_recycle_cpu_per_record;
    let start = cl.nodes[node].recycle_cpu.reserve(now, cpu);
    let t_end = start;
    // Eq. 5 combination happens on the recycle thread; the combined parity
    // deltas are shipped by a properly-timed event at CPU completion so
    // network reservations stay at the simulation present.
    let jobs = group_delta_jobs(taken.contents.clone());
    cl.forwards_in_flight += 1;
    sim.schedule_at(start.max(now), move |sim, cl: &mut Cluster| {
        cl.forwards_in_flight -= 1;
        forward_stripe_deltas(sim, cl, node, &jobs);
    });
    cl.trace_child(Stage::Recycle, node, now, t_end.max(now));

    let unit_id = taken.id;
    let bytes = taken.bytes;
    sim.schedule_at(t_end.max(now), move |sim, cl: &mut Cluster| {
        let more = {
            let ts = tsue_state(cl, node);
            ts.delta.pool_mut(pool_idx).finish_recycle(unit_id);
            ts.recycling[DELTA] -= 1;
            ts.pending[DELTA] = ts.pending[DELTA].saturating_sub(bytes);
            ts.delta
                .pool(pool_idx)
                .count_state(tsue::UnitState::Recyclable)
                > 0
        };
        cl.metrics
            .delta_residency
            .recycle
            .record(sim.now().saturating_sub(now));
        cl.wake_waiters(sim, node);
        if more {
            recycle_delta(sim, cl, node);
        }
    });
}

/// Ships combined (Eq. 5) parity deltas to every parity node's ParityLog.
fn forward_stripe_deltas(
    sim: &mut Sim<Cluster>,
    cl: &mut Cluster,
    node: usize,
    jobs: &[tsue::layers::StripeDeltaJob<Ghost>],
) {
    let now = sim.now();
    let m = cl.cfg.code.m();
    for job in jobs {
        let (volume, stripe) = cl.stripe_names[&job.stripe];
        // Eq. 5: one combined parity delta per union range per parity.
        let union = union_ranges(&job.deltas);
        for p in 0..m as u16 {
            let paddr = BlockAddr {
                volume,
                stripe,
                index: cl.cfg.code.k() as u16 + p,
            };
            let (pn, _) = cl.layout.locate(paddr);
            for &(off, len) in &union {
                let blen = len as u64;
                let t_send = cl.send(now, node, pn, blen);
                let plog = cl.log_offset(pn, blen);
                let t_persist =
                    cl.disk_io(pn, t_send, IoOp::write(plog, blen, Pattern::Sequential));
                cl.metrics
                    .parity_residency
                    .append
                    .record(t_persist.saturating_sub(t_send));
                let sealed = {
                    let tsp = tsue_state(cl, pn);
                    tsp.pending[PARITY] += blen;
                    let pk = ParityKey {
                        stripe: job.stripe,
                        parity_idx: p,
                    };
                    let (_, out) = tsp.parity.append_overflow(pk, off, Ghost(len), t_send);
                    matches!(out, AppendOutcome::AppendedAndSealed(_))
                };
                if sealed {
                    schedule_parity_recycle(sim, pn, t_persist);
                }
            }
        }
    }
}

/// ParityLog recycle: one unit per invocation.
pub fn recycle_parity(sim: &mut Sim<Cluster>, cl: &mut Cluster, node: usize) {
    let now = sim.now();
    let taken = {
        let ts = tsue_state(cl, node);
        let taken = ts.parity.take_recyclable_any();
        if taken.is_some() {
            ts.recycling[PARITY] += 1;
        }
        taken
    };
    let Some((pool_idx, taken)) = taken else {
        return;
    };
    if let Some(first) = taken.first_append_at {
        cl.metrics
            .parity_residency
            .buffer
            .record(now.saturating_sub(first));
    }

    let use_merged = cl.cfg.tsue.parity_locality;
    let cpu = taken.records * cl.cfg.tsue_recycle_cpu_per_record;
    let mut t_end = cl.nodes[node].recycle_cpu.reserve(now, cpu);
    if use_merged {
        for job in group_parity_jobs(taken.contents.clone()) {
            let (volume, stripe) = cl.stripe_names[&job.parity.stripe];
            let paddr = BlockAddr {
                volume,
                stripe,
                index: cl.cfg.code.k() as u16 + job.parity.parity_idx,
            };
            let (pn, pdev) = cl.layout.locate(paddr);
            for (off, g) in &job.ranges {
                let len = g.0 as u64;
                let poff = pdev + *off as u64;
                // Fold at the parity block's current home (a rebuild may
                // have moved it off this node mid-replay).
                let t_at = if pn != node {
                    cl.send(t_end.max(now), node, pn, len)
                } else {
                    t_end.max(now)
                };
                let t_r = cl.disk_io(pn, t_at, IoOp::read(poff, len, Pattern::Random));
                t_end = cl.disk_io(pn, t_r, IoOp::write(poff, len, Pattern::Random));
                cl.oracle_apply_parity(paddr, *off, g.0);
            }
        }
    } else {
        // O2 off: per-record read-modify-write.
        let avg = (taken.bytes / taken.records.max(1)).max(1);
        let mut t = t_end;
        for _ in 0..taken.records {
            let off = cl.log_offset(node, avg);
            let t_r = cl.disk_io(node, t, IoOp::read(off, avg, Pattern::Random));
            t = cl.disk_io(node, t_r, IoOp::write(off, avg, Pattern::Random));
        }
        t_end = t;
        for job in group_parity_jobs(taken.contents.clone()) {
            let (volume, stripe) = cl.stripe_names[&job.parity.stripe];
            let paddr = BlockAddr {
                volume,
                stripe,
                index: cl.cfg.code.k() as u16 + job.parity.parity_idx,
            };
            for (off, g) in &job.ranges {
                cl.oracle_apply_parity(paddr, *off, g.0);
            }
        }
    }

    cl.trace_child(Stage::Recycle, node, now, t_end.max(now));
    let unit_id = taken.id;
    let bytes = taken.bytes;
    sim.schedule_at(t_end.max(now), move |sim, cl: &mut Cluster| {
        let more = {
            let ts = tsue_state(cl, node);
            ts.parity.pool_mut(pool_idx).finish_recycle(unit_id);
            ts.recycling[PARITY] -= 1;
            ts.pending[PARITY] = ts.pending[PARITY].saturating_sub(bytes);
            ts.parity
                .pool(pool_idx)
                .count_state(tsue::UnitState::Recyclable)
                > 0
        };
        cl.metrics
            .parity_residency
            .recycle
            .record(sim.now().saturating_sub(now));
        cl.wake_waiters(sim, node);
        if more {
            recycle_parity(sim, cl, node);
        }
    });
}

/// Drain: repeatedly seal and recycle everything until no log bytes remain.
fn drain(sim: &mut Sim<Cluster>, cl: &mut Cluster) {
    drain_tick(sim, cl);
}

fn drain_tick(sim: &mut Sim<Cluster>, cl: &mut Cluster) {
    let now = sim.now();
    let mut pending = 0u64;
    for node in 0..cl.cfg.nodes {
        let (has_data, has_delta, has_parity, p) = {
            let ts = tsue_state(cl, node);
            ts.data.seal_all_active(now);
            ts.delta.seal_all_active(now);
            ts.parity.seal_all_active(now);
            (
                !ts.data.is_fully_drained() && ts.recycling[DATA] == 0,
                !ts.delta.is_fully_drained() && ts.recycling[DELTA] == 0,
                !ts.parity.is_fully_drained() && ts.recycling[PARITY] == 0,
                ts.pending_bytes(),
            )
        };
        pending += p;
        if has_data {
            recycle_data(sim, cl, node);
        }
        if has_delta {
            recycle_delta(sim, cl, node);
        }
        if has_parity {
            recycle_parity(sim, cl, node);
        }
    }
    if pending > 0 {
        sim.schedule(simdes::units::MILLIS, |sim, cl: &mut Cluster| {
            drain_tick(sim, cl);
        });
    }
}
