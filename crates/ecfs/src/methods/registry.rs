//! Name-to-factory registry for [`UpdateMethod`] drivers.
//!
//! The registry is how experiments plug new update methods into the replay
//! engine **without touching `ecfs` internals**: register a factory under a
//! name, then build a cluster with
//! [`crate::config::ClusterConfigBuilder::method_name`]. The process-wide
//! [`MethodRegistry::global`] instance comes pre-seeded with the paper's
//! seven built-ins (`FO`, `FL`, `PL`, `PLR`, `PARIX`, `CoRD`, `TSUE`).
//!
//! ```
//! use ecfs::methods::{MethodRegistry, UpdateMethod};
//!
//! let reg = MethodRegistry::with_builtins();
//! let tsue = reg.resolve("TSUE").unwrap();
//! assert_eq!(tsue.name(), "TSUE");
//! // Lookups are case-insensitive.
//! assert!(reg.resolve("cord").is_some());
//! assert!(reg.resolve("no-such-method").is_none());
//! ```

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use super::UpdateMethod;
use crate::config::MethodKind;

/// Builds one method instance per call. Factories rather than instances so
/// a registered method may carry its own per-resolution configuration.
pub type MethodFactory = Arc<dyn Fn() -> Arc<dyn UpdateMethod> + Send + Sync>;

/// Errors from registry mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The (case-folded) name is already registered.
    Duplicate(String),
    /// The name is empty.
    EmptyName,
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::Duplicate(name) => {
                write!(f, "update method {name:?} is already registered")
            }
            RegistryError::EmptyName => write!(f, "update method name must not be empty"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// Maps method names to driver factories. Lookups fold ASCII case, so
/// `"CoRD"`, `"CORD"` and `"cord"` resolve to the same driver.
#[derive(Clone, Default)]
pub struct MethodRegistry {
    factories: BTreeMap<String, MethodFactory>,
}

impl std::fmt::Debug for MethodRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MethodRegistry")
            .field("names", &self.names())
            .finish()
    }
}

impl MethodRegistry {
    /// An empty registry (no built-ins).
    pub fn empty() -> MethodRegistry {
        MethodRegistry::default()
    }

    /// A registry pre-seeded with the paper's seven built-in methods.
    pub fn with_builtins() -> MethodRegistry {
        let mut reg = MethodRegistry::empty();
        for kind in MethodKind::ALL {
            reg.register(kind.name(), move || kind.driver())
                .expect("built-in names are unique");
        }
        reg
    }

    /// The process-wide registry used by
    /// [`crate::config::ClusterConfigBuilder::method_name`]; pre-seeded
    /// with the built-ins.
    pub fn global() -> &'static Mutex<MethodRegistry> {
        static GLOBAL: OnceLock<Mutex<MethodRegistry>> = OnceLock::new();
        GLOBAL.get_or_init(|| Mutex::new(MethodRegistry::with_builtins()))
    }

    /// Registers `factory` under `name`. Rejects duplicates so two
    /// experiments cannot silently shadow each other's drivers.
    pub fn register<F>(&mut self, name: &str, factory: F) -> Result<(), RegistryError>
    where
        F: Fn() -> Arc<dyn UpdateMethod> + Send + Sync + 'static,
    {
        if name.is_empty() {
            return Err(RegistryError::EmptyName);
        }
        let key = name.to_ascii_uppercase();
        if self.factories.contains_key(&key) {
            return Err(RegistryError::Duplicate(name.to_string()));
        }
        self.factories.insert(key, Arc::new(factory));
        Ok(())
    }

    /// Builds the method registered under `name` (ASCII-case-insensitive).
    ///
    /// This invokes the factory. On the shared [`MethodRegistry::global`]
    /// instance prefer [`resolve_method`], which releases the registry lock
    /// *before* the factory runs — so factories may themselves consult the
    /// registry (e.g. decorators wrapping a built-in).
    pub fn resolve(&self, name: &str) -> Option<Arc<dyn UpdateMethod>> {
        self.factory(name).map(|factory| factory())
    }

    /// The registered factory for `name`, if any (does not invoke it).
    pub fn factory(&self, name: &str) -> Option<MethodFactory> {
        self.factories.get(&name.to_ascii_uppercase()).cloned()
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.factories.contains_key(&name.to_ascii_uppercase())
    }

    /// All registered (case-folded) names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.factories.keys().cloned().collect()
    }
}

/// Registers a method with the process-wide registry.
pub fn register_method<F>(name: &str, factory: F) -> Result<(), RegistryError>
where
    F: Fn() -> Arc<dyn UpdateMethod> + Send + Sync + 'static,
{
    MethodRegistry::global()
        .lock()
        .expect("method registry lock")
        .register(name, factory)
}

/// Resolves a method from the process-wide registry. The registry lock is
/// released before the factory runs, so factories may re-enter the
/// registry (e.g. to wrap a built-in driver).
pub fn resolve_method(name: &str) -> Option<Arc<dyn UpdateMethod>> {
    let factory = MethodRegistry::global()
        .lock()
        .expect("method registry lock")
        .factory(name);
    factory.map(|factory| factory())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_resolve_by_any_case() {
        let reg = MethodRegistry::with_builtins();
        assert_eq!(reg.names().len(), 7);
        for kind in MethodKind::ALL {
            let m = reg.resolve(kind.name()).expect("builtin resolves");
            assert_eq!(m.name(), kind.name());
        }
        assert_eq!(reg.resolve("tsue").unwrap().name(), "TSUE");
        assert_eq!(reg.resolve("CORD").unwrap().name(), "CoRD");
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(MethodRegistry::with_builtins().resolve("nope").is_none());
    }

    #[test]
    fn duplicate_registration_rejected() {
        let mut reg = MethodRegistry::with_builtins();
        let err = reg
            .register("tsue", || MethodKind::Tsue.driver())
            .unwrap_err();
        assert_eq!(err, RegistryError::Duplicate("tsue".to_string()));
    }

    #[test]
    fn empty_name_rejected() {
        let mut reg = MethodRegistry::empty();
        assert_eq!(
            reg.register("", || MethodKind::Fo.driver()),
            Err(RegistryError::EmptyName)
        );
    }

    #[test]
    fn global_has_builtins() {
        assert!(resolve_method("PLR").is_some());
    }

    #[test]
    fn factories_may_reenter_the_global_registry() {
        // A decorator-style factory consults the registry from inside its
        // own resolution; the global lock must already be released.
        register_method("reenter-probe", || resolve_method("TSUE").unwrap()).expect("fresh name");
        let m = resolve_method("reenter-probe").expect("resolves");
        assert_eq!(m.name(), "TSUE");
    }
}
