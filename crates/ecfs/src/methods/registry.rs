//! Name-to-factory registry for [`UpdateMethod`] drivers.
//!
//! The registry is how experiments plug new update methods into the replay
//! engine **without touching `ecfs` internals**: register a factory under a
//! name, then build a cluster with
//! [`crate::config::ClusterConfigBuilder::method_name`]. The process-wide
//! [`MethodRegistry::global`] instance comes pre-seeded with the paper's
//! seven built-ins (`FO`, `FL`, `PL`, `PLR`, `PARIX`, `CoRD`, `TSUE`).
//!
//! Lookups take a full method-spec string ([`crate::methods::spec`]), so
//! cache/staging decorators compose over any registered driver:
//!
//! ```
//! use ecfs::methods::{build_method, MethodRegistry, ResolveError, UpdateMethod};
//! use ecfs::MethodSpec;
//!
//! let reg = MethodRegistry::with_builtins();
//! let tsue = reg.build(&MethodSpec::parse("TSUE").unwrap()).unwrap();
//! assert_eq!(tsue.name(), "TSUE");
//!
//! // A decorated spec wraps the base driver in the cache layer.
//! let cached = build_method(&"lru(64MiB)+cord".parse().unwrap()).unwrap();
//! assert_eq!(cached.name(), "lru(64MiB)+CoRD");
//!
//! // Failures are typed, not `None`.
//! assert_eq!(
//!     reg.build(&MethodSpec::base_only("no-such-method")).unwrap_err(),
//!     ResolveError::UnknownMethod("no-such-method".to_string())
//! );
//! ```

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use super::spec::{MethodSpec, ResolveError};
use super::UpdateMethod;
use crate::cache::Cached;
use crate::config::MethodKind;

/// Builds one method instance per call. Factories rather than instances so
/// a registered method may carry its own per-resolution configuration.
pub type MethodFactory = Arc<dyn Fn() -> Arc<dyn UpdateMethod> + Send + Sync>;

/// Errors from registry mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The (case-folded) name is already registered.
    Duplicate(String),
    /// The name is empty.
    EmptyName,
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::Duplicate(name) => {
                write!(f, "update method {name:?} is already registered")
            }
            RegistryError::EmptyName => write!(f, "update method name must not be empty"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// Maps method names to driver factories. Lookups fold ASCII case, so
/// `"CoRD"`, `"CORD"` and `"cord"` resolve to the same driver.
#[derive(Clone, Default)]
pub struct MethodRegistry {
    factories: BTreeMap<String, MethodFactory>,
}

impl std::fmt::Debug for MethodRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MethodRegistry")
            .field("names", &self.names())
            .finish()
    }
}

impl MethodRegistry {
    /// An empty registry (no built-ins).
    pub fn empty() -> MethodRegistry {
        MethodRegistry::default()
    }

    /// A registry pre-seeded with the paper's seven built-in methods.
    pub fn with_builtins() -> MethodRegistry {
        let mut reg = MethodRegistry::empty();
        for kind in MethodKind::ALL {
            reg.register(kind.name(), move || kind.driver())
                .expect("built-in names are unique");
        }
        reg
    }

    /// The process-wide registry used by
    /// [`crate::config::ClusterConfigBuilder::method_name`]; pre-seeded
    /// with the built-ins.
    pub fn global() -> &'static Mutex<MethodRegistry> {
        static GLOBAL: OnceLock<Mutex<MethodRegistry>> = OnceLock::new();
        GLOBAL.get_or_init(|| Mutex::new(MethodRegistry::with_builtins()))
    }

    /// Registers `factory` under `name`. Rejects duplicates so two
    /// experiments cannot silently shadow each other's drivers.
    pub fn register<F>(&mut self, name: &str, factory: F) -> Result<(), RegistryError>
    where
        F: Fn() -> Arc<dyn UpdateMethod> + Send + Sync + 'static,
    {
        if name.is_empty() {
            return Err(RegistryError::EmptyName);
        }
        let key = name.to_ascii_uppercase();
        if self.factories.contains_key(&key) {
            return Err(RegistryError::Duplicate(name.to_string()));
        }
        self.factories.insert(key, Arc::new(factory));
        Ok(())
    }

    /// Builds the method registered under `name` (ASCII-case-insensitive).
    ///
    /// **Deprecation path:** this is the legacy stringly lookup — it takes
    /// a bare registered name (no decorators) and collapses every failure
    /// to `None`. New code should parse a full spec with
    /// [`MethodSpec::parse`] and call [`MethodRegistry::build`] (or the
    /// free [`build_method`]), which accept cache/staging decorators and
    /// return a typed [`ResolveError`]. Kept as a thin shim for existing
    /// callers.
    ///
    /// This invokes the factory. On the shared [`MethodRegistry::global`]
    /// instance prefer [`resolve_method`], which releases the registry lock
    /// *before* the factory runs — so factories may themselves consult the
    /// registry (e.g. decorators wrapping a built-in).
    pub fn resolve(&self, name: &str) -> Option<Arc<dyn UpdateMethod>> {
        self.factory(name).map(|factory| factory())
    }

    /// Builds a driver from a parsed [`MethodSpec`]: resolves the base
    /// name, then wraps it in the spec's cache/staging decorators
    /// ([`Cached::apply`]). The typed replacement for
    /// [`MethodRegistry::resolve`].
    pub fn build(&self, spec: &MethodSpec) -> Result<Arc<dyn UpdateMethod>, ResolveError> {
        let base = self
            .resolve(&spec.base)
            .ok_or_else(|| ResolveError::UnknownMethod(spec.base.clone()))?;
        Cached::apply(base, &spec.decorators)
    }

    /// The registered factory for `name`, if any (does not invoke it).
    pub fn factory(&self, name: &str) -> Option<MethodFactory> {
        self.factories.get(&name.to_ascii_uppercase()).cloned()
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.factories.contains_key(&name.to_ascii_uppercase())
    }

    /// All registered (case-folded) names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.factories.keys().cloned().collect()
    }
}

/// Registers a method with the process-wide registry.
pub fn register_method<F>(name: &str, factory: F) -> Result<(), RegistryError>
where
    F: Fn() -> Arc<dyn UpdateMethod> + Send + Sync + 'static,
{
    MethodRegistry::global()
        .lock()
        .expect("method registry lock")
        .register(name, factory)
}

/// Resolves a method from the process-wide registry. The registry lock is
/// released before the factory runs, so factories may re-enter the
/// registry (e.g. to wrap a built-in driver):
///
/// ```
/// use ecfs::cache::{CacheConfig, CachePolicy, Cached};
/// use ecfs::methods::{register_method, resolve_method};
///
/// // A decorator factory: wraps the registry's own TSUE in a read cache.
/// // Resolving it re-enters `global()` — no deadlock, the lock is free.
/// register_method("tsue-cached-doc", || {
///     let base = resolve_method("TSUE").unwrap();
///     Cached::wrap(
///         base,
///         Some(CacheConfig::new(CachePolicy::Lru, 16 << 20)),
///         None,
///     )
///     .unwrap()
/// })
/// .unwrap();
/// assert_eq!(resolve_method("tsue-cached-doc").unwrap().name(), "lru(16MiB)+TSUE");
/// ```
///
/// **Deprecation path:** bare-name lookup only — prefer [`build_method`]
/// with a parsed [`MethodSpec`] for decorator support and typed errors.
pub fn resolve_method(name: &str) -> Option<Arc<dyn UpdateMethod>> {
    let factory = MethodRegistry::global()
        .lock()
        .expect("method registry lock")
        .factory(name);
    factory.map(|factory| factory())
}

/// Builds a driver from a parsed [`MethodSpec`] against the process-wide
/// registry. Like [`resolve_method`], the registry lock is released before
/// the base factory runs, so decorator factories may re-enter the
/// registry.
pub fn build_method(spec: &MethodSpec) -> Result<Arc<dyn UpdateMethod>, ResolveError> {
    let base =
        resolve_method(&spec.base).ok_or_else(|| ResolveError::UnknownMethod(spec.base.clone()))?;
    Cached::apply(base, &spec.decorators)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_resolve_by_any_case() {
        let reg = MethodRegistry::with_builtins();
        assert_eq!(reg.names().len(), 7);
        for kind in MethodKind::ALL {
            let m = reg.resolve(kind.name()).expect("builtin resolves");
            assert_eq!(m.name(), kind.name());
        }
        assert_eq!(reg.resolve("tsue").unwrap().name(), "TSUE");
        assert_eq!(reg.resolve("CORD").unwrap().name(), "CoRD");
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(MethodRegistry::with_builtins().resolve("nope").is_none());
    }

    #[test]
    fn duplicate_registration_rejected() {
        let mut reg = MethodRegistry::with_builtins();
        let err = reg
            .register("tsue", || MethodKind::Tsue.driver())
            .unwrap_err();
        assert_eq!(err, RegistryError::Duplicate("tsue".to_string()));
    }

    #[test]
    fn empty_name_rejected() {
        let mut reg = MethodRegistry::empty();
        assert_eq!(
            reg.register("", || MethodKind::Fo.driver()),
            Err(RegistryError::EmptyName)
        );
    }

    #[test]
    fn global_has_builtins() {
        assert!(resolve_method("PLR").is_some());
    }

    #[test]
    fn build_composes_decorators_over_any_base() {
        let reg = MethodRegistry::with_builtins();
        for name in ["FO", "FL", "PL", "PLR", "PARIX", "CoRD", "TSUE"] {
            let spec = MethodSpec::parse(&format!("stage(8MiB,2ms)+lru(64MiB)+{name}")).unwrap();
            let m = reg.build(&spec).unwrap();
            assert_eq!(m.name(), format!("stage(8MiB,2ms)+lru(64MiB)+{name}"));
            // The built name round-trips through the grammar.
            assert_eq!(MethodSpec::parse(m.name()).unwrap(), spec);
        }
    }

    #[test]
    fn build_returns_typed_errors() {
        let reg = MethodRegistry::with_builtins();
        assert_eq!(
            reg.build(&MethodSpec::base_only("warp-drive")).unwrap_err(),
            ResolveError::UnknownMethod("warp-drive".to_string())
        );
        let err = MethodSpec::parse("arc(64MiB)+FO").unwrap_err();
        assert!(matches!(err, ResolveError::BadDecorator { .. }));
    }

    #[test]
    fn build_method_matches_registry_build() {
        let spec = MethodSpec::parse("plru(32MiB)+PL").unwrap();
        let m = build_method(&spec).unwrap();
        assert_eq!(m.name(), "plru(32MiB)+PL");
    }

    #[test]
    fn factories_may_reenter_the_global_registry() {
        // A decorator-style factory consults the registry from inside its
        // own resolution; the global lock must already be released.
        register_method("reenter-probe", || resolve_method("TSUE").unwrap()).expect("fresh name");
        let m = resolve_method("reenter-probe").expect("resolves");
        assert_eq!(m.name(), "TSUE");
    }
}
