//! FL — Full Logging (Azure/GFS style, §2.2): append *everything* — the
//! new data at the data node and a copy at every parity node — to a single
//! large log per device; merge only when space runs out.
//!
//! FL's flaws per the paper: reads must merge log contents (read penalty),
//! log space is huge (defeating erasure coding's storage savings), and the
//! single log structure makes append and recycle mutually exclusive — while
//! a node recycles, its appends stall.

use simdes::{Sim, SimTime};
use simdisk::{IoOp, Pattern};

use crate::cluster::Cluster;
use crate::config::ClusterConfig;
use crate::layout::BlockAddr;
use crate::methods::{self, NodeLogState, UpdateCtx, UpdateMethod};
use crate::telemetry::{OpClass, Stage};
use tsue::index::{MergeMode, TwoLevelIndex};
use tsue::payload::Ghost;

/// The Full-Logging driver.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fl;

/// Per-node FL state: one big log with a merged view for recycle/reads.
pub struct FlState {
    /// Merged view of logged data (data node) / deltas (parity node).
    pub log: TwoLevelIndex<u64, Ghost>,
    /// Block addr per key.
    pub addr_of: std::collections::HashMap<u64, BlockAddr>,
    /// Raw logged bytes.
    pub bytes: u64,
    /// Recycle threshold.
    pub threshold: u64,
    /// Whether a recycle is in progress (appends stall — single log).
    pub recycling: bool,
}

impl FlState {
    /// Fresh FL state.
    pub fn new(cfg: &ClusterConfig) -> FlState {
        FlState {
            log: TwoLevelIndex::new(MergeMode::Overwrite),
            addr_of: std::collections::HashMap::new(),
            bytes: 0,
            threshold: cfg.fl_threshold_bytes,
            recycling: false,
        }
    }

    /// Read-cache coverage check.
    pub fn covers(&self, addr: BlockAddr, off: u32, len: u32) -> bool {
        self.log.covers(&addr.key(), off, len)
    }
}

impl NodeLogState for FlState {
    fn pending_bytes(&self) -> u64 {
        self.bytes
    }

    fn read_cache_covers(&mut self, addr: BlockAddr, offset: u32, len: u32) -> bool {
        self.covers(addr, offset, len)
    }
}

/// Recycles one node's FL log: fold logged data into blocks (data node
/// role) and logged deltas into parity (parity node role). Returns
/// completion time.
fn recycle_node(cl: &mut Cluster, node: usize, from: SimTime) -> SimTime {
    let (mut contents, addr_of) = match cl.nodes[node].state.downcast_mut::<FlState>() {
        Some(state) => {
            state.bytes = 0;
            let a = state.addr_of.clone();
            (state.log.drain_all(), a)
        }
        None => return from,
    };
    // The backing index drains in hash order; sorted replay keeps the
    // chained I/O bookings deterministic across threads and processes.
    contents.sort_unstable_by_key(|(k, _)| *k);
    let mut t = from;
    let code = cl.cfg.code;
    for (key, ranges) in contents {
        let addr = addr_of[&key];
        let (bnode, bdev) = cl.layout.locate(addr);
        for (off, g) in ranges {
            let len = g.0 as u64;
            let boff = bdev + off as u64;
            // A failure may have re-homed the block since it was logged:
            // the folded range then crosses the network to its new home.
            let t_at = if bnode != node {
                cl.send(t, node, bnode, len)
            } else {
                t
            };
            // Data blocks: read old + write new. Parity blocks: RMW too.
            t = cl.disk_io(bnode, t_at, IoOp::read(boff, len, Pattern::Random));
            t = cl.disk_io(bnode, t, IoOp::write(boff, len, Pattern::Random));
            if addr.is_data(code) {
                cl.oracle_apply_data(addr, off, g.0);
            } else {
                cl.oracle_apply_parity(addr, off, g.0);
            }
        }
    }
    t
}

impl UpdateMethod for Fl {
    fn name(&self) -> &str {
        "FL"
    }

    fn new_node_state(&self, cfg: &ClusterConfig) -> Box<dyn NodeLogState> {
        Box::new(FlState::new(cfg))
    }

    fn begin_update(&self, sim: &mut Sim<Cluster>, cl: &mut Cluster, ctx: UpdateCtx) {
        let slice = ctx.slice;
        let len = slice.len as u64;
        let (dnode, _) = cl.layout.locate(slice.addr);
        let client_ep = cl.cfg.client_endpoint(ctx.client);

        // Single-log exclusivity: a recycling node cannot accept appends.
        let busy = cl.nodes[dnode]
            .state
            .downcast_ref::<FlState>()
            .is_some_and(|s| s.recycling);
        if busy {
            cl.park_on(
                dnode,
                Box::new(move |sim, cl| methods::begin_update(sim, cl, ctx)),
            );
            return;
        }

        let t_arrive = cl.send(ctx.start_at, client_ep, dnode, len);
        // Append new data to the local log (sequential).
        let log_off = cl.log_offset(dnode, len);
        let t_local = cl.disk_io(
            dnode,
            t_arrive,
            IoOp::write(log_off, len, Pattern::Sequential),
        );
        let mut must_recycle_data = false;
        if let Some(state) = cl.nodes[dnode].state.downcast_mut::<FlState>() {
            let key = slice.addr.key();
            state.log.insert(key, slice.offset, Ghost(slice.len));
            state.addr_of.insert(key, slice.addr);
            state.bytes += len;
            must_recycle_data = state.bytes >= state.threshold;
        }

        // Forward the new data to every parity node's log. Note: the parity
        // *delta* cannot be computed without the old data, so FL logs the data
        // itself — the storage-overhead critique of §2.2.
        let mut t_done = t_local;
        for paddr in cl.layout.parity_addrs(slice.addr.volume, slice.addr.stripe) {
            let (pnode, _) = cl.layout.locate(paddr);
            let t_send = cl.send(t_local, dnode, pnode, len);
            let plog = cl.log_offset(pnode, len);
            let t_append = cl.disk_io(pnode, t_send, IoOp::write(plog, len, Pattern::Sequential));
            if let Some(state) = cl.nodes[pnode].state.downcast_mut::<FlState>() {
                let key = paddr.key();
                state.log.insert(key, slice.offset, Ghost(slice.len));
                state.addr_of.insert(key, paddr);
                state.bytes += len;
            }
            t_done = t_done.max(t_append);
        }

        if must_recycle_data {
            if let Some(state) = cl.nodes[dnode].state.downcast_mut::<FlState>() {
                state.recycling = true;
            }
            let t_rec = recycle_node(cl, dnode, t_done);
            cl.trace_child(Stage::Recycle, dnode, t_done, t_rec);
            sim.schedule_at(t_rec, move |sim, cl: &mut Cluster| {
                if let Some(state) = cl.nodes[dnode].state.downcast_mut::<FlState>() {
                    state.recycling = false;
                }
                cl.wake_waiters(sim, dnode);
            });
        }

        let t_ack = cl.ack(t_done, dnode, client_ep);
        cl.oracle_ack(slice.addr, slice.offset, slice.len);
        cl.trace_op(
            &ctx,
            OpClass::Update,
            &[
                (Stage::NetSend, t_arrive),
                (Stage::LogAppend, t_local),
                (Stage::ParityIo, t_done),
                (Stage::Ack, t_ack),
            ],
        );
        cl.finish_update(sim, ctx, t_ack);
    }

    fn drain(&self, sim: &mut Sim<Cluster>, cl: &mut Cluster) {
        self.drain_until(sim, cl);
    }

    fn drain_until(&self, sim: &mut Sim<Cluster>, cl: &mut Cluster) -> SimTime {
        let now = sim.now();
        let mut t_end = now;
        for node in 0..cl.cfg.nodes {
            let t_node = recycle_node(cl, node, now);
            if t_node > now {
                cl.trace_child(Stage::Recycle, node, now, t_node);
            }
            t_end = t_end.max(t_node);
        }
        sim.schedule_at(t_end, |_, _| {});
        t_end
    }
}
