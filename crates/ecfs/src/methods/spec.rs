//! The parsed method-spec grammar: how experiments name an update method
//! *plus* the node-local cache/staging decorators layered in front of it.
//!
//! A spec is `+`-separated segments, decorators first, ending in a bare
//! registered method name:
//!
//! ```text
//! TSUE                            # a bare driver, no decorators
//! lru(64MiB)+FO                   # 64 MiB LRU read cache over FO
//! stage(8MiB,2ms)+lru(64MiB)+PLR  # write staging + read cache over PLR
//! ```
//!
//! Decorator segments are `name(args)`:
//!
//! * `lru(SIZE)` / `plru(SIZE)` / `adaptive(SIZE)` — a node-local read
//!   cache with that replacement policy ([`crate::cache::CachePolicy`]);
//! * `stage(SIZE,AGE)` — a write-coalescing staging buffer flushed at
//!   `SIZE` staged bytes or `AGE` after the first unflushed byte.
//!
//! `SIZE` is an integer with a binary unit (`B`, `KiB`, `MiB`, `GiB`);
//! `AGE` an integer duration (`ns`, `us`, `ms`, `s`). Parsing is
//! case-insensitive; [`MethodSpec`]'s `Display` renders the canonical form
//! (largest exact unit), so `parse → display → parse` is the identity —
//! the property `crates/ecfs/tests/spec_props.rs` pins.
//!
//! [`MethodSpec::parse`] returns a typed [`ResolveError`] instead of the
//! registry's historical `Option`; [`super::MethodRegistry::build`] and
//! [`super::build_method`] turn a spec into a ready
//! [`crate::methods::UpdateMethod`].

use std::fmt;
use std::str::FromStr;

use crate::cache::{CachePolicy, PAGE_BYTES};

/// A cache-layer decorator in front of a base method, as parsed from one
/// `name(args)` spec segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decorator {
    /// A node-local read cache: `lru(SIZE)`, `plru(SIZE)`, `adaptive(SIZE)`.
    Cache {
        /// Replacement policy (the segment name).
        policy: CachePolicy,
        /// Cache capacity in bytes.
        bytes: u64,
    },
    /// A write-coalescing staging buffer: `stage(SIZE,AGE)`.
    Stage {
        /// Flush threshold: staged (union) bytes per node.
        bytes: u64,
        /// Flush age: nanoseconds after the first unflushed byte.
        age_ns: u64,
    },
}

impl fmt::Display for Decorator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Decorator::Cache { policy, bytes } => {
                write!(f, "{policy}({})", FmtBytes(*bytes))
            }
            Decorator::Stage { bytes, age_ns } => {
                write!(f, "stage({},{})", FmtBytes(*bytes), FmtDur(*age_ns))
            }
        }
    }
}

/// Canonical byte-size rendering: the largest binary unit that divides
/// exactly, so `parse → display → parse` round-trips.
struct FmtBytes(u64);

impl fmt::Display for FmtBytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        if b > 0 && b.is_multiple_of(1 << 30) {
            write!(f, "{}GiB", b >> 30)
        } else if b > 0 && b.is_multiple_of(1 << 20) {
            write!(f, "{}MiB", b >> 20)
        } else if b > 0 && b.is_multiple_of(1 << 10) {
            write!(f, "{}KiB", b >> 10)
        } else {
            write!(f, "{b}B")
        }
    }
}

/// Canonical duration rendering: the largest unit that divides exactly.
struct FmtDur(u64);

impl fmt::Display for FmtDur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns > 0 && ns.is_multiple_of(1_000_000_000) {
            write!(f, "{}s", ns / 1_000_000_000)
        } else if ns > 0 && ns.is_multiple_of(1_000_000) {
            write!(f, "{}ms", ns / 1_000_000)
        } else if ns > 0 && ns.is_multiple_of(1_000) {
            write!(f, "{}us", ns / 1_000)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

/// Why a method spec failed to parse or resolve. The typed replacement for
/// the registry's historical `Option<Arc<dyn UpdateMethod>>` answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolveError {
    /// The spec (or one of its `+`-separated segments) is empty.
    EmptySpec,
    /// The base name is not registered.
    UnknownMethod(String),
    /// A decorator segment is malformed, duplicated, or carries a bad
    /// argument.
    BadDecorator {
        /// The offending segment (or decorator name), verbatim.
        what: String,
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResolveError::EmptySpec => write!(f, "empty method spec"),
            ResolveError::UnknownMethod(name) => {
                write!(f, "unknown update method {name:?} (not registered)")
            }
            ResolveError::BadDecorator { what, reason } => {
                write!(f, "bad decorator {what:?}: {reason}")
            }
        }
    }
}

impl std::error::Error for ResolveError {}

fn bad(what: &str, reason: impl Into<String>) -> ResolveError {
    ResolveError::BadDecorator {
        what: what.to_string(),
        reason: reason.into(),
    }
}

/// Parses an integer byte size with a binary unit (`B`, `KiB`, `MiB`,
/// `GiB`), case-insensitively.
pub fn parse_bytes(s: &str) -> Result<u64, String> {
    let s = s.trim();
    let (digits, shift) = if let Some(d) = strip_unit(s, "GiB") {
        (d, 30)
    } else if let Some(d) = strip_unit(s, "MiB") {
        (d, 20)
    } else if let Some(d) = strip_unit(s, "KiB") {
        (d, 10)
    } else if let Some(d) = strip_unit(s, "B") {
        (d, 0)
    } else {
        return Err(format!("{s:?} needs a byte unit (B, KiB, MiB, GiB)"));
    };
    let n = parse_u64(digits)?;
    n.checked_shl(shift)
        .filter(|v| v >> shift == n)
        .ok_or_else(|| format!("{s:?} overflows"))
}

/// Parses an integer duration (`ns`, `us`, `ms`, `s`), case-insensitively,
/// into nanoseconds.
pub fn parse_duration(s: &str) -> Result<u64, String> {
    let s = s.trim();
    let (digits, scale) = if let Some(d) = strip_unit(s, "ns") {
        (d, 1)
    } else if let Some(d) = strip_unit(s, "us") {
        (d, 1_000)
    } else if let Some(d) = strip_unit(s, "ms") {
        (d, 1_000_000)
    } else if let Some(d) = strip_unit(s, "s") {
        (d, 1_000_000_000)
    } else {
        return Err(format!("{s:?} needs a duration unit (ns, us, ms, s)"));
    };
    let n = parse_u64(digits)?;
    n.checked_mul(scale)
        .ok_or_else(|| format!("{s:?} overflows"))
}

/// Case-insensitive unit suffix strip, returning the digit prefix.
fn strip_unit<'a>(s: &'a str, unit: &str) -> Option<&'a str> {
    if s.len() < unit.len() {
        return None;
    }
    let split = s.len() - unit.len();
    // `unit` is ASCII; a non-ASCII boundary cannot match it.
    let (head, tail) = (s.get(..split)?, s.get(split..)?);
    tail.eq_ignore_ascii_case(unit).then_some(head)
}

fn parse_u64(s: &str) -> Result<u64, String> {
    let s = s.trim();
    if s.is_empty() || !s.bytes().all(|b| b.is_ascii_digit()) {
        return Err(format!("{s:?} is not a positive integer"));
    }
    s.parse::<u64>().map_err(|e| format!("{s:?}: {e}"))
}

/// A parsed method spec: zero or more decorators over a base method name.
///
/// Construct with [`MethodSpec::parse`] (or `str::parse`); resolve with
/// [`super::MethodRegistry::build`] or [`super::build_method`]. `Display`
/// renders the canonical spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodSpec {
    /// Decorators, outermost first (the spec's left-to-right order).
    pub decorators: Vec<Decorator>,
    /// The base method name, verbatim (registry lookups fold case).
    pub base: String,
}

impl MethodSpec {
    /// A bare spec: `name`, no decorators.
    pub fn base_only(name: impl Into<String>) -> MethodSpec {
        MethodSpec {
            decorators: Vec::new(),
            base: name.into(),
        }
    }

    /// Parses a spec string. Never panics: garbage input comes back as a
    /// typed [`ResolveError`].
    ///
    /// ```
    /// use ecfs::methods::spec::{Decorator, MethodSpec, ResolveError};
    ///
    /// let spec = MethodSpec::parse("stage(8MiB,2ms)+lru(64MiB)+PLR").unwrap();
    /// assert_eq!(spec.base, "PLR");
    /// assert_eq!(spec.decorators.len(), 2);
    /// assert_eq!(spec.to_string(), "stage(8MiB,2ms)+lru(64MiB)+PLR");
    ///
    /// assert_eq!(MethodSpec::parse("  "), Err(ResolveError::EmptySpec));
    /// assert!(matches!(
    ///     MethodSpec::parse("arc(1MiB)+FO"),
    ///     Err(ResolveError::BadDecorator { .. })
    /// ));
    /// ```
    pub fn parse(s: &str) -> Result<MethodSpec, ResolveError> {
        let s = s.trim();
        if s.is_empty() {
            return Err(ResolveError::EmptySpec);
        }
        let segments: Vec<&str> = s.split('+').map(str::trim).collect();
        let (base, deco_segs) = segments.split_last().expect("split yields >= 1");
        if segments.iter().any(|seg| seg.is_empty()) {
            return Err(ResolveError::EmptySpec);
        }
        if base.contains('(') || base.contains(')') {
            return Err(bad(base, "a spec must end with a bare method name"));
        }
        let mut decorators = Vec::with_capacity(deco_segs.len());
        let mut have_cache = false;
        let mut have_stage = false;
        for seg in deco_segs {
            let d = parse_decorator(seg)?;
            match d {
                Decorator::Cache { .. } => {
                    if have_cache {
                        return Err(bad(seg, "duplicate cache decorator"));
                    }
                    have_cache = true;
                }
                Decorator::Stage { .. } => {
                    if have_stage {
                        return Err(bad(seg, "duplicate stage decorator"));
                    }
                    have_stage = true;
                }
            }
            decorators.push(d);
        }
        Ok(MethodSpec {
            decorators,
            base: base.to_string(),
        })
    }
}

fn parse_decorator(seg: &str) -> Result<Decorator, ResolveError> {
    let open = seg
        .find('(')
        .ok_or_else(|| bad(seg, "decorators look like name(args)"))?;
    let name = seg[..open].trim();
    let rest = &seg[open + 1..];
    let args = rest
        .strip_suffix(')')
        .ok_or_else(|| bad(seg, "missing closing parenthesis"))?;
    if args.contains('(') || args.contains(')') {
        return Err(bad(seg, "nested parentheses"));
    }
    if name.eq_ignore_ascii_case("stage") {
        let parts: Vec<&str> = args.split(',').collect();
        let [size, age] = parts.as_slice() else {
            return Err(bad(seg, "stage takes exactly (SIZE, AGE)"));
        };
        let bytes = parse_bytes(size).map_err(|e| bad(seg, e))?;
        let age_ns = parse_duration(age).map_err(|e| bad(seg, e))?;
        if bytes < PAGE_BYTES {
            return Err(bad(seg, format!("stage size must be >= {PAGE_BYTES} B")));
        }
        if age_ns == 0 {
            return Err(bad(seg, "stage age must be positive"));
        }
        return Ok(Decorator::Stage { bytes, age_ns });
    }
    let Some(policy) = CachePolicy::parse(name) else {
        return Err(bad(
            seg,
            "unknown decorator (expected stage, lru, plru, or adaptive)",
        ));
    };
    let bytes = parse_bytes(args).map_err(|e| bad(seg, e))?;
    if bytes < PAGE_BYTES {
        return Err(bad(seg, format!("cache size must be >= {PAGE_BYTES} B")));
    }
    Ok(Decorator::Cache { policy, bytes })
}

impl FromStr for MethodSpec {
    type Err = ResolveError;

    fn from_str(s: &str) -> Result<MethodSpec, ResolveError> {
        MethodSpec::parse(s)
    }
}

impl fmt::Display for MethodSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.decorators {
            write!(f, "{d}+")?;
        }
        f.write_str(&self.base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_name_round_trips() {
        let spec = MethodSpec::parse(" TSUE ").unwrap();
        assert_eq!(spec, MethodSpec::base_only("TSUE"));
        assert_eq!(spec.to_string(), "TSUE");
    }

    #[test]
    fn decorated_spec_parses_and_canonicalises() {
        let spec = MethodSpec::parse("STAGE(8192KiB, 2000US) + Lru(64MiB) + fo").unwrap();
        assert_eq!(
            spec.decorators,
            vec![
                Decorator::Stage {
                    bytes: 8 << 20,
                    age_ns: 2_000_000
                },
                Decorator::Cache {
                    policy: CachePolicy::Lru,
                    bytes: 64 << 20
                },
            ]
        );
        // Canonical rendering: largest exact units, no spaces.
        assert_eq!(spec.to_string(), "stage(8MiB,2ms)+lru(64MiB)+fo");
        assert_eq!(MethodSpec::parse(&spec.to_string()).unwrap(), spec);
    }

    #[test]
    fn typed_errors() {
        assert_eq!(MethodSpec::parse(""), Err(ResolveError::EmptySpec));
        assert_eq!(MethodSpec::parse("FO+"), Err(ResolveError::EmptySpec));
        assert!(matches!(
            MethodSpec::parse("lru(64MiB)"),
            Err(ResolveError::BadDecorator { .. })
        ));
        assert!(matches!(
            MethodSpec::parse("lru(64MiB)+lru(1MiB)+FO"),
            Err(ResolveError::BadDecorator { .. })
        ));
        assert!(matches!(
            MethodSpec::parse("stage(8MiB)+FO"),
            Err(ResolveError::BadDecorator { .. })
        ));
        assert!(matches!(
            MethodSpec::parse("lru(64QiB)+FO"),
            Err(ResolveError::BadDecorator { .. })
        ));
        assert!(matches!(
            MethodSpec::parse("lru(0B)+FO"),
            Err(ResolveError::BadDecorator { .. })
        ));
        assert!(matches!(
            MethodSpec::parse("stage(8MiB,0ms)+FO"),
            Err(ResolveError::BadDecorator { .. })
        ));
    }

    #[test]
    fn unit_parsers() {
        assert_eq!(parse_bytes("4096B").unwrap(), 4096);
        assert_eq!(parse_bytes("16kib").unwrap(), 16 << 10);
        assert_eq!(parse_bytes("1GiB").unwrap(), 1 << 30);
        assert!(parse_bytes("1.5MiB").is_err());
        assert!(parse_bytes("12").is_err());
        assert!(parse_bytes("999999999999GiB").is_err());
        assert_eq!(parse_duration("250ns").unwrap(), 250);
        assert_eq!(parse_duration("2MS").unwrap(), 2_000_000);
        assert_eq!(parse_duration("3s").unwrap(), 3_000_000_000);
        assert!(parse_duration("5m").is_err());
    }

    #[test]
    fn canonical_units_are_largest_exact() {
        assert_eq!(FmtBytes(4096).to_string(), "4KiB");
        assert_eq!(FmtBytes((64 << 20) + 1).to_string(), "67108865B");
        assert_eq!(FmtBytes(1 << 30).to_string(), "1GiB");
        assert_eq!(FmtDur(1_500_000).to_string(), "1500us");
        assert_eq!(FmtDur(2_000_000).to_string(), "2ms");
        assert_eq!(FmtDur(0).to_string(), "0ns");
    }
}
