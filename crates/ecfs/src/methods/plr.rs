//! PLR — Parity Logging with Reserved space (Chan et al., FAST '14):
//! parity deltas land in a small log region *adjacent to each parity
//! block* (§2.2).
//!
//! The adjacency makes recycling cheap on HDDs (no long seek between log
//! and parity), but it costs PLR dearly on SSDs: appends scatter across the
//! per-parity-block reserved regions — "the distribution of log spaces
//! adjacent to parity blocks across different locations of the storage
//! device leads to random access during the appending operation" — and the
//! small reserved space forces frequent *foreground* recycles that land on
//! the update's critical path. This is why PLR is the slowest method on the
//! paper's SSD cluster (Fig. 5).

use simdes::{Sim, SimTime};
use simdisk::{IoOp, Pattern};

use std::collections::HashMap;

use crate::cluster::Cluster;
use crate::config::ClusterConfig;
use crate::layout::BlockAddr;
use crate::methods::{NodeLogState, UpdateCtx, UpdateMethod};
use crate::telemetry::{OpClass, Stage};

/// The Parity-Logging-with-Reserved-space driver.
#[derive(Debug, Clone, Copy, Default)]
pub struct Plr;

/// Pending deltas in one parity block's reserved region.
#[derive(Debug, Default, Clone)]
pub struct Reserved {
    /// Bytes used in the reserved region.
    pub used: u64,
    /// Logged `(offset, len)` deltas.
    pub pending: Vec<(u32, u32)>,
}

/// Per-node PLR state.
#[derive(Debug, Default)]
pub struct PlrState {
    /// Reserved-region occupancy per parity block hosted here.
    pub reserved: HashMap<BlockAddr, Reserved>,
}

impl NodeLogState for PlrState {
    fn pending_bytes(&self) -> u64 {
        self.reserved.values().map(|r| r.used).sum()
    }
}

/// Applies one parity block's reserved log (tracked on `node`): read
/// deltas + RMW the parity block at its *current* home — a failure may
/// have re-homed the block, in which case the replayed deltas cross the
/// network to the rebuild target. Returns completion time.
fn recycle_reserved(cl: &mut Cluster, node: usize, paddr: BlockAddr, from: SimTime) -> SimTime {
    let (used, pending) = match cl.nodes[node].state.downcast_mut::<PlrState>() {
        Some(state) => {
            let r = state.reserved.entry(paddr).or_default();
            let used = r.used;
            let pending = std::mem::take(&mut r.pending);
            r.used = 0;
            (used, pending)
        }
        None => return from,
    };
    if pending.is_empty() {
        return from;
    }
    let (pnode, pdev) = cl.layout.locate(paddr);
    let block = cl.cfg.block_bytes;
    // The reserved region sits directly after the parity block, so reading
    // it back is one access with a short seek (sequential-ish). The logged
    // deltas live on `node`; when the block was re-homed by a rebuild they
    // cross the network to its new host before being applied.
    let mut t = cl.disk_io(
        node,
        from,
        IoOp::read(pdev + block, used.max(1), Pattern::Sequential),
    );
    if pnode != node {
        t = cl.send(t, node, pnode, used.max(1));
    }
    // Apply each logged delta: parity read-modify-write (random within the
    // block; PLR has no merging index).
    for (off, len) in pending {
        let poff = pdev + off as u64;
        t = cl.disk_io(pnode, t, IoOp::read(poff, len as u64, Pattern::Random));
        t = cl.disk_io(pnode, t, IoOp::write(poff, len as u64, Pattern::Random));
        cl.oracle_apply_parity(paddr, off, len);
    }
    // The reserved region is a *fixed* device extent: reusing it requires
    // erasing its flash blocks (no FTL remapping for in-place log space).
    // This is PLR's lifespan and latency killer on SSDs.
    let reserved = cl.cfg.plr_reserved_bytes.max(1);
    t = cl.nodes[pnode].disk.erase_region(t, pdev + block, reserved);
    t
}

impl UpdateMethod for Plr {
    fn name(&self) -> &str {
        "PLR"
    }

    fn new_node_state(&self, _cfg: &ClusterConfig) -> Box<dyn NodeLogState> {
        Box::<PlrState>::default()
    }

    fn parity_reserved_bytes(&self, cfg: &ClusterConfig) -> u64 {
        cfg.plr_reserved_bytes
    }

    fn begin_update(&self, sim: &mut Sim<Cluster>, cl: &mut Cluster, ctx: UpdateCtx) {
        let slice = ctx.slice;
        let len = slice.len as u64;
        let (dnode, ddev) = cl.layout.locate(slice.addr);
        let client_ep = cl.cfg.client_endpoint(ctx.client);

        let t_arrive = cl.send(ctx.start_at, client_ep, dnode, len);
        let off = ddev + slice.offset as u64;
        let t_read = cl.disk_io(dnode, t_arrive, IoOp::read(off, len, Pattern::Random));
        let t_write = cl.disk_io(dnode, t_read, IoOp::write(off, len, Pattern::Random));
        cl.oracle_apply_data(slice.addr, slice.offset, slice.len);

        let reserved_cap = cl.cfg.plr_reserved_bytes;
        let block = cl.cfg.block_bytes;
        let mut t_done = t_write;
        for paddr in cl.layout.parity_addrs(slice.addr.volume, slice.addr.stripe) {
            let (pnode, pdev) = cl.layout.locate(paddr);
            let t_delta = cl.send(t_write, dnode, pnode, len);

            // Does the reserved region overflow? Then recycle it *first*, in
            // the foreground — the PLR critical-path penalty.
            let needs_recycle = match cl.nodes[pnode].state.downcast_mut::<PlrState>() {
                Some(state) => {
                    let r = state.reserved.entry(paddr).or_default();
                    r.used + len > reserved_cap
                }
                None => false,
            };
            let t_space = if needs_recycle {
                let t_rec = recycle_reserved(cl, pnode, paddr, t_delta);
                cl.trace_child(Stage::Recycle, pnode, t_delta, t_rec);
                t_rec
            } else {
                t_delta
            };

            // Append into the reserved region: a *random* write from the
            // device's point of view (regions are scattered).
            let append_off = match cl.nodes[pnode].state.downcast_mut::<PlrState>() {
                Some(state) => {
                    let r = state.reserved.entry(paddr).or_default();
                    let o = pdev + block + r.used;
                    r.used += len;
                    r.pending.push((slice.offset, slice.len));
                    o
                }
                None => pdev + block,
            };
            let t_append = cl.disk_io(
                pnode,
                t_space,
                IoOp::write(append_off, len, Pattern::Random),
            );
            t_done = t_done.max(t_append);
        }

        let t_ack = cl.ack(t_done, dnode, client_ep);
        cl.oracle_ack(slice.addr, slice.offset, slice.len);
        cl.trace_op(
            &ctx,
            OpClass::Update,
            &[
                (Stage::NetSend, t_arrive),
                (Stage::DiskIo, t_write),
                (Stage::ParityIo, t_done),
                (Stage::Ack, t_ack),
            ],
        );
        cl.finish_update(sim, ctx, t_ack);
    }

    fn drain(&self, sim: &mut Sim<Cluster>, cl: &mut Cluster) {
        self.drain_until(sim, cl);
    }

    fn drain_until(&self, sim: &mut Sim<Cluster>, cl: &mut Cluster) -> SimTime {
        let now = sim.now();
        let mut t_end = now;
        for node in 0..cl.cfg.nodes {
            let mut addrs: Vec<BlockAddr> = match cl.nodes[node].state.downcast_ref::<PlrState>() {
                Some(state) => state.reserved.keys().copied().collect(),
                None => continue,
            };
            // HashMap iteration order is nondeterministic; sorted replay
            // keeps the drain reproducible.
            addrs.sort_unstable();
            let mut t = now;
            for paddr in addrs {
                t = recycle_reserved(cl, node, paddr, t);
            }
            if t > now {
                cl.trace_child(Stage::Recycle, node, now, t);
            }
            t_end = t_end.max(t);
        }
        sim.schedule_at(t_end, |_, _| {});
        t_end
    }
}
