//! CoRD (Zhou et al., SC '24): data deltas from all blocks of a stripe are
//! aggregated at a *collector* node, which merges same-offset deltas
//! (Eq. 5) to minimise network traffic before applying them to parity.
//!
//! The paper's critique, which this driver reproduces: the collector's
//! single fixed-size buffer log ignores concurrency — while it flushes,
//! every incoming delta for that collector *waits* ("the recycling process
//! becomes a bottleneck that limits update performance"), and each update
//! still pays the data-block write-after-read.

use simdes::{Sim, SimTime};
use simdisk::{IoOp, Pattern};

use crate::cluster::Cluster;
use crate::config::ClusterConfig;
use crate::methods::{self, NodeLogState, UpdateCtx, UpdateMethod};
use crate::telemetry::{OpClass, Stage};
use tsue::index::{MergeMode, TwoLevelIndex};
use tsue::payload::Ghost;

/// The CoRD collector-aggregation driver.
#[derive(Debug, Clone, Copy, Default)]
pub struct Cord;

/// Per-node collector state (only populated on nodes that collect for some
/// stripe — every node, in general, since collectors rotate with stripes).
pub struct CordState {
    /// Same-offset deltas across the stripe's blocks XOR-merge here —
    /// keyed by stripe, so Eq. 5's cross-block collapse happens at insert.
    pub buffer: TwoLevelIndex<u64, Ghost>,
    /// Raw bytes appended since the last flush.
    pub buffered: u64,
    /// Buffer capacity before a foreground flush.
    pub capacity: u64,
    /// Whether a flush is in progress (appends must wait).
    pub flushing: bool,
}

impl CordState {
    /// Fresh collector state.
    pub fn new(cfg: &ClusterConfig) -> CordState {
        CordState {
            buffer: TwoLevelIndex::new(MergeMode::Xor),
            buffered: 0,
            capacity: cfg.cord_buffer_for(),
            flushing: false,
        }
    }
}

impl NodeLogState for CordState {
    fn pending_bytes(&self) -> u64 {
        self.buffered
    }
}

/// The collector for a stripe: the node hosting its first parity block.
fn collector_of(cl: &mut Cluster, volume: u32, stripe: u64) -> usize {
    let paddr = cl.layout.parity_addrs(volume, stripe)[0];
    cl.layout.locate(paddr).0
}

/// Flushes a collector's buffer: per merged stripe-range, ship one combined
/// delta to each parity node and RMW the parity block. Returns completion.
fn flush_collector(cl: &mut Cluster, node: usize, from: SimTime) -> SimTime {
    let mut contents = match cl.nodes[node].state.downcast_mut::<CordState>() {
        Some(state) => {
            state.buffered = 0;
            state.buffer.drain_all()
        }
        None => return from,
    };
    // The backing index drains in hash order; sorted replay keeps the
    // chained I/O bookings deterministic across threads and processes.
    contents.sort_unstable_by_key(|(k, _)| *k);
    let mut t_done = from;
    for (skey, ranges) in contents {
        let (volume, stripe) = cl.stripe_names[&skey];
        for paddr in cl.layout.parity_addrs(volume, stripe) {
            let (pnode, pdev) = cl.layout.locate(paddr);
            let mut t = from;
            for (off, g) in &ranges {
                let len = g.0 as u64;
                let t_send = cl.send(t, node, pnode, len);
                let poff = pdev + *off as u64;
                let t_pr = cl.disk_io(pnode, t_send, IoOp::read(poff, len, Pattern::Random));
                t = cl.disk_io(pnode, t_pr, IoOp::write(poff, len, Pattern::Random));
                cl.oracle_apply_parity(paddr, *off, g.0);
            }
            t_done = t_done.max(t);
        }
    }
    t_done
}

impl UpdateMethod for Cord {
    fn name(&self) -> &str {
        "CoRD"
    }

    fn new_node_state(&self, cfg: &ClusterConfig) -> Box<dyn NodeLogState> {
        Box::new(CordState::new(cfg))
    }

    fn begin_update(&self, sim: &mut Sim<Cluster>, cl: &mut Cluster, ctx: UpdateCtx) {
        let slice = ctx.slice;
        let len = slice.len as u64;
        let (dnode, ddev) = cl.layout.locate(slice.addr);
        let client_ep = cl.cfg.client_endpoint(ctx.client);

        let t_arrive = cl.send(ctx.start_at, client_ep, dnode, len);
        // Write-after-read on the data block (CoRD keeps the delta path).
        let off = ddev + slice.offset as u64;
        let t_read = cl.disk_io(dnode, t_arrive, IoOp::read(off, len, Pattern::Random));
        let t_write = cl.disk_io(dnode, t_read, IoOp::write(off, len, Pattern::Random));
        cl.oracle_apply_data(slice.addr, slice.offset, slice.len);

        // Ship the delta to the stripe's collector.
        let collector = collector_of(cl, slice.addr.volume, slice.addr.stripe);
        let t_delta = cl.send(t_write, dnode, collector, len);

        // The collector's single buffer: if it is flushing, the append (and the
        // client's ack) waits for the whole flush. The flush is triggered in
        // the foreground when the buffer fills.
        let flushing = cl.nodes[collector]
            .state
            .downcast_ref::<CordState>()
            .is_some_and(|s| s.flushing);
        if flushing {
            // Park and retry when the flush completes.
            cl.park_on(
                collector,
                Box::new(move |sim, cl| methods::begin_update(sim, cl, ctx)),
            );
            return;
        }

        let skey = cl.stripe_id(slice.addr.volume, slice.addr.stripe);
        let must_flush = match cl.nodes[collector].state.downcast_mut::<CordState>() {
            Some(state) => {
                state.buffer.insert(skey, slice.offset, Ghost(slice.len));
                state.buffered += len;
                state.buffered >= state.capacity
            }
            None => false,
        };
        // Persist the buffered delta (sequential log write on the collector).
        let log_off = cl.log_offset(collector, len);
        let mut t_logged = cl.disk_io(
            collector,
            t_delta,
            IoOp::write(log_off, len, Pattern::Sequential),
        );

        if must_flush {
            if let Some(state) = cl.nodes[collector].state.downcast_mut::<CordState>() {
                state.flushing = true;
            }
            let t_flush = flush_collector(cl, collector, t_logged);
            cl.trace_child(Stage::Recycle, collector, t_logged, t_flush);
            t_logged = t_flush;
            // Unblock parked updates once the flush finishes.
            sim.schedule_at(t_flush, move |sim, cl: &mut Cluster| {
                if let Some(state) = cl.nodes[collector].state.downcast_mut::<CordState>() {
                    state.flushing = false;
                }
                cl.wake_waiters(sim, collector);
            });
        }

        let t_ack = cl.ack(t_logged, collector, client_ep);
        cl.oracle_ack(slice.addr, slice.offset, slice.len);
        cl.trace_op(
            &ctx,
            OpClass::Update,
            &[
                (Stage::NetSend, t_arrive),
                (Stage::DiskIo, t_write),
                (Stage::LogAppend, t_logged),
                (Stage::Ack, t_ack),
            ],
        );
        cl.finish_update(sim, ctx, t_ack);
    }

    fn drain(&self, sim: &mut Sim<Cluster>, cl: &mut Cluster) {
        self.drain_until(sim, cl);
    }

    fn drain_until(&self, sim: &mut Sim<Cluster>, cl: &mut Cluster) -> SimTime {
        let now = sim.now();
        let mut t_end = now;
        for node in 0..cl.cfg.nodes {
            let t_node = flush_collector(cl, node, now);
            if t_node > now {
                cl.trace_child(Stage::Recycle, node, now, t_node);
            }
            t_end = t_end.max(t_node);
        }
        sim.schedule_at(t_end, |_, _| {});
        t_end
    }
}
