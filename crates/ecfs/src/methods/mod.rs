//! Update-method drivers: FO, FL, PL, PLR, PARIX, CoRD, TSUE — and the
//! open [`UpdateMethod`] API that lets out-of-tree methods plug into the
//! same cluster, replay engine, and recovery drills.
//!
//! Every driver implements the [`UpdateMethod`] trait:
//!
//! * [`UpdateMethod::begin_update`] — runs the method's full front-end path
//!   for one sub-block update (time-forwarding style: it books every disk
//!   op and network hop on the shared resources, then reports the ack time
//!   via [`crate::cluster::Cluster::finish_update`]);
//! * [`UpdateMethod::begin_read`] / [`UpdateMethod::begin_write`] — the
//!   read and fresh-write paths (identical across methods except for log
//!   read-caches, so the trait provides them as defaults);
//! * [`UpdateMethod::drain`] — flushes all outstanding log state (end of
//!   run, and the prerequisite for recovery — the paper's consistency
//!   argument in §2.3.2);
//! * [`UpdateMethod::new_node_state`] — the constructor hook producing the
//!   method's per-node log state ([`NodeLogState`]).
//!
//! Built-in drivers are reachable through [`crate::config::MethodKind`]
//! (the paper's seven, in Fig. 5 order) or by name through the
//! [`MethodRegistry`]; custom methods register with the registry and need
//! no changes inside this crate — see `crates/ecfs/tests/registry_roundtrip.rs`.

pub mod cord;
pub mod fl;
pub mod fo;
pub mod parix;
pub mod pl;
pub mod plr;
pub mod registry;
pub mod tsue_drv;

use std::any::Any;
use std::sync::Arc;

use simdes::{Sim, SimTime};
use simdisk::{IoOp, Pattern};

use crate::cluster::Cluster;
use crate::config::ClusterConfig;
use crate::layout::{BlockAddr, BlockSlice};

pub use registry::{register_method, resolve_method, MethodRegistry, RegistryError};

/// Per-node, method-specific log state, held as a trait object on every
/// [`crate::cluster::Osd`]. Drivers downcast to their concrete state via
/// [`dyn NodeLogState::downcast_ref`] / [`dyn NodeLogState::downcast_mut`].
pub trait NodeLogState: Any + Send {
    /// Bytes of log state awaiting recycle on this node (drives the drain
    /// loop and the paper's Fig. 6 pending-bytes accounting).
    fn pending_bytes(&self) -> u64 {
        0
    }

    /// In-memory footprint of the node's log structures (Fig. 6b).
    fn memory_bytes(&self) -> u64 {
        0
    }

    /// Whether a read of `[offset, offset + len)` in `addr` can be served
    /// from the method's in-memory log cache, skipping the disk.
    fn read_cache_covers(&mut self, addr: BlockAddr, offset: u32, len: u32) -> bool {
        let _ = (addr, offset, len);
        false
    }
}

impl dyn NodeLogState {
    /// Downcasts to a concrete state type.
    pub fn downcast_ref<T: NodeLogState>(&self) -> Option<&T> {
        (self as &dyn Any).downcast_ref::<T>()
    }

    /// Downcasts to a concrete state type, mutably.
    pub fn downcast_mut<T: NodeLogState>(&mut self) -> Option<&mut T> {
        (self as &mut dyn Any).downcast_mut::<T>()
    }
}

/// Log state for methods that keep none (FO, and any custom method that
/// acknowledges synchronously).
#[derive(Debug, Default, Clone, Copy)]
pub struct PlainState;

impl NodeLogState for PlainState {}

/// One in-flight client update (a single block slice).
#[derive(Debug, Clone, Copy)]
pub struct UpdateCtx {
    /// Issuing client.
    pub client: usize,
    /// The block range being updated.
    pub slice: BlockSlice,
    /// Issue time.
    pub issued_at: SimTime,
}

/// An update method: the object-safe contract every driver — built-in or
/// out-of-tree — implements. Methods are stateless handles (all mutable
/// state lives in per-node [`NodeLogState`]), so one `Arc<dyn UpdateMethod>`
/// serves a whole cluster.
pub trait UpdateMethod: Send + Sync + std::fmt::Debug {
    /// Display name (used in results, tables, and registry lookups).
    fn name(&self) -> &str;

    /// Builds the method's per-node log state. The default keeps none.
    fn new_node_state(&self, cfg: &ClusterConfig) -> Box<dyn NodeLogState> {
        let _ = cfg;
        Box::new(PlainState)
    }

    /// Extra device bytes the layout must reserve adjacent to each parity
    /// block (PLR's reserved log space; zero for everything else).
    fn parity_reserved_bytes(&self, cfg: &ClusterConfig) -> u64 {
        let _ = cfg;
        0
    }

    /// Runs the method's full front-end path for one sub-block update and
    /// eventually reports the ack via [`Cluster::finish_update`].
    fn begin_update(&self, sim: &mut Sim<Cluster>, cl: &mut Cluster, ctx: UpdateCtx);

    /// The fresh-write path. The default books the encode-path write shared
    /// by all methods; override only for methods with a custom ingest path.
    fn begin_write(&self, sim: &mut Sim<Cluster>, cl: &mut Cluster, ctx: UpdateCtx) {
        default_begin_write(sim, cl, ctx);
    }

    /// The read path. The default consults [`NodeLogState::read_cache_covers`]
    /// before charging the disk.
    fn begin_read(&self, sim: &mut Sim<Cluster>, cl: &mut Cluster, ctx: UpdateCtx) {
        default_begin_read(sim, cl, ctx);
    }

    /// Schedules the flush of all outstanding log state; the caller runs
    /// the simulation and re-invokes until [`pending_log_bytes`] hits zero.
    fn drain(&self, sim: &mut Sim<Cluster>, cl: &mut Cluster) {
        let _ = (sim, cl);
    }
}

/// Dispatches an update to the cluster's configured method.
pub fn begin_update(sim: &mut Sim<Cluster>, cl: &mut Cluster, ctx: UpdateCtx) {
    let method = Arc::clone(&cl.cfg.method);
    method.begin_update(sim, cl, ctx);
}

/// Dispatches a fresh write to the cluster's configured method.
pub fn begin_write(sim: &mut Sim<Cluster>, cl: &mut Cluster, ctx: UpdateCtx) {
    let method = Arc::clone(&cl.cfg.method);
    method.begin_write(sim, cl, ctx);
}

/// Dispatches a read to the cluster's configured method.
pub fn begin_read(sim: &mut Sim<Cluster>, cl: &mut Cluster, ctx: UpdateCtx) {
    let method = Arc::clone(&cl.cfg.method);
    method.begin_read(sim, cl, ctx);
}

/// Dispatches a drain to the cluster's configured method. Run the sim to
/// completion afterwards.
pub fn drain(sim: &mut Sim<Cluster>, cl: &mut Cluster) {
    let method = Arc::clone(&cl.cfg.method);
    method.drain(sim, cl);
}

/// The fresh-write path, identical for all methods: the client has already
/// encoded the stripe, so the data lands as a sequential write on the data
/// node plus an amortised `m/k` share of sequential parity writes.
pub fn default_begin_write(sim: &mut Sim<Cluster>, cl: &mut Cluster, ctx: UpdateCtx) {
    let (node, dev_off) = cl.layout.locate(ctx.slice.addr);
    let len = ctx.slice.len as u64;
    let now = ctx.issued_at;
    let client_ep = cl.cfg.client_endpoint(ctx.client);
    let t_arrive = cl.send(now, client_ep, node, len);
    let t_data = cl.disk_io(
        node,
        t_arrive,
        IoOp::write(dev_off + ctx.slice.offset as u64, len, Pattern::Sequential),
    );
    // Amortised parity share: the encoded parity written alongside.
    let pshare = (len * cl.cfg.code.m() as u64 / cl.cfg.code.k() as u64).max(1);
    let parity_addrs = cl
        .layout
        .parity_addrs(ctx.slice.addr.volume, ctx.slice.addr.stripe);
    let p0 = parity_addrs[ctx.slice.addr.stripe as usize % parity_addrs.len()];
    let (pnode, pdev) = cl.layout.locate(p0);
    let t_psend = cl.send(now, client_ep, pnode, pshare);
    let poff = pdev + (ctx.slice.offset as u64 % cl.cfg.block_bytes.saturating_sub(pshare).max(1));
    let t_parity = cl.disk_io(
        pnode,
        t_psend,
        IoOp::write(poff, pshare, Pattern::Sequential),
    );
    let t_done = cl.ack(t_data.max(t_parity), node, client_ep);
    cl.finish_other(sim, ctx.client, false, t_done);
}

/// The read path: a log read-cache hit (per [`NodeLogState::read_cache_covers`])
/// skips the disk.
pub fn default_begin_read(sim: &mut Sim<Cluster>, cl: &mut Cluster, ctx: UpdateCtx) {
    let (node, dev_off) = cl.layout.locate(ctx.slice.addr);
    let len = ctx.slice.len as u64;
    let now = ctx.issued_at;
    let client_ep = cl.cfg.client_endpoint(ctx.client);
    let t_arrive = cl.ack(now, client_ep, node);

    // Check the method's read cache.
    let cache_hit =
        cl.nodes[node]
            .state
            .read_cache_covers(ctx.slice.addr, ctx.slice.offset, ctx.slice.len);
    let t_read = if cache_hit {
        cl.metrics.cache_read_hits += 1;
        t_arrive // served from memory
    } else {
        cl.disk_io(
            node,
            t_arrive,
            IoOp::read(dev_off + ctx.slice.offset as u64, len, Pattern::Random),
        )
    };
    let t_done = cl.send(t_read, node, client_ep, len);
    cl.finish_other(sim, ctx.client, true, t_done);
}

/// Bytes of log state still pending across the cluster (drain progress).
/// Includes a sentinel for forwarding events still in flight.
pub fn pending_log_bytes(cl: &Cluster) -> u64 {
    let node_bytes: u64 = cl.nodes.iter().map(|n| n.state.pending_bytes()).sum();
    cl.forwards_in_flight + node_bytes
}
