//! Update-method drivers: FO, FL, PL, PLR, PARIX, CoRD, TSUE — and the
//! open [`UpdateMethod`] API that lets out-of-tree methods plug into the
//! same cluster, replay engine, and recovery drills.
//!
//! Every driver implements the [`UpdateMethod`] trait:
//!
//! * [`UpdateMethod::begin_update`] — runs the method's full front-end path
//!   for one sub-block update (time-forwarding style: it books every disk
//!   op and network hop on the shared resources, then reports the ack time
//!   via [`crate::cluster::Cluster::finish_update`]);
//! * [`UpdateMethod::begin_read`] / [`UpdateMethod::begin_write`] — the
//!   read and fresh-write paths (identical across methods except for log
//!   read-caches, so the trait provides them as defaults);
//! * [`UpdateMethod::drain`] — flushes all outstanding log state (end of
//!   run, and the prerequisite for recovery — the paper's consistency
//!   argument in §2.3.2);
//! * [`UpdateMethod::new_node_state`] — the constructor hook producing the
//!   method's per-node log state ([`NodeLogState`]).
//!
//! Built-in drivers are reachable through [`crate::config::MethodKind`]
//! (the paper's seven, in Fig. 5 order) or by name through the
//! [`MethodRegistry`]; custom methods register with the registry and need
//! no changes inside this crate — see `crates/ecfs/tests/registry_roundtrip.rs`.

pub mod cord;
pub mod fl;
pub mod fo;
pub mod parix;
pub mod pl;
pub mod plr;
pub mod registry;
pub mod spec;
pub mod tsue_drv;

use std::any::Any;
use std::sync::Arc;

use simdes::{Sim, SimTime};
use simdisk::{IoOp, Pattern};

use crate::cluster::Cluster;
use crate::config::ClusterConfig;
use crate::layout::{BlockAddr, BlockSlice};
use crate::telemetry::{OpClass, Stage};

pub use registry::{build_method, register_method, resolve_method, MethodRegistry, RegistryError};
pub use spec::{Decorator, MethodSpec, ResolveError};

/// Per-node, method-specific log state, held as a trait object on every
/// [`crate::cluster::Osd`]. Drivers downcast to their concrete state via
/// [`dyn NodeLogState::downcast_ref`] / [`dyn NodeLogState::downcast_mut`].
pub trait NodeLogState: Any + Send {
    /// Bytes of log state awaiting recycle on this node (drives the drain
    /// loop and the paper's Fig. 6 pending-bytes accounting).
    fn pending_bytes(&self) -> u64 {
        0
    }

    /// In-memory footprint of the node's log structures (Fig. 6b).
    fn memory_bytes(&self) -> u64 {
        0
    }

    /// Whether a read of `[offset, offset + len)` in `addr` can be served
    /// from the method's in-memory log cache, skipping the disk.
    fn read_cache_covers(&mut self, addr: BlockAddr, offset: u32, len: u32) -> bool {
        let _ = (addr, offset, len);
        false
    }

    /// The wrapped state, for decorator states holding another method's
    /// state inside ([`crate::cache::CacheNodeState`]). `None` for every
    /// plain driver state. [`dyn NodeLogState::downcast_ref`] /
    /// [`dyn NodeLogState::downcast_mut`] recurse through this, so a
    /// driver's downcasts keep working unchanged under any decorator stack.
    fn inner(&self) -> Option<&dyn NodeLogState> {
        None
    }

    /// Mutable access to the wrapped state (see [`Self::inner`]).
    fn inner_mut(&mut self) -> Option<&mut dyn NodeLogState> {
        None
    }
}

impl dyn NodeLogState {
    /// Downcasts to a concrete state type, looking through decorator
    /// states ([`NodeLogState::inner`]) until a match is found.
    pub fn downcast_ref<T: NodeLogState>(&self) -> Option<&T> {
        if let Some(t) = (self as &dyn Any).downcast_ref::<T>() {
            return Some(t);
        }
        self.inner().and_then(|s| s.downcast_ref::<T>())
    }

    /// Downcasts to a concrete state type, mutably, looking through
    /// decorator states ([`NodeLogState::inner_mut`]).
    pub fn downcast_mut<T: NodeLogState>(&mut self) -> Option<&mut T> {
        // Two-phase: probing `self` first borrows it mutably for the whole
        // match in NLL terms, so check the type with an immutable probe
        // before committing to either branch.
        if (self as &dyn Any).is::<T>() {
            return (self as &mut dyn Any).downcast_mut::<T>();
        }
        self.inner_mut().and_then(|s| s.downcast_mut::<T>())
    }
}

/// Log state for methods that keep none (FO, and any custom method that
/// acknowledges synchronously).
#[derive(Debug, Default, Clone, Copy)]
pub struct PlainState;

impl NodeLogState for PlainState {}

/// One in-flight client op (a single block slice).
#[derive(Debug, Clone, Copy)]
pub struct UpdateCtx {
    /// Issuing client.
    pub client: u64,
    /// The block range being updated.
    pub slice: BlockSlice,
    /// Issue time — the latency anchor: client-observed latency is always
    /// measured from here.
    pub issued_at: SimTime,
    /// When service may begin. Equals [`Self::issued_at`] on the normal
    /// path; the degraded dispatch pushes it forward when the op first had
    /// to wait for an inline rebuild, so the rebuild delay lands in the
    /// client's latency without letting the method book I/O in the past.
    pub start_at: SimTime,
    /// Whether this op's completion drives the client's next op. The first
    /// slice of a multi-slice op drives; background remainder slices
    /// complete without touching the closed loop.
    pub drive: bool,
    /// Whether this op is cluster-internal background work rather than a
    /// client op — e.g. a staged write-buffer flush replaying a coalesced
    /// delta through the wrapped method ([`crate::cache`]). Background ops
    /// book I/O and network like any other, but the completion hooks skip
    /// the client-facing counters, latency histograms, and the closed
    /// loop, and `trace_op` attributes them as [`Stage::StageFlush`] child
    /// spans instead of client lifecycle spans.
    pub background: bool,
}

impl UpdateCtx {
    /// A driving op issued (and startable) at `now`.
    pub fn new(client: u64, slice: BlockSlice, now: SimTime) -> UpdateCtx {
        UpdateCtx {
            client,
            slice,
            issued_at: now,
            start_at: now,
            drive: true,
            background: false,
        }
    }

    /// A background (non-client) op startable at `now` — used by the cache
    /// layer's staged flushes. Never drives the closed loop.
    pub fn background(client: u64, slice: BlockSlice, now: SimTime) -> UpdateCtx {
        UpdateCtx {
            client,
            slice,
            issued_at: now,
            start_at: now,
            drive: false,
            background: true,
        }
    }
}

/// An update method: the object-safe contract every driver — built-in or
/// out-of-tree — implements. Methods are stateless handles (all mutable
/// state lives in per-node [`NodeLogState`]), so one `Arc<dyn UpdateMethod>`
/// serves a whole cluster.
pub trait UpdateMethod: Send + Sync + std::fmt::Debug {
    /// Display name (used in results, tables, and registry lookups).
    fn name(&self) -> &str;

    /// Builds the method's per-node log state. The default keeps none.
    fn new_node_state(&self, cfg: &ClusterConfig) -> Box<dyn NodeLogState> {
        let _ = cfg;
        Box::new(PlainState)
    }

    /// Extra device bytes the layout must reserve adjacent to each parity
    /// block (PLR's reserved log space; zero for everything else).
    fn parity_reserved_bytes(&self, cfg: &ClusterConfig) -> u64 {
        let _ = cfg;
        0
    }

    /// Runs the method's full front-end path for one sub-block update and
    /// eventually reports the ack via [`Cluster::finish_update`].
    fn begin_update(&self, sim: &mut Sim<Cluster>, cl: &mut Cluster, ctx: UpdateCtx);

    /// The fresh-write path. The default books the encode-path write shared
    /// by all methods; override only for methods with a custom ingest path.
    fn begin_write(&self, sim: &mut Sim<Cluster>, cl: &mut Cluster, ctx: UpdateCtx) {
        default_begin_write(sim, cl, ctx);
    }

    /// The read path. The default consults [`NodeLogState::read_cache_covers`]
    /// before charging the disk.
    fn begin_read(&self, sim: &mut Sim<Cluster>, cl: &mut Cluster, ctx: UpdateCtx) {
        default_begin_read(sim, cl, ctx);
    }

    /// Schedules the flush of all outstanding log state; the caller runs
    /// the simulation and re-invokes until [`pending_log_bytes`] hits zero.
    fn drain(&self, sim: &mut Sim<Cluster>, cl: &mut Cluster) {
        let _ = (sim, cl);
    }

    /// Schedules replay of the log state outstanding *now* — the paper's
    /// §2.3.2 consistency prerequisite before reconstruction can start —
    /// and returns the simulation time at which that state is durably
    /// applied. Appends arriving later need not be included: mid-replay
    /// repair gates only on the backlog that existed at failure time.
    ///
    /// The default covers methods with no log state (drain is a no-op and
    /// reconstruction can start immediately); deferred-recycling drivers
    /// override it to return their booked flush completion.
    fn drain_until(&self, sim: &mut Sim<Cluster>, cl: &mut Cluster) -> SimTime {
        self.drain(sim, cl);
        sim.now()
    }
}

/// Dispatches an update to the cluster's configured method. On a degraded
/// cluster the dispatch first restores the stripe's write path: blocks
/// homed on dead nodes are rebuilt-and-relocated inline (or freshly placed
/// on live nodes), and the method runs once everything it will touch is
/// live again.
pub fn begin_update(sim: &mut Sim<Cluster>, cl: &mut Cluster, ctx: UpdateCtx) {
    if cl.faults.degraded_mode
        && prepare_write_path(sim, cl, ctx, traces::OpKind::Update, begin_update)
    {
        return;
    }
    let method = Arc::clone(&cl.cfg.method);
    method.begin_update(sim, cl, ctx);
}

/// Dispatches a fresh write to the cluster's configured method (degraded
/// handling as in [`begin_update`]).
pub fn begin_write(sim: &mut Sim<Cluster>, cl: &mut Cluster, ctx: UpdateCtx) {
    if cl.faults.degraded_mode
        && prepare_write_path(sim, cl, ctx, traces::OpKind::Write, begin_write)
    {
        return;
    }
    let method = Arc::clone(&cl.cfg.method);
    method.begin_write(sim, cl, ctx);
}

/// Dispatches a read to the cluster's configured method. A read whose
/// target block sits on a dead node is served degraded: the lost block is
/// decoded from `k` survivors, charged as `k` transfers on the fabric.
pub fn begin_read(sim: &mut Sim<Cluster>, cl: &mut Cluster, ctx: UpdateCtx) {
    if cl.faults.degraded_mode {
        let addr = ctx.slice.addr;
        let home = cl.layout.current_node(addr);
        if cl.nodes[home].failed {
            if cl.layout.is_placed(addr) {
                degraded_read(sim, cl, ctx);
                return;
            }
            // Never written: nothing to decode. The MDS homes it on a
            // live node and the read proceeds normally.
            let target = cl.next_live_target(home);
            cl.layout.place_on(addr, target);
        }
    }
    let method = Arc::clone(&cl.cfg.method);
    method.begin_read(sim, cl, ctx);
}

/// Dispatches a drain to the cluster's configured method. Run the sim to
/// completion afterwards.
pub fn drain(sim: &mut Sim<Cluster>, cl: &mut Cluster) {
    let method = Arc::clone(&cl.cfg.method);
    method.drain(sim, cl);
}

/// Dispatches [`UpdateMethod::drain_until`]: schedules replay of the log
/// backlog outstanding now and returns when it is durably applied.
pub fn drain_until(sim: &mut Sim<Cluster>, cl: &mut Cluster) -> SimTime {
    let method = Arc::clone(&cl.cfg.method);
    method.drain_until(sim, cl)
}

/// Restores the write path of `ctx`'s stripe on a degraded cluster: every
/// block the update path may touch (the data block and all `m` parity
/// blocks) must live on a live node before the method books I/O.
///
/// * dead home, never written → the block is re-homed onto a live node at
///   metadata cost only;
/// * dead home, written → the block is rebuilt inline from `k` survivors
///   (write-triggered recovery, racing the background repair scheduler)
///   and relocated to its rebuild target;
/// * stripe below `k` survivors → the op fails (EIO) and is counted in
///   [`crate::cluster::Metrics::failed_ops`].
///
/// Returns `true` when the op was consumed (deferred behind a rebuild, or
/// failed); `false` when every home is live and the caller should
/// dispatch immediately.
fn prepare_write_path(
    sim: &mut Sim<Cluster>,
    cl: &mut Cluster,
    ctx: UpdateCtx,
    kind: traces::OpKind,
    redispatch: fn(&mut Sim<Cluster>, &mut Cluster, UpdateCtx),
) -> bool {
    let addr = ctx.slice.addr;
    let mut needed = vec![addr];
    needed.extend(cl.layout.parity_addrs(addr.volume, addr.stripe));
    let mut ready = ctx.start_at;
    for a in needed {
        let home = cl.layout.current_node(a);
        if !cl.nodes[home].failed {
            continue;
        }
        if !cl.layout.is_placed(a) {
            let target = cl.next_live_target(home);
            cl.layout.place_on(a, target);
            continue;
        }
        match crate::recovery::rebuild_block(cl, a, ctx.start_at) {
            Ok(t_rebuilt) => {
                cl.faults.inline_rebuilds += 1;
                ready = ready.max(t_rebuilt);
            }
            Err(_) => {
                cl.finish_failed(sim, ctx, kind, ctx.start_at);
                return true;
            }
        }
    }
    if ready > ctx.start_at {
        // The op waited for its stripe to heal: re-enter the dispatch at
        // the rebuild's completion with the wait charged to the client.
        let mut deferred = ctx;
        deferred.start_at = ready;
        sim.schedule_at(ready.max(sim.now()), move |sim, cl: &mut Cluster| {
            redispatch(sim, cl, deferred);
        });
        return true;
    }
    false
}

/// Serves a read of a block whose home died before it could be rebuilt:
/// the client gathers the addressed range from `k` surviving blocks of the
/// stripe (each a disk read plus a transfer on the shared fabric) and
/// decodes the lost range locally.
fn degraded_read(sim: &mut Sim<Cluster>, cl: &mut Cluster, ctx: UpdateCtx) {
    let slice = ctx.slice;
    let len = slice.len as u64;
    let k = cl.cfg.code.k();
    let client_ep = cl.cfg.client_endpoint(ctx.client);
    let now = ctx.start_at;

    let survivors = match crate::recovery::select_survivors(cl, slice.addr) {
        Ok(s) => s,
        Err(_) => {
            // The stripe lost more than m blocks: unrecoverable, EIO.
            cl.finish_failed(sim, ctx, traces::OpKind::Read, now);
            return;
        }
    };

    let mut ready = now;
    for saddr in survivors {
        let (snode, sdev) = cl.layout.locate(saddr);
        let t_req = cl.ack(now, client_ep, snode);
        let t_read = cl.disk_io(
            snode,
            t_req,
            IoOp::read(sdev + slice.offset as u64, len, Pattern::Random),
        );
        let t_recv = cl.send(t_read, snode, client_ep, len);
        ready = ready.max(t_recv);
    }
    // Decoding combines k inputs per output byte (~10 GB/s per stream).
    let decode_ns = len * k as u64 / 10;
    cl.metrics.degraded_reads += 1;
    cl.metrics.degraded_bytes_decoded += len;
    cl.trace_op(
        &ctx,
        OpClass::Read,
        &[(Stage::DiskIo, ready), (Stage::Decode, ready + decode_ns)],
    );
    cl.finish_other(sim, ctx, true, ready + decode_ns);
}

/// The fresh-write path, identical for all methods: the client has already
/// encoded the stripe, so the data lands as a sequential write on the data
/// node plus an amortised `m/k` share of sequential parity writes.
pub fn default_begin_write(sim: &mut Sim<Cluster>, cl: &mut Cluster, ctx: UpdateCtx) {
    let (node, dev_off) = cl.layout.locate(ctx.slice.addr);
    let len = ctx.slice.len as u64;
    let now = ctx.start_at;
    let client_ep = cl.cfg.client_endpoint(ctx.client);
    let t_arrive = cl.send(now, client_ep, node, len);
    let t_data = cl.disk_io(
        node,
        t_arrive,
        IoOp::write(dev_off + ctx.slice.offset as u64, len, Pattern::Sequential),
    );
    // Amortised parity share: the encoded parity written alongside.
    let pshare = (len * cl.cfg.code.m() as u64 / cl.cfg.code.k() as u64).max(1);
    let parity_addrs = cl
        .layout
        .parity_addrs(ctx.slice.addr.volume, ctx.slice.addr.stripe);
    let p0 = parity_addrs[ctx.slice.addr.stripe as usize % parity_addrs.len()];
    let (pnode, pdev) = cl.layout.locate(p0);
    let t_psend = cl.send(now, client_ep, pnode, pshare);
    let poff = pdev + (ctx.slice.offset as u64 % cl.cfg.block_bytes.saturating_sub(pshare).max(1));
    let t_parity = cl.disk_io(
        pnode,
        t_psend,
        IoOp::write(poff, pshare, Pattern::Sequential),
    );
    let t_done = cl.ack(t_data.max(t_parity), node, client_ep);
    cl.trace_op(
        &ctx,
        OpClass::Write,
        &[
            (Stage::NetSend, t_arrive.max(t_psend)),
            (Stage::Encode, t_data.max(t_parity)),
            (Stage::Ack, t_done),
        ],
    );
    cl.finish_other(sim, ctx, false, t_done);
}

/// The read path: a log read-cache hit (per [`NodeLogState::read_cache_covers`])
/// skips the disk.
pub fn default_begin_read(sim: &mut Sim<Cluster>, cl: &mut Cluster, ctx: UpdateCtx) {
    let (node, dev_off) = cl.layout.locate(ctx.slice.addr);
    let len = ctx.slice.len as u64;
    let now = ctx.start_at;
    let client_ep = cl.cfg.client_endpoint(ctx.client);
    let t_arrive = cl.ack(now, client_ep, node);

    // Check the method's read cache.
    let cache_hit =
        cl.nodes[node]
            .state
            .read_cache_covers(ctx.slice.addr, ctx.slice.offset, ctx.slice.len);
    let t_read = if cache_hit {
        cl.metrics.cache_read_hits += 1;
        t_arrive // served from memory
    } else {
        cl.disk_io(
            node,
            t_arrive,
            IoOp::read(dev_off + ctx.slice.offset as u64, len, Pattern::Random),
        )
    };
    let t_done = cl.send(t_read, node, client_ep, len);
    cl.trace_op(
        &ctx,
        OpClass::Read,
        &[
            (Stage::NetSend, t_arrive),
            (Stage::DiskIo, t_read),
            (Stage::Ack, t_done),
        ],
    );
    cl.finish_other(sim, ctx, true, t_done);
}

/// Bytes of log state still pending across the cluster (drain progress).
/// Includes a sentinel for forwarding events still in flight.
pub fn pending_log_bytes(cl: &Cluster) -> u64 {
    let node_bytes: u64 = cl.nodes.iter().map(|n| n.state.pending_bytes()).sum();
    cl.forwards_in_flight + node_bytes
}
