//! Update-method drivers: FO, FL, PL, PLR, PARIX, CoRD, TSUE.
//!
//! Every driver implements the same contract:
//!
//! * [`begin_update`] — runs the method's full front-end path for one
//!   sub-block update (time-forwarding style: it books every disk op and
//!   network hop on the shared resources, then reports the ack time via
//!   [`crate::cluster::Cluster::finish_update`]);
//! * [`begin_read`] / [`begin_write`] — the read and fresh-write paths
//!   (identical across methods except for log read-caches);
//! * [`drain`] — flushes all outstanding log state (end of run, and the
//!   prerequisite for recovery — the paper's consistency argument in §2.3.2).

pub mod cord;
pub mod fl;
pub mod fo;
pub mod parix;
pub mod pl;
pub mod plr;
pub mod tsue_drv;

use simdes::{Sim, SimTime};
use simdisk::{IoOp, Pattern};

use crate::cluster::Cluster;
use crate::config::{ClusterConfig, MethodKind};
use crate::layout::BlockSlice;

/// Per-node, method-specific log state.
pub enum NodeState {
    /// FO needs no log state.
    Plain,
    /// Full-logging state.
    Fl(fl::FlState),
    /// Parity-logging state.
    Pl(pl::PlState),
    /// Parity-logging-with-reserved-space state.
    Plr(plr::PlrState),
    /// PARIX speculative-log state.
    Parix(parix::ParixState),
    /// CoRD collector state.
    Cord(cord::CordState),
    /// TSUE three-layer log state.
    Tsue(Box<tsue_drv::TsueState>),
}

impl NodeState {
    /// Builds the state matching the configured method.
    pub fn new(cfg: &ClusterConfig) -> NodeState {
        match cfg.method {
            MethodKind::Fo => NodeState::Plain,
            MethodKind::Fl => NodeState::Fl(fl::FlState::new(cfg)),
            MethodKind::Pl => NodeState::Pl(pl::PlState::default()),
            MethodKind::Plr => NodeState::Plr(plr::PlrState::default()),
            MethodKind::Parix => NodeState::Parix(parix::ParixState::default()),
            MethodKind::Cord => NodeState::Cord(cord::CordState::new(cfg)),
            MethodKind::Tsue => NodeState::Tsue(Box::new(tsue_drv::TsueState::new(cfg))),
        }
    }
}

/// One in-flight client update (a single block slice).
#[derive(Debug, Clone, Copy)]
pub struct UpdateCtx {
    /// Issuing client.
    pub client: usize,
    /// The block range being updated.
    pub slice: BlockSlice,
    /// Issue time.
    pub issued_at: SimTime,
}

/// Dispatches an update to the configured method's driver.
pub fn begin_update(sim: &mut Sim<Cluster>, cl: &mut Cluster, ctx: UpdateCtx) {
    match cl.cfg.method {
        MethodKind::Fo => fo::begin_update(sim, cl, ctx),
        MethodKind::Fl => fl::begin_update(sim, cl, ctx),
        MethodKind::Pl => pl::begin_update(sim, cl, ctx),
        MethodKind::Plr => plr::begin_update(sim, cl, ctx),
        MethodKind::Parix => parix::begin_update(sim, cl, ctx),
        MethodKind::Cord => cord::begin_update(sim, cl, ctx),
        MethodKind::Tsue => tsue_drv::begin_update(sim, cl, ctx),
    }
}

/// The fresh-write path, identical for all methods: the client has already
/// encoded the stripe, so the data lands as a sequential write on the data
/// node plus an amortised `m/k` share of sequential parity writes.
pub fn begin_write(sim: &mut Sim<Cluster>, cl: &mut Cluster, ctx: UpdateCtx) {
    let (node, dev_off) = cl.layout.locate(ctx.slice.addr);
    let len = ctx.slice.len as u64;
    let now = ctx.issued_at;
    let client_ep = cl.cfg.client_endpoint(ctx.client);
    let t_arrive = cl.send(now, client_ep, node, len);
    let t_data = cl.disk_io(
        node,
        t_arrive,
        IoOp::write(dev_off + ctx.slice.offset as u64, len, Pattern::Sequential),
    );
    // Amortised parity share: the encoded parity written alongside.
    let pshare = (len * cl.cfg.code.m() as u64 / cl.cfg.code.k() as u64).max(1);
    let parity_addrs = cl.layout.parity_addrs(ctx.slice.addr.volume, ctx.slice.addr.stripe);
    let p0 = parity_addrs[ctx.slice.addr.stripe as usize % parity_addrs.len()];
    let (pnode, pdev) = cl.layout.locate(p0);
    let t_psend = cl.send(now, client_ep, pnode, pshare);
    let poff = pdev + (ctx.slice.offset as u64 % cl.cfg.block_bytes.saturating_sub(pshare).max(1));
    let t_parity = cl.disk_io(pnode, t_psend, IoOp::write(poff, pshare, Pattern::Sequential));
    let t_done = cl.ack(t_data.max(t_parity), node, client_ep);
    cl.finish_other(sim, ctx.client, false, t_done);
}

/// The read path: a log read-cache hit (TSUE/FL) skips the disk.
pub fn begin_read(sim: &mut Sim<Cluster>, cl: &mut Cluster, ctx: UpdateCtx) {
    let (node, dev_off) = cl.layout.locate(ctx.slice.addr);
    let len = ctx.slice.len as u64;
    let now = ctx.issued_at;
    let client_ep = cl.cfg.client_endpoint(ctx.client);
    let t_arrive = cl.ack(now, client_ep, node);

    // Check the method's read cache.
    let cache_hit = match &mut cl.nodes[node].state {
        NodeState::Tsue(ts) => {
            let key = ctx.slice.addr.key();
            ts.data
                .lookup(&key, ctx.slice.offset, ctx.slice.len)
                .iter()
                .map(|(_, g)| g.0 as u64)
                .sum::<u64>()
                >= len
        }
        NodeState::Fl(flst) => flst.covers(ctx.slice.addr, ctx.slice.offset, ctx.slice.len),
        _ => false,
    };
    let t_read = if cache_hit {
        cl.metrics.cache_read_hits += 1;
        t_arrive // served from memory
    } else {
        cl.disk_io(
            node,
            t_arrive,
            IoOp::read(dev_off + ctx.slice.offset as u64, len, Pattern::Random),
        )
    };
    let t_done = cl.send(t_read, node, client_ep, len);
    cl.finish_other(sim, ctx.client, true, t_done);
}

/// Drains all outstanding log state for the configured method; schedules
/// the work and returns. Run the sim to completion afterwards.
pub fn drain(sim: &mut Sim<Cluster>, cl: &mut Cluster) {
    match cl.cfg.method {
        MethodKind::Fo => {}
        MethodKind::Fl => fl::drain(sim, cl),
        MethodKind::Pl => pl::drain(sim, cl),
        MethodKind::Plr => plr::drain(sim, cl),
        MethodKind::Parix => parix::drain(sim, cl),
        MethodKind::Cord => cord::drain(sim, cl),
        MethodKind::Tsue => tsue_drv::drain(sim, cl),
    }
}

/// Bytes of log state still pending across the cluster (drain progress).
/// Includes a sentinel for forwarding events still in flight.
pub fn pending_log_bytes(cl: &Cluster) -> u64 {
    let node_bytes: u64 = cl
        .nodes
        .iter()
        .map(|n| match &n.state {
            NodeState::Plain => 0,
            NodeState::Fl(s) => s.pending_bytes(),
            NodeState::Pl(s) => s.pending_bytes(),
            NodeState::Plr(s) => s.pending_bytes(),
            NodeState::Parix(s) => s.pending_bytes(),
            NodeState::Cord(s) => s.pending_bytes(),
            NodeState::Tsue(s) => s.pending_bytes(),
        })
        .sum();
    cl.forwards_in_flight + node_bytes
}
