//! PARIX — speculative partial writes (Li et al., ATC '17): forward the
//! *new data* straight to the parity logs, skipping the data-block
//! write-after-read; fetch the original data lazily, once, on the first
//! update of a location (§2.2).
//!
//! The speculation wins when updates exhibit temporal locality (the old
//! value is only read once per location per recycle epoch); it loses on
//! first-touch updates, which pay an extra serial network round
//! ("2× network latency", Fig. 1) — particularly painful on the paper's
//! 25 Gb/s cloud fabric.

use simdes::{Sim, SimTime};
use simdisk::{IoOp, Pattern};

use std::collections::HashMap;

use crate::cluster::{Cluster, IntervalSet};
use crate::config::ClusterConfig;
use crate::layout::BlockAddr;
use crate::methods::{NodeLogState, UpdateCtx, UpdateMethod};
use crate::telemetry::{OpClass, Stage};
use tsue::index::{MergeMode, TwoLevelIndex};
use tsue::payload::Ghost;

/// The PARIX speculative-partial-write driver.
#[derive(Debug, Clone, Copy, Default)]
pub struct Parix;

/// Per-node PARIX state.
pub struct ParixState {
    /// At data nodes: which byte ranges of each local data block already
    /// have their *original* value at the parity logs (cleared on recycle).
    pub old_sent: HashMap<BlockAddr, IntervalSet>,
    /// At parity nodes: logged locations, merged newest-wins — PARIX's
    /// temporal-locality exploitation: only the latest value per location
    /// matters at recycle, plus the retained original.
    pub log: TwoLevelIndex<u64, Ghost>,
    /// Parity block addr per log key.
    pub addr_of: HashMap<u64, BlockAddr>,
    /// Raw logged bytes (new data + forwarded originals).
    pub bytes: u64,
}

impl Default for ParixState {
    fn default() -> Self {
        ParixState {
            old_sent: HashMap::new(),
            log: TwoLevelIndex::new(MergeMode::Overwrite),
            addr_of: HashMap::new(),
            bytes: 0,
        }
    }
}

impl NodeLogState for ParixState {
    fn pending_bytes(&self) -> u64 {
        self.bytes
    }
}

impl UpdateMethod for Parix {
    fn name(&self) -> &str {
        "PARIX"
    }

    fn new_node_state(&self, _cfg: &ClusterConfig) -> Box<dyn NodeLogState> {
        Box::<ParixState>::default()
    }

    fn begin_update(&self, sim: &mut Sim<Cluster>, cl: &mut Cluster, ctx: UpdateCtx) {
        let slice = ctx.slice;
        let len = slice.len as u64;
        let (dnode, ddev) = cl.layout.locate(slice.addr);
        let client_ep = cl.cfg.client_endpoint(ctx.client);

        let t_arrive = cl.send(ctx.start_at, client_ep, dnode, len);
        // In-place data write — no read! That is PARIX's front-end saving.
        let off = ddev + slice.offset as u64;
        let t_write = cl.disk_io(dnode, t_arrive, IoOp::write(off, len, Pattern::Random));
        cl.oracle_apply_data(slice.addr, slice.offset, slice.len);

        // First touch since the last recycle? Then the parity side needs the
        // original value: data node reads it and ships it — a serial extra
        // round on the critical path.
        let first_touch = match cl.nodes[dnode].state.downcast_mut::<ParixState>() {
            Some(state) => {
                let sent = state.old_sent.entry(slice.addr).or_default();
                let covered = sent.covers(slice.offset as u64, slice.offset as u64 + len);
                if !covered {
                    sent.insert(slice.offset as u64, slice.offset as u64 + len);
                }
                !covered
            }
            None => false,
        };
        // NOTE: the in-place write above already clobbered the old value; real
        // PARIX reads old before writing new on first touch. Order the read
        // before the write for timing purposes.
        let t_old_ready = if first_touch {
            cl.disk_io(dnode, t_arrive, IoOp::read(off, len, Pattern::Random))
        } else {
            t_arrive
        };

        let mut t_done = t_write;
        for paddr in cl.layout.parity_addrs(slice.addr.volume, slice.addr.stripe) {
            let (pnode, _) = cl.layout.locate(paddr);
            // Forward new data; log it sequentially.
            let t_new = cl.send(t_arrive, dnode, pnode, len);
            let log_off = cl.log_offset(pnode, len);
            let mut t_append =
                cl.disk_io(pnode, t_new, IoOp::write(log_off, len, Pattern::Sequential));
            if first_touch {
                // Serial extra round: parity asks, data node answers with the
                // original bytes, which are logged too.
                let t_req = cl.ack(t_append, pnode, dnode);
                let t_old = cl.send(t_req.max(t_old_ready), dnode, pnode, len);
                let log_off2 = cl.log_offset(pnode, len);
                t_append = cl.disk_io(
                    pnode,
                    t_old,
                    IoOp::write(log_off2, len, Pattern::Sequential),
                );
            }
            let over_threshold =
                if let Some(state) = cl.nodes[pnode].state.downcast_mut::<ParixState>() {
                    let key = paddr.key();
                    state.log.insert(key, slice.offset, Ghost(slice.len));
                    state.addr_of.insert(key, paddr);
                    state.bytes += len * if first_touch { 2 } else { 1 };
                    state.bytes >= cl.cfg.parix_threshold_for()
                } else {
                    false
                };
            // Epoch boundary: the parity log reached its threshold. The hot
            // log segment rolls over (old segments go cold and are recycled
            // lazily), so first-touch tracking resets: the next update of each
            // location pays the extra round again (§2.2: PARIX "does not fully
            // exploit temporal locality"). The deferred recycle I/O itself is
            // paid at drain time, like PL.
            if over_threshold {
                epoch_reset(cl, pnode);
            }
            t_done = t_done.max(t_append);
        }

        let t_ack = cl.ack(t_done, dnode, client_ep);
        cl.oracle_ack(slice.addr, slice.offset, slice.len);
        cl.trace_op(
            &ctx,
            OpClass::Update,
            &[
                (Stage::NetSend, t_arrive),
                (Stage::DiskIo, t_write),
                (Stage::LogAppend, t_done),
                (Stage::Ack, t_ack),
            ],
        );
        cl.finish_update(sim, ctx, t_ack);
    }

    fn drain(&self, sim: &mut Sim<Cluster>, cl: &mut Cluster) {
        self.drain_until(sim, cl);
    }

    fn drain_until(&self, sim: &mut Sim<Cluster>, cl: &mut Cluster) -> SimTime {
        let now = sim.now();
        let mut t_end = now;
        for node in 0..cl.cfg.nodes {
            let t_node = recycle_node(cl, node, now);
            if t_node > now {
                cl.trace_child(Stage::Recycle, node, now, t_node);
            }
            t_end = t_end.max(t_node);
        }
        for osd in cl.nodes.iter_mut() {
            if let Some(state) = osd.state.downcast_mut::<ParixState>() {
                state.old_sent.clear();
            }
        }
        sim.schedule_at(t_end, |_, _| {});
        t_end
    }
}

/// Rolls a parity node's log epoch: resets the first-touch tracking of
/// every data block whose stripe logs here, and resets the byte counter
/// (the cold segments remain accounted until drain).
fn epoch_reset(cl: &mut Cluster, node: usize) {
    let addrs: Vec<BlockAddr> = match cl.nodes[node].state.downcast_mut::<ParixState>() {
        Some(state) => {
            state.bytes = 0;
            state.addr_of.values().copied().collect()
        }
        None => return,
    };
    let k = cl.cfg.code.k() as u16;
    for paddr in addrs {
        for idx in 0..k {
            let daddr = BlockAddr {
                volume: paddr.volume,
                stripe: paddr.stripe,
                index: idx,
            };
            let dnode = cl.layout.current_node(daddr);
            if let Some(ds) = cl.nodes[dnode].state.downcast_mut::<ParixState>() {
                ds.old_sent.remove(&daddr);
            }
        }
    }
}

/// Recycles one node's PARIX log: per merged location, compute the delta
/// from the logged (original, newest) pair and RMW the parity block.
pub fn recycle_node(cl: &mut Cluster, node: usize, from: SimTime) -> SimTime {
    let (mut contents, addr_of) = match cl.nodes[node].state.downcast_mut::<ParixState>() {
        Some(state) => {
            let c = state.log.drain_all();
            state.bytes = 0;
            let a = std::mem::take(&mut state.addr_of);
            (c, a)
        }
        None => return from,
    };
    // The backing index drains in hash order; sorted replay keeps the
    // chained I/O bookings deterministic across threads and processes.
    contents.sort_unstable_by_key(|(k, _)| *k);
    let mut t = from;
    let code = cl.cfg.code;
    for (key, ranges) in &contents {
        let paddr = addr_of[key];
        // The recycled originals vanish: the data blocks of this stripe
        // must re-send old values on their next update (selective
        // first-touch reset).
        for idx in 0..code.k() as u16 {
            let daddr = crate::layout::BlockAddr {
                volume: paddr.volume,
                stripe: paddr.stripe,
                index: idx,
            };
            let dnode = cl.layout.current_node(daddr);
            if let Some(ds) = cl.nodes[dnode].state.downcast_mut::<ParixState>() {
                ds.old_sent.remove(&daddr);
            }
        }
        let (pnode, pdev) = cl.layout.locate(paddr);
        for (off, g) in ranges {
            let len = g.0 as u64;
            // Read logged pair (sequential log scan piece), then parity RMW
            // — at the block's current home, which a rebuild may have moved
            // off this node (the replayed delta then crosses the network).
            let log_off = cl.log_offset(node, 2 * len);
            let mut t_pair = cl.disk_io(node, t, IoOp::read(log_off, 2 * len, Pattern::Random));
            if pnode != node {
                t_pair = cl.send(t_pair, node, pnode, 2 * len);
            }
            let poff = pdev + *off as u64;
            t = cl.disk_io(pnode, t_pair, IoOp::read(poff, len, Pattern::Random));
            t = cl.disk_io(pnode, t, IoOp::write(poff, len, Pattern::Random));
            cl.oracle_apply_parity(paddr, *off, g.0);
        }
    }
    t
}
