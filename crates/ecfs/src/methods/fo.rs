//! FO — Full Overwrite (Aguilera et al.): in-place updates of the data
//! block *and* every parity block, all on the synchronous path.
//!
//! The longest update path of all methods (§2.2, Fig. 1): a write-after-read
//! on the data block to compute the delta, then a write-after-read on each
//! of the `m` parity blocks. Every access is small and random. No logs, so
//! nothing to drain and recovery starts immediately.

use simdes::Sim;
use simdisk::{IoOp, Pattern};

use crate::cluster::Cluster;
use crate::methods::{UpdateCtx, UpdateMethod};
use crate::telemetry::{OpClass, Stage};

/// The Full-Overwrite driver (stateless; no per-node log state).
#[derive(Debug, Clone, Copy, Default)]
pub struct Fo;

impl UpdateMethod for Fo {
    fn name(&self) -> &str {
        "FO"
    }

    fn begin_update(&self, sim: &mut Sim<Cluster>, cl: &mut Cluster, ctx: UpdateCtx) {
        let slice = ctx.slice;
        let len = slice.len as u64;
        let (dnode, ddev) = cl.layout.locate(slice.addr);
        let client_ep = cl.cfg.client_endpoint(ctx.client);

        // Client -> data node.
        let t_arrive = cl.send(ctx.start_at, client_ep, dnode, len);
        // Write-after-read on the data block (delta computation, Eq. 2).
        let off = ddev + slice.offset as u64;
        let t_read = cl.disk_io(dnode, t_arrive, IoOp::read(off, len, Pattern::Random));
        let t_write = cl.disk_io(dnode, t_read, IoOp::write(off, len, Pattern::Random));
        cl.oracle_apply_data(slice.addr, slice.offset, slice.len);

        // Parity deltas fan out; each parity block is read-modify-written in
        // place. The ack waits for the slowest parity.
        let mut t_done = t_write;
        for paddr in cl.layout.parity_addrs(slice.addr.volume, slice.addr.stripe) {
            let (pnode, pdev) = cl.layout.locate(paddr);
            let t_delta = cl.send(t_write, dnode, pnode, len);
            let poff = pdev + slice.offset as u64;
            let t_pr = cl.disk_io(pnode, t_delta, IoOp::read(poff, len, Pattern::Random));
            let t_pw = cl.disk_io(pnode, t_pr, IoOp::write(poff, len, Pattern::Random));
            cl.oracle_apply_parity(paddr, slice.offset, slice.len);
            t_done = t_done.max(t_pw);
        }

        let t_ack = cl.ack(t_done, dnode, client_ep);
        cl.oracle_ack(slice.addr, slice.offset, slice.len);
        cl.trace_op(
            &ctx,
            OpClass::Update,
            &[
                (Stage::NetSend, t_arrive),
                (Stage::DiskIo, t_write),
                (Stage::ParityIo, t_done),
                (Stage::Ack, t_ack),
            ],
        );
        cl.finish_update(sim, ctx, t_ack);
    }
}
