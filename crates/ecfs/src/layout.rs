//! Volume-to-stripe layout and block placement — the MDS's job (§4).
//!
//! Each client owns one logical volume (one large file). A volume is
//! striped: stripe `s` covers bytes `[s·kB, (s+1)·kB)` in `k` blocks of `B`
//! bytes, followed by `m` parity blocks. The `k + m` blocks of a stripe are
//! placed on distinct OSDs by a pluggable [`PlacementPolicy`] (the default
//! [`FlatRotate`] rotates a per-stripe hash over all nodes), and each OSD
//! allocates device space for its blocks with a bump allocator.

use std::collections::HashMap;
use std::sync::Arc;

use rscode::CodeParams;

use crate::placement::{FlatRotate, PlacementPolicy, RackMap};

/// Globally unique block id: `(volume, stripe, index within stripe)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockAddr {
    /// Volume (client/file) id.
    pub volume: u32,
    /// Stripe index within the volume.
    pub stripe: u64,
    /// Block index within the stripe: `0..k` data, `k..k+m` parity.
    pub index: u16,
}

impl BlockAddr {
    /// A compact u64 key (for log-pool hashing).
    ///
    /// Layout: volume low 16 bits at 48..64, stripe at 8..48, index at
    /// 0..8 — and the volume's *high* 16 bits folded into bits 28..44,
    /// which keeps the key bit-identical to the legacy packing for
    /// volumes below 65 536 (every pinned golden) while staying injective
    /// for the full 32-bit volume space (million-client populations, one
    /// volume per client) as long as `stripe < 2^20` (≥ 24 TiB per volume
    /// at 6 × 4 MiB stripes). The legacy packing simply shifted the whole
    /// volume to bit 48 and silently aliased clients beyond 65 535.
    pub fn key(&self) -> u64 {
        let v = self.volume as u64;
        debug_assert!(
            v < 1 << 16 || self.stripe < 1 << 20,
            "stripe beyond the injective key range for wide volume ids"
        );
        debug_assert!(self.index < 1 << 8, "index beyond 8-bit key space");
        (v & 0xffff) << 48 ^ (v >> 16) << 28 ^ self.stripe << 8 ^ self.index as u64
    }

    /// Whether this is a data block under the given code.
    pub fn is_data(&self, code: CodeParams) -> bool {
        (self.index as usize) < code.k()
    }
}

/// A stripe-global identifier (volume + stripe) used by delta/parity keys.
/// 24 bits of volume (16 M clients) above 40 bits of stripe — unlike
/// [`BlockAddr::key`], this packing already covers million-client
/// populations without aliasing.
pub fn stripe_key(volume: u32, stripe: u64) -> u64 {
    debug_assert!((volume as u64) < 1 << 24, "volume beyond 24-bit key space");
    debug_assert!(stripe < 1 << 40, "stripe beyond 40-bit key space");
    (volume as u64) << 40 ^ stripe
}

/// One sub-update after splitting a volume-offset range on block
/// boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockSlice {
    /// The data block touched.
    pub addr: BlockAddr,
    /// Offset within the block.
    pub offset: u32,
    /// Length in bytes.
    pub len: u32,
}

/// The layout/placement service.
#[derive(Debug, Clone)]
pub struct Layout {
    code: CodeParams,
    block_bytes: u64,
    /// The placement policy mapping blocks to OSDs.
    policy: Arc<dyn PlacementPolicy>,
    /// Node → rack assignment the policy consults.
    racks: RackMap,
    /// Extra device bytes reserved after each parity block (PLR's reserved
    /// log space; zero for every other method).
    parity_extra: u64,
    /// Device-offset allocation per node.
    cursors: Vec<u64>,
    /// Block → (node, device offset).
    table: HashMap<BlockAddr, (usize, u64)>,
}

impl Layout {
    /// New single-rack layout over `nodes` OSDs under [`FlatRotate`].
    pub fn new(code: CodeParams, block_bytes: u64, nodes: usize) -> Layout {
        Self::with_parity_extra(code, block_bytes, nodes, 0)
    }

    /// Single-rack [`FlatRotate`] layout reserving `parity_extra` bytes
    /// adjacent to each parity block.
    pub fn with_parity_extra(
        code: CodeParams,
        block_bytes: u64,
        nodes: usize,
        parity_extra: u64,
    ) -> Layout {
        Self::with_placement(
            code,
            block_bytes,
            parity_extra,
            Arc::new(FlatRotate),
            RackMap::contiguous(nodes, 1),
        )
    }

    /// Fully explicit layout: a placement policy over a rack map.
    ///
    /// # Panics
    /// Panics if the policy rejects the `(code, racks)` shape.
    pub fn with_placement(
        code: CodeParams,
        block_bytes: u64,
        parity_extra: u64,
        policy: Arc<dyn PlacementPolicy>,
        racks: RackMap,
    ) -> Layout {
        policy
            .check(code, &racks)
            .expect("placement policy rejected the cluster shape");
        let nodes = racks.nodes();
        Layout {
            code,
            block_bytes,
            policy,
            racks,
            parity_extra,
            cursors: vec![0; nodes],
            table: HashMap::new(),
        }
    }

    /// The code shape.
    pub fn code(&self) -> CodeParams {
        self.code
    }

    /// The placement policy in force.
    pub fn placement(&self) -> &Arc<dyn PlacementPolicy> {
        &self.policy
    }

    /// The node → rack assignment.
    pub fn racks(&self) -> &RackMap {
        &self.racks
    }

    /// Block size in bytes.
    pub fn block_bytes(&self) -> u64 {
        self.block_bytes
    }

    /// Splits a volume byte range into per-data-block slices.
    pub fn slices(&self, volume: u32, offset: u64, len: u32) -> Vec<BlockSlice> {
        let k = self.code.k() as u64;
        let b = self.block_bytes;
        let stripe_span = k * b;
        let mut out = Vec::new();
        let mut cur = offset;
        let end = offset + len as u64;
        while cur < end {
            let stripe = cur / stripe_span;
            let within = cur % stripe_span;
            let index = (within / b) as u16;
            let block_off = within % b;
            let take = (b - block_off).min(end - cur);
            out.push(BlockSlice {
                addr: BlockAddr {
                    volume,
                    stripe,
                    index,
                },
                offset: block_off as u32,
                len: take as u32,
            });
            cur += take;
        }
        out
    }

    /// The OSD hosting a block, per the configured [`PlacementPolicy`];
    /// the `k + m` blocks of one stripe always land on distinct nodes.
    pub fn node_of(&self, addr: BlockAddr) -> usize {
        self.policy.node_of(addr, self.code, &self.racks)
    }

    /// The rack hosting a block.
    pub fn rack_of(&self, addr: BlockAddr) -> usize {
        self.racks.rack_of(self.node_of(addr))
    }

    /// Node and device offset of a block, allocating on first touch.
    /// Parity blocks also reserve `parity_extra` adjacent bytes.
    pub fn locate(&mut self, addr: BlockAddr) -> (usize, u64) {
        if let Some(&loc) = self.table.get(&addr) {
            return loc;
        }
        let node = self.node_of(addr);
        let dev_off = self.cursors[node];
        let span = if addr.is_data(self.code) {
            self.block_bytes
        } else {
            self.block_bytes + self.parity_extra
        };
        self.cursors[node] += span;
        self.table.insert(addr, (node, dev_off));
        (node, dev_off)
    }

    /// Re-homes a block (recovery rebuilt it elsewhere): subsequent
    /// [`Self::locate`] and [`Self::blocks_on`] see the new location.
    pub fn relocate(&mut self, addr: BlockAddr, node: usize, dev_off: u64) {
        self.table.insert(addr, (node, dev_off));
    }

    /// Whether the block has been allocated device space (placed or
    /// relocated) — i.e. whether it may hold data.
    pub fn is_placed(&self, addr: BlockAddr) -> bool {
        self.table.contains_key(&addr)
    }

    /// The node currently hosting a block: its relocation target if it was
    /// re-homed, otherwise its placement-policy home. Never allocates.
    pub fn current_node(&self, addr: BlockAddr) -> usize {
        match self.table.get(&addr) {
            Some(&(n, _)) => n,
            None => self.node_of(addr),
        }
    }

    /// Forces a not-yet-placed block onto `node` (degraded placement: its
    /// policy home is dead, so the MDS homes it on a live node instead),
    /// allocating device space there. Returns the device offset.
    ///
    /// # Panics
    /// Panics if the block is already placed — relocation of live data
    /// goes through [`Self::relocate`] after a rebuild.
    pub fn place_on(&mut self, addr: BlockAddr, node: usize) -> u64 {
        assert!(
            !self.is_placed(addr),
            "place_on called on an already-placed block"
        );
        let dev_off = self.cursors[node];
        let span = if addr.is_data(self.code) {
            self.block_bytes
        } else {
            self.block_bytes + self.parity_extra
        };
        self.cursors[node] += span;
        self.table.insert(addr, (node, dev_off));
        dev_off
    }

    /// Device bytes allocated on `node` so far.
    pub fn allocated(&self, node: usize) -> u64 {
        self.cursors[node]
    }

    /// All placed blocks on a node (for recovery enumeration).
    pub fn blocks_on(&self, node: usize) -> Vec<(BlockAddr, u64)> {
        let mut v: Vec<(BlockAddr, u64)> = self
            .table
            .iter()
            .filter(|(_, &(n, _))| n == node)
            .map(|(&a, &(_, off))| (a, off))
            .collect();
        v.sort_by_key(|&(_, off)| off);
        v
    }

    /// The number of distinct co-location sets among all touched stripes:
    /// for every stripe with at least one placed block, the set of nodes
    /// hosting its `k + m` blocks (current homes for placed blocks, the
    /// policy's homes for the rest). A copyset placement bounds this by
    /// its budget (rebuild relocations can drift it); rotation placements
    /// grow it with the stripe count — it is the blast-radius currency a
    /// [`crate::fault::FaultPlan`] run reports.
    pub fn distinct_copysets(&self) -> usize {
        let stripes: std::collections::HashSet<(u32, u64)> = self
            .table
            .keys()
            .map(|addr| (addr.volume, addr.stripe))
            .collect();
        let mut sets = std::collections::HashSet::new();
        for (volume, stripe) in stripes {
            let mut nodes: Vec<usize> = (0..self.code.total() as u16)
                .map(|index| {
                    self.current_node(BlockAddr {
                        volume,
                        stripe,
                        index,
                    })
                })
                .collect();
            nodes.sort_unstable();
            nodes.dedup();
            sets.insert(nodes);
        }
        sets.len()
    }

    /// The parity block addresses of a stripe.
    pub fn parity_addrs(&self, volume: u32, stripe: u64) -> Vec<BlockAddr> {
        (0..self.code.m() as u16)
            .map(|p| BlockAddr {
                volume,
                stripe,
                index: self.code.k() as u16 + p,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> Layout {
        Layout::new(CodeParams::new(6, 3).unwrap(), 1 << 20, 16)
    }

    #[test]
    fn slices_within_one_block() {
        let l = layout();
        let s = l.slices(0, 100, 4096);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].addr.stripe, 0);
        assert_eq!(s[0].addr.index, 0);
        assert_eq!(s[0].offset, 100);
        assert_eq!(s[0].len, 4096);
    }

    #[test]
    fn slices_split_on_block_boundary() {
        let l = layout();
        let b = 1u64 << 20;
        let s = l.slices(3, b - 1000, 4096);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].addr.index, 0);
        assert_eq!(s[0].offset as u64, b - 1000);
        assert_eq!(s[0].len, 1000);
        assert_eq!(s[1].addr.index, 1);
        assert_eq!(s[1].offset, 0);
        assert_eq!(s[1].len, 3096);
    }

    #[test]
    fn slices_cross_stripe_boundary() {
        let l = layout();
        let stripe_span = 6 * (1u64 << 20);
        let s = l.slices(0, stripe_span - 100, 200);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].addr.stripe, 0);
        assert_eq!(s[0].addr.index, 5);
        assert_eq!(s[1].addr.stripe, 1);
        assert_eq!(s[1].addr.index, 0);
    }

    #[test]
    fn stripe_blocks_on_distinct_nodes() {
        let l = layout();
        for stripe in 0..50 {
            let nodes: Vec<usize> = (0..9u16)
                .map(|i| {
                    l.node_of(BlockAddr {
                        volume: 1,
                        stripe,
                        index: i,
                    })
                })
                .collect();
            let mut sorted = nodes.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 9, "stripe {stripe}: {nodes:?}");
        }
    }

    #[test]
    fn placement_spreads_over_all_nodes() {
        let mut l = layout();
        let mut hit = vec![0u32; 16];
        for v in 0..4u32 {
            for s in 0..40u64 {
                for i in 0..9u16 {
                    let (n, _) = l.locate(BlockAddr {
                        volume: v,
                        stripe: s,
                        index: i,
                    });
                    hit[n] += 1;
                }
            }
        }
        let min = *hit.iter().min().unwrap();
        let max = *hit.iter().max().unwrap();
        assert!(min > 0, "some node unused: {hit:?}");
        assert!(max < min * 3, "placement too skewed: {hit:?}");
    }

    #[test]
    fn locate_is_stable_and_bumps() {
        let mut l = layout();
        let a = BlockAddr {
            volume: 0,
            stripe: 0,
            index: 0,
        };
        let first = l.locate(a);
        assert_eq!(l.locate(a), first);
        // Another block on the same node gets the next slot.
        let mut other = None;
        for s in 1..100 {
            let addr = BlockAddr {
                volume: 0,
                stripe: s,
                index: 0,
            };
            if l.node_of(addr) == first.0 {
                other = Some(l.locate(addr));
                break;
            }
        }
        let other = other.expect("some stripe lands on the same node");
        assert_eq!(other.1, first.1 + (1 << 20));
        assert_eq!(l.allocated(first.0), 2 << 20);
    }

    #[test]
    fn blocks_on_lists_node_blocks() {
        let mut l = layout();
        for s in 0..20u64 {
            for i in 0..9u16 {
                l.locate(BlockAddr {
                    volume: 0,
                    stripe: s,
                    index: i,
                });
            }
        }
        let total: usize = (0..16).map(|n| l.blocks_on(n).len()).sum();
        assert_eq!(total, 180);
    }

    #[test]
    fn distinct_copysets_counts_node_sets() {
        let mut l = layout();
        assert_eq!(l.distinct_copysets(), 0, "empty layout has no sets");
        for s in 0..30u64 {
            for i in 0..9u16 {
                l.locate(BlockAddr {
                    volume: 0,
                    stripe: s,
                    index: i,
                });
            }
        }
        let sets = l.distinct_copysets();
        assert!(sets > 1 && sets <= 30, "flat rotation used {sets} sets");
        // Relocating a block changes its stripe's node set.
        let a = BlockAddr {
            volume: 0,
            stripe: 0,
            index: 0,
        };
        let elsewhere = (0..16)
            .find(|&n| {
                (0..9u16).all(|i| {
                    l.current_node(BlockAddr {
                        volume: 0,
                        stripe: 0,
                        index: i,
                    }) != n
                })
            })
            .expect("some node outside stripe 0");
        l.relocate(a, elsewhere, 0);
        assert!(l.distinct_copysets() >= sets, "relocation cannot shrink");
    }

    #[test]
    fn current_node_tracks_relocation() {
        let mut l = layout();
        let a = BlockAddr {
            volume: 0,
            stripe: 7,
            index: 2,
        };
        let policy_home = l.node_of(a);
        assert_eq!(l.current_node(a), policy_home, "unplaced: policy home");
        assert!(!l.is_placed(a));
        let (node, _) = l.locate(a);
        assert_eq!(node, policy_home);
        assert!(l.is_placed(a));
        let target = (policy_home + 1) % 16;
        l.relocate(a, target, 42);
        assert_eq!(l.current_node(a), target);
        assert_eq!(l.locate(a), (target, 42));
    }

    #[test]
    fn place_on_forces_home_and_allocates() {
        let mut l = layout();
        let a = BlockAddr {
            volume: 0,
            stripe: 3,
            index: 1,
        };
        let target = (l.node_of(a) + 5) % 16;
        let before = l.allocated(target);
        let off = l.place_on(a, target);
        assert_eq!(off, before);
        assert_eq!(l.allocated(target), before + (1 << 20));
        assert_eq!(l.current_node(a), target);
        assert_eq!(l.locate(a), (target, off));
    }

    #[test]
    #[should_panic(expected = "already-placed")]
    fn place_on_rejects_placed_blocks() {
        let mut l = layout();
        let a = BlockAddr {
            volume: 0,
            stripe: 0,
            index: 0,
        };
        l.locate(a);
        l.place_on(a, 3);
    }

    #[test]
    fn block_key_unique_for_small_space() {
        let mut seen = std::collections::HashSet::new();
        for v in 0..3u32 {
            for s in 0..100u64 {
                for i in 0..10u16 {
                    assert!(seen.insert(
                        BlockAddr {
                            volume: v,
                            stripe: s,
                            index: i
                        }
                        .key()
                    ));
                }
            }
        }
    }
}
