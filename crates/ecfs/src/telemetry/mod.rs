//! Deterministic tracing & telemetry: per-op lifecycle spans, stage-level
//! latency attribution, utilization lanes, and exporters.
//!
//! The replay's aggregate metrics say *how much* each method costs; this
//! layer says *where the time goes*. Every driver reports its op's
//! critical-path stage boundaries (`queue_wait → net_send → disk_io →
//! log_append → ack`, method-specific in the middle) right before it
//! completes the op, and background machinery (recycle, repair,
//! maintenance, degraded decode) reports child spans on per-node lanes.
//! From the same records the layer derives:
//!
//! * [`StageRow`] — the per-class, per-stage rollup surfaced as
//!   `RunResult::stage_breakdown` (Fig. 7's decomposition generalized to
//!   every method and sweep);
//! * [`Trace`] — the retained spans + op index + utilization lanes, with
//!   exporters to Chrome Trace Event JSON ([`chrome`], loads directly in
//!   Perfetto) and a compact binary log ([`binary`], read by
//!   `trace_dump`).
//!
//! Determinism contract: spans carry only simulation timestamps, all
//! span-producing events execute on the core engine shard, and the
//! bounded [`simdes::SpanLog`] retains a prefix that is a pure function
//! of the event sequence — so a 4-shard replay's trace is **bit-identical**
//! to the serial trace, and tracing *off* (the default) leaves the replay
//! byte-for-byte on its pinned goldens because nothing in this module
//! runs.
//!
//! Attribution is exact by construction: an op's stages are contiguous
//! half-open intervals partitioning `[issued_at, ack]`, so their durations
//! sum to the client-observed latency to the nanosecond (parallel fan-out
//! collapses onto the critical path; park/retry waits land in the stage
//! that follows them).

use std::collections::BTreeMap;

use simdes::stats::{Histogram, TimeSeries};
use simdes::{SimTime, SpanLog};

// The span record traces are made of, re-exported so downstream crates
// (e.g. the bench harness's `trace_dump`) can consume traces without a
// direct `simdes` dependency.
pub use simdes::Span;

pub mod binary;
pub mod chrome;

/// A lifecycle stage an op (or background job) spends time in.
///
/// The first block are critical-path stages reported by the method
/// drivers; the second are child-span kinds for background machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u16)]
pub enum Stage {
    /// Admission/queue wait: op issued but not yet dispatched.
    QueueWait = 0,
    /// Client → node fabric transfer (request RPC + payload).
    NetSend = 1,
    /// Foreground disk I/O (data read-modify-write, in-place write).
    DiskIo = 2,
    /// Erasure encode on the critical path.
    Encode = 3,
    /// Erasure decode (degraded reads).
    Decode = 4,
    /// Sequential log append (data or delta logs).
    LogAppend = 5,
    /// Parity-branch completion: fan-out transfer + parity-side work.
    ParityIo = 6,
    /// Completion RPC back to the client.
    Ack = 7,
    /// Background: log recycle / flush / garbage collection.
    Recycle = 8,
    /// Background: post-fault block rebuild.
    Repair = 9,
    /// Background: maintenance window (scrub, rebalance, demote, defrag).
    Maintenance = 10,
    /// Served from the node-local cache layer (read hit: no disk touched).
    CacheHit = 11,
    /// Background: a staged write-buffer flush replaying coalesced deltas
    /// through the wrapped method ([`crate::cache`]).
    StageFlush = 12,
}

/// Every stage, in id order (export tables iterate this).
pub const STAGES: [Stage; 13] = [
    Stage::QueueWait,
    Stage::NetSend,
    Stage::DiskIo,
    Stage::Encode,
    Stage::Decode,
    Stage::LogAppend,
    Stage::ParityIo,
    Stage::Ack,
    Stage::Recycle,
    Stage::Repair,
    Stage::Maintenance,
    Stage::CacheHit,
    Stage::StageFlush,
];

impl Stage {
    /// Stable wire id.
    pub fn id(self) -> u16 {
        self as u16
    }

    /// Decodes a wire id.
    pub fn from_id(id: u16) -> Option<Stage> {
        STAGES.get(id as usize).copied()
    }

    /// Human-readable name (trace lanes, tables).
    pub fn name(self) -> &'static str {
        match self {
            Stage::QueueWait => "queue_wait",
            Stage::NetSend => "net_send",
            Stage::DiskIo => "disk_io",
            Stage::Encode => "encode",
            Stage::Decode => "decode",
            Stage::LogAppend => "log_append",
            Stage::ParityIo => "parity_io",
            Stage::Ack => "ack",
            Stage::Recycle => "recycle",
            Stage::Repair => "repair",
            Stage::Maintenance => "maintenance",
            Stage::CacheHit => "cache_hit",
            Stage::StageFlush => "stage_flush",
        }
    }
}

/// The class of operation a span belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u16)]
pub enum OpClass {
    /// A client update (the paper's workload unit).
    Update = 0,
    /// A client read (including degraded reads).
    Read = 1,
    /// Background work not attributed to one client op.
    Background = 2,
    /// A fresh (full-stripe) client write — distinct from `Update` so the
    /// Update rollup reconciles against update-only latency metrics.
    Write = 3,
}

impl OpClass {
    /// Stable wire id.
    pub fn id(self) -> u16 {
        self as u16
    }

    /// Decodes a wire id.
    pub fn from_id(id: u16) -> Option<OpClass> {
        match id {
            0 => Some(OpClass::Update),
            1 => Some(OpClass::Read),
            2 => Some(OpClass::Background),
            3 => Some(OpClass::Write),
            _ => None,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            OpClass::Update => "update",
            OpClass::Read => "read",
            OpClass::Background => "background",
            OpClass::Write => "write",
        }
    }
}

/// Utilization lane kinds sampled from resource bookings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u16)]
pub enum UtilKind {
    /// A node's disk (busy ns per bucket).
    Disk = 0,
    /// A node's NIC send direction (rack uplink usage included).
    NetTx = 1,
    /// The spine (cross-rack aggregate).
    Spine = 2,
    /// The repair pump's rebuild traffic.
    Repair = 3,
}

impl UtilKind {
    /// Stable wire id.
    pub fn id(self) -> u16 {
        self as u16
    }

    /// Decodes a wire id.
    pub fn from_id(id: u16) -> Option<UtilKind> {
        match id {
            0 => Some(UtilKind::Disk),
            1 => Some(UtilKind::NetTx),
            2 => Some(UtilKind::Spine),
            3 => Some(UtilKind::Repair),
            _ => None,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            UtilKind::Disk => "disk",
            UtilKind::NetTx => "net_tx",
            UtilKind::Spine => "spine",
            UtilKind::Repair => "repair",
        }
    }
}

/// Tracing configuration, validated and carried on `ReplayConfig`.
///
/// The default is **off**: no state is touched, so a traced build replays
/// byte-for-byte identically to the pinned goldens. When enabled, the
/// rollup (`stage_breakdown`) always sees every op — sampling and filters
/// bound only the *retained* spans, and everything not retained is counted
/// in `trace_dropped_spans` rather than silently forgotten.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceConfig {
    /// Master switch (default `false` — byte-for-byte identical replay).
    pub enabled: bool,
    /// Retain every Nth op's spans (1 = all ops). Filtered ops count as
    /// sampled-out, not dropped.
    pub sample_every: u64,
    /// Half-open `[lo, hi)` op-id filter on retained spans (`None` = all).
    pub op_filter: Option<(u64, u64)>,
    /// Bitmask over [`Stage::id`]s retained in the span log (`!0` = all).
    /// The rollup ignores this mask so attribution stays complete.
    pub stage_mask: u32,
    /// Maximum retained spans; overflow increments `trace_dropped_spans`.
    pub capacity: usize,
    /// Bucket width of the utilization lanes, nanoseconds.
    pub util_bucket_ns: u64,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            enabled: false,
            sample_every: 1,
            op_filter: None,
            stage_mask: !0,
            capacity: 1 << 20,
            util_bucket_ns: 10 * simdes::units::MILLIS,
        }
    }
}

impl TraceConfig {
    /// Tracing on with the default budget (all ops, all stages, 1M spans).
    pub fn on() -> TraceConfig {
        TraceConfig {
            enabled: true,
            ..TraceConfig::default()
        }
    }

    /// Retain every `n`-th op's spans.
    pub fn with_sampling(mut self, n: u64) -> TraceConfig {
        self.sample_every = n;
        self
    }

    /// Retain only ops with id in `[lo, hi)`.
    pub fn with_op_range(mut self, lo: u64, hi: u64) -> TraceConfig {
        self.op_filter = Some((lo, hi));
        self
    }

    /// Retain only the given stages in the span log.
    pub fn with_stages(mut self, stages: &[Stage]) -> TraceConfig {
        self.stage_mask = stages.iter().fold(0, |m, s| m | (1u32 << s.id()));
        self
    }

    /// Cap the retained span count.
    pub fn with_capacity(mut self, capacity: usize) -> TraceConfig {
        self.capacity = capacity;
        self
    }

    /// Checks internal consistency (called from `ReplayConfig::validate`).
    pub fn validate(&self) -> Result<(), String> {
        if !self.enabled {
            return Ok(());
        }
        if self.sample_every == 0 {
            return Err("trace.sample_every must be >= 1".into());
        }
        if self.capacity == 0 {
            return Err("trace.capacity must be positive when tracing".into());
        }
        if self.stage_mask == 0 {
            return Err("trace.stage_mask retains no stages".into());
        }
        if let Some((lo, hi)) = self.op_filter {
            if lo >= hi {
                return Err("trace.op_filter range is empty".into());
            }
        }
        if self.util_bucket_ns == 0 {
            return Err("trace.util_bucket_ns must be positive".into());
        }
        Ok(())
    }
}

/// One sampled op in the trace index: identity plus the exact interval its
/// stage spans partition. `latency` is attached independently by the
/// completion path, so tests can pin `sum(stage spans) == latency` as two
/// separately-derived numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpRecord {
    /// Trace-order op id (the id spans carry).
    pub op: u64,
    /// Issuing client.
    pub client: u64,
    /// Op class.
    pub class: OpClass,
    /// Issue time (arrival; spans start here).
    pub start: SimTime,
    /// Completion time (ack; the last span ends here).
    pub end: SimTime,
    /// Client-observed latency as recorded by the metrics path.
    pub latency: SimTime,
}

/// One utilization lane: busy nanoseconds per fixed-width time bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UtilLane {
    /// What resource family the lane samples.
    pub kind: UtilKind,
    /// Resource instance (node id; 0 for singletons like the spine).
    pub id: u32,
    /// Bucket width, nanoseconds.
    pub bucket_ns: u64,
    /// Busy nanoseconds accumulated per bucket.
    pub busy: Vec<u64>,
}

/// One row of the stage-attribution rollup (`RunResult::stage_breakdown`):
/// how much time one op class spent in one stage across the whole run.
#[derive(Debug, Clone, PartialEq)]
pub struct StageRow {
    /// Op class the row aggregates.
    pub class: OpClass,
    /// Lifecycle stage.
    pub stage: Stage,
    /// Number of spans.
    pub count: u64,
    /// Total stage time, microseconds.
    pub total_us: f64,
    /// Mean span duration, microseconds.
    pub mean_us: f64,
    /// p99 span duration, microseconds (histogram bucket upper bound — see
    /// `Histogram::quantile`).
    pub p99_us: f64,
}

/// A finished run's trace: retained spans, the sampled-op index, and the
/// utilization lanes — everything the exporters and `trace_dump` need.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// The update method the run replayed (display only).
    pub method: String,
    /// Retained spans in canonical (completion) order.
    pub spans: Vec<Span>,
    /// Sampled-op index aligned with the spans' op ids.
    pub ops: Vec<OpRecord>,
    /// Utilization lanes in (kind, id) order.
    pub util: Vec<UtilLane>,
    /// Spans that arrived after the retention budget filled.
    pub dropped: u64,
}

#[derive(Debug, Clone, Default)]
struct RollupCell {
    count: u64,
    total_ns: u128,
    hist: Histogram,
}

/// Live tracing state embedded in the cluster. All methods early-return
/// when disarmed, so the disabled path costs one branch and mutates
/// nothing.
#[derive(Debug, Default)]
pub struct TraceState {
    cfg: TraceConfig,
    on: bool,
    op_seq: u64,
    spans: SpanLog,
    ops: Vec<OpRecord>,
    rollup: BTreeMap<(u16, u16), RollupCell>,
    util: BTreeMap<(u16, u32), TimeSeries>,
    last_busy: BTreeMap<(u16, u32), u64>,
    pending: Option<usize>,
}

impl TraceState {
    /// Disarmed state (what `Cluster::new` embeds).
    pub fn new() -> TraceState {
        TraceState::default()
    }

    /// Arms tracing with a validated config (no-op when `cfg.enabled` is
    /// false).
    pub fn arm(&mut self, cfg: TraceConfig) {
        if !cfg.enabled {
            return;
        }
        self.cfg = cfg;
        self.on = true;
        self.spans = SpanLog::new(cfg.capacity);
    }

    /// Whether tracing is armed.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.on
    }

    fn rollup_span(&mut self, class: OpClass, stage: Stage, dur: SimTime) {
        let cell = self.rollup.entry((class.id(), stage.id())).or_default();
        cell.count += 1;
        cell.total_ns += dur as u128;
        cell.hist.record(dur);
    }

    fn retain(&mut self, span: Span) {
        if (self.cfg.stage_mask >> span.kind) & 1 == 1 {
            self.spans.push(span);
        }
    }

    /// Records a finished op's critical-path decomposition.
    ///
    /// `marks` are `(stage, end_time)` boundaries in timeline order; stage
    /// `k` covers `[previous end, end_k]` starting from `start_at`, and a
    /// `queue_wait` span covering `[issued_at, start_at]` is prepended.
    /// End times are clamped monotone, so the spans are contiguous and
    /// their durations sum to `last_end - issued_at` exactly.
    pub fn record_op(
        &mut self,
        client: u64,
        class: OpClass,
        issued_at: SimTime,
        start_at: SimTime,
        marks: &[(Stage, SimTime)],
    ) {
        if !self.on {
            return;
        }
        let op = self.op_seq;
        self.op_seq += 1;
        let sampled = op.is_multiple_of(self.cfg.sample_every)
            && self
                .cfg
                .op_filter
                .map(|(lo, hi)| (lo..hi).contains(&op))
                .unwrap_or(true);
        let lane = client as u32;
        let mut prev = issued_at;
        let queue_end = start_at.max(issued_at);
        let emit = |state: &mut TraceState, stage: Stage, end: SimTime, prev: &mut SimTime| {
            let end = end.max(*prev);
            state.rollup_span(class, stage, end - *prev);
            if sampled {
                state.retain(Span {
                    lane,
                    kind: stage.id(),
                    class: class.id(),
                    op,
                    start: *prev,
                    end,
                });
            }
            *prev = end;
        };
        emit(self, Stage::QueueWait, queue_end, &mut prev);
        for &(stage, end) in marks {
            emit(self, stage, end, &mut prev);
        }
        if sampled {
            self.ops.push(OpRecord {
                op,
                client,
                class,
                start: issued_at,
                end: prev,
                latency: 0,
            });
            self.pending = Some(self.ops.len() - 1);
        } else {
            self.pending = None;
        }
    }

    /// Attaches the metrics-path latency to the op just recorded (called
    /// by the completion hook, independently of the driver's marks).
    pub fn close_op(&mut self, latency: SimTime) {
        if let Some(i) = self.pending.take() {
            self.ops[i].latency = latency;
        }
    }

    /// Records a background child span (recycle, repair, maintenance) on a
    /// per-node lane.
    pub fn child(&mut self, stage: Stage, node: usize, start: SimTime, end: SimTime) {
        if !self.on {
            return;
        }
        let end = end.max(start);
        self.rollup_span(OpClass::Background, stage, end - start);
        self.retain(Span {
            lane: node as u32,
            kind: stage.id(),
            class: OpClass::Background.id(),
            op: 0,
            start,
            end,
        });
    }

    /// Accumulates `busy_ns` of booked service time into a utilization
    /// lane at time `t` (called at resource-booking sites).
    pub fn book(&mut self, kind: UtilKind, id: u32, t: SimTime, busy_ns: SimTime) {
        if !self.on || busy_ns == 0 {
            return;
        }
        let bucket = self.cfg.util_bucket_ns;
        self.util
            .entry((kind.id(), id))
            .or_insert_with(|| TimeSeries::new(bucket))
            .record(t, busy_ns);
    }

    /// Samples a *cumulative* busy counter (e.g. `Disk::busy_time`,
    /// `Network::egress_busy`) into a utilization lane: the delta since
    /// the last sample of the same lane lands in the bucket containing
    /// `t`. Monotone counters make the lanes exact no matter how sparsely
    /// the booking sites fire.
    pub fn book_total(&mut self, kind: UtilKind, id: u32, t: SimTime, total_busy: u64) {
        if !self.on {
            return;
        }
        let key = (kind.id(), id);
        let last = self.last_busy.insert(key, total_busy).unwrap_or(0);
        let delta = total_busy.saturating_sub(last);
        if delta > 0 {
            let bucket = self.cfg.util_bucket_ns;
            self.util
                .entry(key)
                .or_insert_with(|| TimeSeries::new(bucket))
                .record(t, delta);
        }
    }

    /// Spans dropped past the retention budget so far.
    pub fn dropped(&self) -> u64 {
        self.spans.dropped()
    }

    /// Finalizes the run: returns the stage rollup and the full trace,
    /// leaving the state disarmed. Returns an empty breakdown and `None`
    /// when tracing was never armed.
    pub fn finish(&mut self, method: &str) -> (Vec<StageRow>, u64, Option<Trace>) {
        if !self.on {
            return (Vec::new(), 0, None);
        }
        let state = std::mem::take(self);
        let rows = state
            .rollup
            .iter()
            .map(|(&(class, stage), cell)| StageRow {
                class: OpClass::from_id(class).expect("rollup keys are valid classes"),
                stage: Stage::from_id(stage).expect("rollup keys are valid stages"),
                count: cell.count,
                total_us: cell.total_ns as f64 / 1000.0,
                mean_us: if cell.count == 0 {
                    0.0
                } else {
                    cell.total_ns as f64 / cell.count as f64 / 1000.0
                },
                p99_us: cell.hist.quantile(0.99) as f64 / 1000.0,
            })
            .collect();
        let dropped = state.spans.dropped();
        let util = state
            .util
            .into_iter()
            .map(|((kind, id), ts)| UtilLane {
                kind: UtilKind::from_id(kind).expect("util keys are valid kinds"),
                id,
                bucket_ns: ts.bucket_width(),
                busy: ts.buckets().to_vec(),
            })
            .collect();
        let trace = Trace {
            method: method.to_string(),
            spans: state.spans.spans().to_vec(),
            ops: state.ops,
            util,
            dropped,
        };
        (rows, dropped, Some(trace))
    }
}

impl Trace {
    /// Sum of one op's span durations, nanoseconds (`None` when the op was
    /// not retained).
    pub fn op_span_sum(&self, op: u64) -> Option<SimTime> {
        let sum: SimTime = self
            .spans
            .iter()
            .filter(|s| s.op == op && s.class != OpClass::Background.id())
            .map(|s| s.dur())
            .sum();
        self.ops.iter().any(|o| o.op == op).then_some(sum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_state_is_inert() {
        let mut t = TraceState::new();
        assert!(!t.enabled());
        t.record_op(1, OpClass::Update, 0, 10, &[(Stage::Ack, 50)]);
        t.child(Stage::Repair, 3, 0, 100);
        t.book(UtilKind::Disk, 0, 0, 1000);
        t.close_op(50);
        let (rows, dropped, trace) = t.finish("FO");
        assert!(rows.is_empty());
        assert_eq!(dropped, 0);
        assert!(trace.is_none());
    }

    #[test]
    fn off_config_validates_and_arms_nothing() {
        let cfg = TraceConfig::default();
        assert!(!cfg.enabled);
        assert!(cfg.validate().is_ok());
        let mut t = TraceState::new();
        t.arm(cfg);
        assert!(!t.enabled());
        // A nonsense config validates fine while disabled...
        let off = TraceConfig {
            sample_every: 0,
            ..TraceConfig::default()
        };
        assert!(off.validate().is_ok());
        // ...and fails once enabled.
        let on = TraceConfig {
            enabled: true,
            ..off
        };
        assert!(on.validate().is_err());
        assert!(TraceConfig::on().with_capacity(0).validate().is_err());
        assert!(TraceConfig::on().with_op_range(5, 5).validate().is_err());
        assert!(TraceConfig::on().with_stages(&[]).validate().is_err());
        assert!(TraceConfig::on().validate().is_ok());
    }

    #[test]
    fn spans_partition_the_op_interval() {
        let mut t = TraceState::new();
        t.arm(TraceConfig::on());
        // Op issued at 100, dispatched at 130, staged to ack at 400.
        t.record_op(
            7,
            OpClass::Update,
            100,
            130,
            &[
                (Stage::NetSend, 150),
                (Stage::DiskIo, 250),
                (Stage::LogAppend, 380),
                (Stage::Ack, 400),
            ],
        );
        t.close_op(300);
        let (rows, dropped, trace) = t.finish("PL");
        let trace = trace.unwrap();
        assert_eq!(dropped, 0);
        assert_eq!(trace.spans.len(), 5, "queue_wait prepended");
        assert_eq!(trace.spans[0].kind, Stage::QueueWait.id());
        assert_eq!(trace.spans[0].start, 100);
        assert_eq!(trace.spans[0].end, 130);
        // Contiguous: each span starts where the previous ended.
        for pair in trace.spans.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
        assert_eq!(trace.op_span_sum(0), Some(300), "sum == ack - issued");
        assert_eq!(trace.ops[0].latency, 300);
        assert_eq!(trace.ops[0].end - trace.ops[0].start, 300);
        // Rollup saw one span per stage.
        assert_eq!(rows.len(), 5);
        assert!(rows.iter().all(|r| r.count == 1));
        let total: f64 = rows.iter().map(|r| r.total_us).sum();
        assert!((total - 0.3).abs() < 1e-9, "300 ns total");
    }

    #[test]
    fn out_of_order_marks_clamp_monotone() {
        let mut t = TraceState::new();
        t.arm(TraceConfig::on());
        // A parallel branch that finished before the previous stage's end
        // clamps to zero duration instead of running backwards.
        t.record_op(
            1,
            OpClass::Update,
            0,
            0,
            &[
                (Stage::DiskIo, 200),
                (Stage::NetSend, 150),
                (Stage::Ack, 210),
            ],
        );
        t.close_op(210);
        let (_, _, trace) = t.finish("FO");
        let trace = trace.unwrap();
        let net = trace.spans.iter().find(|s| s.kind == Stage::NetSend.id());
        assert_eq!(net.unwrap().dur(), 0);
        assert_eq!(trace.op_span_sum(0), Some(210));
    }

    #[test]
    fn sampling_and_filters_bound_retention_not_rollup() {
        let mut t = TraceState::new();
        t.arm(
            TraceConfig::on()
                .with_sampling(2)
                .with_stages(&[Stage::Ack]),
        );
        for i in 0..10u64 {
            t.record_op(i, OpClass::Update, 0, 0, &[(Stage::Ack, 100)]);
            t.close_op(100);
        }
        let (rows, dropped, trace) = t.finish("TSUE");
        let trace = trace.unwrap();
        assert_eq!(dropped, 0, "filtered spans are not drops");
        // 5 sampled ops x 1 retained stage (queue_wait masked out).
        assert_eq!(trace.spans.len(), 5);
        assert_eq!(trace.ops.len(), 5);
        // The rollup still saw all 10 ops in both stages.
        let ack = rows
            .iter()
            .find(|r| r.stage == Stage::Ack && r.class == OpClass::Update)
            .unwrap();
        assert_eq!(ack.count, 10);
    }

    #[test]
    fn capacity_overflow_counts_drops() {
        let mut t = TraceState::new();
        t.arm(TraceConfig::on().with_capacity(3));
        for i in 0..4u64 {
            t.record_op(i, OpClass::Update, 0, 0, &[(Stage::Ack, 10)]);
            t.close_op(10);
        }
        let (_, dropped, trace) = t.finish("FO");
        // 4 ops x 2 spans = 8 produced, 3 retained.
        assert_eq!(trace.unwrap().spans.len(), 3);
        assert_eq!(dropped, 5);
    }

    #[test]
    fn child_and_util_lanes_record() {
        let mut t = TraceState::new();
        t.arm(TraceConfig::on());
        t.child(Stage::Repair, 4, 1000, 5000);
        t.book(UtilKind::Disk, 4, 1000, 4000);
        t.book(UtilKind::Spine, 0, 2000, 100);
        let (rows, _, trace) = t.finish("FO");
        let trace = trace.unwrap();
        assert_eq!(trace.spans.len(), 1);
        assert_eq!(trace.spans[0].class, OpClass::Background.id());
        assert_eq!(trace.util.len(), 2);
        assert_eq!(trace.util[0].kind, UtilKind::Disk);
        assert_eq!(trace.util[0].busy[0], 4000);
        assert!(rows
            .iter()
            .any(|r| r.class == OpClass::Background && r.stage == Stage::Repair));
    }
}
