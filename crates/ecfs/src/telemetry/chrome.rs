//! Chrome Trace Event Format export: the JSON Perfetto and
//! `chrome://tracing` load directly.
//!
//! Layout: three "processes" — pid 1 holds the per-op lifecycle spans
//! (one thread lane per client), pid 2 the background child spans (one
//! lane per node: recycle, repair, maintenance), pid 3 the utilization
//! counters (busy nanoseconds per bucket for each disk / NIC / spine /
//! repair lane). Spans are complete events (`ph:"X"`, `ts`/`dur` in
//! microseconds); utilization lanes are counter events (`ph:"C"`).
//!
//! Events are emitted sorted by `(pid, tid, ts)`, so timestamps are
//! monotone within every lane — the invariant the CI trace leg checks
//! after a parse round-trip. The writer is hand-rolled (no serde in the
//! tree) but emits strictly standard JSON.

use super::{OpClass, Stage, Trace, UtilKind};

/// Microseconds with nanosecond precision, rendered without float drift
/// (`123456 ns` → `"123.456"`).
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn push_event(out: &mut String, body: &str) {
    if !out.ends_with('[') {
        out.push(',');
    }
    out.push('\n');
    out.push_str(body);
}

/// Renders the trace as a Chrome Trace Event JSON document.
pub fn to_json(trace: &Trace) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (pid, name) in [
        (1, format!("ops ({})", trace.method)),
        (2, "nodes (background)".to_string()),
        (3, "utilization".to_string()),
    ] {
        push_event(
            &mut out,
            &format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\
                 \"args\":{{\"name\":\"{name}\"}}}}"
            ),
        );
    }

    // (pid, tid, ts_ns, rendered event) — sorted so every lane is
    // monotone in file order.
    let mut events: Vec<(u32, u32, u64, String)> = Vec::new();
    for span in &trace.spans {
        let stage = Stage::from_id(span.kind).map(Stage::name).unwrap_or("?");
        let class = OpClass::from_id(span.class)
            .map(OpClass::name)
            .unwrap_or("?");
        let pid = if span.class == OpClass::Background.id() {
            2
        } else {
            1
        };
        events.push((
            pid,
            span.lane,
            span.start,
            format!(
                "{{\"name\":\"{stage}\",\"cat\":\"{class}\",\"ph\":\"X\",\
                 \"ts\":{},\"dur\":{},\"pid\":{pid},\"tid\":{},\
                 \"args\":{{\"op\":{}}}}}",
                us(span.start),
                us(span.end - span.start),
                span.lane,
                span.op
            ),
        ));
    }
    for lane in &trace.util {
        let name = format!("{}/{}", lane.kind.name(), lane.id);
        let tid = (lane.kind.id() as u32) << 16 | lane.id;
        for (i, &busy) in lane.busy.iter().enumerate() {
            let ts = i as u64 * lane.bucket_ns;
            events.push((
                3,
                tid,
                ts,
                format!(
                    "{{\"name\":\"{name}\",\"ph\":\"C\",\"ts\":{},\"pid\":3,\
                     \"tid\":{tid},\"args\":{{\"busy_ns\":{busy}}}}}",
                    us(ts)
                ),
            ));
        }
    }
    events.sort_by_key(|e| (e.0, e.1, e.2));
    for (_, _, _, body) in &events {
        push_event(&mut out, body);
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\",\"otherData\":{");
    out.push_str(&format!(
        "\"method\":\"{}\",\"dropped_spans\":{}}}}}",
        trace.method, trace.dropped
    ));
    out
}

/// The utilization counter lane id used for a `(kind, id)` pair (exposed
/// so inspectors can map `tid`s back to resources).
pub fn util_tid(kind: UtilKind, id: u32) -> u32 {
    (kind.id() as u32) << 16 | id
}

#[cfg(test)]
mod tests {
    use super::super::{OpRecord, UtilLane};
    use super::*;
    use simdes::Span;

    fn sample_trace() -> Trace {
        Trace {
            method: "FO".to_string(),
            spans: vec![
                Span {
                    lane: 2,
                    kind: Stage::NetSend.id(),
                    class: OpClass::Update.id(),
                    op: 0,
                    start: 1500,
                    end: 2500,
                },
                Span {
                    lane: 1,
                    kind: Stage::Ack.id(),
                    class: OpClass::Update.id(),
                    op: 1,
                    start: 500,
                    end: 800,
                },
                Span {
                    lane: 3,
                    kind: Stage::Repair.id(),
                    class: OpClass::Background.id(),
                    op: 0,
                    start: 0,
                    end: 4000,
                },
            ],
            ops: vec![OpRecord {
                op: 0,
                client: 2,
                class: OpClass::Update,
                start: 1500,
                end: 2500,
                latency: 1000,
            }],
            util: vec![UtilLane {
                kind: UtilKind::Disk,
                id: 3,
                bucket_ns: 1000,
                busy: vec![700, 0, 300],
            }],
            dropped: 0,
        }
    }

    #[test]
    fn json_is_well_formed_and_lane_sorted() {
        let text = to_json(&sample_trace());
        // Ops lane 1 (client 1) precedes lane 2 (client 2); background and
        // counters follow under their own pids.
        let ack = text.find("\"ack\"").unwrap();
        let net = text.find("\"net_send\"").unwrap();
        let repair = text.find("\"repair\"").unwrap();
        let disk = text.find("disk/3").unwrap();
        assert!(ack < net && net < repair && repair < disk);
        assert!(text.contains("\"ts\":1.500,\"dur\":1.000"));
        assert!(text.contains("\"busy_ns\":700"));
        assert!(text.contains("\"dropped_spans\":0"));
        // Balanced braces/brackets (cheap well-formedness check; the CI
        // leg does a full parse via the bench JSON parser).
        let opens = text.matches('{').count();
        let closes = text.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(text.matches('[').count(), text.matches(']').count());
    }

    #[test]
    fn us_renders_exact_nanoseconds() {
        assert_eq!(us(0), "0.000");
        assert_eq!(us(999), "0.999");
        assert_eq!(us(123_456), "123.456");
        assert_eq!(us(1_000_000), "1000.000");
    }
}
