//! Compact binary trace log: the format `trace_dump` loads.
//!
//! Fixed-width little-endian records behind an 8-byte magic
//! (`TSUETRC` + version). The format exists because the Chrome JSON
//! export is ~20x larger and lossy (microsecond display units); this one
//! round-trips a [`Trace`] exactly, which is also what the determinism
//! tests pin (`sharded bytes == serial bytes`).

use simdes::Span;

use super::{OpClass, OpRecord, Trace, UtilKind, UtilLane};

const MAGIC: &[u8; 8] = b"TSUETRC\x01";

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Serialises a trace to the binary log format.
pub fn to_bytes(trace: &Trace) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + trace.spans.len() * 32 + trace.ops.len() * 42);
    out.extend_from_slice(MAGIC);
    let method = trace.method.as_bytes();
    put_u32(&mut out, method.len() as u32);
    out.extend_from_slice(method);
    put_u64(&mut out, trace.dropped);
    put_u64(&mut out, trace.spans.len() as u64);
    for s in &trace.spans {
        put_u32(&mut out, s.lane);
        put_u16(&mut out, s.kind);
        put_u16(&mut out, s.class);
        put_u64(&mut out, s.op);
        put_u64(&mut out, s.start);
        put_u64(&mut out, s.end);
    }
    put_u64(&mut out, trace.ops.len() as u64);
    for o in &trace.ops {
        put_u64(&mut out, o.op);
        put_u64(&mut out, o.client);
        put_u16(&mut out, o.class.id());
        put_u64(&mut out, o.start);
        put_u64(&mut out, o.end);
        put_u64(&mut out, o.latency);
    }
    put_u32(&mut out, trace.util.len() as u32);
    for lane in &trace.util {
        put_u16(&mut out, lane.kind.id());
        put_u32(&mut out, lane.id);
        put_u64(&mut out, lane.bucket_ns);
        put_u64(&mut out, lane.busy.len() as u64);
        for &b in &lane.busy {
            put_u64(&mut out, b);
        }
    }
    out
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| format!("truncated trace at byte {}", self.pos))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// Parses a binary trace log.
pub fn from_bytes(bytes: &[u8]) -> Result<Trace, String> {
    let mut c = Cursor { bytes, pos: 0 };
    if c.take(8)? != MAGIC {
        return Err("not a TSUE trace (bad magic)".to_string());
    }
    let method_len = c.u32()? as usize;
    let method = String::from_utf8(c.take(method_len)?.to_vec())
        .map_err(|_| "method name is not UTF-8".to_string())?;
    let dropped = c.u64()?;
    let n_spans = c.u64()? as usize;
    let mut spans = Vec::with_capacity(n_spans.min(1 << 24));
    for _ in 0..n_spans {
        spans.push(Span {
            lane: c.u32()?,
            kind: c.u16()?,
            class: c.u16()?,
            op: c.u64()?,
            start: c.u64()?,
            end: c.u64()?,
        });
    }
    let n_ops = c.u64()? as usize;
    let mut ops = Vec::with_capacity(n_ops.min(1 << 24));
    for _ in 0..n_ops {
        ops.push(OpRecord {
            op: c.u64()?,
            client: c.u64()?,
            class: {
                let id = c.u16()?;
                OpClass::from_id(id).ok_or_else(|| format!("bad op class {id}"))?
            },
            start: c.u64()?,
            end: c.u64()?,
            latency: c.u64()?,
        });
    }
    let n_util = c.u32()? as usize;
    let mut util = Vec::with_capacity(n_util.min(1 << 16));
    for _ in 0..n_util {
        let kind = {
            let id = c.u16()?;
            UtilKind::from_id(id).ok_or_else(|| format!("bad util kind {id}"))?
        };
        let id = c.u32()?;
        let bucket_ns = c.u64()?;
        let len = c.u64()? as usize;
        let mut busy = Vec::with_capacity(len.min(1 << 24));
        for _ in 0..len {
            busy.push(c.u64()?);
        }
        util.push(UtilLane {
            kind,
            id,
            bucket_ns,
            busy,
        });
    }
    if c.pos != bytes.len() {
        return Err(format!("trailing bytes at {}", c.pos));
    }
    Ok(Trace {
        method,
        spans,
        ops,
        util,
        dropped,
    })
}

#[cfg(test)]
mod tests {
    use super::super::Stage;
    use super::*;

    #[test]
    fn round_trips_exactly() {
        let trace = Trace {
            method: "TSUE".to_string(),
            spans: vec![Span {
                lane: 9,
                kind: Stage::LogAppend.id(),
                class: OpClass::Update.id(),
                op: 42,
                start: 1_000_000,
                end: 1_234_567,
            }],
            ops: vec![OpRecord {
                op: 42,
                client: 9,
                class: OpClass::Update,
                start: 1_000_000,
                end: 1_234_567,
                latency: 234_567,
            }],
            util: vec![UtilLane {
                kind: UtilKind::Spine,
                id: 0,
                bucket_ns: 10_000_000,
                busy: vec![1, 2, 3],
            }],
            dropped: 7,
        };
        let bytes = to_bytes(&trace);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back, trace);
        // Identical traces serialise to identical bytes — the property
        // the sharded==serial determinism pin compares.
        assert_eq!(to_bytes(&back), bytes);
    }

    #[test]
    fn rejects_corrupt_input() {
        assert!(from_bytes(b"nonsense").is_err());
        let trace = Trace {
            method: "FO".to_string(),
            spans: Vec::new(),
            ops: Vec::new(),
            util: Vec::new(),
            dropped: 0,
        };
        let mut bytes = to_bytes(&trace);
        assert!(from_bytes(&bytes[..bytes.len() - 1]).is_err(), "truncated");
        bytes.push(0);
        assert!(from_bytes(&bytes).is_err(), "trailing bytes");
    }
}
