//! Cluster and method configuration.

use rscode::CodeParams;
use simdisk::{HddConfig, SsdConfig};
use tsue::pool::PoolConfig;
use tsue::MergeMode;

/// Which device model every OSD carries.
#[derive(Debug, Clone)]
pub enum DiskKind {
    /// NAND SSD (the paper's primary testbed).
    Ssd(SsdConfig),
    /// Mechanical HDD (the §5.4 cluster).
    Hdd(HddConfig),
}

/// The update method under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MethodKind {
    /// Full overwrite: in-place data and parity.
    Fo,
    /// Full logging: log data and parity deltas, threshold recycle.
    Fl,
    /// Parity logging.
    Pl,
    /// Parity logging with reserved space.
    Plr,
    /// Speculative partial writes.
    Parix,
    /// Collector-aggregated deltas through a single buffer log.
    Cord,
    /// The paper's two-stage method.
    Tsue,
}

impl MethodKind {
    /// All methods in the paper's Fig. 5 order.
    pub const ALL: [MethodKind; 7] = [
        MethodKind::Fo,
        MethodKind::Fl,
        MethodKind::Pl,
        MethodKind::Plr,
        MethodKind::Parix,
        MethodKind::Cord,
        MethodKind::Tsue,
    ];

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            MethodKind::Fo => "FO",
            MethodKind::Fl => "FL",
            MethodKind::Pl => "PL",
            MethodKind::Plr => "PLR",
            MethodKind::Parix => "PARIX",
            MethodKind::Cord => "CoRD",
            MethodKind::Tsue => "TSUE",
        }
    }
}

/// TSUE's optimisation toggles, matching the Fig. 7 breakdown points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TsueFeatures {
    /// O1: exploit spatio-temporal locality in the DataLog (merge records).
    pub data_locality: bool,
    /// O2: exploit locality in the ParityLog.
    pub parity_locality: bool,
    /// O3: the FIFO log-pool structure (without it, a single log unit makes
    /// append and recycle mutually exclusive).
    pub log_pool: bool,
    /// O4: multiple log pools per device (4 instead of 1).
    pub multi_pool: bool,
    /// O5: the DeltaLog middle layer (Eq. 5 cross-block merging).
    pub delta_log: bool,
}

impl TsueFeatures {
    /// Everything on — the full TSUE of Fig. 5.
    pub fn full() -> TsueFeatures {
        TsueFeatures {
            data_locality: true,
            parity_locality: true,
            log_pool: true,
            multi_pool: true,
            delta_log: true,
        }
    }

    /// The Fig. 7 baseline: DataLog + ParityLog in memory, nothing else.
    pub fn baseline() -> TsueFeatures {
        TsueFeatures {
            data_locality: false,
            parity_locality: false,
            log_pool: false,
            multi_pool: false,
            delta_log: false,
        }
    }

    /// The cumulative Fig. 7 ladder: Baseline, +O1, +O2, +O3, +O4, +O5.
    pub fn ladder() -> [(&'static str, TsueFeatures); 6] {
        let mut f = Self::baseline();
        let base = f;
        f.data_locality = true;
        let o1 = f;
        f.parity_locality = true;
        let o2 = f;
        f.log_pool = true;
        let o3 = f;
        f.multi_pool = true;
        let o4 = f;
        f.delta_log = true;
        let o5 = f;
        [
            ("Baseline", base),
            ("O1", o1),
            ("O2", o2),
            ("O3", o3),
            ("O4", o4),
            ("O5", o5),
        ]
    }
}

/// Full cluster configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of OSD nodes.
    pub nodes: usize,
    /// Number of closed-loop client streams.
    pub clients: usize,
    /// RS(k, m) shape.
    pub code: CodeParams,
    /// Bytes per EC block.
    pub block_bytes: u64,
    /// Device model per OSD.
    pub disk: DiskKind,
    /// Network fabric (endpoints are sized automatically).
    pub net_bandwidth: u64,
    /// Per-RPC network overhead in nanoseconds.
    pub net_rpc_overhead: u64,
    /// Update method under test.
    pub method: MethodKind,
    /// TSUE feature toggles (ignored by other methods).
    pub tsue: TsueFeatures,
    /// Log-unit size for TSUE layers.
    pub tsue_unit_bytes: u64,
    /// Unit quota per TSUE pool (Fig. 6b sweeps this).
    pub tsue_max_units: usize,
    /// PLR reserved-space bytes per parity block.
    pub plr_reserved_bytes: u64,
    /// CoRD collector buffer bytes.
    pub cord_buffer_bytes: u64,
    /// PARIX parity-log recycle threshold per node (epoch length; each
    /// epoch reset re-exposes the first-touch network round).
    pub parix_threshold_bytes: u64,
    /// FL log-recycle threshold in bytes per node.
    pub fl_threshold_bytes: u64,
    /// Per-record CPU time (ns) spent by TSUE's recycle threads (index
    /// walk, memcpy, checksum) — the thread-pool cost of §3.2.1.
    pub tsue_recycle_cpu_per_record: u64,
}

impl ClusterConfig {
    /// The paper's SSD testbed: 16 nodes, 25 Gb/s, one SSD each.
    pub fn ssd_testbed(code: CodeParams, method: MethodKind) -> ClusterConfig {
        ClusterConfig {
            nodes: 16,
            clients: 16,
            code,
            block_bytes: 4 << 20,
            disk: DiskKind::Ssd(SsdConfig::default()),
            net_bandwidth: 25_000_000_000 / 8,
            net_rpc_overhead: 100_000,
            method,
            tsue: TsueFeatures::full(),
            tsue_unit_bytes: 16 << 20,
            tsue_max_units: 4,
            plr_reserved_bytes: 256 << 10,
            cord_buffer_bytes: 12 << 20,
            parix_threshold_bytes: 4 << 20,
            fl_threshold_bytes: 256 << 20,
            tsue_recycle_cpu_per_record: 25_000,
        }
    }

    /// The paper's HDD testbed: 16 nodes, 40 Gb/s InfiniBand. The paper
    /// disables the DeltaLog on HDDs (§5.4).
    pub fn hdd_testbed(code: CodeParams, method: MethodKind) -> ClusterConfig {
        let mut cfg = Self::ssd_testbed(code, method);
        cfg.disk = DiskKind::Hdd(HddConfig::default());
        cfg.net_bandwidth = 40_000_000_000 / 8;
        cfg.net_rpc_overhead = 30_000;
        cfg.tsue.delta_log = false;
        cfg
    }

    /// Pool configuration for one TSUE layer under the current toggles.
    pub fn tsue_pool_cfg(&self, mode: MergeMode) -> PoolConfig {
        if self.tsue.log_pool {
            PoolConfig {
                unit_bytes: self.tsue_unit_bytes,
                min_units: 2.min(self.tsue_max_units),
                max_units: self.tsue_max_units.max(2),
                mode,
            }
        } else {
            // O3 off: a single log (two tiny units so the pool type still
            // works, but append and recycle contend — see the TSUE driver).
            PoolConfig {
                unit_bytes: self.tsue_unit_bytes,
                min_units: 2,
                max_units: 2,
                mode,
            }
        }
    }

    /// CoRD's collector buffer, budgeted per parity block (scales with m).
    pub fn cord_buffer_for(&self) -> u64 {
        self.cord_buffer_bytes * self.code.m() as u64 / 2
    }

    /// PARIX's per-node log-epoch length. A stripe's first-touch state
    /// resets when *any* of its m parity nodes rolls an epoch, so the
    /// per-node budget scales with m² to keep the per-stripe reset rate
    /// comparable across code shapes.
    pub fn parix_threshold_for(&self) -> u64 {
        let m = self.code.m() as u64;
        self.parix_threshold_bytes * m * m / 4
    }

    /// Pools per device per layer under the current toggles.
    pub fn tsue_pools_per_layer(&self) -> usize {
        if self.tsue.multi_pool {
            4
        } else {
            1
        }
    }

    /// Network endpoint ids: OSDs are `0..nodes`, clients follow.
    pub fn endpoints(&self) -> usize {
        self.nodes + self.clients
    }

    /// Endpoint id of client `c`.
    pub fn client_endpoint(&self, c: usize) -> usize {
        self.nodes + c
    }

    /// Validates cross-field invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes < self.code.total() {
            return Err(format!(
                "{} nodes cannot hold RS({},{}) stripes",
                self.nodes,
                self.code.k(),
                self.code.m()
            ));
        }
        if self.clients == 0 {
            return Err("need at least one client".into());
        }
        if self.block_bytes == 0 || self.block_bytes % 4096 != 0 {
            return Err("block_bytes must be a positive multiple of 4 KiB".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_configs_validate() {
        let code = CodeParams::new(6, 4).unwrap();
        assert!(ClusterConfig::ssd_testbed(code, MethodKind::Tsue)
            .validate()
            .is_ok());
        assert!(ClusterConfig::hdd_testbed(code, MethodKind::Pl)
            .validate()
            .is_ok());
    }

    #[test]
    fn too_few_nodes_rejected() {
        let code = CodeParams::new(12, 4).unwrap();
        let mut cfg = ClusterConfig::ssd_testbed(code, MethodKind::Fo);
        cfg.nodes = 10;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn feature_ladder_is_cumulative() {
        let ladder = TsueFeatures::ladder();
        assert_eq!(ladder[0].1, TsueFeatures::baseline());
        assert_eq!(ladder[5].1, TsueFeatures::full());
        assert!(ladder[1].1.data_locality && !ladder[1].1.parity_locality);
        assert!(ladder[3].1.log_pool && !ladder[3].1.multi_pool);
    }

    #[test]
    fn hdd_testbed_disables_delta_log() {
        let code = CodeParams::new(6, 4).unwrap();
        let cfg = ClusterConfig::hdd_testbed(code, MethodKind::Tsue);
        assert!(!cfg.tsue.delta_log);
        assert!(matches!(cfg.disk, DiskKind::Hdd(_)));
    }

    #[test]
    fn method_names_match_paper() {
        assert_eq!(MethodKind::Tsue.name(), "TSUE");
        assert_eq!(MethodKind::Cord.name(), "CoRD");
        assert_eq!(MethodKind::ALL.len(), 7);
    }
}
