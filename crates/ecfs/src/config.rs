//! Cluster and method configuration.
//!
//! The update method under test is an [`Arc<dyn UpdateMethod>`] — any
//! driver implementing the trait, built-in or registered out-of-tree via
//! [`crate::methods::MethodRegistry`]. [`MethodKind`] survives purely as a
//! convenience constructor over the seven built-ins so benches and tests
//! keep the paper's Fig. 5 ordering.

use std::sync::Arc;

use rscode::CodeParams;
use simdisk::{HddConfig, SsdConfig};
use tsue::pool::PoolConfig;
use tsue::MergeMode;

use crate::cache::{CacheConfig, Cached, StagingConfig};
use crate::fleet::DiskFleet;
use crate::methods::spec::MethodSpec;
use crate::methods::{cord, fl, fo, parix, pl, plr, tsue_drv, UpdateMethod};
use crate::placement::{FlatRotate, PlacementPolicy, RackMap};

/// A rejected configuration, with the reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(pub String);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid configuration: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

impl From<String> for ConfigError {
    fn from(reason: String) -> ConfigError {
        ConfigError(reason)
    }
}

impl From<&str> for ConfigError {
    fn from(reason: &str) -> ConfigError {
        ConfigError(reason.to_string())
    }
}

/// One device model (a node of a [`DiskFleet`] carries exactly one).
#[derive(Debug, Clone)]
pub enum DiskKind {
    /// NAND SSD (the paper's primary testbed).
    Ssd(SsdConfig),
    /// Mechanical HDD (the §5.4 cluster).
    Hdd(HddConfig),
}

/// The seven built-in update methods, in the paper's Fig. 5 order — a
/// convenience constructor over the registry's built-ins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MethodKind {
    /// Full overwrite: in-place data and parity.
    Fo,
    /// Full logging: log data and parity deltas, threshold recycle.
    Fl,
    /// Parity logging.
    Pl,
    /// Parity logging with reserved space.
    Plr,
    /// Speculative partial writes.
    Parix,
    /// Collector-aggregated deltas through a single buffer log.
    Cord,
    /// The paper's two-stage method.
    Tsue,
}

impl MethodKind {
    /// All methods in the paper's Fig. 5 order.
    pub const ALL: [MethodKind; 7] = [
        MethodKind::Fo,
        MethodKind::Fl,
        MethodKind::Pl,
        MethodKind::Plr,
        MethodKind::Parix,
        MethodKind::Cord,
        MethodKind::Tsue,
    ];

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            MethodKind::Fo => "FO",
            MethodKind::Fl => "FL",
            MethodKind::Pl => "PL",
            MethodKind::Plr => "PLR",
            MethodKind::Parix => "PARIX",
            MethodKind::Cord => "CoRD",
            MethodKind::Tsue => "TSUE",
        }
    }

    /// Builds the built-in driver for this kind.
    pub fn driver(&self) -> Arc<dyn UpdateMethod> {
        match self {
            MethodKind::Fo => Arc::new(fo::Fo),
            MethodKind::Fl => Arc::new(fl::Fl),
            MethodKind::Pl => Arc::new(pl::Pl),
            MethodKind::Plr => Arc::new(plr::Plr),
            MethodKind::Parix => Arc::new(parix::Parix),
            MethodKind::Cord => Arc::new(cord::Cord),
            MethodKind::Tsue => Arc::new(tsue_drv::Tsue),
        }
    }
}

impl From<MethodKind> for Arc<dyn UpdateMethod> {
    fn from(kind: MethodKind) -> Arc<dyn UpdateMethod> {
        kind.driver()
    }
}

/// TSUE's optimisation toggles, matching the Fig. 7 breakdown points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TsueFeatures {
    /// O1: exploit spatio-temporal locality in the DataLog (merge records).
    pub data_locality: bool,
    /// O2: exploit locality in the ParityLog.
    pub parity_locality: bool,
    /// O3: the FIFO log-pool structure (without it, a single log unit makes
    /// append and recycle mutually exclusive).
    pub log_pool: bool,
    /// O4: multiple log pools per device (4 instead of 1).
    pub multi_pool: bool,
    /// O5: the DeltaLog middle layer (Eq. 5 cross-block merging).
    pub delta_log: bool,
}

impl TsueFeatures {
    /// Everything on — the full TSUE of Fig. 5.
    pub fn full() -> TsueFeatures {
        TsueFeatures {
            data_locality: true,
            parity_locality: true,
            log_pool: true,
            multi_pool: true,
            delta_log: true,
        }
    }

    /// The Fig. 7 baseline: DataLog + ParityLog in memory, nothing else.
    pub fn baseline() -> TsueFeatures {
        TsueFeatures {
            data_locality: false,
            parity_locality: false,
            log_pool: false,
            multi_pool: false,
            delta_log: false,
        }
    }

    /// The cumulative Fig. 7 ladder: Baseline, +O1, +O2, +O3, +O4, +O5.
    pub fn ladder() -> [(&'static str, TsueFeatures); 6] {
        let mut f = Self::baseline();
        let base = f;
        f.data_locality = true;
        let o1 = f;
        f.parity_locality = true;
        let o2 = f;
        f.log_pool = true;
        let o3 = f;
        f.multi_pool = true;
        let o4 = f;
        f.delta_log = true;
        let o5 = f;
        [
            ("Baseline", base),
            ("O1", o1),
            ("O2", o2),
            ("O3", o3),
            ("O4", o4),
            ("O5", o5),
        ]
    }
}

/// Cap on distinct client *network endpoints*: the fabric's traffic
/// matrix is O(endpoints²), so populations beyond this share endpoint
/// slots round-robin ([`ClusterConfig::client_endpoint`]). Populations at
/// or below the cap keep the exact 1:1 client→endpoint mapping of before.
pub const MAX_CLIENT_ENDPOINTS: usize = 1024;

/// Full cluster configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of OSD nodes.
    pub nodes: usize,
    /// Number of client streams. A plain `u64`: populations are never
    /// indexed densely — runtime state is sparse (O(active), see
    /// `ecfs::replay`) and network endpoints come from a bounded slot
    /// pool ([`MAX_CLIENT_ENDPOINTS`]), so a million clients is a valid
    /// setting, not a million-element allocation.
    pub clients: u64,
    /// RS(k, m) shape.
    pub code: CodeParams,
    /// Bytes per EC block.
    pub block_bytes: u64,
    /// The disk population, one device per OSD node
    /// ([`DiskFleet::Uniform`] reproduces the single-model cluster byte
    /// for byte; tiered and explicit fleets make nodes differ).
    pub fleet: DiskFleet,
    /// Network fabric (endpoints are sized automatically).
    pub net_bandwidth: u64,
    /// Per-RPC network overhead in nanoseconds.
    pub net_rpc_overhead: u64,
    /// Number of racks: OSDs split into contiguous racks, clients
    /// round-robin over them. `1` is the paper's single-switch fabric.
    pub racks: usize,
    /// Spine oversubscription ratio (`1.0` = full bisection; only
    /// meaningful with `racks > 1`).
    pub oversubscription: f64,
    /// Block-placement policy (trait object; see
    /// [`crate::placement::PlacementKind`] for the built-ins).
    pub placement: Arc<dyn PlacementPolicy>,
    /// Update method under test (trait object; see [`MethodKind::driver`]
    /// for the built-ins and [`crate::methods::MethodRegistry`] for
    /// out-of-tree drivers).
    pub method: Arc<dyn UpdateMethod>,
    /// TSUE feature toggles (ignored by other methods).
    pub tsue: TsueFeatures,
    /// Log-unit size for TSUE layers.
    pub tsue_unit_bytes: u64,
    /// Unit quota per TSUE pool (Fig. 6b sweeps this).
    pub tsue_max_units: usize,
    /// PLR reserved-space bytes per parity block.
    pub plr_reserved_bytes: u64,
    /// CoRD collector buffer bytes.
    pub cord_buffer_bytes: u64,
    /// PARIX parity-log recycle threshold per node (epoch length; each
    /// epoch reset re-exposes the first-touch network round).
    pub parix_threshold_bytes: u64,
    /// FL log-recycle threshold in bytes per node.
    pub fl_threshold_bytes: u64,
    /// Per-record CPU time (ns) spent by TSUE's recycle threads (index
    /// walk, memcpy, checksum) — the thread-pool cost of §3.2.1.
    pub tsue_recycle_cpu_per_record: u64,
}

impl ClusterConfig {
    /// A builder starting from the SSD-testbed defaults; `code` and
    /// `method` must be supplied before [`ClusterConfigBuilder::build`].
    pub fn builder() -> ClusterConfigBuilder {
        ClusterConfigBuilder::default()
    }

    /// The paper's SSD testbed: 16 nodes, 25 Gb/s, one SSD each.
    pub fn ssd_testbed(
        code: CodeParams,
        method: impl Into<Arc<dyn UpdateMethod>>,
    ) -> ClusterConfig {
        ClusterConfig {
            nodes: 16,
            clients: 16,
            code,
            block_bytes: 4 << 20,
            fleet: DiskFleet::uniform_ssd(),
            net_bandwidth: 25_000_000_000 / 8,
            net_rpc_overhead: 100_000,
            racks: 1,
            oversubscription: 1.0,
            placement: Arc::new(FlatRotate),
            method: method.into(),
            tsue: TsueFeatures::full(),
            tsue_unit_bytes: 16 << 20,
            tsue_max_units: 4,
            plr_reserved_bytes: 256 << 10,
            cord_buffer_bytes: 12 << 20,
            parix_threshold_bytes: 4 << 20,
            fl_threshold_bytes: 256 << 20,
            tsue_recycle_cpu_per_record: 25_000,
        }
    }

    /// The paper's HDD testbed: 16 nodes, 40 Gb/s InfiniBand. The paper
    /// disables the DeltaLog on HDDs (§5.4).
    pub fn hdd_testbed(
        code: CodeParams,
        method: impl Into<Arc<dyn UpdateMethod>>,
    ) -> ClusterConfig {
        let mut cfg = Self::ssd_testbed(code, method);
        cfg.fleet = DiskFleet::uniform_hdd();
        cfg.net_bandwidth = 40_000_000_000 / 8;
        cfg.net_rpc_overhead = 30_000;
        cfg.tsue.delta_log = false;
        cfg
    }

    /// Pool configuration for one TSUE layer under the current toggles.
    pub fn tsue_pool_cfg(&self, mode: MergeMode) -> PoolConfig {
        if self.tsue.log_pool {
            PoolConfig {
                unit_bytes: self.tsue_unit_bytes,
                min_units: 2.min(self.tsue_max_units),
                max_units: self.tsue_max_units.max(2),
                mode,
            }
        } else {
            // O3 off: a single log (two tiny units so the pool type still
            // works, but append and recycle contend — see the TSUE driver).
            PoolConfig {
                unit_bytes: self.tsue_unit_bytes,
                min_units: 2,
                max_units: 2,
                mode,
            }
        }
    }

    /// CoRD's collector buffer, budgeted per parity block (scales with m).
    pub fn cord_buffer_for(&self) -> u64 {
        self.cord_buffer_bytes * self.code.m() as u64 / 2
    }

    /// PARIX's per-node log-epoch length. A stripe's first-touch state
    /// resets when *any* of its m parity nodes rolls an epoch, so the
    /// per-node budget scales with m² to keep the per-stripe reset rate
    /// comparable across code shapes.
    pub fn parix_threshold_for(&self) -> u64 {
        let m = self.code.m() as u64;
        self.parix_threshold_bytes * m * m / 4
    }

    /// Pools per device per layer under the current toggles.
    pub fn tsue_pools_per_layer(&self) -> usize {
        if self.tsue.multi_pool {
            4
        } else {
            1
        }
    }

    /// Distinct client endpoint slots: one per client up to
    /// [`MAX_CLIENT_ENDPOINTS`], shared round-robin beyond it.
    pub fn client_slots(&self) -> usize {
        self.clients.min(MAX_CLIENT_ENDPOINTS as u64) as usize
    }

    /// Network endpoint ids: OSDs are `0..nodes`, client slots follow.
    pub fn endpoints(&self) -> usize {
        self.nodes + self.client_slots()
    }

    /// Endpoint id of client `c` (its slot in the bounded endpoint pool;
    /// 1:1 while `clients <= MAX_CLIENT_ENDPOINTS`).
    pub fn client_endpoint(&self, c: u64) -> usize {
        self.nodes + (c % self.client_slots() as u64) as usize
    }

    /// The OSD side of the topology: nodes split into contiguous racks,
    /// each weighted by its disk's capacity (MiB units) so
    /// capacity-aware placement policies can see the fleet's skew.
    pub fn rack_map(&self) -> RackMap {
        let weights: Vec<u64> = (0..self.nodes)
            .map(|n| (self.fleet.capacity_of(n) >> 20).max(1))
            .collect();
        RackMap::contiguous(self.nodes, self.racks).with_node_weights(weights)
    }

    /// The rack hosting client `c` (endpoint slots round-robin over
    /// racks; the rack follows the client's slot).
    pub fn client_rack(&self, c: u64) -> usize {
        (c % self.client_slots() as u64) as usize % self.racks
    }

    /// The full fabric topology: OSD racks from [`Self::rack_map`], client
    /// endpoint slots round-robin over the same racks.
    pub fn topology(&self) -> simnet::Topology {
        let rm = self.rack_map();
        let mut rack_of: Vec<usize> = (0..self.nodes).map(|n| rm.rack_of(n)).collect();
        rack_of.extend((0..self.client_slots()).map(|s| s % self.racks));
        simnet::Topology::racked(rack_of, self.oversubscription)
    }

    /// Validates cross-field invariants, including the network and
    /// placement configuration — so a bad fabric is rejected at build time
    /// rather than panicking inside `Network::new` mid-replay.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.nodes < self.code.total() {
            return Err(ConfigError(format!(
                "{} nodes cannot hold RS({},{}) stripes",
                self.nodes,
                self.code.k(),
                self.code.m()
            )));
        }
        if self.clients == 0 {
            return Err("need at least one client".into());
        }
        if self.block_bytes == 0 || !self.block_bytes.is_multiple_of(4096) {
            return Err("block_bytes must be a positive multiple of 4 KiB".into());
        }
        if self.tsue_unit_bytes < 4096 {
            return Err(ConfigError(format!(
                "tsue_unit_bytes = {} is below the 4 KiB slice granularity",
                self.tsue_unit_bytes
            )));
        }
        if self.tsue_max_units == 0 {
            return Err("tsue_max_units must be at least 1".into());
        }
        if self.net_bandwidth == 0 {
            return Err("net_bandwidth must be positive".into());
        }
        self.fleet.validate(self.nodes).map_err(ConfigError)?;
        if self.racks == 0 {
            return Err("racks must be at least 1".into());
        }
        if self.racks > self.nodes {
            return Err(ConfigError(format!(
                "{} racks cannot be cut from {} nodes",
                self.racks, self.nodes
            )));
        }
        if !self.oversubscription.is_finite() || self.oversubscription < 1.0 {
            return Err(ConfigError(format!(
                "oversubscription = {} must be a finite ratio >= 1.0",
                self.oversubscription
            )));
        }
        self.placement
            .check(self.code, &self.rack_map())
            .map_err(ConfigError)?;
        Ok(())
    }
}

/// Builder for [`ClusterConfig`] with fail-fast validation.
///
/// Starts from the SSD-testbed defaults; set [`Self::code`] and a method
/// (either [`Self::method`] or [`Self::method_name`]) before building:
///
/// ```
/// use ecfs::{ClusterConfig, MethodKind};
/// use rscode::CodeParams;
///
/// let cfg = ClusterConfig::builder()
///     .code(CodeParams::new(6, 3).unwrap())
///     .method(MethodKind::Tsue)
///     .clients(8)
///     .build()
///     .unwrap();
/// assert_eq!(cfg.method.name(), "TSUE");
///
/// // Invalid shapes are rejected with the reason:
/// let err = ClusterConfig::builder()
///     .code(CodeParams::new(12, 4).unwrap())
///     .method(MethodKind::Fo)
///     .nodes(10)
///     .build()
///     .unwrap_err();
/// assert!(err.to_string().contains("cannot hold"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ClusterConfigBuilder {
    code: Option<CodeParams>,
    method: Option<MethodChoice>,
    nodes: Option<usize>,
    clients: Option<u64>,
    block_bytes: Option<u64>,
    fleet: Option<DiskFleet>,
    net_bandwidth: Option<u64>,
    net_rpc_overhead: Option<u64>,
    racks: Option<usize>,
    oversubscription: Option<f64>,
    placement: Option<Arc<dyn PlacementPolicy>>,
    tsue: Option<TsueFeatures>,
    tsue_unit_bytes: Option<u64>,
    tsue_max_units: Option<usize>,
    plr_reserved_bytes: Option<u64>,
    cord_buffer_bytes: Option<u64>,
    parix_threshold_bytes: Option<u64>,
    fl_threshold_bytes: Option<u64>,
    tsue_recycle_cpu_per_record: Option<u64>,
    cache: Option<CacheConfig>,
    staging: Option<StagingConfig>,
}

#[derive(Debug, Clone)]
enum MethodChoice {
    Driver(Arc<dyn UpdateMethod>),
    Name(String),
}

macro_rules! builder_setters {
    ($($(#[$doc:meta])* $field:ident : $ty:ty),+ $(,)?) => {$(
        $(#[$doc])*
        pub fn $field(mut self, value: $ty) -> Self {
            self.$field = Some(value);
            self
        }
    )+};
}

impl ClusterConfigBuilder {
    builder_setters! {
        /// RS(k, m) shape (required).
        code: CodeParams,
        /// Number of OSD nodes.
        nodes: usize,
        /// Number of client streams.
        clients: u64,
        /// Bytes per EC block.
        block_bytes: u64,
        /// Network fabric bandwidth in bytes/s.
        net_bandwidth: u64,
        /// Per-RPC network overhead in nanoseconds.
        net_rpc_overhead: u64,
        /// Number of racks (OSDs split contiguously, clients round-robin).
        racks: usize,
        /// Spine oversubscription ratio.
        oversubscription: f64,
        /// TSUE feature toggles.
        tsue: TsueFeatures,
        /// Log-unit size for TSUE layers.
        tsue_unit_bytes: u64,
        /// Unit quota per TSUE pool.
        tsue_max_units: usize,
        /// PLR reserved-space bytes per parity block.
        plr_reserved_bytes: u64,
        /// CoRD collector buffer bytes.
        cord_buffer_bytes: u64,
        /// PARIX parity-log recycle threshold per node.
        parix_threshold_bytes: u64,
        /// FL log-recycle threshold in bytes per node.
        fl_threshold_bytes: u64,
        /// Per-record recycle-thread CPU time in nanoseconds.
        tsue_recycle_cpu_per_record: u64,
    }

    /// Every OSD carries this device model (shorthand for
    /// [`DiskFleet::Uniform`]; use [`Self::fleet`] for heterogeneous
    /// populations).
    pub fn disk(mut self, kind: DiskKind) -> Self {
        self.fleet = Some(DiskFleet::uniform(kind));
        self
    }

    /// The per-node disk population.
    ///
    /// ```
    /// use ecfs::{ClusterConfig, DiskFleet, MethodKind};
    /// use rscode::CodeParams;
    ///
    /// let cfg = ClusterConfig::builder()
    ///     .code(CodeParams::new(6, 3).unwrap())
    ///     .method(MethodKind::Tsue)
    ///     .fleet(DiskFleet::tiered(8, 8))
    ///     .build()
    ///     .unwrap();
    /// assert!(cfg.fleet.is_ssd(0) && !cfg.fleet.is_ssd(15));
    ///
    /// // A fleet not covering every node is rejected with the reason:
    /// let err = ClusterConfig::builder()
    ///     .code(CodeParams::new(6, 3).unwrap())
    ///     .method(MethodKind::Tsue)
    ///     .fleet(DiskFleet::tiered(8, 4))
    ///     .build()
    ///     .unwrap_err();
    /// assert!(err.to_string().contains("the cluster has 16"));
    /// ```
    pub fn fleet(mut self, fleet: DiskFleet) -> Self {
        self.fleet = Some(fleet);
        self
    }

    /// The update method, as a driver or a built-in [`MethodKind`].
    pub fn method(mut self, method: impl Into<Arc<dyn UpdateMethod>>) -> Self {
        self.method = Some(MethodChoice::Driver(method.into()));
        self
    }

    /// The block-placement policy, as a driver or a built-in
    /// [`crate::placement::PlacementKind`].
    pub fn placement(mut self, placement: impl Into<Arc<dyn PlacementPolicy>>) -> Self {
        self.placement = Some(placement.into());
        self
    }

    /// The update method as a *spec string* — a registry name with
    /// optional cache/staging decorators ([`crate::methods::spec`]) —
    /// parsed and resolved against
    /// [`crate::methods::MethodRegistry::global`] at [`Self::build`] time:
    /// the hook for out-of-tree methods and decorated configurations alike.
    ///
    /// ```
    /// use ecfs::ClusterConfig;
    /// use rscode::CodeParams;
    ///
    /// let cfg = ClusterConfig::builder()
    ///     .code(CodeParams::new(6, 3).unwrap())
    ///     .method_name("stage(8MiB,2ms)+lru(64MiB)+PLR")
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(cfg.method.name(), "stage(8MiB,2ms)+lru(64MiB)+PLR");
    /// ```
    pub fn method_name(mut self, name: impl Into<String>) -> Self {
        self.method = Some(MethodChoice::Name(name.into()));
        self
    }

    /// Arms a node-local read cache ([`crate::cache`]) in front of the
    /// configured method; validated and wrapped at [`Self::build`] time.
    pub fn cache(mut self, cache: CacheConfig) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Arms a per-node write-coalescing staging buffer ([`crate::cache`])
    /// in front of the configured method; validated and wrapped at
    /// [`Self::build`] time.
    pub fn staging(mut self, staging: StagingConfig) -> Self {
        self.staging = Some(staging);
        self
    }

    /// Assembles and validates the configuration.
    pub fn build(self) -> Result<ClusterConfig, ConfigError> {
        let code = self.code.ok_or(ConfigError::from("code is required"))?;
        let method = match self.method {
            Some(MethodChoice::Driver(driver)) => driver,
            Some(MethodChoice::Name(name)) => {
                let spec = MethodSpec::parse(&name).map_err(|e| ConfigError(e.to_string()))?;
                crate::methods::build_method(&spec).map_err(|e| ConfigError(e.to_string()))?
            }
            None => return Err("an update method is required".into()),
        };
        let method = Cached::wrap(method, self.cache, self.staging)
            .map_err(|e| ConfigError(e.to_string()))?;
        let defaults = ClusterConfig::ssd_testbed(code, Arc::clone(&method));
        let cfg = ClusterConfig {
            nodes: self.nodes.unwrap_or(defaults.nodes),
            clients: self.clients.unwrap_or(defaults.clients),
            code,
            block_bytes: self.block_bytes.unwrap_or(defaults.block_bytes),
            fleet: self.fleet.unwrap_or(defaults.fleet),
            net_bandwidth: self.net_bandwidth.unwrap_or(defaults.net_bandwidth),
            net_rpc_overhead: self.net_rpc_overhead.unwrap_or(defaults.net_rpc_overhead),
            racks: self.racks.unwrap_or(defaults.racks),
            oversubscription: self.oversubscription.unwrap_or(defaults.oversubscription),
            placement: self.placement.unwrap_or(defaults.placement),
            method,
            tsue: self.tsue.unwrap_or(defaults.tsue),
            tsue_unit_bytes: self.tsue_unit_bytes.unwrap_or(defaults.tsue_unit_bytes),
            tsue_max_units: self.tsue_max_units.unwrap_or(defaults.tsue_max_units),
            plr_reserved_bytes: self
                .plr_reserved_bytes
                .unwrap_or(defaults.plr_reserved_bytes),
            cord_buffer_bytes: self.cord_buffer_bytes.unwrap_or(defaults.cord_buffer_bytes),
            parix_threshold_bytes: self
                .parix_threshold_bytes
                .unwrap_or(defaults.parix_threshold_bytes),
            fl_threshold_bytes: self
                .fl_threshold_bytes
                .unwrap_or(defaults.fl_threshold_bytes),
            tsue_recycle_cpu_per_record: self
                .tsue_recycle_cpu_per_record
                .unwrap_or(defaults.tsue_recycle_cpu_per_record),
        };
        cfg.validate()?;
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_configs_validate() {
        let code = CodeParams::new(6, 4).unwrap();
        assert!(ClusterConfig::ssd_testbed(code, MethodKind::Tsue)
            .validate()
            .is_ok());
        assert!(ClusterConfig::hdd_testbed(code, MethodKind::Pl)
            .validate()
            .is_ok());
    }

    #[test]
    fn too_few_nodes_rejected() {
        let code = CodeParams::new(12, 4).unwrap();
        let mut cfg = ClusterConfig::ssd_testbed(code, MethodKind::Fo);
        cfg.nodes = 10;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn feature_ladder_is_cumulative() {
        let ladder = TsueFeatures::ladder();
        assert_eq!(ladder[0].1, TsueFeatures::baseline());
        assert_eq!(ladder[5].1, TsueFeatures::full());
        assert!(ladder[1].1.data_locality && !ladder[1].1.parity_locality);
        assert!(ladder[3].1.log_pool && !ladder[3].1.multi_pool);
    }

    #[test]
    fn hdd_testbed_disables_delta_log() {
        let code = CodeParams::new(6, 4).unwrap();
        let cfg = ClusterConfig::hdd_testbed(code, MethodKind::Tsue);
        assert!(!cfg.tsue.delta_log);
        assert!(matches!(cfg.fleet, DiskFleet::Uniform(DiskKind::Hdd(_))));
    }

    #[test]
    fn method_names_match_paper() {
        assert_eq!(MethodKind::Tsue.name(), "TSUE");
        assert_eq!(MethodKind::Cord.name(), "CoRD");
        assert_eq!(MethodKind::ALL.len(), 7);
        for kind in MethodKind::ALL {
            assert_eq!(kind.driver().name(), kind.name());
        }
    }

    #[test]
    fn builder_fills_testbed_defaults() {
        let code = CodeParams::new(6, 3).unwrap();
        let cfg = ClusterConfig::builder()
            .code(code)
            .method(MethodKind::Cord)
            .build()
            .unwrap();
        let reference = ClusterConfig::ssd_testbed(code, MethodKind::Cord);
        assert_eq!(cfg.nodes, reference.nodes);
        assert_eq!(cfg.block_bytes, reference.block_bytes);
        assert_eq!(cfg.method.name(), "CoRD");
    }

    #[test]
    fn builder_requires_code_and_method() {
        assert!(ClusterConfig::builder().build().is_err());
        assert!(ClusterConfig::builder()
            .code(CodeParams::new(4, 2).unwrap())
            .build()
            .unwrap_err()
            .to_string()
            .contains("method"));
    }

    #[test]
    fn builder_resolves_registry_names() {
        let cfg = ClusterConfig::builder()
            .code(CodeParams::new(4, 2).unwrap())
            .method_name("parix")
            .build()
            .unwrap();
        assert_eq!(cfg.method.name(), "PARIX");
        let err = ClusterConfig::builder()
            .code(CodeParams::new(4, 2).unwrap())
            .method_name("warp-drive")
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("warp-drive"));
    }

    #[test]
    fn builder_arms_cache_and_staging() {
        use crate::cache::{CacheConfig, CachePolicy, StagingConfig};
        let cfg = ClusterConfig::builder()
            .code(CodeParams::new(4, 2).unwrap())
            .method(MethodKind::Fo)
            .cache(CacheConfig::new(CachePolicy::Lru, 64 << 20))
            .staging(StagingConfig::new(8 << 20, 2_000_000))
            .build()
            .unwrap();
        assert_eq!(cfg.method.name(), "stage(8MiB,2ms)+lru(64MiB)+FO");

        // Invalid layer sizes surface as ConfigError, not a panic.
        let err = ClusterConfig::builder()
            .code(CodeParams::new(4, 2).unwrap())
            .method(MethodKind::Fo)
            .cache(CacheConfig::new(CachePolicy::Lru, 16))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("cache size"));
    }

    #[test]
    fn builder_parses_decorated_method_names() {
        let cfg = ClusterConfig::builder()
            .code(CodeParams::new(4, 2).unwrap())
            .method_name("lru(1MiB)+tsue")
            .build()
            .unwrap();
        assert_eq!(cfg.method.name(), "lru(1MiB)+TSUE");
        // A decorated name plus builder-armed layers would double-wrap:
        // rejected with the reason.
        let err = ClusterConfig::builder()
            .code(CodeParams::new(4, 2).unwrap())
            .method_name("lru(1MiB)+tsue")
            .staging(crate::cache::StagingConfig::new(8 << 20, 1_000_000))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("already wrapped"));
    }

    #[test]
    fn builder_rejects_bad_unit_size() {
        let err = ClusterConfig::builder()
            .code(CodeParams::new(4, 2).unwrap())
            .method(MethodKind::Tsue)
            .tsue_unit_bytes(512)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("4 KiB"));
    }
}
