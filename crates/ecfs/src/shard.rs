//! Sharded deterministic replay: running one simulation on many cores.
//!
//! # Decomposition
//!
//! Every update-method driver mutates the shared cluster (layout, network,
//! disks) synchronously inside its event handlers, so the *causal* core of
//! a replay — clients, fabric, devices, drivers — stays on one shard.
//! What parallelises today is the replay's **bookkeeping plane**, which is
//! strictly feed-forward (the core never reads it mid-run) and
//! order-insensitive at merge time:
//!
//! * shard 1 — **telemetry**: client-observed latency histograms,
//!   timestamped sample logs, the completions time series;
//! * shards 2.. — **consistency oracle**: acked/applied interval sets,
//!   spatially partitioned by stripe key (with 2 shards total, shard 1
//!   carries the oracle too).
//!
//! The core emits [`ReplayMsg`] envelopes through [`ReplayOutbox`]; the
//! engine ([`simdes::shard`]) routes them at epoch barriers in the
//! deterministic `(time, source_shard, seq)` order, which here reduces to
//! exactly the serial emission order — so every sink builds **the same
//! structure the serial loop would have built, by the same sequence of
//! calls**. After the run the sinks are merged back wholesale and the
//! result is byte-for-byte the serial replay (`tests/engine_shard.rs`
//! pins this across all seven methods with fault and maintenance plans
//! armed).
//!
//! One coupling breaks pure feed-forward: the lazy defragmenter reads
//! `oracle.acked` span counts mid-run as its fragmentation signal. When a
//! defrag policy is armed the oracle therefore stays on the core shard
//! ([`run_sharded`]'s `oracle_local`), and only telemetry offloads.
//!
//! This is deliberately the first increment of ROADMAP direction 1: the
//! ceiling on speedup is the core shard's event loop, until the method
//! drivers themselves become message-passing state machines over a
//! partitioned cluster.

use simdes::shard::{CrossSend, RunStats, Shard, ShardWorld, ShardedSim, SimShard};
use simdes::stats::{Histogram, SampleLog, TimeSeries};
use simdes::{Sim, SimTime};

use crate::cluster::{Cluster, Oracle};
use crate::layout::{stripe_key, BlockAddr};

/// Index of the telemetry sink shard.
pub const TELEMETRY_SHARD: usize = 1;

/// Epoch stretch for the replay topology: sinks are feed-forward, so the
/// epoch can be far longer than the conservative lookahead; 2 ms of
/// simulated time keeps barrier counts in the tens-to-hundreds per run.
pub const EPOCH_NS: SimTime = 2 * simdes::units::MILLIS;

/// A bookkeeping record shipped from the core shard to a sink shard.
#[derive(Debug, Clone, Copy)]
pub enum ReplayMsg {
    /// An update completion: latency record + completions series point.
    Update {
        /// Completion time.
        at: SimTime,
        /// Client-observed latency (ns).
        ns: u64,
    },
    /// A read completion: read-latency record.
    Read {
        /// Completion time.
        at: SimTime,
        /// Client-observed latency (ns).
        ns: u64,
    },
    /// Oracle: byte range acknowledged to a client.
    Ack {
        /// Data block.
        addr: BlockAddr,
        /// Range start within the block.
        offset: u32,
        /// Range length.
        len: u32,
    },
    /// Oracle: byte range folded into the data block on disk.
    Data {
        /// Data block.
        addr: BlockAddr,
        /// Range start within the block.
        offset: u32,
        /// Range length.
        len: u32,
    },
    /// Oracle: byte range whose parity effect has been applied.
    Parity {
        /// Parity block.
        addr: BlockAddr,
        /// Range start within the block.
        offset: u32,
        /// Range length.
        len: u32,
    },
}

/// The core shard's staging buffer for cross-shard records. Installed on
/// [`Cluster::shard_tx`] only by [`run_sharded`]; drained by the engine at
/// every epoch barrier.
#[derive(Debug, Default)]
pub struct ReplayOutbox {
    queue: Vec<(usize, ReplayMsg)>,
    /// First oracle sink index (0 disables oracle offload).
    oracle_base: usize,
    /// Number of oracle sink shards.
    oracle_shards: u64,
}

impl ReplayOutbox {
    /// An outbox for an engine with `shards` total shards. With
    /// `oracle_local` the oracle stays on the core (required when a
    /// mid-run reader like the defragmenter is armed).
    pub fn new(shards: usize, oracle_local: bool) -> ReplayOutbox {
        assert!(shards >= 2, "an outbox needs at least one sink shard");
        let (oracle_base, oracle_shards) = if oracle_local {
            (0, 0)
        } else if shards == 2 {
            (TELEMETRY_SHARD, 1)
        } else {
            (TELEMETRY_SHARD + 1, (shards - 2) as u64)
        };
        ReplayOutbox {
            queue: Vec::new(),
            oracle_base,
            oracle_shards,
        }
    }

    /// Stages a telemetry record for the telemetry sink.
    #[inline]
    pub fn telemetry(&mut self, msg: ReplayMsg) {
        self.queue.push((TELEMETRY_SHARD, msg));
    }

    /// Stages an oracle record for its stripe's sink. Returns `false`
    /// when the oracle is colocated on the core (caller applies locally).
    #[inline]
    pub fn oracle(&mut self, addr: BlockAddr, msg: ReplayMsg) -> bool {
        if self.oracle_shards == 0 {
            return false;
        }
        let key = stripe_key(addr.volume, addr.stripe);
        let dst = self.oracle_base + (key % self.oracle_shards) as usize;
        self.queue.push((dst, msg));
        true
    }

    /// Records staged and not yet drained.
    pub fn staged(&self) -> usize {
        self.queue.len()
    }
}

impl ShardWorld for Cluster {
    type Msg = ReplayMsg;

    fn on_message(_sim: &mut Sim<Self>, _world: &mut Self, _src: usize, _msg: ReplayMsg) {
        unreachable!("the core shard never receives cross-shard messages");
    }

    fn drain_outbox(&mut self, now: SimTime) -> Vec<CrossSend<ReplayMsg>> {
        match &mut self.shard_tx {
            Some(tx) if !tx.queue.is_empty() => tx
                .queue
                .drain(..)
                .map(|(dst, msg)| CrossSend { dst, at: now, msg })
                .collect(),
            _ => Vec::new(),
        }
    }
}

/// Telemetry state lifted off the core's `Metrics` for the duration of a
/// sharded run. The structs are *moved* out of the cluster (not cloned),
/// so arming decisions (sample logs) and bucket widths carry over exactly.
#[derive(Debug)]
struct Telemetry {
    update_latency: Histogram,
    read_latency: Histogram,
    completions: TimeSeries,
    latency_samples: Option<SampleLog>,
    read_latency_samples: Option<SampleLog>,
}

impl Telemetry {
    fn take_from(cl: &mut Cluster) -> Telemetry {
        let m = &mut cl.metrics;
        Telemetry {
            update_latency: std::mem::take(&mut m.update_latency),
            read_latency: std::mem::take(&mut m.read_latency),
            completions: std::mem::replace(
                &mut m.completions,
                TimeSeries::new(simdes::units::SECS),
            ),
            latency_samples: m.latency_samples.take(),
            read_latency_samples: m.read_latency_samples.take(),
        }
    }

    fn restore_into(self, cl: &mut Cluster) {
        let m = &mut cl.metrics;
        m.update_latency = self.update_latency;
        m.read_latency = self.read_latency;
        m.completions = self.completions;
        m.latency_samples = self.latency_samples;
        m.read_latency_samples = self.read_latency_samples;
    }
}

/// A bookkeeping sink: applies [`ReplayMsg`]s on delivery, never schedules
/// events, never sends. Holds the telemetry plane, an oracle partition, or
/// (with exactly two shards) both.
struct SinkShard {
    telemetry: Option<Telemetry>,
    oracle: Option<Oracle>,
    applied: u64,
}

impl SinkShard {
    fn apply(&mut self, msg: ReplayMsg) {
        self.applied += 1;
        match msg {
            ReplayMsg::Update { at, ns } => {
                let t = self.telemetry.as_mut().expect("telemetry sink");
                t.update_latency.record(ns);
                if let Some(log) = &mut t.latency_samples {
                    log.record(at, ns);
                }
                t.completions.record(at, 1);
            }
            ReplayMsg::Read { at, ns } => {
                let t = self.telemetry.as_mut().expect("telemetry sink");
                t.read_latency.record(ns);
                if let Some(log) = &mut t.read_latency_samples {
                    log.record(at, ns);
                }
            }
            ReplayMsg::Ack { addr, offset, len } => {
                self.oracle
                    .as_mut()
                    .expect("oracle sink")
                    .acked
                    .entry(addr)
                    .or_default()
                    .insert(offset as u64, offset as u64 + len as u64);
            }
            ReplayMsg::Data { addr, offset, len } => {
                self.oracle
                    .as_mut()
                    .expect("oracle sink")
                    .applied_data
                    .entry(addr)
                    .or_default()
                    .insert(offset as u64, offset as u64 + len as u64);
            }
            ReplayMsg::Parity { addr, offset, len } => {
                self.oracle
                    .as_mut()
                    .expect("oracle sink")
                    .applied_parity
                    .entry(addr)
                    .or_default()
                    .insert(offset as u64, offset as u64 + len as u64);
            }
        }
    }
}

impl Shard<ReplayMsg> for SinkShard {
    fn next_time(&self) -> Option<SimTime> {
        None // sinks are purely reactive
    }

    fn deliver(&mut self, _at: SimTime, _src: usize, msg: ReplayMsg) {
        // Deliveries arrive in (time, src, seq) order == the core's
        // emission order; applying immediately reproduces the serial
        // sequence of record() calls exactly.
        self.apply(msg);
    }

    fn run_before(&mut self, _until: SimTime) -> Vec<CrossSend<ReplayMsg>> {
        Vec::new()
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

/// Worker-thread count for the sharded engine and `run_grid`: the
/// `TSUE_BENCH_THREADS` override when set (and parseable), otherwise the
/// machine's available parallelism.
pub fn replay_threads() -> usize {
    match std::env::var("TSUE_BENCH_THREADS") {
        Ok(v) => v.trim().parse().unwrap_or(1).max(1),
        Err(_) => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// Runs the prepared `(sim, cluster)` pair to completion on `shards`
/// engine shards and up to `threads` worker threads, then merges the sink
/// planes back. The returned pair is **byte-for-byte** the state
/// `sim.run(&mut cl)` would have produced.
///
/// `oracle_local` keeps oracle bookkeeping on the core shard; required
/// when anything reads the oracle mid-run (the defrag policy does).
pub fn run_sharded(
    sim: Sim<Cluster>,
    mut cl: Cluster,
    shards: usize,
    threads: usize,
    oracle_local: bool,
) -> (Sim<Cluster>, Cluster, RunStats) {
    assert!(shards >= 2, "run_sharded needs at least one sink shard");
    let lookahead = cl.cfg.net_rpc_overhead.max(1);
    if !oracle_local {
        // The sinks each start from an empty partition; a pre-populated
        // oracle cannot be split, so offload is only valid from scratch.
        assert!(
            cl.oracle.acked.is_empty()
                && cl.oracle.applied_data.is_empty()
                && cl.oracle.applied_parity.is_empty(),
            "oracle offload requires an empty oracle at run start"
        );
    }
    cl.shard_tx = Some(ReplayOutbox::new(shards, oracle_local));
    let telemetry = Telemetry::take_from(&mut cl);

    let mut engine: ShardedSim<ReplayMsg> =
        ShardedSim::new(lookahead).with_epoch(lookahead.max(EPOCH_NS));
    engine.add_shard(Box::new(SimShard::new(sim, cl)));
    // Shard 1: telemetry (plus the whole oracle when it is the only sink).
    engine.add_shard(Box::new(SinkShard {
        telemetry: Some(telemetry),
        oracle: (!oracle_local && shards == 2).then(Oracle::default),
        applied: 0,
    }));
    for _ in 2..shards {
        engine.add_shard(Box::new(SinkShard {
            telemetry: None,
            oracle: (!oracle_local).then(Oracle::default),
            applied: 0,
        }));
    }
    engine.run(threads);
    let stats = engine.stats();

    let mut it = engine.into_shards().into_iter();
    let core = it
        .next()
        .expect("core shard")
        .into_any()
        .downcast::<SimShard<Cluster>>()
        .expect("core is a SimShard<Cluster>");
    let (sim, mut cl) = core.into_parts();
    cl.shard_tx = None;
    for sink in it {
        let sink = sink.into_any().downcast::<SinkShard>().expect("sink shard");
        if let Some(t) = sink.telemetry {
            t.restore_into(&mut cl);
        }
        if let Some(o) = sink.oracle {
            // Oracle partitions are disjoint by stripe, so extending is a
            // plain union.
            cl.oracle.acked.extend(o.acked);
            cl.oracle.applied_data.extend(o.applied_data);
            cl.oracle.applied_parity.extend(o.applied_parity);
        }
    }
    (sim, cl, stats)
}
