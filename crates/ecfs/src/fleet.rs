//! Per-node disk fleets: the device population behind the OSDs.
//!
//! The cluster used to carry a single [`DiskKind`] cloned onto every node,
//! which made the heterogeneous scenarios the paper hints at (§5.4 runs an
//! all-HDD cluster; Koh et al. show online EC behaves qualitatively
//! differently on mixed flash/HDD arrays) unreachable. A [`DiskFleet`]
//! describes the whole population:
//!
//! * [`DiskFleet::Uniform`] — every node carries the same device. This is
//!   the default and reproduces the pre-fleet cluster **byte for byte**
//!   (the topology/fault/open-loop goldens pin it).
//! * [`DiskFleet::Tiered`] — the first `ssd_nodes` nodes carry flash, the
//!   remaining `hdd_nodes` carry spinning disks: the classic mixed fleet a
//!   partial hardware refresh leaves behind.
//! * [`DiskFleet::Explicit`] — one [`DiskProfile`] per node, each a base
//!   device scaled by capacity/throughput multipliers: arbitrary
//!   per-generation skew ("rack 3 got the 4 TB drives").
//!
//! [`crate::Cluster::new`] builds one device *per node* from the fleet, so
//! every disk booking — foreground I/O, log recycling, and crucially the
//! repair pump's rebuilt-block writes — runs at the *target* node's own
//! device rate, and capacity-aware machinery (the log-region allocator,
//! [`crate::placement::CapacityWeighted`] via [`RackMap`] node weights)
//! sees each node's true capacity.
//!
//! [`RackMap`]: crate::placement::RackMap

use simdisk::{Disk, Hdd, HddConfig, Ssd, SsdConfig};

use crate::config::DiskKind;

/// One node's device: a base model scaled by capacity and throughput
/// multipliers (a cheap way to express drive generations without
/// hand-writing full configs).
#[derive(Debug, Clone)]
pub struct DiskProfile {
    /// The base device model.
    pub kind: DiskKind,
    /// Capacity scale factor (1.0 = the base config's capacity).
    pub capacity_mult: f64,
    /// Bandwidth scale factor applied to the media transfer rates (command
    /// overheads and seek/rotation are mechanical constants and stay).
    pub throughput_mult: f64,
}

impl DiskProfile {
    /// A profile of the base device, unscaled.
    pub fn new(kind: DiskKind) -> DiskProfile {
        DiskProfile {
            kind,
            capacity_mult: 1.0,
            throughput_mult: 1.0,
        }
    }

    /// Default SSD, unscaled.
    pub fn ssd() -> DiskProfile {
        DiskProfile::new(DiskKind::Ssd(SsdConfig::default()))
    }

    /// Default HDD, unscaled.
    pub fn hdd() -> DiskProfile {
        DiskProfile::new(DiskKind::Hdd(HddConfig::default()))
    }

    /// Sets the capacity multiplier (builder-style).
    pub fn with_capacity_mult(mut self, mult: f64) -> DiskProfile {
        self.capacity_mult = mult;
        self
    }

    /// Sets the throughput multiplier (builder-style).
    pub fn with_throughput_mult(mut self, mult: f64) -> DiskProfile {
        self.throughput_mult = mult;
        self
    }

    /// The concrete (scaled) device model this profile builds.
    pub fn device(&self) -> DiskKind {
        match &self.kind {
            DiskKind::Ssd(c) => {
                let mut c = c.clone();
                c.capacity = scale_to(c.capacity, self.capacity_mult, c.page_size);
                c.read_bandwidth = scale_to(c.read_bandwidth, self.throughput_mult, 1);
                c.write_bandwidth = scale_to(c.write_bandwidth, self.throughput_mult, 1);
                DiskKind::Ssd(c)
            }
            DiskKind::Hdd(c) => {
                let mut c = c.clone();
                c.capacity = scale_to(c.capacity, self.capacity_mult, 4096);
                c.transfer_bandwidth = scale_to(c.transfer_bandwidth, self.throughput_mult, 1);
                DiskKind::Hdd(c)
            }
        }
    }

    /// The scaled capacity in bytes.
    pub fn capacity(&self) -> u64 {
        match self.device() {
            DiskKind::Ssd(c) => c.capacity,
            DiskKind::Hdd(c) => c.capacity,
        }
    }

    fn validate(&self, node: usize) -> Result<(), String> {
        for (name, mult) in [
            ("capacity_mult", self.capacity_mult),
            ("throughput_mult", self.throughput_mult),
        ] {
            if !mult.is_finite() || mult <= 0.0 {
                return Err(format!(
                    "node {node}: {name} = {mult} must be a finite positive factor"
                ));
            }
        }
        match self.device() {
            DiskKind::Ssd(c) => {
                // The FTL needs at least four erase blocks to run GC.
                let min = c.page_size * c.pages_per_block as u64 * 4;
                if c.capacity < min {
                    return Err(format!(
                        "node {node}: scaled SSD capacity {} is below the {min}-byte \
                         FTL minimum (4 erase blocks)",
                        c.capacity
                    ));
                }
                if c.read_bandwidth == 0 || c.write_bandwidth == 0 {
                    return Err(format!("node {node}: scaled SSD bandwidth is zero"));
                }
            }
            DiskKind::Hdd(c) => {
                if c.capacity < 4096 {
                    return Err(format!(
                        "node {node}: scaled HDD capacity {} is below one 4 KiB sector group",
                        c.capacity
                    ));
                }
                if c.transfer_bandwidth == 0 {
                    return Err(format!("node {node}: scaled HDD bandwidth is zero"));
                }
            }
        }
        Ok(())
    }
}

/// Multiplies `base` by `mult`, rounding down to a multiple of `quantum`
/// (identity when `mult == 1.0`, so uniform fleets stay byte-exact).
fn scale_to(base: u64, mult: f64, quantum: u64) -> u64 {
    if mult == 1.0 {
        return base;
    }
    let scaled = (base as f64 * mult) as u64;
    scaled / quantum * quantum
}

/// The disk population of the cluster, one device per OSD node.
#[derive(Debug, Clone)]
pub enum DiskFleet {
    /// Every node carries the same device (the default; byte-for-byte the
    /// pre-fleet behaviour).
    Uniform(DiskKind),
    /// The first `ssd_nodes` nodes carry `ssd`, the remaining `hdd_nodes`
    /// carry `hdd`. `ssd_nodes + hdd_nodes` must equal the cluster's node
    /// count.
    Tiered {
        /// Nodes carrying the flash tier (node ids `0..ssd_nodes`).
        ssd_nodes: usize,
        /// Nodes carrying the spinning tier (node ids `ssd_nodes..`).
        hdd_nodes: usize,
        /// The flash device model.
        ssd: SsdConfig,
        /// The spinning device model.
        hdd: HddConfig,
    },
    /// One explicit profile per node (`len()` must equal the node count).
    Explicit(Vec<DiskProfile>),
}

impl DiskFleet {
    /// Every node carries `kind`.
    pub fn uniform(kind: DiskKind) -> DiskFleet {
        DiskFleet::Uniform(kind)
    }

    /// Every node carries the default SSD (the paper's primary testbed).
    pub fn uniform_ssd() -> DiskFleet {
        DiskFleet::Uniform(DiskKind::Ssd(SsdConfig::default()))
    }

    /// Every node carries the default HDD (the §5.4 cluster). The one way
    /// to say "all-HDD": [`crate::ClusterConfig::hdd_testbed`] and the
    /// Fig. 8 benches all route through here.
    pub fn uniform_hdd() -> DiskFleet {
        DiskFleet::Uniform(DiskKind::Hdd(HddConfig::default()))
    }

    /// A mixed fleet of default devices: `ssd_nodes` flash nodes followed
    /// by `hdd_nodes` spinning nodes.
    pub fn tiered(ssd_nodes: usize, hdd_nodes: usize) -> DiskFleet {
        DiskFleet::Tiered {
            ssd_nodes,
            hdd_nodes,
            ssd: SsdConfig::default(),
            hdd: HddConfig::default(),
        }
    }

    /// One explicit profile per node.
    pub fn explicit(profiles: Vec<DiskProfile>) -> DiskFleet {
        DiskFleet::Explicit(profiles)
    }

    /// Short display label for bench tables ("uniform-ssd",
    /// "tiered-8s+8h", "explicit-16").
    pub fn name(&self) -> String {
        match self {
            DiskFleet::Uniform(DiskKind::Ssd(_)) => "uniform-ssd".to_string(),
            DiskFleet::Uniform(DiskKind::Hdd(_)) => "uniform-hdd".to_string(),
            DiskFleet::Tiered {
                ssd_nodes,
                hdd_nodes,
                ..
            } => format!("tiered-{ssd_nodes}s+{hdd_nodes}h"),
            DiskFleet::Explicit(profiles) => format!("explicit-{}", profiles.len()),
        }
    }

    /// The (scaled) device model node `node` carries.
    ///
    /// # Panics
    /// Panics when `node` is outside the fleet (validation rejects
    /// mis-sized fleets before any cluster is built).
    pub fn kind_of(&self, node: usize) -> DiskKind {
        match self {
            DiskFleet::Uniform(kind) => kind.clone(),
            DiskFleet::Tiered {
                ssd_nodes,
                hdd_nodes,
                ssd,
                hdd,
            } => {
                assert!(node < ssd_nodes + hdd_nodes, "node outside the fleet");
                if node < *ssd_nodes {
                    DiskKind::Ssd(ssd.clone())
                } else {
                    DiskKind::Hdd(hdd.clone())
                }
            }
            DiskFleet::Explicit(profiles) => profiles[node].device(),
        }
    }

    /// Whether node `node` carries flash.
    pub fn is_ssd(&self, node: usize) -> bool {
        matches!(self.kind_of(node), DiskKind::Ssd(_))
    }

    /// Node `node`'s capacity in bytes.
    pub fn capacity_of(&self, node: usize) -> u64 {
        match self.kind_of(node) {
            DiskKind::Ssd(c) => c.capacity,
            DiskKind::Hdd(c) => c.capacity,
        }
    }

    /// Builds node `node`'s device instance.
    pub fn build_disk(&self, node: usize) -> Disk {
        match self.kind_of(node) {
            DiskKind::Ssd(c) => Disk::Ssd(Ssd::new(c)),
            DiskKind::Hdd(c) => Disk::Hdd(Hdd::new(c)),
        }
    }

    /// Validates the fleet against the cluster's node count.
    pub fn validate(&self, nodes: usize) -> Result<(), String> {
        match self {
            DiskFleet::Uniform(kind) => DiskProfile::new(kind.clone()).validate(0),
            DiskFleet::Tiered {
                ssd_nodes,
                hdd_nodes,
                ssd,
                hdd,
            } => {
                if ssd_nodes + hdd_nodes != nodes {
                    return Err(format!(
                        "tiered fleet covers {ssd_nodes} SSD + {hdd_nodes} HDD nodes \
                         but the cluster has {nodes}"
                    ));
                }
                DiskProfile::new(DiskKind::Ssd(ssd.clone())).validate(0)?;
                DiskProfile::new(DiskKind::Hdd(hdd.clone())).validate(*ssd_nodes)
            }
            DiskFleet::Explicit(profiles) => {
                if profiles.len() != nodes {
                    return Err(format!(
                        "explicit fleet describes {} nodes but the cluster has {nodes}",
                        profiles.len()
                    ));
                }
                for (node, p) in profiles.iter().enumerate() {
                    p.validate(node)?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_builds_identical_devices() {
        let fleet = DiskFleet::uniform_ssd();
        assert!(fleet.validate(16).is_ok());
        assert_eq!(fleet.name(), "uniform-ssd");
        let base = SsdConfig::default().capacity;
        for n in [0usize, 7, 15] {
            assert!(fleet.is_ssd(n));
            assert_eq!(fleet.capacity_of(n), base);
            assert_eq!(fleet.build_disk(n).capacity(), base);
        }
        assert_eq!(DiskFleet::uniform_hdd().name(), "uniform-hdd");
    }

    #[test]
    fn tiered_splits_by_node_id() {
        let fleet = DiskFleet::tiered(3, 5);
        assert!(fleet.validate(8).is_ok());
        assert_eq!(fleet.name(), "tiered-3s+5h");
        for n in 0..3 {
            assert!(fleet.is_ssd(n), "node {n}");
        }
        for n in 3..8 {
            assert!(!fleet.is_ssd(n), "node {n}");
            assert!(matches!(fleet.build_disk(n), Disk::Hdd(_)));
        }
    }

    #[test]
    fn tiered_count_mismatch_rejected() {
        let err = DiskFleet::tiered(8, 8).validate(12).unwrap_err();
        assert!(err.contains("12"), "{err}");
    }

    #[test]
    fn explicit_profiles_scale_capacity_and_bandwidth() {
        let fleet = DiskFleet::explicit(vec![
            DiskProfile::ssd().with_capacity_mult(0.25),
            DiskProfile::ssd().with_throughput_mult(2.0),
            DiskProfile::hdd(),
        ]);
        assert!(fleet.validate(3).is_ok());
        assert_eq!(fleet.name(), "explicit-3");
        let base = SsdConfig::default();
        assert_eq!(fleet.capacity_of(0), base.capacity / 4);
        assert_eq!(fleet.capacity_of(1), base.capacity);
        match fleet.kind_of(1) {
            DiskKind::Ssd(c) => {
                assert_eq!(c.read_bandwidth, base.read_bandwidth * 2);
                assert_eq!(c.write_bandwidth, base.write_bandwidth * 2);
            }
            DiskKind::Hdd(_) => panic!("node 1 must be flash"),
        }
        assert_eq!(fleet.capacity_of(2), HddConfig::default().capacity);
    }

    #[test]
    fn explicit_wrong_length_rejected() {
        let fleet = DiskFleet::explicit(vec![DiskProfile::ssd(); 4]);
        assert!(fleet.validate(5).is_err());
    }

    #[test]
    fn degenerate_profiles_rejected() {
        // Zero capacity.
        let zero = DiskFleet::explicit(vec![DiskProfile::ssd().with_capacity_mult(0.0)]);
        assert!(zero.validate(1).is_err());
        // Capacity below the FTL minimum.
        let tiny = DiskFleet::explicit(vec![DiskProfile::ssd().with_capacity_mult(1e-7)]);
        assert!(tiny.validate(1).is_err());
        // Non-finite and negative multipliers.
        for bad in [f64::NAN, f64::INFINITY, -1.0] {
            let f = DiskFleet::explicit(vec![DiskProfile::hdd().with_throughput_mult(bad)]);
            assert!(f.validate(1).is_err(), "mult {bad} must be rejected");
        }
    }

    #[test]
    fn unit_multiplier_is_byte_exact() {
        // `1.0` must not round-trip through floats: uniform fleets pin
        // golden replays.
        let p = DiskProfile::ssd();
        match (p.device(), &p.kind) {
            (DiskKind::Ssd(scaled), DiskKind::Ssd(base)) => {
                assert_eq!(scaled.capacity, base.capacity);
                assert_eq!(scaled.read_bandwidth, base.read_bandwidth);
                assert_eq!(scaled.write_bandwidth, base.write_bandwidth);
            }
            _ => panic!("profile changed device flavour"),
        }
    }
}
