//! Pluggable block placement: the policy deciding which OSD hosts each
//! block of a stripe, rack-aware where the topology has racks.
//!
//! The MDS's placement decision used to be a hard-coded hash rotation in
//! [`crate::layout::Layout`]; it is now an object-safe [`PlacementPolicy`]
//! so clusters can trade fault tolerance against cross-rack traffic:
//!
//! | policy | stripe blocks | rack failure | cross-rack update traffic |
//! |---|---|---|---|
//! | [`FlatRotate`] | hash-rotated over all nodes | may lose > m blocks | topology-blind |
//! | [`RackAware`]  | round-robin across racks | loses ≤ ⌈(k+m)/racks⌉ blocks | high (parity spread out) |
//! | [`RackLocal`]  | parity co-racked, data spread | parity rack loses all m | low (parity deltas stay in one rack) |
//!
//! [`RackAware`] is the Rashmi-style availability placement; [`RackLocal`]
//! follows the clustered-network-coding argument (Kermarrec et al.): keep
//! the update-heavy parity group behind one top-of-rack switch so the
//! spine only carries the data-block delta once.
//!
//! Every policy must map the `k + m` blocks of one stripe to distinct
//! nodes. [`FlatRotate`] on a single rack is the default and reproduces the
//! pre-policy placement bit-for-bit.

use std::sync::Arc;

use rscode::CodeParams;

use crate::layout::BlockAddr;

/// Node → rack assignment used by placement decisions (the OSD side of the
/// fabric's [`simnet::Topology`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RackMap {
    rack_of: Vec<usize>,
    members: Vec<Vec<usize>>,
}

impl RackMap {
    /// Splits `nodes` OSDs into `racks` contiguous racks (sizes differ by
    /// at most one).
    ///
    /// # Panics
    /// Panics if `racks == 0` or `racks > nodes`.
    pub fn contiguous(nodes: usize, racks: usize) -> RackMap {
        assert!(racks > 0, "need at least one rack");
        assert!(racks <= nodes, "more racks than nodes");
        let rack_of: Vec<usize> = (0..nodes).map(|n| n * racks / nodes).collect();
        let mut members = vec![Vec::new(); racks];
        for (n, &r) in rack_of.iter().enumerate() {
            members[r].push(n);
        }
        RackMap { rack_of, members }
    }

    /// Number of OSD nodes.
    pub fn nodes(&self) -> usize {
        self.rack_of.len()
    }

    /// Number of racks.
    pub fn racks(&self) -> usize {
        self.members.len()
    }

    /// The rack hosting `node`.
    pub fn rack_of(&self, node: usize) -> usize {
        self.rack_of[node]
    }

    /// The nodes in `rack`, ascending.
    pub fn members(&self, rack: usize) -> &[usize] {
        &self.members[rack]
    }

    /// The smallest rack's size.
    pub fn min_rack_size(&self) -> usize {
        self.members.iter().map(Vec::len).min().unwrap_or(0)
    }
}

/// An object-safe block-placement policy. Implementations must be pure
/// functions of `(addr, code, racks)` — the layout caches nothing about
/// them — and must place the `k + m` blocks of any one stripe on distinct
/// nodes.
pub trait PlacementPolicy: std::fmt::Debug + Send + Sync {
    /// Display name (used in benches and tables).
    fn name(&self) -> &str;

    /// The OSD hosting `addr`.
    fn node_of(&self, addr: BlockAddr, code: CodeParams, racks: &RackMap) -> usize;

    /// Rejects shapes the policy cannot place (e.g. more blocks per rack
    /// than the rack has nodes). The default only requires enough nodes.
    fn check(&self, code: CodeParams, racks: &RackMap) -> Result<(), String> {
        if racks.nodes() < code.total() {
            return Err(format!(
                "{} nodes cannot hold RS({},{}) stripes",
                racks.nodes(),
                code.k(),
                code.m()
            ));
        }
        Ok(())
    }
}

/// The per-stripe base hash every built-in policy rotates from.
fn stripe_base(addr: BlockAddr) -> u64 {
    (addr.volume as u64)
        .wrapping_mul(0x9e3779b97f4a7c15)
        .wrapping_add(addr.stripe.wrapping_mul(0xd1b54a32d192ed03))
}

/// Topology-blind hash rotation over all nodes — the pre-policy behaviour
/// and the default. A stripe's blocks land on consecutive nodes of a
/// per-stripe-rotated ring, so load spreads evenly; racks are ignored, so
/// a rack failure can take out more than `m` blocks of one stripe.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlatRotate;

impl PlacementPolicy for FlatRotate {
    fn name(&self) -> &str {
        "flat-rotate"
    }

    fn node_of(&self, addr: BlockAddr, _code: CodeParams, racks: &RackMap) -> usize {
        ((stripe_base(addr) as usize) + addr.index as usize) % racks.nodes()
    }
}

/// Rack-fault-tolerant spread: consecutive blocks of a stripe round-robin
/// across racks, rotating within each rack, so any one rack holds at most
/// `⌈(k+m)/racks⌉` blocks of a stripe. Once `racks ≥ ⌈(k+m)/m⌉` that bound
/// drops to `m`, so a whole-rack failure stays reconstructible.
#[derive(Debug, Clone, Copy, Default)]
pub struct RackAware;

impl PlacementPolicy for RackAware {
    fn name(&self) -> &str {
        "rack-aware"
    }

    fn node_of(&self, addr: BlockAddr, _code: CodeParams, racks: &RackMap) -> usize {
        let base = stripe_base(addr) as usize;
        let nr = racks.racks();
        let rack = (base + addr.index as usize) % nr;
        let members = racks.members(rack);
        // Blocks i and j land in the same rack iff i ≡ j (mod racks), so
        // rotating by i / racks keeps same-rack blocks on distinct nodes as
        // long as the per-rack block count fits the rack (see `check`).
        let slot = (base / nr + addr.index as usize / nr) % members.len();
        members[slot]
    }

    fn check(&self, code: CodeParams, racks: &RackMap) -> Result<(), String> {
        if racks.nodes() < code.total() {
            return Err(format!(
                "{} nodes cannot hold RS({},{}) stripes",
                racks.nodes(),
                code.k(),
                code.m()
            ));
        }
        let per_rack = code.total().div_ceil(racks.racks());
        if per_rack > racks.min_rack_size() {
            return Err(format!(
                "rack-aware placement needs {} slots per rack but the smallest rack has {}",
                per_rack,
                racks.min_rack_size()
            ));
        }
        Ok(())
    }
}

/// Update-traffic-minimising placement: a stripe's `m` parity blocks share
/// one rack (rotated per stripe), so parity-delta forwarding — the bulk of
/// every logging method's background traffic — stays behind a single
/// top-of-rack switch; data blocks round-robin over the remaining racks.
/// The price is availability: losing the parity rack costs all `m` parity
/// blocks of the stripes homed there.
#[derive(Debug, Clone, Copy, Default)]
pub struct RackLocal;

impl PlacementPolicy for RackLocal {
    fn name(&self) -> &str {
        "rack-local"
    }

    fn node_of(&self, addr: BlockAddr, code: CodeParams, racks: &RackMap) -> usize {
        let base = stripe_base(addr) as usize;
        let nr = racks.racks();
        if nr == 1 {
            // Degenerate single-rack case: plain rotation (≡ FlatRotate).
            return (base + addr.index as usize) % racks.nodes();
        }
        let parity_rack = base % nr;
        let i = addr.index as usize;
        let k = code.k();
        if i >= k {
            // Parity block p on the stripe's parity rack.
            let members = racks.members(parity_rack);
            let p = i - k;
            return members[(base / nr + p) % members.len()];
        }
        // Data blocks round-robin over the other racks.
        let rack = (parity_rack + 1 + (base + i) % (nr - 1)) % nr;
        let members = racks.members(rack);
        // Data blocks i and j share a rack iff i ≡ j (mod racks - 1).
        let slot = (base / nr + i / (nr - 1)) % members.len();
        members[slot]
    }

    fn check(&self, code: CodeParams, racks: &RackMap) -> Result<(), String> {
        if racks.nodes() < code.total() {
            return Err(format!(
                "{} nodes cannot hold RS({},{}) stripes",
                racks.nodes(),
                code.k(),
                code.m()
            ));
        }
        let nr = racks.racks();
        if nr == 1 {
            return Ok(());
        }
        if code.m() > racks.min_rack_size() {
            return Err(format!(
                "rack-local placement co-racks {} parity blocks but the smallest rack has {} nodes",
                code.m(),
                racks.min_rack_size()
            ));
        }
        let data_per_rack = code.k().div_ceil(nr - 1);
        if data_per_rack > racks.min_rack_size() {
            return Err(format!(
                "rack-local placement needs {} data slots per rack but the smallest rack has {}",
                data_per_rack,
                racks.min_rack_size()
            ));
        }
        Ok(())
    }
}

/// The built-in placement policies, as a convenience selector mirroring
/// [`crate::config::MethodKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlacementKind {
    /// Topology-blind hash rotation (the default).
    FlatRotate,
    /// Spread each stripe across racks for rack fault tolerance.
    RackAware,
    /// Co-rack each stripe's parity to minimise cross-rack update traffic.
    RackLocal,
}

impl PlacementKind {
    /// All built-in policies.
    pub const ALL: [PlacementKind; 3] = [
        PlacementKind::FlatRotate,
        PlacementKind::RackAware,
        PlacementKind::RackLocal,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            PlacementKind::FlatRotate => "flat-rotate",
            PlacementKind::RackAware => "rack-aware",
            PlacementKind::RackLocal => "rack-local",
        }
    }

    /// Builds the policy object.
    pub fn policy(&self) -> Arc<dyn PlacementPolicy> {
        match self {
            PlacementKind::FlatRotate => Arc::new(FlatRotate),
            PlacementKind::RackAware => Arc::new(RackAware),
            PlacementKind::RackLocal => Arc::new(RackLocal),
        }
    }
}

impl From<PlacementKind> for Arc<dyn PlacementPolicy> {
    fn from(kind: PlacementKind) -> Arc<dyn PlacementPolicy> {
        kind.policy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(volume: u32, stripe: u64, index: u16) -> BlockAddr {
        BlockAddr {
            volume,
            stripe,
            index,
        }
    }

    fn stripe_nodes(
        policy: &dyn PlacementPolicy,
        code: CodeParams,
        racks: &RackMap,
        volume: u32,
        stripe: u64,
    ) -> Vec<usize> {
        (0..code.total() as u16)
            .map(|i| policy.node_of(addr(volume, stripe, i), code, racks))
            .collect()
    }

    fn assert_distinct(policy: &dyn PlacementPolicy, code: CodeParams, racks: &RackMap) {
        for volume in 0..3u32 {
            for stripe in 0..200u64 {
                let nodes = stripe_nodes(policy, code, racks, volume, stripe);
                let mut sorted = nodes.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(
                    sorted.len(),
                    code.total(),
                    "{} vol {volume} stripe {stripe}: {nodes:?}",
                    policy.name()
                );
            }
        }
    }

    #[test]
    fn contiguous_rack_map_shapes() {
        let rm = RackMap::contiguous(16, 3);
        assert_eq!(rm.nodes(), 16);
        assert_eq!(rm.racks(), 3);
        assert_eq!(rm.min_rack_size(), 5);
        let total: usize = (0..3).map(|r| rm.members(r).len()).sum();
        assert_eq!(total, 16);
        for r in 0..3 {
            for &n in rm.members(r) {
                assert_eq!(rm.rack_of(n), r);
            }
        }
        // Contiguity: members are consecutive node ids.
        for r in 0..3 {
            let m = rm.members(r);
            for w in m.windows(2) {
                assert_eq!(w[1], w[0] + 1);
            }
        }
    }

    #[test]
    fn all_policies_place_stripes_on_distinct_nodes() {
        let code = CodeParams::new(6, 3).unwrap();
        for racks in [1usize, 2, 3, 4] {
            let rm = RackMap::contiguous(16, racks);
            for kind in PlacementKind::ALL {
                let policy = kind.policy();
                policy.check(code, &rm).unwrap();
                assert_distinct(policy.as_ref(), code, &rm);
            }
        }
    }

    #[test]
    fn flat_rotate_matches_legacy_hash() {
        // The pre-policy Layout::node_of formula, verbatim.
        let legacy = |a: BlockAddr, nodes: usize| {
            let base = (a.volume as u64)
                .wrapping_mul(0x9e3779b97f4a7c15)
                .wrapping_add(a.stripe.wrapping_mul(0xd1b54a32d192ed03));
            ((base as usize) + a.index as usize) % nodes
        };
        let code = CodeParams::new(6, 3).unwrap();
        let rm = RackMap::contiguous(16, 1);
        for volume in 0..4u32 {
            for stripe in 0..100u64 {
                for index in 0..9u16 {
                    let a = addr(volume, stripe, index);
                    assert_eq!(FlatRotate.node_of(a, code, &rm), legacy(a, 16));
                }
            }
        }
    }

    #[test]
    fn single_rack_policies_degenerate_to_flat_rotate() {
        let code = CodeParams::new(6, 3).unwrap();
        let rm = RackMap::contiguous(16, 1);
        for stripe in 0..50u64 {
            for index in 0..9u16 {
                let a = addr(1, stripe, index);
                let flat = FlatRotate.node_of(a, code, &rm);
                assert_eq!(RackAware.node_of(a, code, &rm), flat);
                assert_eq!(RackLocal.node_of(a, code, &rm), flat);
            }
        }
    }

    #[test]
    fn rack_aware_bounds_blocks_per_rack() {
        let code = CodeParams::new(6, 3).unwrap();
        let rm = RackMap::contiguous(16, 4);
        let cap = code.total().div_ceil(4); // 3
        for stripe in 0..200u64 {
            let nodes = stripe_nodes(&RackAware, code, &rm, 0, stripe);
            let mut per_rack = vec![0usize; 4];
            for n in nodes {
                per_rack[rm.rack_of(n)] += 1;
            }
            assert!(
                per_rack.iter().all(|&c| c <= cap),
                "stripe {stripe}: {per_rack:?}"
            );
            // ≤ m blocks per rack here, so any single rack loss is
            // reconstructible from the surviving k.
            assert!(per_rack.iter().all(|&c| c <= code.m()));
        }
    }

    #[test]
    fn rack_local_co_racks_parity_and_rotates_racks() {
        let code = CodeParams::new(6, 3).unwrap();
        let rm = RackMap::contiguous(16, 4);
        let mut parity_racks_seen = std::collections::HashSet::new();
        for stripe in 0..100u64 {
            let nodes = stripe_nodes(&RackLocal, code, &rm, 0, stripe);
            let parity_racks: Vec<usize> =
                nodes[code.k()..].iter().map(|&n| rm.rack_of(n)).collect();
            assert!(
                parity_racks.iter().all(|&r| r == parity_racks[0]),
                "stripe {stripe}: parity split across racks {parity_racks:?}"
            );
            parity_racks_seen.insert(parity_racks[0]);
            // Data never shares the parity rack (racks > 1).
            for &n in &nodes[..code.k()] {
                assert_ne!(rm.rack_of(n), parity_racks[0], "stripe {stripe}");
            }
        }
        assert!(
            parity_racks_seen.len() > 1,
            "parity rack must rotate across stripes"
        );
    }

    #[test]
    fn checks_reject_infeasible_shapes() {
        let code = CodeParams::new(12, 4).unwrap();
        // 16 nodes in 8 racks of 2: rack-aware wants ceil(16/8) = 2 ≤ 2, ok;
        // rack-local wants 4 parity slots in one rack — impossible.
        let rm = RackMap::contiguous(16, 8);
        assert!(RackAware.check(code, &rm).is_ok());
        assert!(RackLocal.check(code, &rm).is_err());
        // Too few nodes is rejected by every policy.
        let tiny = RackMap::contiguous(8, 2);
        for kind in PlacementKind::ALL {
            assert!(kind.policy().check(code, &tiny).is_err());
        }
    }

    #[test]
    fn kind_names_match_policies() {
        for kind in PlacementKind::ALL {
            assert_eq!(kind.policy().name(), kind.name());
        }
    }
}
