//! Pluggable block placement: the policy deciding which OSD hosts each
//! block of a stripe, rack-aware where the topology has racks.
//!
//! The MDS's placement decision used to be a hard-coded hash rotation in
//! [`crate::layout::Layout`]; it is now an object-safe [`PlacementPolicy`]
//! so clusters can trade fault tolerance against cross-rack traffic:
//!
//! | policy | stripe blocks | rack failure | cross-rack update traffic |
//! |---|---|---|---|
//! | [`FlatRotate`] | hash-rotated over all nodes | may lose > m blocks | topology-blind |
//! | [`RackAware`]  | round-robin across racks | loses ≤ ⌈(k+m)/racks⌉ blocks | high (parity spread out) |
//! | [`RackLocal`]  | parity co-racked, data spread | parity rack loses all m | low (parity deltas stay in one rack) |
//! | [`CapacityWeighted`] | weighted by node capacity | may lose > m blocks | topology-blind |
//! | [`Copyset`]    | confined to ≤ `budget` co-location sets | may lose > m blocks | topology-blind |
//!
//! [`RackAware`] is the Rashmi-style availability placement; [`RackLocal`]
//! follows the clustered-network-coding argument (Kermarrec et al.): keep
//! the update-heavy parity group behind one top-of-rack switch so the
//! spine only carries the data-block delta once. [`CapacityWeighted`] and
//! [`Copyset`] are the resource-aware pair for heterogeneous fleets: the
//! former fills big disks proportionally faster so no node runs out first,
//! the latter caps the number of distinct stripe co-location sets so a
//! multi-node failure intersects few stripes (the copyset argument of
//! Cidon et al.).
//!
//! Every policy must map the `k + m` blocks of one stripe to distinct
//! nodes. [`FlatRotate`] on a single rack is the default and reproduces the
//! pre-policy placement bit-for-bit.

use std::sync::Arc;

use rscode::CodeParams;

use crate::layout::BlockAddr;

/// Node → rack assignment used by placement decisions (the OSD side of the
/// fabric's [`simnet::Topology`]), plus a per-node capacity weight so
/// resource-aware policies can see a heterogeneous fleet's skew.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RackMap {
    rack_of: Vec<usize>,
    members: Vec<Vec<usize>>,
    /// Relative capacity per node (MiB-scale units from the fleet; all 1
    /// for a uniform fleet, so weight-blind policies are unaffected).
    weights: Vec<u64>,
}

impl RackMap {
    /// Splits `nodes` OSDs into `racks` contiguous racks (sizes differ by
    /// at most one), with unit weights.
    ///
    /// # Panics
    /// Panics if `racks == 0` or `racks > nodes`.
    pub fn contiguous(nodes: usize, racks: usize) -> RackMap {
        assert!(racks > 0, "need at least one rack");
        assert!(racks <= nodes, "more racks than nodes");
        let rack_of: Vec<usize> = (0..nodes).map(|n| n * racks / nodes).collect();
        let mut members = vec![Vec::new(); racks];
        for (n, &r) in rack_of.iter().enumerate() {
            members[r].push(n);
        }
        RackMap {
            rack_of,
            members,
            weights: vec![1; nodes],
        }
    }

    /// Replaces the per-node capacity weights (builder-style). Weights are
    /// relative: only ratios matter to [`CapacityWeighted`].
    ///
    /// # Panics
    /// Panics if `weights.len()` differs from the node count or any weight
    /// is zero.
    pub fn with_node_weights(mut self, weights: Vec<u64>) -> RackMap {
        assert_eq!(weights.len(), self.rack_of.len(), "one weight per node");
        assert!(weights.iter().all(|&w| w > 0), "weights must be positive");
        self.weights = weights;
        self
    }

    /// Node `node`'s capacity weight.
    pub fn weight_of(&self, node: usize) -> u64 {
        self.weights[node]
    }

    /// Number of OSD nodes.
    pub fn nodes(&self) -> usize {
        self.rack_of.len()
    }

    /// Number of racks.
    pub fn racks(&self) -> usize {
        self.members.len()
    }

    /// The rack hosting `node`.
    pub fn rack_of(&self, node: usize) -> usize {
        self.rack_of[node]
    }

    /// The nodes in `rack`, ascending.
    pub fn members(&self, rack: usize) -> &[usize] {
        &self.members[rack]
    }

    /// The smallest rack's size.
    pub fn min_rack_size(&self) -> usize {
        self.members.iter().map(Vec::len).min().unwrap_or(0)
    }
}

/// An object-safe block-placement policy. Implementations must be pure
/// functions of `(addr, code, racks)` — the layout caches nothing about
/// them — and must place the `k + m` blocks of any one stripe on distinct
/// nodes.
pub trait PlacementPolicy: std::fmt::Debug + Send + Sync {
    /// Display name (used in benches and tables).
    fn name(&self) -> &str;

    /// The OSD hosting `addr`.
    fn node_of(&self, addr: BlockAddr, code: CodeParams, racks: &RackMap) -> usize;

    /// Rejects shapes the policy cannot place (e.g. more blocks per rack
    /// than the rack has nodes). The default only requires enough nodes.
    fn check(&self, code: CodeParams, racks: &RackMap) -> Result<(), String> {
        if racks.nodes() < code.total() {
            return Err(format!(
                "{} nodes cannot hold RS({},{}) stripes",
                racks.nodes(),
                code.k(),
                code.m()
            ));
        }
        Ok(())
    }
}

/// The per-stripe base hash every built-in policy rotates from.
fn stripe_base(addr: BlockAddr) -> u64 {
    (addr.volume as u64)
        .wrapping_mul(0x9e3779b97f4a7c15)
        .wrapping_add(addr.stripe.wrapping_mul(0xd1b54a32d192ed03))
}

/// Topology-blind hash rotation over all nodes — the pre-policy behaviour
/// and the default. A stripe's blocks land on consecutive nodes of a
/// per-stripe-rotated ring, so load spreads evenly; racks are ignored, so
/// a rack failure can take out more than `m` blocks of one stripe.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlatRotate;

impl PlacementPolicy for FlatRotate {
    fn name(&self) -> &str {
        "flat-rotate"
    }

    fn node_of(&self, addr: BlockAddr, _code: CodeParams, racks: &RackMap) -> usize {
        ((stripe_base(addr) as usize) + addr.index as usize) % racks.nodes()
    }
}

/// Rack-fault-tolerant spread: consecutive blocks of a stripe round-robin
/// across racks, rotating within each rack, so any one rack holds at most
/// `⌈(k+m)/racks⌉` blocks of a stripe. Once `racks ≥ ⌈(k+m)/m⌉` that bound
/// drops to `m`, so a whole-rack failure stays reconstructible.
#[derive(Debug, Clone, Copy, Default)]
pub struct RackAware;

impl PlacementPolicy for RackAware {
    fn name(&self) -> &str {
        "rack-aware"
    }

    fn node_of(&self, addr: BlockAddr, _code: CodeParams, racks: &RackMap) -> usize {
        let base = stripe_base(addr) as usize;
        let nr = racks.racks();
        let rack = (base + addr.index as usize) % nr;
        let members = racks.members(rack);
        // Blocks i and j land in the same rack iff i ≡ j (mod racks), so
        // rotating by i / racks keeps same-rack blocks on distinct nodes as
        // long as the per-rack block count fits the rack (see `check`).
        let slot = (base / nr + addr.index as usize / nr) % members.len();
        members[slot]
    }

    fn check(&self, code: CodeParams, racks: &RackMap) -> Result<(), String> {
        if racks.nodes() < code.total() {
            return Err(format!(
                "{} nodes cannot hold RS({},{}) stripes",
                racks.nodes(),
                code.k(),
                code.m()
            ));
        }
        let per_rack = code.total().div_ceil(racks.racks());
        if per_rack > racks.min_rack_size() {
            return Err(format!(
                "rack-aware placement needs {} slots per rack but the smallest rack has {}",
                per_rack,
                racks.min_rack_size()
            ));
        }
        Ok(())
    }
}

/// Update-traffic-minimising placement: a stripe's `m` parity blocks share
/// one rack (rotated per stripe), so parity-delta forwarding — the bulk of
/// every logging method's background traffic — stays behind a single
/// top-of-rack switch; data blocks round-robin over the remaining racks.
/// The price is availability: losing the parity rack costs all `m` parity
/// blocks of the stripes homed there.
#[derive(Debug, Clone, Copy, Default)]
pub struct RackLocal;

impl PlacementPolicy for RackLocal {
    fn name(&self) -> &str {
        "rack-local"
    }

    fn node_of(&self, addr: BlockAddr, code: CodeParams, racks: &RackMap) -> usize {
        let base = stripe_base(addr) as usize;
        let nr = racks.racks();
        if nr == 1 {
            // Degenerate single-rack case: plain rotation (≡ FlatRotate).
            return (base + addr.index as usize) % racks.nodes();
        }
        let parity_rack = base % nr;
        let i = addr.index as usize;
        let k = code.k();
        if i >= k {
            // Parity block p on the stripe's parity rack.
            let members = racks.members(parity_rack);
            let p = i - k;
            return members[(base / nr + p) % members.len()];
        }
        // Data blocks round-robin over the other racks.
        let rack = (parity_rack + 1 + (base + i) % (nr - 1)) % nr;
        let members = racks.members(rack);
        // Data blocks i and j share a rack iff i ≡ j (mod racks - 1).
        let slot = (base / nr + i / (nr - 1)) % members.len();
        members[slot]
    }

    fn check(&self, code: CodeParams, racks: &RackMap) -> Result<(), String> {
        if racks.nodes() < code.total() {
            return Err(format!(
                "{} nodes cannot hold RS({},{}) stripes",
                racks.nodes(),
                code.k(),
                code.m()
            ));
        }
        let nr = racks.racks();
        if nr == 1 {
            return Ok(());
        }
        if code.m() > racks.min_rack_size() {
            return Err(format!(
                "rack-local placement co-racks {} parity blocks but the smallest rack has {} nodes",
                code.m(),
                racks.min_rack_size()
            ));
        }
        let data_per_rack = code.k().div_ceil(nr - 1);
        if data_per_rack > racks.min_rack_size() {
            return Err(format!(
                "rack-local placement needs {} data slots per rack but the smallest rack has {}",
                data_per_rack,
                racks.min_rack_size()
            ));
        }
        Ok(())
    }
}

/// A 64-bit mix of the stripe base and a node id (splitmix64 finaliser) —
/// the per-(stripe, node) uniform draw [`CapacityWeighted`] keys its
/// weighted sampling on.
fn node_hash(base: u64, node: usize) -> u64 {
    let mut z = base ^ (node as u64).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Capacity-weighted placement over a (possibly heterogeneous) fleet: each
/// stripe samples its `k + m` nodes without replacement with probability
/// proportional to the node's capacity weight ([`RackMap::weight_of`],
/// filled from the [`crate::DiskFleet`] by
/// [`crate::ClusterConfig::rack_map`]).
///
/// The sampler is the exponential-clocks form of weighted sampling
/// (Efraimidis–Spirakis): node `i` draws a deterministic per-stripe
/// uniform `u_i` and is ranked by `-ln(u_i) / w_i`; the stripe takes the
/// `k + m` smallest ranks. Big disks therefore absorb proportionally more
/// stripes, keeping every disk's *fill fraction* (bytes placed / capacity)
/// aligned instead of every disk's byte count.
///
/// **Documented fill bound** ([`Self::FILL_SPREAD_BOUND`]): for fleets
/// with per-node weight ratios up to 4× and at least `2·(k+m)` nodes, the
/// max/min per-disk fill ratio stays under the bound once enough stripes
/// have been placed (the placement-bounds proptest pins this across
/// random fleets). The bound is loose by design — sampling without
/// replacement flattens extreme weights: a node cannot hold more than one
/// block of any stripe, so a disk weighted above `W/(k+m)` of the total
/// cannot be filled proportionally and the spread degrades toward the
/// weight ratio as `k + m` approaches the node count.
#[derive(Debug, Clone, Copy, Default)]
pub struct CapacityWeighted;

impl CapacityWeighted {
    /// Documented max/min fill-ratio bound (see the type-level docs for
    /// the fleet shapes it covers).
    pub const FILL_SPREAD_BOUND: f64 = 2.0;
}

impl PlacementPolicy for CapacityWeighted {
    fn name(&self) -> &str {
        "capacity-weighted"
    }

    fn node_of(&self, addr: BlockAddr, _code: CodeParams, racks: &RackMap) -> usize {
        // The ranking depends only on the stripe, so the k+m calls for one
        // stripe recompute it; the trait is a pure function (no cache), and
        // at fleet sizes (tens of nodes) the sort is noise next to one
        // simulated I/O.
        let base = stripe_base(addr);
        let n = racks.nodes();
        let mut ranked: Vec<(f64, usize)> = (0..n)
            .map(|i| {
                // Uniform in (0, 1]: take 53 high bits, map 0 to 1.
                let h = node_hash(base, i);
                let u = ((h >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
                let key = -u.ln() / racks.weight_of(i) as f64;
                (key, i)
            })
            .collect();
        ranked.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        ranked[addr.index as usize].1
    }
}

/// Copyset placement: every stripe is confined to one of at most `budget`
/// fixed node groups ("copysets") of `k + m` nodes, rotating blocks within
/// the group. Fewer distinct co-location sets means a simultaneous
/// multi-node failure is overwhelmingly likely to hit *zero* copysets in
/// full — the blast radius caps at the stripes of the few copysets the
/// victims intersect — at the price of less balanced rebuild fan-out.
///
/// The number of distinct co-location sets an actual run produced is
/// reported per replay as
/// [`crate::replay::RunResult::copysets_used`] (a fault run can exceed
/// the budget only through rebuild relocations, which re-home blocks onto
/// arbitrary live nodes).
#[derive(Debug, Clone, Copy)]
pub struct Copyset {
    budget: usize,
}

impl Copyset {
    /// A policy allowing at most `budget` distinct copysets. Construction
    /// is infallible so a bad budget surfaces as the documented
    /// [`crate::ConfigError`] at config-validation time
    /// ([`PlacementPolicy::check`] rejects `budget == 0`), not a panic.
    pub fn new(budget: usize) -> Copyset {
        Copyset { budget }
    }

    /// The configured copyset budget.
    pub fn budget(&self) -> usize {
        self.budget
    }
}

impl PlacementPolicy for Copyset {
    fn name(&self) -> &str {
        "copyset"
    }

    fn node_of(&self, addr: BlockAddr, code: CodeParams, racks: &RackMap) -> usize {
        let base = stripe_base(addr);
        let n = racks.nodes();
        let total = code.total();
        // The stripe's copyset: a run of `total` consecutive nodes whose
        // start is one of `budget` evenly spaced anchors. `check` rejected
        // budget 0 before any placement runs.
        let cs = (base % self.budget as u64) as usize;
        let start = cs * n / self.budget;
        // Rotate blocks within the set (per-stripe) so every member takes
        // each stripe role; the *set* of nodes stays the copyset.
        let spin = (base / self.budget as u64) as usize;
        (start + (addr.index as usize + spin) % total) % n
    }

    fn check(&self, code: CodeParams, racks: &RackMap) -> Result<(), String> {
        if self.budget == 0 {
            return Err("copyset budget must be at least 1".to_string());
        }
        if racks.nodes() < code.total() {
            return Err(format!(
                "{} nodes cannot hold RS({},{}) stripes",
                racks.nodes(),
                code.k(),
                code.m()
            ));
        }
        Ok(())
    }
}

/// The built-in placement policies, as a convenience selector mirroring
/// [`crate::config::MethodKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlacementKind {
    /// Topology-blind hash rotation (the default).
    FlatRotate,
    /// Spread each stripe across racks for rack fault tolerance.
    RackAware,
    /// Co-rack each stripe's parity to minimise cross-rack update traffic.
    RackLocal,
    /// Weight node selection by disk capacity (heterogeneous fleets).
    CapacityWeighted,
    /// Confine stripes to at most this many distinct co-location sets.
    Copyset(usize),
}

impl PlacementKind {
    /// The topology trio the `topo_sweep` bench crosses (the resource-aware
    /// policies — [`Self::CapacityWeighted`], [`Self::Copyset`] — are swept
    /// separately by `hetero_sweep` against heterogeneous fleets).
    pub const ALL: [PlacementKind; 3] = [
        PlacementKind::FlatRotate,
        PlacementKind::RackAware,
        PlacementKind::RackLocal,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            PlacementKind::FlatRotate => "flat-rotate",
            PlacementKind::RackAware => "rack-aware",
            PlacementKind::RackLocal => "rack-local",
            PlacementKind::CapacityWeighted => "capacity-weighted",
            PlacementKind::Copyset(_) => "copyset",
        }
    }

    /// Builds the policy object.
    pub fn policy(&self) -> Arc<dyn PlacementPolicy> {
        match self {
            PlacementKind::FlatRotate => Arc::new(FlatRotate),
            PlacementKind::RackAware => Arc::new(RackAware),
            PlacementKind::RackLocal => Arc::new(RackLocal),
            PlacementKind::CapacityWeighted => Arc::new(CapacityWeighted),
            PlacementKind::Copyset(budget) => Arc::new(Copyset::new(*budget)),
        }
    }
}

impl From<PlacementKind> for Arc<dyn PlacementPolicy> {
    fn from(kind: PlacementKind) -> Arc<dyn PlacementPolicy> {
        kind.policy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(volume: u32, stripe: u64, index: u16) -> BlockAddr {
        BlockAddr {
            volume,
            stripe,
            index,
        }
    }

    fn stripe_nodes(
        policy: &dyn PlacementPolicy,
        code: CodeParams,
        racks: &RackMap,
        volume: u32,
        stripe: u64,
    ) -> Vec<usize> {
        (0..code.total() as u16)
            .map(|i| policy.node_of(addr(volume, stripe, i), code, racks))
            .collect()
    }

    fn assert_distinct(policy: &dyn PlacementPolicy, code: CodeParams, racks: &RackMap) {
        for volume in 0..3u32 {
            for stripe in 0..200u64 {
                let nodes = stripe_nodes(policy, code, racks, volume, stripe);
                let mut sorted = nodes.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(
                    sorted.len(),
                    code.total(),
                    "{} vol {volume} stripe {stripe}: {nodes:?}",
                    policy.name()
                );
            }
        }
    }

    #[test]
    fn contiguous_rack_map_shapes() {
        let rm = RackMap::contiguous(16, 3);
        assert_eq!(rm.nodes(), 16);
        assert_eq!(rm.racks(), 3);
        assert_eq!(rm.min_rack_size(), 5);
        let total: usize = (0..3).map(|r| rm.members(r).len()).sum();
        assert_eq!(total, 16);
        for r in 0..3 {
            for &n in rm.members(r) {
                assert_eq!(rm.rack_of(n), r);
            }
        }
        // Contiguity: members are consecutive node ids.
        for r in 0..3 {
            let m = rm.members(r);
            for w in m.windows(2) {
                assert_eq!(w[1], w[0] + 1);
            }
        }
    }

    #[test]
    fn all_policies_place_stripes_on_distinct_nodes() {
        let code = CodeParams::new(6, 3).unwrap();
        for racks in [1usize, 2, 3, 4] {
            let rm = RackMap::contiguous(16, racks);
            for kind in PlacementKind::ALL {
                let policy = kind.policy();
                policy.check(code, &rm).unwrap();
                assert_distinct(policy.as_ref(), code, &rm);
            }
        }
    }

    #[test]
    fn flat_rotate_matches_legacy_hash() {
        // The pre-policy Layout::node_of formula, verbatim.
        let legacy = |a: BlockAddr, nodes: usize| {
            let base = (a.volume as u64)
                .wrapping_mul(0x9e3779b97f4a7c15)
                .wrapping_add(a.stripe.wrapping_mul(0xd1b54a32d192ed03));
            ((base as usize) + a.index as usize) % nodes
        };
        let code = CodeParams::new(6, 3).unwrap();
        let rm = RackMap::contiguous(16, 1);
        for volume in 0..4u32 {
            for stripe in 0..100u64 {
                for index in 0..9u16 {
                    let a = addr(volume, stripe, index);
                    assert_eq!(FlatRotate.node_of(a, code, &rm), legacy(a, 16));
                }
            }
        }
    }

    #[test]
    fn single_rack_policies_degenerate_to_flat_rotate() {
        let code = CodeParams::new(6, 3).unwrap();
        let rm = RackMap::contiguous(16, 1);
        for stripe in 0..50u64 {
            for index in 0..9u16 {
                let a = addr(1, stripe, index);
                let flat = FlatRotate.node_of(a, code, &rm);
                assert_eq!(RackAware.node_of(a, code, &rm), flat);
                assert_eq!(RackLocal.node_of(a, code, &rm), flat);
            }
        }
    }

    #[test]
    fn rack_aware_bounds_blocks_per_rack() {
        let code = CodeParams::new(6, 3).unwrap();
        let rm = RackMap::contiguous(16, 4);
        let cap = code.total().div_ceil(4); // 3
        for stripe in 0..200u64 {
            let nodes = stripe_nodes(&RackAware, code, &rm, 0, stripe);
            let mut per_rack = vec![0usize; 4];
            for n in nodes {
                per_rack[rm.rack_of(n)] += 1;
            }
            assert!(
                per_rack.iter().all(|&c| c <= cap),
                "stripe {stripe}: {per_rack:?}"
            );
            // ≤ m blocks per rack here, so any single rack loss is
            // reconstructible from the surviving k.
            assert!(per_rack.iter().all(|&c| c <= code.m()));
        }
    }

    #[test]
    fn rack_local_co_racks_parity_and_rotates_racks() {
        let code = CodeParams::new(6, 3).unwrap();
        let rm = RackMap::contiguous(16, 4);
        let mut parity_racks_seen = std::collections::HashSet::new();
        for stripe in 0..100u64 {
            let nodes = stripe_nodes(&RackLocal, code, &rm, 0, stripe);
            let parity_racks: Vec<usize> =
                nodes[code.k()..].iter().map(|&n| rm.rack_of(n)).collect();
            assert!(
                parity_racks.iter().all(|&r| r == parity_racks[0]),
                "stripe {stripe}: parity split across racks {parity_racks:?}"
            );
            parity_racks_seen.insert(parity_racks[0]);
            // Data never shares the parity rack (racks > 1).
            for &n in &nodes[..code.k()] {
                assert_ne!(rm.rack_of(n), parity_racks[0], "stripe {stripe}");
            }
        }
        assert!(
            parity_racks_seen.len() > 1,
            "parity rack must rotate across stripes"
        );
    }

    #[test]
    fn checks_reject_infeasible_shapes() {
        let code = CodeParams::new(12, 4).unwrap();
        // 16 nodes in 8 racks of 2: rack-aware wants ceil(16/8) = 2 ≤ 2, ok;
        // rack-local wants 4 parity slots in one rack — impossible.
        let rm = RackMap::contiguous(16, 8);
        assert!(RackAware.check(code, &rm).is_ok());
        assert!(RackLocal.check(code, &rm).is_err());
        // Too few nodes is rejected by every policy.
        let tiny = RackMap::contiguous(8, 2);
        for kind in PlacementKind::ALL {
            assert!(kind.policy().check(code, &tiny).is_err());
        }
    }

    #[test]
    fn kind_names_match_policies() {
        for kind in PlacementKind::ALL {
            assert_eq!(kind.policy().name(), kind.name());
        }
        for kind in [PlacementKind::CapacityWeighted, PlacementKind::Copyset(4)] {
            assert_eq!(kind.policy().name(), kind.name());
        }
    }

    #[test]
    fn resource_policies_place_stripes_on_distinct_nodes() {
        let code = CodeParams::new(6, 3).unwrap();
        let weighted = RackMap::contiguous(16, 1)
            .with_node_weights((0..16).map(|n| 1 + n as u64 % 4).collect());
        assert_distinct(&CapacityWeighted, code, &weighted);
        for budget in [1usize, 3, 7] {
            assert_distinct(&Copyset::new(budget), code, &weighted);
        }
    }

    #[test]
    fn capacity_weighted_favours_heavy_nodes() {
        let code = CodeParams::new(4, 2).unwrap();
        // Node 0 carries 4x the capacity of everyone else.
        let mut weights = vec![1u64; 16];
        weights[0] = 4;
        let rm = RackMap::contiguous(16, 1).with_node_weights(weights);
        let mut heavy = 0usize;
        let mut light = [0usize; 15];
        let stripes = 600u64;
        for stripe in 0..stripes {
            for n in stripe_nodes(&CapacityWeighted, code, &rm, 0, stripe) {
                if n == 0 {
                    heavy += 1;
                } else {
                    light[n - 1] += 1;
                }
            }
        }
        let light_mean = light.iter().sum::<usize>() as f64 / 15.0;
        assert!(
            heavy as f64 > 2.0 * light_mean,
            "4x-capacity node got {heavy} blocks vs light mean {light_mean:.0}"
        );
        // Fill fraction (blocks per unit weight) stays aligned.
        let fill_heavy = heavy as f64 / 4.0;
        assert!(
            (fill_heavy / light_mean) < CapacityWeighted::FILL_SPREAD_BOUND
                && (light_mean / fill_heavy) < CapacityWeighted::FILL_SPREAD_BOUND,
            "fill skewed: heavy {fill_heavy:.0} vs light {light_mean:.0}"
        );
    }

    #[test]
    fn copyset_confines_stripes_to_budget_sets() {
        let code = CodeParams::new(6, 3).unwrap();
        let rm = RackMap::contiguous(16, 1);
        for budget in [1usize, 2, 4, 6] {
            let policy = Copyset::new(budget);
            policy.check(code, &rm).unwrap();
            let mut sets = std::collections::HashSet::new();
            for stripe in 0..300u64 {
                let mut nodes = stripe_nodes(&policy, code, &rm, 0, stripe);
                nodes.sort_unstable();
                sets.insert(nodes);
            }
            assert!(
                sets.len() <= budget,
                "budget {budget}: {} distinct copysets",
                sets.len()
            );
            // The budget is actually used (placement is not degenerate).
            if budget <= 4 {
                assert_eq!(sets.len(), budget, "budget {budget} under-used");
            }
        }
    }

    #[test]
    fn copyset_rejects_zero_budget_and_tiny_clusters() {
        let code = CodeParams::new(12, 4).unwrap();
        let rm = RackMap::contiguous(8, 1);
        // Construction is infallible; the zero budget is rejected fallibly
        // at check time, so config validation reports it as a ConfigError.
        assert!(Copyset::new(0)
            .check(code, &RackMap::contiguous(16, 1))
            .is_err());
        assert!(Copyset::new(3).check(code, &rm).is_err());
    }

    #[test]
    fn zero_copyset_budget_is_a_config_error_not_a_panic() {
        let err = crate::ClusterConfig::builder()
            .code(CodeParams::new(6, 3).unwrap())
            .method(crate::MethodKind::Tsue)
            .placement(PlacementKind::Copyset(0))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("budget"), "{err}");
    }

    #[test]
    fn uniform_weights_leave_topology_policies_untouched() {
        // with_node_weights(all-1) is the default: the weight-blind trio
        // must be bit-identical either way.
        let code = CodeParams::new(6, 3).unwrap();
        let plain = RackMap::contiguous(16, 4);
        let weighted = RackMap::contiguous(16, 4).with_node_weights(vec![1; 16]);
        assert_eq!(plain, weighted);
        for kind in PlacementKind::ALL {
            let policy = kind.policy();
            for stripe in 0..50u64 {
                for index in 0..9u16 {
                    let a = addr(0, stripe, index);
                    assert_eq!(
                        policy.node_of(a, code, &plain),
                        policy.node_of(a, code, &weighted)
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "one weight per node")]
    fn mis_sized_weights_rejected() {
        let _ = RackMap::contiguous(8, 1).with_node_weights(vec![1; 4]);
    }
}
