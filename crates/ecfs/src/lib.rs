//! ECFS: a simulated erasure-coded cluster file system with pluggable
//! update methods.
//!
//! Reimplements, over the deterministic DES substrate, the system the paper
//! built its evaluation on (§4): a cluster of OSD nodes each with one
//! simulated disk, a metadata service for stripe placement, closed-loop
//! clients replaying block traces, and **seven update methods**:
//!
//! | method | front-end critical path | back-end |
//! |---|---|---|
//! | FO     | in-place data + in-place parity (all random I/O) | — |
//! | FL     | full logging of data + parity deltas | threshold recycle |
//! | PL     | in-place data, parity-delta appended to parity log | deferred recycle |
//! | PLR    | in-place data, delta to *reserved space* next to parity | foreground recycle on overflow |
//! | PARIX  | in-place data, speculative forward of new data; extra round-trip on first touch | deferred recycle |
//! | CoRD   | in-place data, deltas aggregated at a collector (Eq. 5) through a single fixed buffer | foreground flush when full |
//! | TSUE   | replicated sequential DataLog append only | real-time three-layer pipeline |
//!
//! Every driver charges its exact I/O pattern to the device models and its
//! exact message sizes to the network model, so throughput (Fig. 5/7/8),
//! I/O workload (Table 1), residency (Table 2), recycle overhead (Fig. 6)
//! and recovery bandwidth (Fig. 8b) all fall out of one replay engine
//! ([`replay`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod cluster;
pub mod config;
pub mod fault;
pub mod fleet;
pub mod layout;
pub mod maintenance;
pub mod methods;
pub mod placement;
pub mod recovery;
pub mod replay;
pub mod shard;
pub mod telemetry;

pub use cache::{CacheConfig, CachePolicy, Cached, PageCache, StagingConfig};
pub use cluster::Cluster;
pub use config::{
    ClusterConfig, ClusterConfigBuilder, ConfigError, DiskKind, MethodKind, TsueFeatures,
};
pub use fault::{FaultEvent, FaultPlan, FaultScope};
pub use fleet::{DiskFleet, DiskProfile};
pub use maintenance::{MaintenancePlan, MaintenancePolicy};
pub use methods::{
    Decorator, MethodRegistry, MethodSpec, NodeLogState, ResolveError, UpdateCtx, UpdateMethod,
};
pub use placement::{PlacementKind, PlacementPolicy, RackMap};
pub use replay::{
    run_trace, run_traced, Replay, ReplayConfig, ReplayConfigBuilder, RunOutcome, RunResult,
    Workload,
};
pub use shard::{replay_threads, run_sharded, ReplayMsg, ReplayOutbox};
pub use telemetry::{OpClass, Stage, StageRow, Trace, TraceConfig};

/// The coherent public surface, re-exported for one-line imports in
/// benches, examples, and integration tests:
///
/// ```
/// use ecfs::prelude::*;
///
/// let cluster = ClusterConfig::ssd_testbed(CodeParams::new(6, 3).unwrap(), MethodKind::Tsue);
/// let rcfg = ReplayConfig::new(cluster, TraceFamily::AliCloud);
/// assert!(rcfg.validate().is_ok());
/// ```
pub mod prelude {
    pub use crate::cache::{CacheConfig, CachePolicy, Cached, PageCache, StagingConfig};
    pub use crate::cluster::{Cluster, IntervalSet, Metrics, Oracle, Osd};
    pub use crate::config::{
        ClusterConfig, ClusterConfigBuilder, ConfigError, DiskKind, MethodKind, TsueFeatures,
    };
    pub use crate::fault::{FaultEvent, FaultPlan, FaultScope, FaultState, InjectedFault};
    pub use crate::fleet::{DiskFleet, DiskProfile};
    pub use crate::layout::{BlockAddr, BlockSlice, Layout};
    pub use crate::maintenance::{
        DefragConfig, DemoteConfig, LseConfig, MaintState, MaintenancePlan, MaintenancePolicy,
        RebalanceConfig, ScrubConfig,
    };
    pub use crate::methods::{
        build_method, register_method, resolve_method, Decorator, MethodRegistry, MethodSpec,
        NodeLogState, PlainState, RegistryError, ResolveError, UpdateCtx, UpdateMethod,
    };
    pub use crate::placement::{
        CapacityWeighted, Copyset, FlatRotate, PlacementKind, PlacementPolicy, RackAware,
        RackLocal, RackMap,
    };
    pub use crate::recovery::{
        inject_fault, recover_node, recover_rack, recover_scope, RecoveryError, RecoveryResult,
    };
    pub use crate::replay::{
        run_trace, run_traced, run_update_phase, Replay, ReplayConfig, ReplayConfigBuilder,
        ResidencySummary, RunOutcome, RunResult, Workload, SATURATION_GOODPUT_RATIO,
    };
    pub use crate::shard::{replay_threads, run_sharded, ReplayMsg, ReplayOutbox};
    pub use crate::telemetry::{
        OpClass, OpRecord, Stage, StageRow, Trace, TraceConfig, TraceState, UtilKind, UtilLane,
    };
    // The foreign types every experiment needs alongside the cluster.
    pub use rscode::CodeParams;
    pub use simdisk::{HddConfig, SsdConfig};
    pub use traces::{TraceFamily, WorkloadGen, WorkloadParams};
    // The open-loop offered-load engine (crate `workload`).
    pub use workload::{
        ArrivalGen, BaseProcess, ClientPicker, ClientSkew, OffsetSkew, OpenLoopSpec, RateCurve,
        TimedOp, TimedStream,
    };
}
