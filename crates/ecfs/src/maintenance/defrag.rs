//! Lazy defragmentation: compact update-fragmented data blocks, but
//! only during idle valleys.
//!
//! Methods that fold many small update ranges into a block leave it
//! logically fragmented; the consistency oracle already tracks each
//! data block's acknowledged update ranges, so the defragmenter uses
//! that span count as its fragmentation signal (`applied_data` only
//! fills when logs recycle, which is too late to steer a scrubber). A
//! tick first checks the idle gate — no foreground completion within
//! `idle_ns` — and then rewrites one qualifying block in place (whole
//! sequential read + whole sequential write). Under diurnal load the
//! policy's work should therefore cluster in the troughs, which is the
//! cost-attribution story the bench measures.

use simdes::{Sim, SimTime};
use simdisk::{IoOp, Pattern};

use std::any::Any;
use std::collections::HashSet;

use crate::cluster::Cluster;
use crate::layout::BlockAddr;
use crate::maintenance::{DefragConfig, MaintenancePolicy};

/// The lazy-defrag policy (see module docs).
#[derive(Debug, Clone, Copy)]
pub struct Defrag {
    cfg: DefragConfig,
}

/// Blocks already compacted (never re-compacted: the oracle's span
/// count only grows, so without this set the same block would be
/// rewritten every tick) plus the node scan cursor. The set is only
/// ever membership-tested, so its iteration order cannot leak into the
/// simulation — determinism holds.
struct DefragState {
    done: HashSet<BlockAddr>,
    node: usize,
}

impl Defrag {
    /// Builds the policy from its configuration.
    pub fn new(cfg: DefragConfig) -> Defrag {
        Defrag { cfg }
    }
}

impl MaintenancePolicy for Defrag {
    fn name(&self) -> &'static str {
        "defrag"
    }

    fn interval_ns(&self, _cl: &Cluster) -> SimTime {
        self.cfg.interval_ns
    }

    fn init_state(&self) -> Box<dyn Any + Send> {
        Box::new(DefragState {
            done: HashSet::new(),
            node: 0,
        })
    }

    fn tick(&self, sim: &mut Sim<Cluster>, cl: &mut Cluster, slot: usize) -> Option<SimTime> {
        let now = sim.now();
        // The idle-valley gate: stand down while foreground traffic is
        // completing nearby.
        if now.saturating_sub(cl.metrics.last_completion) < self.cfg.idle_ns {
            return None;
        }
        let n = cl.cfg.nodes;
        let code = cl.cfg.code;
        let block_bytes = cl.cfg.block_bytes;

        let pick = {
            let st = cl.maint.slots[slot]
                .downcast_ref::<DefragState>()
                .expect("defrag slot state");
            let mut pick = None;
            'nodes: for step in 0..n {
                let node = (st.node + step) % n;
                if cl.nodes[node].failed {
                    continue;
                }
                for (addr, dev_off) in cl.layout.blocks_on(node) {
                    if !addr.is_data(code) || st.done.contains(&addr) {
                        continue;
                    }
                    let spans = cl.oracle.acked.get(&addr).map_or(0, |s| s.span_count());
                    if spans >= self.cfg.min_spans {
                        pick = Some((node, addr, dev_off));
                        break 'nodes;
                    }
                }
            }
            pick
        };
        let (node, addr, dev_off) = pick?;

        // Compact in place: one whole-block sequential rewrite. The
        // applied ranges stay applied — compaction changes physical
        // contiguity, not logical content — so the oracle is untouched.
        let t_read = cl.disk_io(
            node,
            now,
            IoOp::read(dev_off, block_bytes, Pattern::Sequential),
        );
        let t_write = cl.disk_io(
            node,
            t_read,
            IoOp::write(dev_off, block_bytes, Pattern::Sequential),
        );
        cl.maint.defrag_bytes += block_bytes;
        cl.maint.defrag_stripes += 1;
        let st = cl.maint.slots[slot]
            .downcast_mut::<DefragState>()
            .expect("defrag slot state");
        st.done.insert(addr);
        st.node = node;
        Some(t_write)
    }
}
