//! Tier-aware log demotion: the paper's §5.4 placement insight run as a
//! continuous policy instead of a static fleet choice.
//!
//! TSUE's observation is that only the synchronous DataLog append sits
//! on the client's critical path — everything downstream (recycle
//! folds, parity deltas) is background sequential I/O a spindle handles
//! fine. On a mixed fleet this policy therefore (a) drains parity
//! blocks — recycle targets, never read synchronously — from flash
//! nodes to the emptiest spindle node, one block per tick, and (b)
//! optionally pins TSUE's replica append to flash nodes
//! ([`crate::maintenance::DemoteConfig::pin_appends`]) so the
//! two-append critical path never waits on a seek.

use simdes::{Sim, SimTime};
use simdisk::{IoOp, Pattern};

use std::any::Any;

use crate::cluster::Cluster;
use crate::maintenance::{DemoteConfig, MaintenancePolicy};

/// The tier-demotion policy (see module docs).
#[derive(Debug, Clone, Copy)]
pub struct Demote {
    cfg: DemoteConfig,
}

impl Demote {
    /// Builds the policy from its configuration.
    pub fn new(cfg: DemoteConfig) -> Demote {
        Demote { cfg }
    }
}

impl MaintenancePolicy for Demote {
    fn name(&self) -> &'static str {
        "demote"
    }

    fn interval_ns(&self, _cl: &Cluster) -> SimTime {
        self.cfg.interval_ns
    }

    fn init_state(&self) -> Box<dyn Any + Send> {
        // Stateless: the "cursor" is whatever parity still sits on flash.
        Box::new(())
    }

    fn tick(&self, sim: &mut Sim<Cluster>, cl: &mut Cluster, _slot: usize) -> Option<SimTime> {
        let now = sim.now();
        let code = cl.cfg.code;

        // First parity block still homed on a live flash node, in
        // (node, offset) order — deterministic.
        let mut pick = None;
        'nodes: for node in 0..cl.cfg.nodes {
            if cl.nodes[node].failed || !cl.cfg.fleet.is_ssd(node) {
                continue;
            }
            for (addr, dev_off) in cl.layout.blocks_on(node) {
                if !addr.is_data(code) {
                    pick = Some((node, addr, dev_off));
                    break 'nodes;
                }
            }
        }
        let (node, addr, dev_off) = pick?;

        // The least-written live spindle takes it. Fill barely moves per
        // demotion (one block on an 8 GiB spindle), so a fill-based pick
        // would tie-break onto the same HDD forever; bytes written move
        // with every demotion, rotating the target across the spindles
        // and spreading both the writes and the future recycle reads.
        let mut target: Option<usize> = None;
        let mut best = u64::MAX;
        for i in 0..cl.cfg.nodes {
            if cl.nodes[i].failed || cl.cfg.fleet.is_ssd(i) {
                continue;
            }
            let w = cl.nodes[i].disk.wear_bytes();
            if w < best {
                best = w;
                target = Some(i);
            }
        }
        let target = target?;

        let span = cl.cfg.block_bytes + cl.cfg.method.parity_reserved_bytes(&cl.cfg);
        let t_read = cl.disk_io(node, now, IoOp::read(dev_off, span, Pattern::Sequential));
        let t_net = cl.send_repair(t_read, node, target, span);
        let new_off = cl.log_offset(target, span);
        let t_write = cl.disk_io(
            target,
            t_net,
            IoOp::write(new_off, span, Pattern::Sequential),
        );
        cl.layout.relocate(addr, target, new_off);
        cl.maint.demoted_bytes += span;
        Some(t_write)
    }
}
