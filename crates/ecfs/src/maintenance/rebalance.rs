//! Wear-leveling rebalance: migrate block extents off the most-worn
//! device onto the least-worn one, closing the loop on the per-device
//! `wear_bytes` counters that were previously observed-only.
//!
//! Each tick compares the live fleet's maximum wear against the mean;
//! when `max > trigger_ratio * mean` one block is moved from the
//! most-worn device to the least-worn (sequential read, repair-class
//! transfer, sequential log-region write, metadata relocate). The
//! migration itself costs a write on the target — wear leveling is
//! never free — but the write lands where it hurts least, so the
//! max/mean spread falls.
//!
//! On a mixed flash/HDD fleet only the flash devices participate: wear
//! is a flash-lifetime currency, and "leveling" onto the least-written
//! spindle would concentrate block traffic on a single HDD (slow for
//! the foreground, meaningless for endurance).

use simdes::{Sim, SimTime};
use simdisk::{IoOp, Pattern};

use std::any::Any;

use crate::cluster::Cluster;
use crate::maintenance::{MaintenancePolicy, RebalanceConfig};

/// The wear-leveling policy (see module docs).
#[derive(Debug, Clone, Copy)]
pub struct Rebalance {
    cfg: RebalanceConfig,
}

/// Rotation cursor over the worn node's blocks plus the one-shot
/// before-spread sample flag.
struct RebState {
    cursor: usize,
    sampled: bool,
}

impl Rebalance {
    /// Builds the policy from its configuration.
    pub fn new(cfg: RebalanceConfig) -> Rebalance {
        Rebalance { cfg }
    }
}

impl MaintenancePolicy for Rebalance {
    fn name(&self) -> &'static str {
        "rebalance"
    }

    fn interval_ns(&self, _cl: &Cluster) -> SimTime {
        self.cfg.interval_ns
    }

    fn init_state(&self) -> Box<dyn Any + Send> {
        Box::new(RebState {
            cursor: 0,
            sampled: false,
        })
    }

    fn tick(&self, sim: &mut Sim<Cluster>, cl: &mut Cluster, slot: usize) -> Option<SimTime> {
        let now = sim.now();

        // Mixed fleet: level flash only (see module docs). On uniform
        // fleets every node participates.
        let mixed = (0..cl.cfg.nodes).any(|n| cl.cfg.fleet.is_ssd(n))
            && (0..cl.cfg.nodes).any(|n| !cl.cfg.fleet.is_ssd(n));
        let eligible = |i: usize| !mixed || cl.cfg.fleet.is_ssd(i);

        // Live-fleet wear census; ties break toward the lowest node id
        // so the decision is deterministic.
        let mut max_wear = 0u64;
        let mut worn: Option<usize> = None;
        let mut sum = 0u64;
        let mut live = 0u64;
        for (i, osd) in cl.nodes.iter().enumerate() {
            if osd.failed || !eligible(i) {
                continue;
            }
            let w = osd.disk.wear_bytes();
            sum += w;
            live += 1;
            if worn.is_none() || w > max_wear {
                max_wear = w;
                worn = Some(i);
            }
        }
        let mean = sum as f64 / live.max(1) as f64;

        let (mut cursor, sampled) = {
            let st = cl.maint.slots[slot]
                .downcast_ref::<RebState>()
                .expect("rebalance slot state");
            (st.cursor, st.sampled)
        };
        if !sampled && mean > 0.0 {
            cl.maint.wear_spread_before = max_wear as f64 / mean;
            cl.maint.slots[slot]
                .downcast_mut::<RebState>()
                .expect("rebalance slot state")
                .sampled = true;
        }

        if mean <= 0.0 || (max_wear as f64) <= self.cfg.trigger_ratio * mean {
            return None;
        }
        let worn = worn?;

        // Least-worn live node other than the donor.
        let mut target: Option<usize> = None;
        let mut min_wear = u64::MAX;
        for (i, osd) in cl.nodes.iter().enumerate() {
            if osd.failed || i == worn || !eligible(i) {
                continue;
            }
            let w = osd.disk.wear_bytes();
            if w < min_wear {
                min_wear = w;
                target = Some(i);
            }
        }
        let target = target?;

        let blocks = cl.layout.blocks_on(worn);
        if blocks.is_empty() {
            return None;
        }
        let (addr, dev_off) = blocks[cursor % blocks.len()];
        cursor += 1;
        cl.maint.slots[slot]
            .downcast_mut::<RebState>()
            .expect("rebalance slot state")
            .cursor = cursor;

        let mut span = cl.cfg.block_bytes;
        if !addr.is_data(cl.cfg.code) {
            span += cl.cfg.method.parity_reserved_bytes(&cl.cfg);
        }
        let t_read = cl.disk_io(worn, now, IoOp::read(dev_off, span, Pattern::Sequential));
        let t_net = cl.send_repair(t_read, worn, target, span);
        let new_off = cl.log_offset(target, span);
        let t_write = cl.disk_io(
            target,
            t_net,
            IoOp::write(new_off, span, Pattern::Sequential),
        );
        cl.layout.relocate(addr, target, new_off);
        cl.maint.migrated_bytes += span;
        Some(t_write)
    }
}
