//! Background maintenance: continuous hygiene tasks competing with
//! foreground traffic on the shared simulation timeline.
//!
//! Real EC clusters spend a standing fraction of their I/O budget on
//! maintenance — scrubbing for latent sector errors, wear leveling,
//! tier migration, defragmentation — and that traffic contends with
//! clients on the very same disks, racks, and spines. This module
//! generalises the one-shot repair pump into a policy engine:
//!
//! * [`MaintenancePolicy`] — the object-safe contract a background task
//!   implements: a pacing interval plus a `tick` that books one bounded
//!   unit of work (time-forwarding style, exactly like the repair pump);
//! * [`MaintenancePlan`] — the validated, declarative configuration
//!   carried by [`crate::replay::ReplayConfig`]. An **empty plan is
//!   byte-for-byte the old behaviour**: nothing is armed, no state is
//!   touched, every existing golden holds;
//! * four built-in policies:
//!   [`scrub::Scrub`] (periodic media scan that detects injected latent
//!   sector errors and repairs them through the normal rebuild path),
//!   [`rebalance::Rebalance`] (migrates block extents off the most-worn
//!   device, closing the loop on the observed-only `wear_bytes`
//!   counters), [`demote::Demote`] (the paper's §5.4 insight automated:
//!   parity blocks drain from flash to spindles on mixed fleets), and
//!   [`defrag::Defrag`] (compacts update-fragmented stripes, but only
//!   during idle valleys).
//!
//! Every policy runs under one horizon-bounded scheduler (`tick`):
//! one work item per event, rescheduled at
//! `max(now + interval, completion)`, stopping at the plan horizon so
//! the event loop always drains. Busy spans are recorded in a
//! [`WindowSet`] so the replay engine can attribute foreground latency
//! to maintenance-busy versus maintenance-idle windows.

pub mod defrag;
pub mod demote;
pub mod rebalance;
pub mod scrub;

use std::any::Any;
use std::sync::Arc;

use simdes::stats::WindowSet;
use simdes::units::{MICROS, MILLIS};
use simdes::{Sim, SimTime};
use simdisk::LseModel;

use crate::cluster::Cluster;
use crate::config::{ClusterConfig, ConfigError};

/// Periodic-scrub configuration: a whole-block media read every
/// `block_bytes / bytes_per_sec` of simulated time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScrubConfig {
    /// Scrub rate in bytes of media scanned per simulated second.
    pub bytes_per_sec: u64,
}

impl Default for ScrubConfig {
    fn default() -> Self {
        ScrubConfig {
            bytes_per_sec: 256 << 20,
        }
    }
}

/// Wear-leveling rebalance configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebalanceConfig {
    /// Pacing interval between rebalance decisions.
    pub interval_ns: SimTime,
    /// Migration triggers when `max_wear > trigger_ratio * mean_wear`
    /// across live devices (1.0 = always rebalance, higher = lazier).
    pub trigger_ratio: f64,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        RebalanceConfig {
            interval_ns: 2 * MILLIS,
            trigger_ratio: 1.05,
        }
    }
}

/// Tier-aware demotion configuration (§5.4 automated).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DemoteConfig {
    /// Pacing interval between demotion moves.
    pub interval_ns: SimTime,
    /// Whether synchronous log appends should prefer flash nodes while
    /// the plan is active (TSUE replica placement).
    pub pin_appends: bool,
}

impl Default for DemoteConfig {
    fn default() -> Self {
        DemoteConfig {
            interval_ns: 4 * MILLIS,
            pin_appends: true,
        }
    }
}

/// Lazy-defrag configuration: compaction runs only when the cluster has
/// been idle for at least `idle_ns`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DefragConfig {
    /// Pacing interval between defrag probes.
    pub interval_ns: SimTime,
    /// Minimum time since the last foreground completion before a
    /// compaction is allowed to start (the idle-valley gate).
    pub idle_ns: SimTime,
    /// A data block qualifies once it carries at least this many
    /// distinct applied update ranges.
    pub min_spans: usize,
}

impl Default for DefragConfig {
    fn default() -> Self {
        DefragConfig {
            interval_ns: MILLIS,
            idle_ns: 500 * MICROS,
            min_spans: 3,
        }
    }
}

/// Latent-sector-error injection: how many deterministic error sites to
/// seed per device (see [`simdisk::lse`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LseConfig {
    /// Error sites drawn per device.
    pub per_device: usize,
    /// Base seed; each device mixes in its node id.
    pub seed: u64,
    /// Onsets are drawn in `[0, onset_horizon_ns]`; 0 = all sites are
    /// present from the start.
    pub onset_horizon_ns: SimTime,
    /// Sites land in `[0, span_bytes)` (clamped to the device). The
    /// layout allocates block extents from offset 0 upward, so a span
    /// near the expected placed footprint puts errors *under data* —
    /// at simulation scale a whole-device spray would mostly corrupt
    /// empty media no scrub or rebuild would ever touch.
    pub span_bytes: u64,
}

impl Default for LseConfig {
    fn default() -> Self {
        LseConfig {
            per_device: 2,
            seed: 0x5eed_15e5,
            onset_horizon_ns: 0,
            span_bytes: 64 << 20,
        }
    }
}

/// The validated background-maintenance plan carried by
/// [`crate::replay::ReplayConfig`]. The default (empty) plan arms
/// nothing and reproduces the pre-maintenance engine byte for byte.
///
/// ```
/// use ecfs::maintenance::{MaintenancePlan, ScrubConfig};
///
/// let plan = MaintenancePlan::new().with_scrub(ScrubConfig::default());
/// assert!(!plan.is_empty());
/// assert!(MaintenancePlan::default().is_empty());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MaintenancePlan {
    /// Periodic scrubbing, if enabled.
    pub scrub: Option<ScrubConfig>,
    /// Wear-leveling rebalance, if enabled.
    pub rebalance: Option<RebalanceConfig>,
    /// Tier-aware parity demotion, if enabled.
    pub demote: Option<DemoteConfig>,
    /// Lazy defragmentation, if enabled.
    pub defrag: Option<DefragConfig>,
    /// Latent-sector-error injection, if enabled. An LSE-only plan is
    /// legal: it seeds errors without any policy to find them — the
    /// exposure baseline the scrub policy is measured against.
    pub lse: Option<LseConfig>,
    /// Absolute simulation time (on the update-phase timeline, the same
    /// clock as [`crate::fault::FaultEvent::at_ns`]) past which no
    /// maintenance tick is scheduled. Bounds the event loop.
    pub horizon_ns: SimTime,
}

impl Default for MaintenancePlan {
    fn default() -> Self {
        MaintenancePlan {
            scrub: None,
            rebalance: None,
            demote: None,
            defrag: None,
            lse: None,
            horizon_ns: 80 * MILLIS,
        }
    }
}

impl MaintenancePlan {
    /// An empty plan (current behaviour; nothing armed).
    pub fn new() -> MaintenancePlan {
        MaintenancePlan::default()
    }

    /// All four policies plus LSE injection, at default settings — the
    /// bench's "full hygiene" configuration.
    pub fn full() -> MaintenancePlan {
        MaintenancePlan::new()
            .with_scrub(ScrubConfig::default())
            .with_rebalance(RebalanceConfig::default())
            .with_demote(DemoteConfig::default())
            .with_defrag(DefragConfig::default())
            .with_lse(LseConfig::default())
    }

    /// Enables periodic scrubbing.
    pub fn with_scrub(mut self, cfg: ScrubConfig) -> MaintenancePlan {
        self.scrub = Some(cfg);
        self
    }

    /// Enables wear-leveling rebalance.
    pub fn with_rebalance(mut self, cfg: RebalanceConfig) -> MaintenancePlan {
        self.rebalance = Some(cfg);
        self
    }

    /// Enables tier-aware parity demotion.
    pub fn with_demote(mut self, cfg: DemoteConfig) -> MaintenancePlan {
        self.demote = Some(cfg);
        self
    }

    /// Enables lazy defragmentation.
    pub fn with_defrag(mut self, cfg: DefragConfig) -> MaintenancePlan {
        self.defrag = Some(cfg);
        self
    }

    /// Enables latent-sector-error injection.
    pub fn with_lse(mut self, cfg: LseConfig) -> MaintenancePlan {
        self.lse = Some(cfg);
        self
    }

    /// Sets the scheduling horizon.
    pub fn with_horizon(mut self, horizon_ns: SimTime) -> MaintenancePlan {
        self.horizon_ns = horizon_ns;
        self
    }

    /// Whether the plan enables anything at all.
    pub fn is_empty(&self) -> bool {
        self.scrub.is_none()
            && self.rebalance.is_none()
            && self.demote.is_none()
            && self.defrag.is_none()
            && self.lse.is_none()
    }

    /// Validates the plan against the cluster it will run on.
    pub fn validate(&self, cfg: &ClusterConfig) -> Result<(), ConfigError> {
        if self.is_empty() {
            return Ok(());
        }
        if self.horizon_ns == 0 {
            return Err("maintenance horizon must be non-zero".into());
        }
        if let Some(s) = &self.scrub {
            if s.bytes_per_sec == 0 {
                return Err("scrub rate must be non-zero".into());
            }
        }
        if let Some(r) = &self.rebalance {
            if r.interval_ns == 0 {
                return Err("rebalance interval must be non-zero".into());
            }
            if !r.trigger_ratio.is_finite() || r.trigger_ratio < 1.0 {
                return Err("rebalance trigger ratio must be finite and >= 1.0".into());
            }
        }
        if let Some(d) = &self.demote {
            if d.interval_ns == 0 {
                return Err("demote interval must be non-zero".into());
            }
            let any_ssd = (0..cfg.nodes).any(|n| cfg.fleet.is_ssd(n));
            let any_hdd = (0..cfg.nodes).any(|n| !cfg.fleet.is_ssd(n));
            if !any_ssd || !any_hdd {
                return Err("tier demotion needs a mixed fleet (>=1 SSD and >=1 HDD node)".into());
            }
        }
        if let Some(d) = &self.defrag {
            if d.interval_ns == 0 || d.idle_ns == 0 {
                return Err("defrag interval and idle gate must be non-zero".into());
            }
            if d.min_spans < 2 {
                return Err("defrag min_spans must be >= 2 (1 span is not fragmented)".into());
            }
        }
        if let Some(l) = &self.lse {
            if l.per_device == 0 {
                return Err("LSE injection needs at least one site per device".into());
            }
            if l.span_bytes == 0 {
                return Err("LSE span must be non-zero".into());
            }
        }
        Ok(())
    }
}

/// The object-safe contract for one background-maintenance task.
///
/// Policies are stateless handles; all mutable state lives in a
/// per-policy slot on [`MaintState`] as `Box<dyn Any + Send>` (the
/// same pattern as [`crate::methods::NodeLogState`]). Each `tick`
/// books **one bounded work item** in time-forwarding style on the
/// shared cluster resources and returns its completion time, or `None`
/// when there was nothing to do this round.
pub trait MaintenancePolicy: Send + Sync + std::fmt::Debug {
    /// Display name (used in results and logs).
    fn name(&self) -> &'static str;

    /// Pacing interval between ticks. Takes the cluster so rate-based
    /// policies (scrub) can derive their cadence from block size.
    fn interval_ns(&self, cl: &Cluster) -> SimTime;

    /// Builds the policy's slot state (cursors, dedup sets, ...).
    fn init_state(&self) -> Box<dyn Any + Send>;

    /// Performs one bounded unit of work at `sim.now()`; returns the
    /// completion time of the booked I/O, or `None` for an idle tick.
    fn tick(&self, sim: &mut Sim<Cluster>, cl: &mut Cluster, slot: usize) -> Option<SimTime>;
}

/// Runtime maintenance state, held on [`Cluster`]. `Default` (inactive,
/// all counters zero) is the armed-nothing state every run starts in.
#[derive(Default)]
pub struct MaintState {
    /// Whether a non-empty plan was armed on this run.
    pub active: bool,
    /// Absolute scheduling horizon copied from the plan.
    pub horizon: SimTime,
    /// Per-policy opaque state, indexed by arming order.
    pub slots: Vec<Box<dyn Any + Send>>,
    /// Union of maintenance-busy time spans, for foreground-latency
    /// cost attribution.
    pub windows: WindowSet,
    /// Whether TSUE appends should prefer flash replicas (set by an
    /// armed [`DemoteConfig::pin_appends`]).
    pub pin_appends: bool,
    /// Media bytes scanned by the scrubber.
    pub scrub_bytes: u64,
    /// Whole blocks scanned by the scrubber.
    pub scrub_blocks: u64,
    /// Latent sector errors detected by scrub passes.
    pub lse_found: u64,
    /// Detected errors whose covering block was rebuilt.
    pub lse_repaired: u64,
    /// Bytes migrated by the wear-leveling rebalancer.
    pub migrated_bytes: u64,
    /// Bytes demoted from flash to spindles.
    pub demoted_bytes: u64,
    /// Bytes rewritten by the defragmenter.
    pub defrag_bytes: u64,
    /// Fragmented blocks the defragmenter compacted.
    pub defrag_stripes: u64,
    /// Live-fleet wear spread (max/mean) sampled at the rebalancer's
    /// first sight of non-zero wear — the "before" of before/after.
    pub wear_spread_before: f64,
}

/// Arms a validated non-empty plan on the cluster: installs per-device
/// LSE oracles, sets the append-pinning flag, and schedules the first
/// tick of every enabled policy. Called once by the replay engine at
/// the start of the update phase.
pub(crate) fn arm(sim: &mut Sim<Cluster>, cl: &mut Cluster, plan: &MaintenancePlan) {
    cl.maint.active = true;
    cl.maint.horizon = plan.horizon_ns;
    if let Some(lse) = &plan.lse {
        for node in 0..cl.cfg.nodes {
            let cap = cl.nodes[node].disk.capacity();
            let model = LseModel::seeded(
                lse.seed ^ node as u64,
                lse.span_bytes.min(cap).max(4096),
                lse.per_device,
                lse.onset_horizon_ns,
            );
            cl.nodes[node].disk.install_lse(model);
        }
    }
    cl.maint.pin_appends = plan.demote.as_ref().is_some_and(|d| d.pin_appends);

    let mut policies: Vec<Arc<dyn MaintenancePolicy>> = Vec::new();
    if let Some(c) = plan.scrub {
        policies.push(Arc::new(scrub::Scrub::new(c)));
    }
    if let Some(c) = plan.rebalance {
        policies.push(Arc::new(rebalance::Rebalance::new(c)));
    }
    if let Some(c) = plan.demote {
        policies.push(Arc::new(demote::Demote::new(c)));
    }
    if let Some(c) = plan.defrag {
        policies.push(Arc::new(defrag::Defrag::new(c)));
    }
    for policy in policies {
        let slot = cl.maint.slots.len();
        cl.maint.slots.push(policy.init_state());
        let first = sim.now() + policy.interval_ns(cl).max(1);
        if first < cl.maint.horizon {
            sim.schedule_at(first, move |sim, cl: &mut Cluster| {
                tick(sim, cl, policy, slot);
            });
        }
    }
}

/// One scheduler round for one policy: run its `tick`, record the busy
/// span for cost attribution, and reschedule at
/// `max(now + interval, completion)` — strictly before the horizon so
/// the event loop always drains.
fn tick(sim: &mut Sim<Cluster>, cl: &mut Cluster, policy: Arc<dyn MaintenancePolicy>, slot: usize) {
    let now = sim.now();
    if now >= cl.maint.horizon {
        return;
    }
    let done = policy.tick(sim, cl, slot);
    let mut next = now + policy.interval_ns(cl).max(1);
    if let Some(t) = done {
        if t > now {
            cl.maint.windows.insert(now, t);
            // One background lane per policy slot: the busy window the
            // cost-attribution split uses, visible in the trace too.
            cl.trace_child(crate::telemetry::Stage::Maintenance, slot, now, t);
        }
        next = next.max(t);
    }
    if next < cl.maint.horizon {
        sim.schedule_at(next, move |sim, cl: &mut Cluster| {
            tick(sim, cl, policy, slot);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MethodKind;
    use rscode::CodeParams;

    fn cfg() -> ClusterConfig {
        ClusterConfig::ssd_testbed(CodeParams::new(6, 3).unwrap(), MethodKind::Tsue)
    }

    #[test]
    fn empty_plan_is_valid_and_empty() {
        let plan = MaintenancePlan::default();
        assert!(plan.is_empty());
        assert!(plan.validate(&cfg()).is_ok());
        // Even a zero horizon is fine when nothing is armed.
        assert!(plan.clone().with_horizon(0).validate(&cfg()).is_ok());
    }

    #[test]
    fn builders_accumulate() {
        let plan = MaintenancePlan::full();
        assert!(plan.scrub.is_some());
        assert!(plan.rebalance.is_some());
        assert!(plan.demote.is_some());
        assert!(plan.defrag.is_some());
        assert!(plan.lse.is_some());
        assert!(!plan.is_empty());
    }

    #[test]
    fn zero_horizon_rejected_when_armed() {
        let plan = MaintenancePlan::new()
            .with_scrub(ScrubConfig::default())
            .with_horizon(0);
        assert!(plan.validate(&cfg()).is_err());
    }

    #[test]
    fn zero_scrub_rate_rejected() {
        let plan = MaintenancePlan::new().with_scrub(ScrubConfig { bytes_per_sec: 0 });
        assert!(plan.validate(&cfg()).is_err());
    }

    #[test]
    fn bad_trigger_ratio_rejected() {
        let bad = RebalanceConfig {
            trigger_ratio: 0.5,
            ..RebalanceConfig::default()
        };
        let plan = MaintenancePlan::new().with_rebalance(bad);
        assert!(plan.validate(&cfg()).is_err());
        let nan = RebalanceConfig {
            trigger_ratio: f64::NAN,
            ..RebalanceConfig::default()
        };
        assert!(MaintenancePlan::new()
            .with_rebalance(nan)
            .validate(&cfg())
            .is_err());
    }

    #[test]
    fn demote_requires_mixed_fleet() {
        let plan = MaintenancePlan::new().with_demote(DemoteConfig::default());
        // ssd_testbed is a uniform all-SSD fleet: no spindles to demote to.
        assert!(plan.validate(&cfg()).is_err());
        let mut mixed = cfg();
        mixed.fleet = crate::fleet::DiskFleet::tiered(8, 8);
        assert!(plan.validate(&mixed).is_ok());
    }

    #[test]
    fn defrag_and_lse_bounds_rejected() {
        let d = DefragConfig {
            min_spans: 1,
            ..DefragConfig::default()
        };
        assert!(MaintenancePlan::new()
            .with_defrag(d)
            .validate(&cfg())
            .is_err());
        let l = LseConfig {
            per_device: 0,
            ..LseConfig::default()
        };
        assert!(MaintenancePlan::new().with_lse(l).validate(&cfg()).is_err());
    }
}
