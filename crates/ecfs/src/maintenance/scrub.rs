//! Periodic scrubbing: sweep the placed blocks at a configured media
//! rate, detect latent sector errors against the per-device LSE oracle,
//! and repair hits through the normal `crate::recovery::rebuild_block`
//! path.
//!
//! The scrubber is the canary the LSE model exists for: field studies
//! show latent errors are only ever *found by reads*, so a cluster that
//! never scrubs discovers them at the worst possible moment — during a
//! rebuild, when the stripe has already lost a block. Each tick reads
//! one whole block (sequential, competing with foreground traffic on
//! the same device queue); when the read crosses an onset error site
//! the block is decoded from `k` survivors and rewritten, and the site
//! is marked repaired.

use simdes::units::SECS;
use simdes::{Sim, SimTime};
use simdisk::{IoOp, Pattern};

use std::any::Any;

use crate::cluster::Cluster;
use crate::maintenance::{MaintenancePolicy, ScrubConfig};

/// The periodic-scrub policy (see module docs).
#[derive(Debug, Clone, Copy)]
pub struct Scrub {
    cfg: ScrubConfig,
}

/// Round-robin position over (node, block index).
struct Cursor {
    node: usize,
    idx: usize,
}

impl Scrub {
    /// Builds the policy from its configuration.
    pub fn new(cfg: ScrubConfig) -> Scrub {
        Scrub { cfg }
    }
}

impl MaintenancePolicy for Scrub {
    fn name(&self) -> &'static str {
        "scrub"
    }

    fn interval_ns(&self, cl: &Cluster) -> SimTime {
        // One block per tick at `bytes_per_sec` of scanned media.
        (cl.cfg.block_bytes * SECS / self.cfg.bytes_per_sec.max(1)).max(1)
    }

    fn init_state(&self) -> Box<dyn Any + Send> {
        Box::new(Cursor { node: 0, idx: 0 })
    }

    fn tick(&self, sim: &mut Sim<Cluster>, cl: &mut Cluster, slot: usize) -> Option<SimTime> {
        let now = sim.now();
        let n = cl.cfg.nodes;
        let block_bytes = cl.cfg.block_bytes;
        let (mut node, mut idx) = {
            let c = cl.maint.slots[slot]
                .downcast_ref::<Cursor>()
                .expect("scrub slot state");
            (c.node, c.idx)
        };

        // Find the next placed block at or after the cursor, skipping
        // failed nodes and exhausted ones.
        let mut hops = 0;
        let pick = loop {
            if hops > n {
                break None;
            }
            if cl.nodes[node].failed {
                node = (node + 1) % n;
                idx = 0;
                hops += 1;
                continue;
            }
            let blocks = cl.layout.blocks_on(node);
            if idx >= blocks.len() {
                node = (node + 1) % n;
                idx = 0;
                hops += 1;
                continue;
            }
            break Some(blocks[idx]);
        };

        let result = pick.map(|(addr, dev_off)| {
            let t_read = cl.disk_io(
                node,
                now,
                IoOp::read(dev_off, block_bytes, Pattern::Sequential),
            );
            cl.maint.scrub_bytes += block_bytes;
            cl.maint.scrub_blocks += 1;
            let found = cl.nodes[node].disk.scrub_lse(now, dev_off, block_bytes);
            let mut done = t_read;
            if found > 0 {
                cl.maint.lse_found += found as u64;
                // Repair through the ordinary rebuild path: decode from
                // k survivors, rewrite (the layout may re-home the
                // block), then mark the old extent's sites repaired.
                if let Ok(t_rebuilt) = crate::recovery::rebuild_block(cl, addr, t_read) {
                    let cleared = cl.nodes[node].disk.clear_lse(dev_off, block_bytes);
                    cl.maint.lse_repaired += cleared as u64;
                    done = t_rebuilt;
                }
            }
            idx += 1;
            done
        });

        let c = cl.maint.slots[slot]
            .downcast_mut::<Cursor>()
            .expect("scrub slot state");
        c.node = node;
        c.idx = idx;
        result
    }
}
