//! Trace replay: closed-loop clients driving the cluster, the open-loop
//! offered-load engine, and the measurement harvest every benchmark
//! consumes.

use simdes::stats::SampleLog;
use simdes::{Sim, SimTime};
use std::collections::VecDeque;

use traces::{OpKind, TraceFamily, WorkloadGen, WorkloadParams};
use workload::{OpenLoopSpec, TimedStream};

use crate::cluster::{Cluster, OpSource, OpenLoopRt};
use crate::config::ClusterConfig;
use crate::fault::FaultPlan;
use crate::maintenance::{self, MaintenancePlan};
use crate::methods::{self, UpdateCtx};
use crate::recovery;
use crate::telemetry::{StageRow, Trace, TraceConfig};

/// Goodput below this fraction of the offered rate marks a run saturated —
/// provided the admission queues actually backed up (at least one full
/// window population waiting at peak): the cluster fell behind the
/// schedule instead of riding it. The backlog condition keeps the flag off
/// for short streams whose completion tail alone depresses the ratio.
pub const SATURATION_GOODPUT_RATIO: f64 = 0.9;

/// How the replay offers load to the cluster.
#[derive(Debug, Clone, Default)]
pub enum Workload {
    /// Closed loop (the paper's client model and the default): each client
    /// issues its next op the instant the previous one completes. This
    /// path is byte-for-byte the pre-open-loop replay.
    #[default]
    ClosedLoop,
    /// Open loop: ops arrive on the spec's own schedule whether or not
    /// earlier ops finished; each client holds at most `spec.window` ops
    /// outstanding and queues the rest at admission.
    Open(OpenLoopSpec),
    /// Open-loop replay of a pre-built timed stream — e.g. an imported
    /// MSR/Alibaba trace with its *real* arrival times.
    Timed {
        /// The offered ops, time-sorted.
        stream: TimedStream,
        /// Per-client outstanding-op window.
        window: usize,
    },
}

impl Workload {
    /// Whether this is the closed-loop default.
    pub fn is_closed_loop(&self) -> bool {
        matches!(self, Workload::ClosedLoop)
    }
}

/// Replay parameters.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// Cluster under test.
    pub cluster: ClusterConfig,
    /// Trace family to synthesise.
    pub family: TraceFamily,
    /// Operations each client issues.
    pub ops_per_client: usize,
    /// Total ops an open-loop spec offers. `None` (the default) offers
    /// `clients × ops_per_client`, matching the closed loop's volume.
    /// `Some(n)` decouples the offered-op count from the population — the
    /// scale sweep holds `n` fixed while growing clients to a million, so
    /// runtime cost tracks the offered load, not the id space. Ignored on
    /// the closed-loop and timed paths.
    pub total_ops: Option<u64>,
    /// Logical volume size per client.
    pub volume_bytes: u64,
    /// Base RNG seed (client `c` uses `seed + c`).
    pub seed: u64,
    /// Scheduled mid-replay failures and the repair policy. The default
    /// (empty) plan reproduces the pre-fault-timeline replay byte for
    /// byte.
    pub faults: FaultPlan,
    /// How load is offered: the closed-loop default (byte-for-byte the
    /// legacy replay) or an open-loop source.
    pub workload: Workload,
    /// Background maintenance to run alongside the foreground traffic.
    /// The default (empty) plan arms nothing and reproduces the
    /// maintenance-free replay byte for byte.
    pub maintenance: MaintenancePlan,
    /// Engine shards for the update phase. `1` (the default) is the
    /// serial event loop; `>= 2` runs the same replay on the sharded
    /// engine ([`crate::shard`]) with **byte-for-byte identical results**
    /// — shard 1 carries telemetry, shards 2.. carry oracle partitions.
    pub shards: usize,
    /// Deterministic tracing. The default (off) arms nothing and
    /// reproduces the untraced replay byte for byte; when enabled the run
    /// records per-op lifecycle spans, the stage-attribution rollup
    /// (`RunResult::stage_breakdown`), and utilization lanes — identical
    /// between serial and sharded runs of the same cell.
    pub trace: TraceConfig,
}

impl ReplayConfig {
    /// Defaults matching the paper's scale, shrunk to simulation size.
    pub fn new(cluster: ClusterConfig, family: TraceFamily) -> ReplayConfig {
        ReplayConfig {
            cluster,
            family,
            ops_per_client: 2_000,
            total_ops: None,
            volume_bytes: 256 << 20,
            seed: 0x7565_7374,
            faults: FaultPlan::default(),
            workload: Workload::ClosedLoop,
            maintenance: MaintenancePlan::default(),
            shards: 1,
            trace: TraceConfig::default(),
        }
    }

    /// A builder over [`Self::new`]'s defaults with fail-fast validation.
    ///
    /// ```
    /// use ecfs::{ClusterConfig, MethodKind, ReplayConfig};
    /// use rscode::CodeParams;
    /// use traces::TraceFamily;
    ///
    /// let cluster = ClusterConfig::ssd_testbed(
    ///     CodeParams::new(6, 3).unwrap(),
    ///     MethodKind::Tsue,
    /// );
    /// let rcfg = ReplayConfig::builder(cluster, TraceFamily::AliCloud)
    ///     .ops_per_client(500)
    ///     .volume_bytes(64 << 20)
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(rcfg.ops_per_client, 500);
    /// ```
    pub fn builder(cluster: ClusterConfig, family: TraceFamily) -> ReplayConfigBuilder {
        ReplayConfigBuilder {
            inner: ReplayConfig::new(cluster, family),
        }
    }

    /// Validates the replay parameters and the embedded cluster config.
    pub fn validate(&self) -> Result<(), crate::config::ConfigError> {
        self.cluster.validate()?;
        if self.ops_per_client == 0 {
            return Err("ops_per_client must be positive".into());
        }
        if self.total_ops == Some(0) {
            return Err("total_ops must be positive when set".into());
        }
        // The workload generator needs at least 16 slots of 4 KiB.
        if self.volume_bytes < 16 * 4096 {
            return Err(crate::config::ConfigError(format!(
                "volume_bytes = {} is below the 64 KiB workload minimum",
                self.volume_bytes
            )));
        }
        if self.shards == 0 {
            return Err("shards must be >= 1 (1 = the serial engine)".into());
        }
        self.faults.validate(&self.cluster)?;
        self.maintenance.validate(&self.cluster)?;
        self.trace.validate().map_err(crate::config::ConfigError)?;
        match &self.workload {
            Workload::ClosedLoop => {}
            Workload::Open(spec) => spec.validate().map_err(crate::config::ConfigError)?,
            Workload::Timed { stream, window } => {
                if *window == 0 {
                    return Err("open-loop window must admit at least one op".into());
                }
                stream
                    .validate(self.cluster.clients, self.volume_bytes)
                    .map_err(crate::config::ConfigError)?;
            }
        }
        Ok(())
    }
}

/// Builder for [`ReplayConfig`] (see [`ReplayConfig::builder`]).
#[derive(Debug, Clone)]
pub struct ReplayConfigBuilder {
    inner: ReplayConfig,
}

impl ReplayConfigBuilder {
    /// Operations each client issues.
    pub fn ops_per_client(mut self, ops: usize) -> Self {
        self.inner.ops_per_client = ops;
        self
    }

    /// Total ops an open-loop spec offers, decoupled from the population
    /// (see [`ReplayConfig::total_ops`]).
    ///
    /// ```
    /// use ecfs::prelude::*;
    ///
    /// let cluster = ClusterConfig::ssd_testbed(
    ///     CodeParams::new(6, 3).unwrap(),
    ///     MethodKind::Tsue,
    /// );
    /// let rcfg = ReplayConfig::builder(cluster, TraceFamily::AliCloud)
    ///     .workload(Workload::Open(OpenLoopSpec::poisson(20_000.0)))
    ///     .total_ops(5_000)
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(rcfg.total_ops, Some(5_000));
    /// ```
    pub fn total_ops(mut self, ops: u64) -> Self {
        self.inner.total_ops = Some(ops);
        self
    }

    /// Logical volume size per client.
    pub fn volume_bytes(mut self, bytes: u64) -> Self {
        self.inner.volume_bytes = bytes;
        self
    }

    /// Base RNG seed (client `c` uses `seed + c`).
    pub fn seed(mut self, seed: u64) -> Self {
        self.inner.seed = seed;
        self
    }

    /// Scheduled mid-replay failures and the repair policy.
    ///
    /// ```
    /// use ecfs::prelude::*;
    ///
    /// let cluster = ClusterConfig::ssd_testbed(
    ///     CodeParams::new(6, 3).unwrap(),
    ///     MethodKind::Tsue,
    /// );
    /// let rcfg = ReplayConfig::builder(cluster, TraceFamily::AliCloud)
    ///     .faults(FaultPlan::new().fail_node(10_000_000, 3))
    ///     .build()
    ///     .unwrap();
    /// assert!(!rcfg.faults.is_empty());
    /// ```
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.inner.faults = plan;
        self
    }

    /// Background maintenance to run alongside the foreground traffic.
    ///
    /// ```
    /// use ecfs::prelude::*;
    ///
    /// let cluster = ClusterConfig::ssd_testbed(
    ///     CodeParams::new(6, 3).unwrap(),
    ///     MethodKind::Tsue,
    /// );
    /// let rcfg = ReplayConfig::builder(cluster, TraceFamily::AliCloud)
    ///     .maintenance(MaintenancePlan::new().with_scrub(ScrubConfig::default()))
    ///     .build()
    ///     .unwrap();
    /// assert!(!rcfg.maintenance.is_empty());
    /// ```
    pub fn maintenance(mut self, plan: MaintenancePlan) -> Self {
        self.inner.maintenance = plan;
        self
    }

    /// Engine shards for the update phase (`1` = serial; `>= 2` = the
    /// sharded engine with byte-identical results).
    ///
    /// ```
    /// use ecfs::{ClusterConfig, MethodKind, ReplayConfig};
    /// use rscode::CodeParams;
    /// use traces::TraceFamily;
    ///
    /// let cluster = ClusterConfig::ssd_testbed(CodeParams::new(6, 3).unwrap(), MethodKind::Tsue);
    /// let rcfg = ReplayConfig::builder(cluster, TraceFamily::AliCloud)
    ///     .shards(4)
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(rcfg.shards, 4);
    /// ```
    pub fn shards(mut self, shards: usize) -> Self {
        self.inner.shards = shards;
        self
    }

    /// Deterministic tracing (off by default).
    ///
    /// ```
    /// use ecfs::prelude::*;
    ///
    /// let cluster = ClusterConfig::ssd_testbed(
    ///     CodeParams::new(6, 3).unwrap(),
    ///     MethodKind::Tsue,
    /// );
    /// let rcfg = ReplayConfig::builder(cluster, TraceFamily::AliCloud)
    ///     .trace(TraceConfig::on())
    ///     .build()
    ///     .unwrap();
    /// assert!(rcfg.trace.enabled);
    /// ```
    pub fn trace(mut self, trace: TraceConfig) -> Self {
        self.inner.trace = trace;
        self
    }

    /// How load is offered (closed loop, an open-loop spec, or a timed
    /// stream).
    ///
    /// ```
    /// use ecfs::prelude::*;
    ///
    /// let cluster = ClusterConfig::ssd_testbed(
    ///     CodeParams::new(6, 3).unwrap(),
    ///     MethodKind::Tsue,
    /// );
    /// let rcfg = ReplayConfig::builder(cluster, TraceFamily::AliCloud)
    ///     .workload(Workload::Open(OpenLoopSpec::poisson(20_000.0)))
    ///     .build()
    ///     .unwrap();
    /// assert!(!rcfg.workload.is_closed_loop());
    /// ```
    pub fn workload(mut self, workload: Workload) -> Self {
        self.inner.workload = workload;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<ReplayConfig, crate::config::ConfigError> {
        self.inner.validate()?;
        Ok(self.inner)
    }
}

/// Residency summary for one log layer (Table 2 row).
#[derive(Debug, Clone, Copy, Default)]
pub struct ResidencySummary {
    /// Mean append time (µs).
    pub append_us: f64,
    /// Mean buffered time (µs).
    pub buffer_us: f64,
    /// Mean recycle time (µs).
    pub recycle_us: f64,
}

impl ResidencySummary {
    fn from_layer(l: &crate::cluster::LayerResidency) -> ResidencySummary {
        ResidencySummary {
            append_us: l.append.mean() / 1_000.0,
            buffer_us: l.buffer.mean() / 1_000.0,
            recycle_us: l.recycle.mean() / 1_000.0,
        }
    }

    /// Total mean residency (µs).
    pub fn total_us(&self) -> f64 {
        self.append_us + self.buffer_us + self.recycle_us
    }
}

/// Everything a benchmark needs from one replay.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Display name of the method under test.
    pub method: String,
    /// Updates acknowledged.
    pub completed_updates: u64,
    /// Reads completed.
    pub completed_reads: u64,
    /// Fresh writes completed.
    pub completed_writes: u64,
    /// Simulated seconds from first issue to last client completion.
    pub duration_s: f64,
    /// Aggregate update throughput (client-acked updates per second).
    pub update_iops: f64,
    /// Mean client-observed update latency (µs).
    pub latency_mean_us: f64,
    /// p99 update latency (µs, bucket upper bound).
    pub latency_p99_us: f64,
    /// Cluster-aggregated device statistics.
    pub disk: simdisk::DeviceStats,
    /// Network traffic (GiB).
    pub net_gib: f64,
    /// Traffic that crossed the spine (GiB); zero on a flat topology.
    pub net_cross_rack_gib: f64,
    /// Network messages.
    pub net_msgs: u64,
    /// Total NAND erases.
    pub erases: u64,
    /// Update completions per second over time (Fig. 6a series).
    pub series: Vec<(f64, f64)>,
    /// Log memory footprint at end of run (bytes).
    pub log_memory_bytes: u64,
    /// DataLog residency.
    pub data_residency: ResidencySummary,
    /// DeltaLog residency.
    pub delta_residency: ResidencySummary,
    /// ParityLog residency.
    pub parity_residency: ResidencySummary,
    /// Client ops that hit log back-pressure.
    pub stalls: u64,
    /// Reads served from log caches.
    pub cache_read_hits: u64,
    /// Reads checked against a node-local cache decorator
    /// ([`crate::cache`]); 0 unless a cache/staging layer is armed.
    pub cache_lookups: u64,
    /// Reads served from the node-local cache decorator (no disk, no
    /// delegation to the wrapped method).
    pub cache_hits: u64,
    /// [`Self::cache_hits`] over [`Self::cache_lookups`] (0.0 when no
    /// lookups happened).
    pub cache_hit_ratio: f64,
    /// Update bytes absorbed into write-staging buffers.
    pub staged_bytes: u64,
    /// Staged bytes that overlapped already-staged ranges — downstream
    /// work the coalescing buffer absorbed outright.
    pub coalesced_bytes: u64,
    /// Staged-buffer flush events (size, age, or drain triggered).
    pub stage_flushes: u64,
    /// Seconds spent draining logs after the run.
    pub drain_s: f64,
    /// Consistency-oracle violations (must be 0).
    pub oracle_violations: usize,
    /// Reads served by decoding the lost block from `k` survivors.
    pub degraded_reads: u64,
    /// Bytes produced by degraded-read decoding.
    pub degraded_bytes_decoded: u64,
    /// Ops aborted because their stripe lost more than `m` blocks (EIO).
    pub failed_ops: u64,
    /// Blocks rebuilt inline by the degraded write path.
    pub inline_rebuilds: u64,
    /// Blocks rebuilt by the background repair scheduler.
    pub repaired_blocks: u64,
    /// Bytes rebuilt by the background repair scheduler.
    pub repaired_bytes: u64,
    /// Lost blocks that could not be rebuilt (data loss).
    pub data_loss_blocks: u64,
    /// Fabric traffic carried for repair flows (GiB).
    pub net_repair_gib: f64,
    /// Worst failure-to-repair-completion time over the fault plan,
    /// seconds (0 without faults).
    pub mttr_s: f64,
    /// p99 update latency (µs) *inside* degraded windows — between a
    /// failure and the end of its repair. 0 without faults.
    pub degraded_p99_us: f64,
    /// p99 update latency (µs) outside degraded windows. Equals
    /// [`Self::latency_p99_us`] without faults.
    pub steady_p99_us: f64,
    /// p99 client-observed read latency (µs), degraded decodes included.
    pub read_p99_us: f64,
    /// p99 read latency (µs) inside degraded windows — the availability
    /// SLO a fault sweep reports. 0 without faults.
    pub degraded_read_p99_us: f64,
    /// p99 read latency (µs) outside degraded windows. Equals
    /// [`Self::read_p99_us`] without faults.
    pub steady_read_p99_us: f64,
    /// Ops the open-loop schedule offered (0 on the closed-loop path).
    pub offered_ops: u64,
    /// Offered arrival rate over the schedule horizon (ops/s; 0 on the
    /// closed-loop path).
    pub offered_ops_per_s: f64,
    /// Client-acked ops per second over the full run — the goodput an
    /// open-loop sweep compares against the offered rate.
    pub goodput_ops_per_s: f64,
    /// Mean admission-queue delay (µs; open loop only, 0 otherwise).
    pub queue_delay_mean_us: f64,
    /// p99 admission-queue delay (µs; open loop only). This is the
    /// queueing-collapse signature: it explodes past the saturation knee.
    pub queue_delay_p99_us: f64,
    /// Peak total admission-queue depth across all clients.
    pub peak_queue_depth: u64,
    /// Whether the offered load exceeded sustainable throughput: goodput
    /// fell below [`SATURATION_GOODPUT_RATIO`] of the offered rate *and*
    /// the admission queues backed up past one full window of the peak
    /// active set.
    pub saturated: bool,
    /// Peak number of concurrently *active* open-loop clients — clients
    /// holding at least one op outstanding or admitted. Tracks the window
    /// math (offered rate × service time), not the configured population:
    /// a million-client run at a fixed offered rate peaks at the same
    /// active set as a thousand-client one. 0 on the closed-loop path.
    pub active_clients_peak: u64,
    /// Resident bytes of per-client open-loop runtime state at peak,
    /// counted from measured peaks × exact struct sizes (sparse window
    /// maps plus queued-op content). O(active clients), not
    /// O(population). 0 on the closed-loop path.
    pub client_state_bytes: u64,
    /// Resident bytes held by the workload source itself: lazy generator
    /// state scales with *distinct touched* clients; a pre-materialised
    /// timed stream holds all its ops. 0 on the closed-loop path.
    pub workload_state_bytes: u64,
    /// Highest per-disk fill fraction (block bytes placed / capacity) —
    /// the disk that would run out of space first. On a heterogeneous
    /// fleet this is what capacity-weighted placement exists to flatten.
    pub disk_fill_max: f64,
    /// Lowest per-disk fill fraction.
    pub disk_fill_min: f64,
    /// Bytes physically written to the most-worn disk (the fleet wear
    /// high-water; see [`simdisk::DeviceStats::wear_bytes`]).
    pub wear_max_bytes: u64,
    /// Most-worn disk's wear over the fleet mean (1.0 = perfectly even;
    /// 0.0 when nothing was written).
    pub wear_spread: f64,
    /// Distinct stripe co-location sets the run left behind
    /// ([`crate::layout::Layout::distinct_copysets`]) — bounded by the
    /// budget under a [`crate::placement::Copyset`] policy (modulo rebuild
    /// relocations), stripe-count-scale under rotation placements.
    pub copysets_used: usize,
    /// Media GiB scanned by the scrub policy (0 when no plan armed).
    pub scrub_gib: f64,
    /// Latent sector errors injected across the fleet.
    pub lse_injected: u64,
    /// Injected errors a scrub pass detected.
    pub lse_found: u64,
    /// Detected errors whose covering block was rebuilt from redundancy
    /// — `lse_injected - lse_repaired` is the exposure a correlated
    /// failure would turn into data loss.
    pub lse_repaired: u64,
    /// GiB migrated by wear-leveling rebalance plus tier demotion.
    pub maint_migrated_gib: f64,
    /// GiB rewritten by the lazy defragmenter.
    pub defrag_gib: f64,
    /// Live-fleet wear spread (max/mean) at the rebalancer's first
    /// non-zero sample — compare against the end-of-run
    /// [`RunResult::wear_spread`] for the before/after story.
    pub wear_spread_before: f64,
    /// Foreground update p99 (µs) inside maintenance-busy windows —
    /// the latency cost attribution of "free" background hygiene.
    pub maint_busy_p99_us: f64,
    /// Foreground update p99 (µs) outside maintenance-busy windows.
    pub maint_idle_p99_us: f64,
    /// Per-stage latency attribution: one row per `(op class, stage)`
    /// observed while tracing was armed, in canonical (class, stage id)
    /// order. Empty when [`ReplayConfig::trace`] is off. The rollup sees
    /// **every** op regardless of the trace sampling/filter knobs, so
    /// `sum(total_us)` over Update rows divided by their span count
    /// reconciles with `latency_mean_us`. (The rollup counts per *slice*,
    /// like the latency histogram — a rare multi-block op contributes one
    /// traced completion per 4 MiB slice, while `completed_updates`
    /// counts the client op once.)
    pub stage_breakdown: Vec<StageRow>,
    /// Spans discarded because the trace ring filled
    /// ([`TraceConfig::capacity`]). Sampling and filter exclusions are
    /// *not* drops — this is honest data loss only.
    pub trace_dropped_spans: u64,
    /// Simulation events executed by the (core) event loop — identical
    /// between serial and sharded runs of the same cell.
    pub sim_events: u64,
    /// Wall-clock milliseconds the replay took (build → harvest).
    /// Nondeterministic, along with [`Self::events_per_sec`] and
    /// [`Self::setup_ms`] — equality tests must exclude all three.
    pub wall_ms: f64,
    /// Engine speed: simulation events per wall-clock second.
    pub events_per_sec: f64,
    /// Wall-clock milliseconds spent building the cluster and installing
    /// the workload, before the first event ran. The scale sweep's
    /// setup-cost axis. Nondeterministic like [`Self::wall_ms`].
    pub setup_ms: f64,
}

impl RunResult {
    /// Lifespan multiplier vs a baseline erase count (paper §5.3.4).
    pub fn lifespan_vs(&self, baseline_erases: u64) -> f64 {
        if self.erases == 0 {
            baseline_erases.max(1) as f64
        } else {
            baseline_erases as f64 / self.erases as f64
        }
    }
}

fn client_next(sim: &mut Sim<Cluster>, cl: &mut Cluster, client: u64) {
    issue_next_op(sim, cl, client, sim.now());
}

/// Pops and issues `client`'s next op. `issued_at` anchors the
/// client-observed latency: on the closed loop it is always `sim.now()`;
/// on the open loop it is the op's *arrival* time, so admission-queue
/// delay lands in the latency the client sees.
fn issue_next_op(sim: &mut Sim<Cluster>, cl: &mut Cluster, client: u64, issued_at: SimTime) {
    let Some(queue) = cl.client_ops.get_mut(&client) else {
        return; // this client is done
    };
    let Some((offset, len, kind)) = queue.pop_front() else {
        return; // this client is done
    };
    if queue.is_empty() {
        // Sparse invariant: drained queues leave the map, so resident
        // op-content state never exceeds the concurrently active set.
        cl.client_ops.remove(&client);
    }
    let now = sim.now();
    let slices = cl.layout.slices(client as u32, offset, len);
    // Multi-block ops are issued as their first slice only for latency
    // accounting; the remaining slices are issued concurrently and complete
    // in the background (rare: ops cross 4 MiB boundaries). `ctx.drive`
    // marks the driving slice, so a background slice never advances the
    // closed loop — even when its dispatch is deferred by a park or a
    // degraded-path rebuild.
    for (i, slice) in slices.into_iter().enumerate() {
        let mut ctx = UpdateCtx::new(client, slice, now);
        ctx.issued_at = issued_at;
        ctx.drive = i == 0;
        // Background slices are counted once per op: the completion-side
        // increment is cancelled here at issue. Wrapping because a parked
        // or degraded-deferred dispatch completes *later* — the transient
        // dip below zero corrects itself at that completion.
        match kind {
            OpKind::Update => {
                methods::begin_update(sim, cl, ctx);
                if i > 0 {
                    cl.metrics.completed_updates = cl.metrics.completed_updates.wrapping_sub(1);
                }
            }
            OpKind::Write => {
                methods::begin_write(sim, cl, ctx);
                if i > 0 {
                    cl.metrics.completed_writes = cl.metrics.completed_writes.wrapping_sub(1);
                }
            }
            OpKind::Read => {
                methods::begin_read(sim, cl, ctx);
                if i > 0 {
                    cl.metrics.completed_reads = cl.metrics.completed_reads.wrapping_sub(1);
                }
            }
        }
    }
}

/// One op's delivery on the open loop: account it as offered, pull the
/// *next* op from the source (scheduling its delivery — the calendar holds
/// at most one future arrival at a time), then admit this op — issue
/// immediately while the client's outstanding window has room, otherwise
/// wait in the admission queue (the wait is the measured queue delay).
/// Window state is materialised here, on a client's first arrival.
fn open_loop_deliver(sim: &mut Sim<Cluster>, cl: &mut Cluster, _u: u64) {
    let now = sim.now();
    let ol = cl.open_loop.as_mut().expect("open-loop replay state");
    let t = ol
        .pending
        .take()
        .expect("delivery event fired without a pending op");
    ol.offered += 1;
    ol.horizon = ol.horizon.max(t.op.at_ns);
    if let Some(next) = ol.source.next_op() {
        let at = next.op.at_ns;
        ol.pending = Some(next);
        sim.schedule_call_u_at(at, open_loop_deliver, 0);
    }
    let client = t.client;
    if !ol.active.contains_key(&client) {
        ol.active_clients.inc();
    }
    let window = ol.window;
    let cw = ol.active.entry(client).or_default();
    // Window room implies an empty admission queue (admissions only grow
    // while the window is full, and completions drain them first), so an
    // immediately-issued op always issues its own content.
    let admit = cw.outstanding < window;
    if admit {
        cw.outstanding += 1;
        ol.queue_delay.record(0);
    } else {
        cw.admission.push_back(now);
        ol.queue_depth.inc();
    }
    cl.client_ops
        .entry(client)
        .or_default()
        .push_back((t.op.offset, t.op.len, t.op.kind));
    if admit {
        issue_next_op(sim, cl, client, now);
    }
}

/// Completion driver on the open loop: admit the client's oldest queued
/// arrival (charging its queue delay), or shrink the outstanding count
/// when the queue is empty — retiring the client's window state entirely
/// once it drains, which is what keeps the runtime O(active clients).
fn open_loop_next(sim: &mut Sim<Cluster>, cl: &mut Cluster, client: u64) {
    let now = sim.now();
    let ol = cl.open_loop.as_mut().expect("open-loop replay state");
    let Some(cw) = ol.active.get_mut(&client) else {
        return; // already retired (defensive: mirrors the old saturating_sub)
    };
    match cw.admission.pop_front() {
        Some(arrived) => {
            ol.queue_depth.dec();
            ol.queue_delay.record(now.saturating_sub(arrived));
            issue_next_op(sim, cl, client, arrived);
        }
        None => {
            cw.outstanding = cw.outstanding.saturating_sub(1);
            if cw.outstanding == 0 {
                ol.active.remove(&client);
                ol.active_clients.dec();
            }
        }
    }
}

/// Installs an open-loop op source into the cluster: the completion
/// driver, the sparse window/queue state, and the *first* delivery event.
/// Deliveries then self-schedule (pull one ahead), so neither the event
/// calendar nor the cluster ever materialises the schedule — resident
/// state is O(concurrently active clients) regardless of population or
/// schedule length.
fn install_source(sim: &mut Sim<Cluster>, cl: &mut Cluster, source: OpSource, window: usize) {
    cl.client_ops = std::collections::HashMap::new();
    cl.client_driver = Some(open_loop_next);
    let mut ol = OpenLoopRt::new(cl.cfg.clients, window, source);
    if let Some(first) = ol.source.next_op() {
        let at = first.op.at_ns;
        ol.pending = Some(first);
        sim.schedule_call_u_at(at, open_loop_deliver, 0);
    }
    cl.open_loop = Some(ol);
}

/// Runs only the update phase: builds the cluster, offers every client's
/// trace (closed-loop by default, open-loop when
/// [`ReplayConfig::workload`] says so) to completion, and returns the
/// live `(sim, cluster)` pair *without draining logs* — the starting
/// state for recovery experiments (Fig. 8b fails a node exactly here).
pub fn run_update_phase(rcfg: &ReplayConfig) -> (Sim<Cluster>, Cluster) {
    let setup_start = std::time::Instant::now();
    let mut cl = Cluster::new(rcfg.cluster.clone());
    let mut sim: Sim<Cluster> = Sim::new();

    match &rcfg.workload {
        Workload::ClosedLoop => {
            // Generate each client's op stream up front (deterministic).
            // The closed loop is inherently O(population): every client
            // issues continuously, so there is no sparse win to chase.
            for c in 0..rcfg.cluster.clients {
                let params = WorkloadParams::for_family(rcfg.family, rcfg.volume_bytes);
                let mut gen = WorkloadGen::new(params, rcfg.seed + c);
                let ops: VecDeque<(u64, u32, OpKind)> = gen
                    .take_ops(rcfg.ops_per_client)
                    .into_iter()
                    .map(|op| (op.offset, op.len, op.kind))
                    .collect();
                cl.client_ops.insert(c, ops);
            }
            cl.client_driver = Some(client_next);
        }
        Workload::Open(spec) => {
            // Same per-client content seeding as the closed loop, so an
            // unsaturated open-loop run replays statistically the same ops
            // — but pulled lazily: nothing is materialised up front.
            let params = WorkloadParams::for_family(rcfg.family, rcfg.volume_bytes);
            let total = rcfg
                .total_ops
                .unwrap_or(rcfg.cluster.clients * rcfg.ops_per_client as u64);
            let source = spec.source(&params, rcfg.cluster.clients, total, rcfg.seed);
            install_source(
                &mut sim,
                &mut cl,
                OpSource::Lazy(Box::new(source)),
                spec.window,
            );
        }
        Workload::Timed { stream, window } => {
            let source = OpSource::Stream {
                ops: stream.ops().to_vec(),
                next: 0,
            };
            install_source(&mut sim, &mut cl, source, *window);
        }
    }

    // Arm the fault timeline. With the (default) empty plan nothing is
    // scheduled and no state changes: the replay is byte-for-byte the
    // pre-fault-timeline replay.
    if !rcfg.faults.is_empty() {
        cl.faults.recovery_delay = rcfg.faults.recovery_delay_ns;
        cl.faults.repair_bandwidth = rcfg.faults.repair_bandwidth;
        // Timestamped latencies enable degraded-window vs steady quantiles.
        cl.metrics.latency_samples = Some(SampleLog::new());
        cl.metrics.read_latency_samples = Some(SampleLog::new());
        for ev in &rcfg.faults.events {
            let scope = ev.scope;
            sim.schedule_at(ev.at_ns, move |sim, cl: &mut Cluster| {
                recovery::inject_fault(sim, cl, scope);
            });
        }
    }

    // Arm background maintenance. Same contract as the fault timeline:
    // an empty plan schedules nothing and touches no state.
    if !rcfg.maintenance.is_empty() {
        // Busy-window vs idle-window quantiles need timestamped samples
        // (the fault plan may already have attached them).
        if cl.metrics.latency_samples.is_none() {
            cl.metrics.latency_samples = Some(SampleLog::new());
        }
        if cl.metrics.read_latency_samples.is_none() {
            cl.metrics.read_latency_samples = Some(SampleLog::new());
        }
        maintenance::arm(&mut sim, &mut cl, &rcfg.maintenance);
    }

    // Arm deterministic tracing. Same contract again: the default (off)
    // config arms nothing, touches no state, and leaves the replay byte
    // for byte identical to an untraced run.
    cl.trace.arm(rcfg.trace);

    // Kick the closed-loop clients with staggered start times. In a fully
    // deterministic simulation, identical service times would otherwise
    // keep all clients in lockstep convoys — synchronized arrival waves
    // that queue behind each other at every hop while the fabric sits idle
    // in between. (Open-loop arrivals carry their own schedule.)
    if rcfg.workload.is_closed_loop() {
        fn kick(sim: &mut Sim<Cluster>, cl: &mut Cluster, client: u64) {
            client_next(sim, cl, client);
        }
        for c in 0..rcfg.cluster.clients {
            let stagger = c.wrapping_mul(137) % 4096 * simdes::units::MICROS / 8;
            sim.schedule_call_u(stagger, kick, c);
        }
    }
    cl.metrics.setup_ms = setup_start.elapsed().as_secs_f64() * 1_000.0;
    if rcfg.shards >= 2 {
        // The sharded engine: bookkeeping offloads to sink shards, the
        // causal core replays the identical event stream. Results are
        // byte-for-byte the serial run's. The oracle stays on the core
        // when the defragmenter (its one mid-run reader) is armed.
        let oracle_local = rcfg.maintenance.defrag.is_some();
        let threads = crate::shard::replay_threads();
        let (s, c, _stats) = crate::shard::run_sharded(sim, cl, rcfg.shards, threads, oracle_local);
        sim = s;
        cl = c;
    } else {
        sim.run(&mut cl);
    }
    (sim, cl)
}

/// Runs one full replay: build cluster, generate per-client traces, replay
/// closed-loop, drain logs, verify the oracle, and harvest metrics.
///
/// **Deprecation path:** thin shim over [`Replay::run`] — the unified
/// entry point returning a [`RunOutcome`] (result *and* optional trace).
/// Kept for the many call sites that only want the result.
pub fn run_trace(rcfg: &ReplayConfig) -> RunResult {
    Replay::run(rcfg).result
}

/// [`run_trace`], plus the retained trace when [`ReplayConfig::trace`] is
/// enabled. The `RunResult` is identical to what `run_trace` returns for
/// the same config — tracing changes what is *recorded*, never what is
/// *simulated*.
///
/// **Deprecation path:** thin shim over [`Replay::run`]; prefer the named
/// [`RunOutcome`] fields over this positional tuple.
pub fn run_traced(rcfg: &ReplayConfig) -> (RunResult, Option<Trace>) {
    let RunOutcome { result, trace } = Replay::run(rcfg);
    (result, trace)
}

/// Everything one replay produces: the harvested metrics and, when
/// [`ReplayConfig::trace`] was armed with retention, the trace itself.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The harvested metrics (identical whether or not tracing was armed).
    pub result: RunResult,
    /// The retained trace; `None` unless tracing was enabled.
    pub trace: Option<Trace>,
}

/// The unified replay entry point: [`Replay::run`] subsumes the historical
/// `run_trace`/`run_traced` split behind one call returning [`RunOutcome`].
#[derive(Debug, Clone, Copy)]
pub struct Replay;

impl Replay {
    /// Runs one full replay — build the cluster, offer the workload,
    /// drain logs, verify the consistency oracle, harvest metrics and the
    /// optional trace.
    ///
    /// ```
    /// use ecfs::prelude::*;
    ///
    /// let cluster = ClusterConfig::builder()
    ///     .code(CodeParams::new(4, 2).unwrap())
    ///     .method(MethodKind::Fo)
    ///     .nodes(6)
    ///     .clients(2)
    ///     .build()
    ///     .unwrap();
    /// let rcfg = ReplayConfig::builder(cluster, TraceFamily::AliCloud)
    ///     .ops_per_client(40)
    ///     .build()
    ///     .unwrap();
    /// let out = Replay::run(&rcfg);
    /// assert_eq!(out.result.oracle_violations, 0);
    /// assert!(out.trace.is_none()); // tracing was not armed
    /// ```
    pub fn run(rcfg: &ReplayConfig) -> RunOutcome {
        run_replay(rcfg)
    }
}

fn run_replay(rcfg: &ReplayConfig) -> RunOutcome {
    let wall_start = std::time::Instant::now();
    let (mut sim, mut cl) = run_update_phase(rcfg);
    let run_end = cl.metrics.last_completion;
    let duration_s = simdes::units::as_secs_f64(run_end);

    // Drain all logs (real-time for TSUE means little remains; deferred
    // methods pay here).
    let drain_start = sim.now();
    methods::drain(&mut sim, &mut cl);
    sim.run(&mut cl);
    let mut guard = 0;
    while methods::pending_log_bytes(&cl) > 0 {
        methods::drain(&mut sim, &mut cl);
        sim.run(&mut cl);
        guard += 1;
        assert!(guard < 1000, "drain did not converge");
    }
    let drain_s = simdes::units::as_secs_f64(sim.now().saturating_sub(drain_start));

    let violations = cl.oracle.violations(&cl.layout);

    // Availability harvest: degraded windows run from each injected fault
    // to its repair completion (or the end of the simulation when repair
    // never finished).
    let sim_end = sim.now();
    let windows = cl.faults.windows(sim_end);
    let (degraded_p99_us, steady_p99_us) = match &cl.metrics.latency_samples {
        Some(log) => {
            let (inside, outside) = log.split(&windows);
            (
                inside.quantile(0.99) as f64 / 1_000.0,
                outside.quantile(0.99) as f64 / 1_000.0,
            )
        }
        None => (
            0.0,
            cl.metrics.update_latency.quantile(0.99) as f64 / 1_000.0,
        ),
    };
    let (degraded_read_p99_us, steady_read_p99_us) = match &cl.metrics.read_latency_samples {
        Some(log) => {
            let (inside, outside) = log.split(&windows);
            (
                inside.quantile(0.99) as f64 / 1_000.0,
                outside.quantile(0.99) as f64 / 1_000.0,
            )
        }
        None => (0.0, cl.metrics.read_latency.quantile(0.99) as f64 / 1_000.0),
    };
    let mttr_s = cl.faults.mttr_s(sim_end);

    let m = &cl.metrics;
    let update_iops = if duration_s > 0.0 {
        m.completed_updates as f64 / duration_s
    } else {
        0.0
    };

    // Offered-vs-acked accounting: goodput is what clients actually got
    // acknowledged per second of run; on the open loop it is compared
    // against the schedule's offered rate to flag saturation.
    let acked = m.completed_updates + m.completed_reads + m.completed_writes;
    let goodput_ops_per_s = if duration_s > 0.0 {
        acked as f64 / duration_s
    } else {
        0.0
    };
    let (
        offered_ops,
        offered_ops_per_s,
        queue_delay_mean_us,
        queue_delay_p99_us,
        peak_queue_depth,
        backlogged,
        active_clients_peak,
        client_state_bytes,
        workload_state_bytes,
    ) = match &cl.open_loop {
        Some(ol) => {
            let horizon_s = simdes::units::as_secs_f64(ol.horizon);
            let rate = if horizon_s > 0.0 {
                ol.offered as f64 / horizon_s
            } else {
                0.0
            };
            let active_peak = ol.active_clients.peak();
            // "Backed up": at some point the admission queues held at
            // least one full window of the peak active set — more waiting
            // than the clients actually competing were even allowed to
            // have in flight. Keyed to the *active* set, not the
            // population, so the signature survives million-client id
            // spaces where most clients never arrive.
            let backlogged = ol.queue_depth.peak() >= (ol.window as u64) * active_peak.max(1);
            // Runtime client state at peak, from measured peaks × exact
            // struct sizes: every active client holds one window entry
            // and one op-queue entry; every queued arrival holds one
            // admission timestamp and one op-content tuple.
            let per_client = (std::mem::size_of::<u64>() * 2
                + std::mem::size_of::<crate::cluster::ClientWindow>()
                + std::mem::size_of::<VecDeque<(u64, u32, OpKind)>>())
                as u64;
            let per_queued =
                (std::mem::size_of::<SimTime>() + std::mem::size_of::<(u64, u32, OpKind)>()) as u64;
            (
                ol.offered,
                rate,
                ol.queue_delay.mean() / 1_000.0,
                ol.queue_delay.quantile(0.99) as f64 / 1_000.0,
                ol.queue_depth.peak(),
                backlogged,
                active_peak,
                active_peak * per_client + ol.queue_depth.peak() * per_queued,
                ol.source.state_bytes(),
            )
        }
        None => (0, 0.0, 0.0, 0.0, 0, false, 0, 0, 0),
    };
    // Both conditions guard against finite-run artefacts: a short stream's
    // completion tail depresses the goodput ratio without any queueing, and
    // a transient queue blip is not a collapse without a goodput shortfall.
    let saturated = offered_ops > 0
        && goodput_ops_per_s < SATURATION_GOODPUT_RATIO * offered_ops_per_s
        && backlogged;

    // Fleet-resource harvest: per-disk fill and wear, after all rebuilds.
    let mut disk_fill_max = 0.0f64;
    let mut disk_fill_min = f64::INFINITY;
    let mut wear_max_bytes = 0u64;
    let mut wear_total = 0u64;
    for n in &cl.nodes {
        let fill = cl.layout.allocated(n.id) as f64 / n.disk.capacity().max(1) as f64;
        disk_fill_max = disk_fill_max.max(fill);
        disk_fill_min = disk_fill_min.min(fill);
        let wear = n.disk.wear_bytes();
        wear_max_bytes = wear_max_bytes.max(wear);
        wear_total += wear;
    }
    let wear_mean = wear_total as f64 / cl.nodes.len().max(1) as f64;
    let wear_spread = if wear_mean > 0.0 {
        wear_max_bytes as f64 / wear_mean
    } else {
        0.0
    };
    let copysets_used = cl.layout.distinct_copysets();

    // Maintenance harvest. LSE ground truth comes from the per-device
    // oracles (not the policy counters), so a scrub that claims a repair
    // it never booked would show up as a mismatch here.
    let mut lse_injected = 0u64;
    let mut lse_detected = 0u64;
    let mut lse_repaired = 0u64;
    for n in &cl.nodes {
        if let Some(model) = n.disk.lse() {
            lse_injected += model.injected() as u64;
            lse_detected += model.detected() as u64;
            lse_repaired += model.repaired() as u64;
        }
    }
    let (maint_busy_p99_us, maint_idle_p99_us) =
        match (&cl.metrics.latency_samples, cl.maint.active) {
            (Some(log), true) => {
                let (busy, idle) = log.split(&cl.maint.windows);
                (
                    busy.quantile(0.99) as f64 / 1_000.0,
                    idle.quantile(0.99) as f64 / 1_000.0,
                )
            }
            _ => (0.0, 0.0),
        };
    const GIB: f64 = (1u64 << 30) as f64;
    // Harvest tracing after the drain so recycle/maintenance child spans
    // emitted while draining are included. `finish` resets the state.
    let (stage_breakdown, trace_dropped_spans, trace) = cl.trace.finish(rcfg.cluster.method.name());
    let sim_events = sim.events_executed();
    let wall_ms = wall_start.elapsed().as_secs_f64() * 1_000.0;
    let events_per_sec = if wall_ms > 0.0 {
        sim_events as f64 / (wall_ms / 1_000.0)
    } else {
        0.0
    };
    let result = RunResult {
        method: rcfg.cluster.method.name().to_string(),
        completed_updates: m.completed_updates,
        completed_reads: m.completed_reads,
        completed_writes: m.completed_writes,
        duration_s,
        update_iops,
        latency_mean_us: m.update_latency.mean() / 1_000.0,
        latency_p99_us: m.update_latency.quantile(0.99) as f64 / 1_000.0,
        disk: cl.disk_stats(),
        net_gib: cl.net.traffic().total_gib(),
        net_cross_rack_gib: cl.net.traffic().cross_rack_gib(),
        net_msgs: cl.net.traffic().total_messages(),
        erases: cl.total_erases(),
        series: m.completions.rates_per_sec(),
        log_memory_bytes: log_memory(&cl),
        data_residency: ResidencySummary::from_layer(&m.data_residency),
        delta_residency: ResidencySummary::from_layer(&m.delta_residency),
        parity_residency: ResidencySummary::from_layer(&m.parity_residency),
        stalls: m.stall_waits,
        cache_read_hits: m.cache_read_hits,
        cache_lookups: m.cache_lookups,
        cache_hits: m.cache_hits,
        cache_hit_ratio: if m.cache_lookups > 0 {
            m.cache_hits as f64 / m.cache_lookups as f64
        } else {
            0.0
        },
        staged_bytes: m.staged_bytes,
        coalesced_bytes: m.coalesced_bytes,
        stage_flushes: m.stage_flushes,
        drain_s,
        oracle_violations: violations.len(),
        degraded_reads: m.degraded_reads,
        degraded_bytes_decoded: m.degraded_bytes_decoded,
        failed_ops: m.failed_ops,
        inline_rebuilds: cl.faults.inline_rebuilds,
        repaired_blocks: cl.faults.repaired_blocks,
        repaired_bytes: cl.faults.repaired_bytes,
        data_loss_blocks: cl.faults.data_loss_blocks,
        net_repair_gib: cl.net.traffic().repair_gib(),
        mttr_s,
        degraded_p99_us,
        steady_p99_us,
        read_p99_us: m.read_latency.quantile(0.99) as f64 / 1_000.0,
        degraded_read_p99_us,
        steady_read_p99_us,
        offered_ops,
        offered_ops_per_s,
        goodput_ops_per_s,
        queue_delay_mean_us,
        queue_delay_p99_us,
        peak_queue_depth,
        saturated,
        active_clients_peak,
        client_state_bytes,
        workload_state_bytes,
        disk_fill_max,
        disk_fill_min,
        wear_max_bytes,
        wear_spread,
        copysets_used,
        scrub_gib: cl.maint.scrub_bytes as f64 / GIB,
        lse_injected,
        lse_found: lse_detected,
        lse_repaired,
        maint_migrated_gib: (cl.maint.migrated_bytes + cl.maint.demoted_bytes) as f64 / GIB,
        defrag_gib: cl.maint.defrag_bytes as f64 / GIB,
        wear_spread_before: cl.maint.wear_spread_before,
        maint_busy_p99_us,
        maint_idle_p99_us,
        stage_breakdown,
        trace_dropped_spans,
        sim_events,
        wall_ms,
        events_per_sec,
        setup_ms: cl.metrics.setup_ms,
    };
    RunOutcome { result, trace }
}

fn log_memory(cl: &Cluster) -> u64 {
    cl.nodes.iter().map(|n| n.state.memory_bytes()).sum()
}
